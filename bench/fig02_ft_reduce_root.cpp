// Figure 2: injecting faults into the root and a non-root MPI process of
// an MPI_Reduce in the FT kernel.
//
// Rooted collectives have asymmetric communication patterns, so — unlike
// Fig 1's allreduce — the root's response distribution differs from a
// non-root's. This asymmetry is why semantic pruning keeps the root *and*
// one representative non-root for rooted collectives.

#include <cmath>
#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 2 — FT: root vs non-root, MPI_Reduce",
      "Results of injecting faults into the root and a non-root MPI "
      "process of an MPI_Reduce in FT kernel",
      "mini-FT's per-iteration checksum MPI_Reduce to rank 0");

  const auto workload = apps::make_workload("FT");
  const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
  auto& campaign = driver->campaign();

  // Locate the reduce site on the root rank (rank 0 forms its own class)
  // and a representative non-root.
  const auto& points = campaign.enumeration().points;
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  double total_gap = 0.0;
  std::size_t params_compared = 0;
  for (const auto& point : points) {
    if (point.kind != mpi::CollectiveKind::Reduce) continue;
    if (point.rank != 0) continue;  // enumerate from the root's copy
    core::PointResult root_result = campaign.measure(point);
    auto nonroot_point = point;
    nonroot_point.rank = campaign.options().nranks / 2;  // a non-root rank
    core::PointResult nonroot_result = campaign.measure(nonroot_point);

    for (const auto& [label, result] :
         {std::pair<const char*, const core::PointResult&>{"root",
                                                           root_result},
          std::pair<const char*, const core::PointResult&>{"nonroot",
                                                           nonroot_result}}) {
      std::array<double, inject::kNumOutcomes> dist{};
      for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
        dist[o] = result.fraction(static_cast<inject::Outcome>(o));
      }
      rows.emplace_back(std::string(to_string(point.param)) + " " + label,
                        dist);
    }
    double tv = 0.0;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      tv += std::abs(
          root_result.fraction(static_cast<inject::Outcome>(o)) -
          nonroot_result.fraction(static_cast<inject::Outcome>(o)));
    }
    total_gap += tv / 2.0;
    ++params_compared;
  }

  std::printf("%s\n", core::render_outcome_table(rows).c_str());
  if (params_compared > 0) {
    std::printf("mean total-variation distance root vs non-root: %s\n",
                percent(total_gap / static_cast<double>(params_compared))
                    .c_str());
  }
  std::printf("expected shape: the root's sensitivity differs from the "
              "non-root's (recvbuf/recvcount matter only at the root; root "
              "faults divert the whole tree), as in the paper's Fig 2\n");
  return 0;
}

// Table III: reduction ratio after applying the three FastFIT techniques.
//
// Columns follow the paper: "MPI" = semantic-driven pruning, "App" =
// application-context pruning (relative to post-semantic), "ML" =
// ML-driven prediction (relative to post-structural; the paper applies ML
// only to LAMMPS because the NPB spaces are already small — reproduced
// here), "Total" = overall fraction of the exploration space whose
// response was obtained without direct injection.
//
// Paper values at 32 ranks: IS 96.88/90.00/NA/99.69, FT 96.31/95.24/NA/
// 99.78, MG 96.09/90.70/NA/99.64, LU 96.35/40.00/NA/97.81, LAMMPS
// 97.24/87.58/53.33/99.84 (all percent).

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Table III — reduction ratio from the three FastFIT techniques",
      "Reduction ratio after applying the three techniques with FastFIT",
      "mini workloads; ML applied to the LAMMPS stand-in only, as in the "
      "paper");

  std::printf("%s%s%s%s%s%s\n", pad("App", 10).c_str(),
              pad("MPI", 10).c_str(), pad("App", 10).c_str(),
              pad("ML", 10).c_str(), pad("Total", 10).c_str(),
              "points(total->semantic->context->measured)");

  // The paper's Table III rows exactly: the four NPB kernels + LAMMPS.
  for (const std::string name : {"IS", "FT", "MG", "LU", "miniMD"}) {
    const bool use_ml = (name == "miniMD");
    const auto workload = apps::make_workload(name);
    core::FastFitOptions options;
    options.campaign = bench::bench_campaign_options();
    options.use_ml = use_ml;
    options.ml.accuracy_threshold = 0.65;  // the paper's operating point
    options.ml.train_batch = 6;
    options.ml.verify_batch = 5;
    options.ml.forest.n_trees = 24;

    core::FastFit study(*workload, options);
    const auto result = study.run();
    const auto& s = result.stats;
    std::printf(
        "%s%s%s%s%s%llu -> %llu -> %llu -> %zu\n", pad(name, 10).c_str(),
        pad(percent(s.semantic_reduction()), 10).c_str(),
        pad(percent(s.context_reduction()), 10).c_str(),
        pad(use_ml ? percent(result.ml_reduction) : std::string("NA"), 10)
            .c_str(),
        pad(percent(result.total_reduction()), 10).c_str(),
        static_cast<unsigned long long>(s.total_points),
        static_cast<unsigned long long>(s.after_semantic),
        static_cast<unsigned long long>(s.after_context),
        result.measured.size());
  }
  std::printf(
      "\nexpected shape: semantic reduction scales with rank count "
      "(~94%% at 16 ranks, ~97%% at 32 — set FASTFIT_BENCH_RANKS=32 to "
      "match the paper's scale); totals exceed 90%% everywhere; ML adds "
      "roughly half of the remaining points for the LAMMPS stand-in\n");
  return 0;
}

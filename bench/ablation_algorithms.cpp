// Ablation: does the collective algorithm change the fault response?
//
// Production MPIs select among several algorithms per collective; the
// paper's results were measured on whatever Titan's MPI chose. This bench
// repeats the LU campaign under two algorithm sets — the defaults
// (binomial bcast, recursive-doubling allreduce) and the variants (chain
// bcast, reduce+bcast allreduce) — to test whether the sensitivity
// conclusions are algorithm-robust.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Ablation — collective algorithm selection",
      "implicit in Sec V-A: results were measured on one MPI's algorithm "
      "choices; are the shapes robust to different algorithms?",
      "LU campaign under default vs variant algorithms");

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      root_rows;
  for (bool variant : {false, true}) {
    const auto workload = apps::make_workload("LU");
    auto options = bench::bench_campaign_options();
    if (variant) {
      options.algorithms.bcast = mpi::CollectiveAlgorithms::Bcast::Chain;
      options.algorithms.allreduce =
          mpi::CollectiveAlgorithms::Allreduce::ReduceBcast;
    }
    const auto driver = bench::profiled_driver(*workload, options);
    auto& campaign = driver->campaign();
    std::vector<core::PointResult> results;
    std::vector<core::PointResult> root_results;
    for (const auto& point : campaign.enumeration().points) {
      results.push_back(campaign.measure(point));
      if (point.param == mpi::Param::Root) {
        // Divergence lives in the root parameter: oversample it so the
        // rare valid-but-wrong-root flips actually occur.
        root_results.push_back(
            campaign.measure(point, bench::bench_trials() * 8));
      }
    }
    const char* label =
        variant ? "chain + reduce-bcast" : "binomial + recdoubling";
    rows.emplace_back(label, core::outcome_distribution(results));
    root_rows.emplace_back(label, core::outcome_distribution(root_results));
  }

  std::printf("all parameters:\n%s\n",
              core::render_outcome_table(rows).c_str());
  std::printf("root-parameter faults only (8x trials):\n%s\n",
              core::render_outcome_table(root_rows).c_str());
  std::printf(
      "expected shape: validation-driven responses (MPI_ERR, SEG_FAULT) "
      "are identical across algorithms (validation precedes the "
      "algorithm); divergence-driven responses (INF_LOOP, WRONG_ANS) "
      "shift, because trees, chains, and exchanges break differently — "
      "a caveat for porting the paper's absolute numbers between MPIs\n");
  return 0;
}

#pragma once

// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper on the
// simulated substrate. Scale knobs come from the environment so a single
// core can finish the default sweep in minutes while larger machines can
// crank them up:
//
//   FASTFIT_BENCH_RANKS     simulated MPI ranks        (default 16)
//   FASTFIT_BENCH_TRIALS    trials per injection point (default 12;
//                           the paper uses 100)
//   FASTFIT_BENCH_SEED      campaign master seed       (default 0xF457F17)
//   FASTFIT_BENCH_PARALLEL  max concurrent trials      (default 0 = auto:
//                           hardware_concurrency / ranks; 1 = serial)
//   FASTFIT_BENCH_TELEMETRY enable the telemetry recorder for the whole
//                           binary (default 0; the throughput bench also
//                           measures the on/off delta explicitly)

#include <cstdlib>
#include <memory>
#include <string>

#include "core/fastfit.hpp"
#include "core/report.hpp"

namespace fastfit::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* value = std::getenv(name)) {
    return std::strtoull(value, nullptr, 10);
  }
  return fallback;
}

inline int bench_ranks() {
  return static_cast<int>(env_u64("FASTFIT_BENCH_RANKS", 16));
}
inline std::uint32_t bench_trials() {
  return static_cast<std::uint32_t>(env_u64("FASTFIT_BENCH_TRIALS", 12));
}
inline std::uint64_t bench_seed() {
  return env_u64("FASTFIT_BENCH_SEED", 0xF457F17ULL);
}
inline std::size_t bench_parallel() {
  return static_cast<std::size_t>(env_u64("FASTFIT_BENCH_PARALLEL", 0));
}
inline bool bench_telemetry() {
  return env_u64("FASTFIT_BENCH_TELEMETRY", 0) != 0;
}

inline core::CampaignOptions bench_campaign_options() {
  core::CampaignOptions opts;
  opts.nranks = bench_ranks();
  opts.trials_per_point = bench_trials();
  opts.seed = bench_seed();
  opts.max_parallel_trials = bench_parallel();
  return opts;
}

/// Prints the standard experiment banner.
void banner(const std::string& id, const std::string& paper_caption,
            const std::string& substitution_note);

/// Profiles a workload through the study pipeline and returns the
/// driver; driver->campaign() is the profiled engine. Bench binaries
/// that drive measurement by hand go through here instead of
/// constructing a Campaign directly — engine construction is the study
/// pipeline's business (see docs/pipeline.md).
std::unique_ptr<core::StudyDriver> profiled_driver(
    const apps::Workload& workload, core::CampaignOptions options);

/// Measures every enumerated point of a workload (traditional mode) and
/// returns the per-point results; shared by the Figs 7-11 binaries.
std::vector<core::PointResult> measure_all_points(
    const std::string& workload_name,
    std::optional<mpi::Param> only_param = std::nullopt);

}  // namespace fastfit::bench

// Figure 3: error-rate distribution for many invocations of an
// MPI_Allreduce call site that share the same call stack (LAMMPS).
//
// The paper injects data-buffer faults into 100 same-stack invocations of
// one LAMMPS allreduce (100 trials each) and finds the per-invocation
// error rates concentrated (Gaussian-like: mean 29.58, stddev 7.69) —
// the empirical basis of application-context pruning. Here miniMD runs
// with an extended step count so one thermostat/consistency allreduce site
// accumulates many same-stack invocations.

#include <cstdio>

#include "apps/minimd.hpp"
#include "bench_common.hpp"
#include "profile/queries.hpp"
#include "stats/gaussian.hpp"
#include "stats/histogram.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 3 — error-rate distribution over same-call-stack invocations",
      "Error rate distribution for 100 invocations of MPI_Allreduce with "
      "the same call stack in LAMMPS",
      "miniMD with an extended run so one allreduce site has many "
      "same-stack invocations; data-buffer faults only");

  apps::MdConfig config;
  config.steps = static_cast<int>(bench::env_u64("FASTFIT_BENCH_STEPS", 64));
  apps::MiniMD workload(config);

  auto options = bench::bench_campaign_options();
  const auto driver = bench::profiled_driver(workload, options);
  auto& campaign = driver->campaign();

  // Candidate sites: allreduces with a large single-stack invocation
  // group on the bulk representative rank. The paper's example site has an
  // intermediate error rate (~30%), so probe one invocation per candidate
  // and pick the site whose rate is farthest from both 0 and 1 — a
  // degenerate always-detected or never-affected site has no distribution
  // to show.
  const auto& profiler = campaign.profiler();
  const auto& classes = campaign.enumeration().classes;
  int rep = classes.back().representative();
  struct Candidate {
    const profile::SiteProfile* site;
    std::uint32_t site_id;
    trace::StackId stack;
    std::size_t group;
  };
  std::vector<Candidate> candidates;
  for (const auto& [site_id, site] : profiler.rank(rep).sites) {
    if (site.kind != mpi::CollectiveKind::Allreduce) continue;
    std::map<trace::StackId, std::size_t> groups;
    for (const auto& inv : site.invocations) ++groups[inv.stack];
    for (const auto& [stack, count] : groups) {
      if (count >= 8) candidates.push_back({&site, site_id, stack, count});
    }
  }
  if (candidates.empty()) {
    std::printf("no allreduce site with a large same-stack group found\n");
    return 1;
  }
  const Candidate* chosen = nullptr;
  double best_spread = -1.0;
  for (const auto& candidate : candidates) {
    core::InjectionPoint probe;
    probe.site_id = candidate.site_id;
    probe.kind = candidate.site->kind;
    probe.rank = rep;
    probe.invocation = candidate.site->invocations.front().invocation;
    probe.param = mpi::Param::SendBuf;
    const double rate = campaign.measure(probe, 24).error_rate();
    std::printf("  candidate %s:%d (%zu same-stack invocations): probe "
                "error rate %.0f%%\n",
                candidate.site->file.c_str(), candidate.site->line,
                candidate.group, rate * 100.0);
    // Prefer mid-range sites (an always/never-affected site has no
    // distribution to show); among those, the largest same-stack group.
    const double spread = rate * (1.0 - rate);
    const double score =
        (spread > 0.04 ? 1.0 : spread) * static_cast<double>(candidate.group);
    if (score > best_spread) {
      best_spread = score;
      chosen = &candidate;
    }
  }
  const profile::SiteProfile* best_site = chosen->site;
  const std::uint32_t best_site_id = chosen->site_id;
  const trace::StackId best_stack = chosen->stack;
  std::printf("site %s:%d — %zu same-stack invocations of MPI_Allreduce\n\n",
              best_site->file.c_str(), best_site->line, chosen->group);

  // Inject data-buffer faults into every invocation of that stack group.
  std::vector<double> error_rates;
  stats::Histogram histogram(0.0, 100.0, 20);  // 5%-wide buckets like Fig 3
  for (const auto& inv : best_site->invocations) {
    if (inv.stack != best_stack) continue;
    core::InjectionPoint point;
    point.site_id = best_site_id;
    point.kind = best_site->kind;
    point.rank = rep;
    point.invocation = inv.invocation;
    point.param = mpi::Param::SendBuf;
    const auto result = campaign.measure(
        point, std::max<std::uint32_t>(bench::bench_trials(), 20));
    const double rate = result.error_rate() * 100.0;
    error_rates.push_back(rate);
    histogram.add(rate);
  }

  std::printf("%s\n", histogram.render("error rate (%)").c_str());
  if (error_rates.size() >= 2) {
    const auto fit = stats::fit_gaussian(error_rates);
    const auto gof = stats::chi_squared_gof(histogram, fit);
    std::printf("Gaussian fit: mean %.2f, stddev %.2f (paper: 29.58, 7.69)\n",
                fit.mean, fit.stddev);
    std::printf("chi-squared GoF: %.2f on %zu dof\n", gof.statistic,
                gof.degrees_of_freedom);
  }
  std::printf("expected shape: per-invocation error rates concentrate in a "
              "narrow band (low stddev), justifying one representative "
              "invocation per distinct call stack\n");
  return 0;
}

// Figure 10: LAMMPS' response by error type when faults are injected into
// its MPI collectives, per collective kind.
//
// Paper findings to compare against: SUCCESS is the most common response
// (~65% of tests harmless — LAMMPS' statistical nature tolerates data
// perturbations); APP_DETECTED is second (mature error handling, 21.24%);
// SEG_FAULT still significant (~10%); WRONG_ANS uncommon; INF_LOOP
// rarest.

#include <cstdio>

#include "bench_common.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 10 — LAMMPS response in error types",
      "LAMMPS benchmark's response in error types, when faults are "
      "injected into LAMMPS' MPI collectives",
      "miniMD (LAMMPS stand-in); panel (a) data-buffer faults as in "
      "Sec V-C, panel (b) all parameters");

  const auto results = bench::measure_all_points("miniMD");

  std::vector<core::PointResult> buffer_only;
  for (const auto& r : results) {
    if (r.point.param == mpi::Param::SendBuf ||
        r.point.param == mpi::Param::RecvBuf) {
      buffer_only.push_back(r);
    }
  }

  const auto per_kind_rows = [](const std::vector<core::PointResult>& rs) {
    std::vector<std::pair<std::string,
                          std::array<double, inject::kNumOutcomes>>>
        rows;
    for (mpi::CollectiveKind kind : core::kinds_present(rs)) {
      rows.emplace_back(mpi::to_string(kind),
                        core::outcome_distribution(rs, kind));
    }
    rows.emplace_back("ALL", core::outcome_distribution(rs));
    return rows;
  };

  std::printf("(a) data-buffer injections only\n%s\n",
              core::render_outcome_table(per_kind_rows(buffer_only)).c_str());
  std::printf("(b) all input parameters\n%s\n",
              core::render_outcome_table(per_kind_rows(results)).c_str());
  std::printf(
      "expected shape (panel a vs paper Fig 10): SUCCESS dominant, "
      "APP_DETECTED second (error-handling allreduces catch corruption), "
      "WRONG_ANS rare (statistical results), INF_LOOP rarest\n");
  return 0;
}

// Figure 9: NPB response by error type when faults are injected into each
// input parameter of MPI_Allreduce (sendbuf, recvbuf, count, datatype,
// op, comm).
//
// Paper findings to compare against: recvbuf faults are near-harmless (the
// collective overwrites the flipped bit); sendbuf faults matter more but
// are often tolerated/detected; faults in count/datatype/op/comm have a
// high impact and frequently produce SEG_FAULT or MPI-reported errors, so
// those parameters deserve the strongest protection.

#include <cstdio>

#include "bench_common.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 9 — per-parameter sensitivity of MPI_Allreduce (NPB)",
      "NPB benchmark's response in error types, when faults are injected "
      "into the parameters of NPB's MPI collectives (MPI_Allreduce)",
      "allreduce call sites pooled across the four mini-NPB kernels");

  std::vector<core::PointResult> pooled;
  for (const std::string name : {"IS", "FT", "MG", "LU"}) {
    auto results = bench::measure_all_points(name);
    for (auto& r : results) {
      if (r.point.kind == mpi::CollectiveKind::Allreduce) {
        pooled.push_back(std::move(r));
      }
    }
  }

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (mpi::Param param :
       {mpi::Param::SendBuf, mpi::Param::RecvBuf, mpi::Param::Count,
        mpi::Param::Datatype, mpi::Param::Op, mpi::Param::Comm}) {
    rows.emplace_back(
        to_string(param),
        core::outcome_distribution(pooled, mpi::CollectiveKind::Allreduce,
                                   param));
  }
  std::printf("%s\n", core::render_outcome_table(rows).c_str());
  std::printf(
      "expected shape: recvbuf almost all SUCCESS; sendbuf mostly "
      "SUCCESS/APP_DETECTED/WRONG_ANS; count/datatype dominated by "
      "SEG_FAULT+MPI_ERR; op/comm dominated by MPI_ERR\n");
  return 0;
}

// Ablation: sensitivity of the conclusions to the fault model.
//
// The paper's model is a single random bit flip per trial. This bench
// re-runs the Fig-10-style campaign on the LAMMPS stand-in under the five
// parameter-mutation models (single bit, double bit, stuck-at-zero,
// random byte, stuck-at-one) and compares the response distributions: the
// taxonomy shares should shift in the expected directions (heavier
// corruption -> less SUCCESS) without changing who-wins orderings. The
// message-level and fail-stop manifestations are not parameter mutators
// and are exercised by the fail-stop campaign tests instead.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Ablation — fault-model comparison",
      "Sec II fixes the fault model to one bit flip; how robust are the "
      "response distributions to that choice?",
      "miniMD, buffer faults, all five parameter-mutation models");

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (std::size_t m = 0; m < inject::kNumFaultModels; ++m) {
    const auto model = static_cast<inject::FaultModel>(m);
    if (!inject::is_parameter_model(model)) continue;
    const auto workload = apps::make_workload("miniMD");
    auto options = bench::bench_campaign_options();
    options.fault_models = {inject::FaultModelSpec{model}};
    const auto driver = bench::profiled_driver(*workload, options);
    auto& campaign = driver->campaign();
    std::vector<core::PointResult> results;
    for (const auto& point : campaign.enumeration().points) {
      if (point.param != mpi::Param::SendBuf) continue;
      results.push_back(campaign.measure(point));
    }
    rows.emplace_back(to_string(model), core::outcome_distribution(results));
  }

  std::printf("%s\n", core::render_outcome_table(rows).c_str());
  std::printf(
      "expected shape: single and double bit flips behave alike (double "
      "slightly harsher); the stuck-at pair is mildest (half their faults "
      "are no-ops on bits already at the stuck value); random-byte is "
      "harshest. SUCCESS stays the most common response under every model "
      "— the paper's conclusions do not hinge on the single-bit choice\n");
  return 0;
}

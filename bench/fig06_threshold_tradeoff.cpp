// Figure 6: the relationship between the prediction-accuracy threshold
// and the reduction in fault injection points.
//
// The paper sweeps the threshold from 45% to 75% on LAMMPS: a higher
// threshold demands more measured training/verification points, leaving
// fewer points for the model to predict — so the ML reduction falls.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 6 — accuracy threshold vs reduction of injection points",
      "The relationship between prediction accuracy threshold and "
      "reduction in fault injection points (LAMMPS)",
      "miniMD; each threshold runs a fresh injection/learning loop");

  const auto workload = apps::make_workload("miniMD");
  std::printf("%s%s%s\n", pad("threshold", 12).c_str(),
              pad("reduction", 12).c_str(), "measured/total points");
  for (double threshold : {0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75}) {
    const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
    auto& campaign = driver->campaign();
    core::MlLoopConfig config;
    config.accuracy_threshold = threshold;
    config.train_batch = 4;
    config.verify_batch = 3;
    config.verify_window = 18;
    config.forest.n_trees = 24;
    const auto result =
        core::run_ml_loop(campaign, campaign.enumeration().points, config);
    std::printf("%s%s%zu/%zu  (verify accuracy %.2f, rounds %zu)\n",
                pad(percent(threshold, 0), 12).c_str(),
                pad(percent(result.ml_reduction()), 12).c_str(),
                result.measured.size(),
                result.measured.size() + result.predicted.size(),
                result.final_accuracy, result.rounds);
  }
  std::printf("\nexpected shape: reduction decreases as the threshold "
              "rises; at the paper's best case (45%%) reduction exceeds "
              "80%%\n");
  return 0;
}

// Figure 1: injecting faults into two "equivalent" MPI processes of an
// MPI_Allreduce collective in LU.
//
// The paper picks two random processes of LU (all allreduce participants
// are equivalent), injects one bit flip per trial into each input
// parameter, and shows that the response distributions of the two
// processes match — the justification for semantic-driven pruning of
// non-rooted collectives. Here the two ranks are drawn from the same
// profiled equivalence class.

#include <cmath>
#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 1 — LU: two equivalent ranks, MPI_Allreduce",
      "Results of injecting faults into two \"equivalent\" MPI processes "
      "of an MPI_Allreduce collective in LU",
      "mini-LU on MiniMPI; ranks drawn from one equivalence class");

  const auto workload = apps::make_workload("LU");
  const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
  auto& campaign = driver->campaign();

  // The bulk (non-root-role) equivalence class holds the interchangeable
  // ranks; take its first two members as the paper's rand1 / rand2.
  const auto& classes = campaign.enumeration().classes;
  const trace::EquivalenceClass* bulk = nullptr;
  for (const auto& cls : classes) {
    if (cls.ranks.size() >= 2) bulk = &cls;
  }
  if (bulk == nullptr) {
    std::printf("no equivalence class with two members; nothing to compare\n");
    return 1;
  }
  const int rand1 = bulk->ranks[0];
  const int rand2 = bulk->ranks[1];
  std::printf("equivalence classes: %zu; comparing ranks %d and %d\n\n",
              classes.size(), rand1, rand2);

  // Find an MPI_Allreduce point set of the representative; re-target each
  // parameter's point at both ranks.
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  double worst_gap = 0.0;
  for (const auto& point : campaign.enumeration().points) {
    if (point.kind != mpi::CollectiveKind::Allreduce) continue;
    if (point.rank != bulk->representative()) continue;
    std::array<core::PointResult, 2> results;
    int idx = 0;
    for (int rank : {rand1, rand2}) {
      auto p = point;
      p.rank = rank;
      results[static_cast<std::size_t>(idx++)] = campaign.measure(p);
    }
    for (int i = 0; i < 2; ++i) {
      std::array<double, inject::kNumOutcomes> dist{};
      for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
        dist[o] = results[static_cast<std::size_t>(i)].fraction(
            static_cast<inject::Outcome>(o));
      }
      rows.emplace_back(std::string(to_string(point.param)) +
                            (i == 0 ? " rand1" : " rand2"),
                        dist);
    }
    // Total-variation distance between the two ranks' distributions.
    double tv = 0.0;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      tv += std::abs(results[0].fraction(static_cast<inject::Outcome>(o)) -
                     results[1].fraction(static_cast<inject::Outcome>(o)));
    }
    worst_gap = std::max(worst_gap, tv / 2.0);
    // One allreduce site suffices for the figure (the paper uses one).
    if (point.param == mpi::injectable_params(point.kind).back()) break;
  }

  std::printf("%s\n", core::render_outcome_table(rows).c_str());
  std::printf("max total-variation distance between rand1 and rand2: %s\n",
              percent(worst_gap).c_str());
  std::printf("expected shape: the two ranks respond alike (small distance), "
              "as in the paper's Fig 1\n");
  return 0;
}

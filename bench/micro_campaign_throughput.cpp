// Campaign trial throughput: serial loop vs the TrialExecutor at several
// pool sizes. The whole evaluation suite (bench binaries, the ML loop,
// traditional mode) sits on Campaign::measure_many, so trials/sec here is
// the multiplier on everything downstream. Emits
// BENCH_campaign_throughput.json so later changes can track the perf
// trajectory.
//
// Scale knobs (see bench_common.hpp): FASTFIT_BENCH_RANKS defaults to 4
// here — the oversubscription-relevant regime is small worlds, where the
// auto pool (hardware_concurrency / ranks) leaves headroom for several
// concurrent Worlds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "apps/lu.hpp"
#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "trace/rank_context.hpp"
#include "core/export.hpp"
#include "core/trial_executor.hpp"
#include "inject/outcome.hpp"
#include "telemetry/recorder.hpp"

namespace {

using fastfit::core::InjectionPoint;
using fastfit::core::PointResult;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

long peak_rss_kb() {
  struct rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

}  // namespace

int main() {
  using namespace fastfit;

  // Small-world default (overridable): the interesting regime is where
  // the auto pool (hardware_concurrency / ranks) leaves real headroom.
  ::setenv("FASTFIT_BENCH_RANKS", "4", /*overwrite=*/0);
  const int ranks = bench::bench_ranks();
  const std::uint32_t trials = bench::bench_trials();
  const auto max_points =
      static_cast<std::size_t>(bench::env_u64("FASTFIT_BENCH_POINTS", 10));

  bench::banner("micro_campaign_throughput",
                "(no figure) trials/sec of the campaign loop, serial vs "
                "parallel TrialExecutor",
                "workload EP; identical PointResults at every pool size");

  core::CampaignOptions options;
  options.nranks = ranks;
  options.trials_per_point = trials;
  options.seed = bench::bench_seed();
  // The executor/journal/shard/hang sections measure *those* subsystems;
  // prefix replay would fold its own speedup into every number, so it is
  // pinned off here and gets its own on/off/auto section below.
  options.snapshots = core::SnapshotMode::Off;
  const auto workload = apps::make_workload("EP");
  const auto driver = bench::profiled_driver(*workload, options);
  auto& campaign = driver->campaign();

  auto points = campaign.enumeration().points;
  if (points.size() > max_points) points.resize(max_points);
  const auto total_trials =
      static_cast<double>(points.size()) * static_cast<double>(trials);

  // Warm-up (untimed): one full pass so first-touch costs — page faults,
  // allocator growth, lazily-built golden baselines — land here instead
  // of on the serial baseline, which every later section is compared
  // against.
  for (const auto& point : points) (void)campaign.measure(point);

  // Baseline: the plain serial measure() loop.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<PointResult> serial;
  for (const auto& point : points) serial.push_back(campaign.measure(point));
  const double serial_sec = seconds_since(t0);
  const double serial_tps = total_trials / serial_sec;
  std::printf("%-28s %8.1f trials/sec  (%.2fs, %zu points x %u trials)\n",
              "serial measure()", serial_tps, serial_sec, points.size(),
              trials);
  // Trials are nranks threads of mostly compute, so the achievable
  // speedup is ~min(pool, cores / ranks); on a single-core host the
  // honest parallel path can only break even (results must not change,
  // so contention-slowed trials run to completion instead of being
  // clipped by the watchdog).

  // Telemetry overhead: the identical serial batch with the recorder
  // live — trial/world/classify spans, outcome counters, the latency
  // histogram, and per-rank span buffers all active. The contract in
  // docs/observability.md is < 2% throughput cost when enabled (and
  // zero when disabled, asserted by the tests, so the baseline above
  // already is the "off" number).
  bool identical = true;
  auto& recorder = telemetry::Recorder::instance();
  const bool telemetry_was_on = recorder.enabled();
  recorder.enable();
  recorder.reset();
  telemetry::Recorder::bind_thread(telemetry::Track::Main, -1, "bench-main");
  const auto t_tel = std::chrono::steady_clock::now();
  std::vector<PointResult> telemetered;
  for (const auto& point : points) {
    telemetered.push_back(campaign.measure(point));
  }
  const double telemetry_sec = seconds_since(t_tel);
  const double telemetry_tps = total_trials / telemetry_sec;
  const std::size_t events_recorded = recorder.drain_events().size();
  const std::uint64_t events_dropped = recorder.dropped_events();
  recorder.reset();
  if (!telemetry_was_on) recorder.disable();
  const double telemetry_overhead =
      (serial_tps - telemetry_tps) / serial_tps;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (telemetered[i].counts != serial[i].counts) {
      identical = false;
      std::printf("  telemetry mismatch at point %zu\n", i);
    }
  }
  std::printf("%-28s %8.1f trials/sec  (%.2fs, %.1f%% overhead, "
              "%zu events)\n",
              "serial + telemetry", telemetry_tps, telemetry_sec,
              100.0 * telemetry_overhead, events_recorded);

  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> pools{1, 2, 4};
  if (hw > 4) pools.push_back(hw);

  std::ostringstream json;
  json << "{\n  \"bench\": \"campaign_throughput\",\n"
       << "  \"workload\": \"EP\",\n"
       << "  \"ranks\": " << ranks << ",\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"trials_per_point\": " << trials << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"serial_trials_per_sec\": " << serial_tps << ",\n"
       << "  \"parallel\": [";

  for (std::size_t p = 0; p < pools.size(); ++p) {
    campaign.set_max_parallel_trials(pools[p]);
    const auto before = campaign.trials_run();
    const auto t1 = std::chrono::steady_clock::now();
    const auto results = campaign.measure_many(points);
    const double sec = seconds_since(t1);
    const double tps = total_trials / sec;
    // Executions beyond the job count are watchdog-confirmation re-runs.
    const auto confirmations =
        campaign.trials_run() - before - static_cast<std::uint64_t>(total_trials);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].counts != serial[i].counts) {
        identical = false;
        std::printf("  mismatch at point %zu (%s %s): serial", i,
                    mpi::to_string(results[i].point.kind),
                    mpi::to_string(results[i].point.param));
        for (auto c : serial[i].counts) std::printf(" %u", c);
        std::printf("  pool=%zu", pools[p]);
        for (auto c : results[i].counts) std::printf(" %u", c);
        std::printf("\n");
      }
    }
    std::printf("%-28s %8.1f trials/sec  (%.2fs, speedup %.2fx, "
                "%llu confirmations)\n",
                ("measure_many(pool=" + std::to_string(pools[p]) + ")")
                    .c_str(),
                tps, sec, tps / serial_tps,
                static_cast<unsigned long long>(confirmations));
    if (p) json << ",";
    json << "\n    {\"max_parallel_trials\": " << pools[p]
         << ", \"trials_per_sec\": " << tps
         << ", \"speedup\": " << tps / serial_tps
         << ", \"timeout_confirmations\": " << confirmations << "}";
  }
  // Engine matrix: thread-per-rank (the pre-fiber substrate, "before")
  // vs resumable fibers ("after") at 1/2/4/8 lanes, at study scale
  // (128-rank rendezvous-dominated LU — the regime the substrate swap
  // targets). Per trial, the thread engine pays nranks thread
  // spawn/joins and a condition-variable wakeup per mailbox rendezvous,
  // and oversubscribes the host by lanes*nranks threads — on small hosts
  // that made lane scaling *negative*. Fiber trials are one OS thread
  // each: lanes add exactly lanes threads, rendezvous is a direct
  // context switch, and the per-trial spawn cost disappears. Speedups
  // are against the thread-engine serial baseline.
  json << "\n  ],\n  \"engine_matrix\": [";
  {
    // 128 ranks x 4 points x 6 trials: enough jobs per lane (24 over 8
    // lanes) that per-lane warmup (stack pools, allocator arenas)
    // amortizes, while one cell still finishes in seconds on one core.
    const int matrix_ranks =
        static_cast<int>(bench::env_u64("FASTFIT_BENCH_MATRIX_RANKS", 128));
    const auto matrix_max_points = static_cast<std::size_t>(
        bench::env_u64("FASTFIT_BENCH_MATRIX_POINTS", 4));
    const auto matrix_trials = static_cast<std::uint32_t>(
        bench::env_u64("FASTFIT_BENCH_MATRIX_TRIALS", 6));
    apps::LuConfig matrix_lu;
    matrix_lu.npoints = static_cast<int>(bench::env_u64(
        "FASTFIT_BENCH_MATRIX_NPOINTS",
        static_cast<std::uint64_t>(2 * matrix_ranks)));
    matrix_lu.iterations = static_cast<int>(
        bench::env_u64("FASTFIT_BENCH_MATRIX_ITERS", 64));
    const apps::MiniLU matrix_workload(matrix_lu);
    core::CampaignOptions moptions;
    moptions.nranks = matrix_ranks;
    moptions.trials_per_point = matrix_trials;
    moptions.seed = bench::bench_seed();
    moptions.snapshots = core::SnapshotMode::Off;  // substrate, not replay

    double thread_serial_tps = 0.0;
    std::vector<PointResult> matrix_baseline;
    bool first_row = true;
    const mpi::WorldEngine engines[2] = {mpi::WorldEngine::Threads,
                                         mpi::WorldEngine::Fibers};
    for (const auto engine : engines) {
      core::CampaignOptions eoptions = moptions;
      eoptions.engine = engine;
      const auto edriver = bench::profiled_driver(matrix_workload, eoptions);
      auto& ecampaign = edriver->campaign();
      auto mpoints = ecampaign.enumeration().points;
      if (mpoints.size() > matrix_max_points) {
        mpoints.resize(matrix_max_points);
      }
      const double matrix_total = static_cast<double>(mpoints.size()) *
                                  static_cast<double>(matrix_trials);
      for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        ecampaign.set_max_parallel_trials(lanes);
        const auto t_e = std::chrono::steady_clock::now();
        const auto results = ecampaign.measure_many(
            std::span<const InjectionPoint>(mpoints.data(), mpoints.size()),
            matrix_trials);
        const double sec = seconds_since(t_e);
        const double tps = sec > 0.0 ? matrix_total / sec : 0.0;
        if (engine == mpi::WorldEngine::Threads && lanes == 1) {
          thread_serial_tps = tps;
          matrix_baseline = results;
        }
        const double speedup =
            thread_serial_tps > 0.0 ? tps / thread_serial_tps : 0.0;
        // Bit-identity under parallelism is the *fiber* engine's
        // contract. Oversubscribed thread pools (lanes * nranks threads
        // on this host) can flip a borderline trial across the watchdog
        // — the exact pathology the substrate swap removes — so thread
        // rows beyond serial are reported, not enforced.
        const bool enforced = engine == mpi::WorldEngine::Fibers ||
                              lanes == 1;
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (results[i].counts != matrix_baseline[i].counts) {
            if (enforced) identical = false;
            std::printf("  engine-matrix %s at point %zu (%s, pool=%zu)\n",
                        enforced ? "mismatch"
                                 : "divergence (oversubscribed threads, "
                                   "not enforced)",
                        i, mpi::to_string(engine), lanes);
          }
        }
        std::printf("%-28s %8.1f trials/sec  (%.2fs, speedup %.2fx vs "
                    "thread serial)\n",
                    (std::string(mpi::to_string(engine)) + " pool=" +
                     std::to_string(lanes))
                        .c_str(),
                    tps, sec, speedup);
        if (!first_row) json << ",";
        first_row = false;
        json << "\n    {\"engine\": \"" << mpi::to_string(engine)
             << "\", \"lanes\": " << lanes
             << ", \"trials_per_sec\": " << tps
             << ", \"speedup\": " << speedup << "}";
        if (engine == mpi::WorldEngine::Fibers && lanes == 8) {
          std::printf("engine speedup: %.2fx fiber pool-8 vs thread serial "
                      "(target >= 3x)\n",
                      speedup);
        }
      }
    }
  }

  // Journal write-through overhead: the same serial batch with a durable
  // trial journal attached (every outcome fsync-batched to disk), then a
  // pure replay pass where every trial is served from the journal instead
  // of executed — the resume-path fast case.
  campaign.set_max_parallel_trials(1);
  const std::string journal_path = "BENCH_campaign_journal.jsonl";
  std::remove(journal_path.c_str());
  campaign.attach_journal(journal_path, core::JournalMode::Create);
  const auto t2 = std::chrono::steady_clock::now();
  const auto journaled = campaign.measure_many(points);
  const double journal_sec = seconds_since(t2);
  const double journal_tps = total_trials / journal_sec;
  const auto t3 = std::chrono::steady_clock::now();
  const auto replayed = campaign.measure_many(points);
  const double replay_sec = seconds_since(t3);
  const double replay_tps = total_trials / replay_sec;
  campaign.detach_journal();
  std::remove(journal_path.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (journaled[i].counts != serial[i].counts ||
        replayed[i].counts != serial[i].counts) {
      identical = false;
      std::printf("  journal mismatch at point %zu\n", i);
    }
  }
  std::printf("%-28s %8.1f trials/sec  (%.2fs, %.1f%% overhead vs "
              "journal-off)\n",
              "serial + journal", journal_tps, journal_sec,
              100.0 * (serial_tps - journal_tps) / serial_tps);
  std::printf("%-28s %8.1f trials/sec  (%.2fs, pure replay)\n",
              "serial + journal replay", replay_tps, replay_sec);

  // Shard scaling: the same batch split into 1/2/4 deterministic shards
  // (the --shard i/N partition), each shard measured on its own, plus
  // the `fastfit merge` reassembly cost — charged separately, since in a
  // real sharded study the shards run on N machines and only the merge
  // is serial. The wall-clock of a sharded study is max(shard) + merge.
  json << "\n  ],\n  \"shard_scaling\": [";
  bool shard_identical = true;
  for (std::size_t si = 0; si < 3; ++si) {
    const std::size_t nshards = std::size_t{1} << si;
    std::vector<std::string> fragments;
    std::vector<double> shard_secs;
    double max_shard_sec = 0.0;
    for (std::size_t index = 1; index <= nshards; ++index) {
      const core::ShardSpec spec{index, nshards};
      core::StudyResult part;
      part.stats = campaign.stats();
      // The bench measures a truncated point set; fragments only need to
      // agree among themselves, so the post-pruning count is the batch.
      part.stats.after_context = points.size();
      part.golden_digest = campaign.golden_digest();
      part.shard = spec;
      std::vector<InjectionPoint> own;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (core::shard_owns(spec, points[i])) {
          part.shard_ordinals.push_back(i);
          own.push_back(points[i]);
        }
      }
      const auto t_shard = std::chrono::steady_clock::now();
      part.measured = campaign.measure_many(own);
      const double sec = seconds_since(t_shard);
      shard_secs.push_back(sec);
      max_shard_sec = std::max(max_shard_sec, sec);
      fragments.push_back(core::to_shard_fragment(part));
    }
    const auto t_merge = std::chrono::steady_clock::now();
    const auto merged = core::merge_fragments(fragments);
    const double merge_sec = seconds_since(t_merge);
    for (std::size_t i = 0; i < merged.measured.size(); ++i) {
      if (merged.measured[i].counts != serial[i].counts) {
        shard_identical = false;
        identical = false;
        std::printf("  shard mismatch at point %zu (%zu shards)\n", i,
                    nshards);
      }
    }
    std::printf("%-28s %8.2fs max shard  (+%.3fs merge, %zu shards)\n",
                ("sharded study (" + std::to_string(nshards) + ")").c_str(),
                max_shard_sec, merge_sec, nshards);
    if (si) json << ",";
    json << "\n    {\"shards\": " << nshards << ", \"shard_seconds\": [";
    for (std::size_t i = 0; i < shard_secs.size(); ++i) {
      if (i) json << ", ";
      json << shard_secs[i];
    }
    json << "], \"max_shard_seconds\": " << max_shard_sec
         << ", \"merge_seconds\": " << merge_sec
         << ", \"merged_identical\": "
         << (shard_identical ? "true" : "false") << "}";
  }

  // Hang-heavy section: time-to-classify INF_LOOP with the deterministic
  // deadlock monitor on vs off. Root/Comm corruption on EP's rooted
  // broadcast is the densest hang source in the enumeration; the monitor
  // classifies each divergence-induced deadlock in milliseconds, while
  // the timeout-only path pays the full watchdog plus the escalated
  // re-confirmation run per hang (and risks a storm recalibration).
  std::vector<InjectionPoint> hang_points;
  for (const auto& point : campaign.enumeration().points) {
    if (point.param == mpi::Param::Root || point.param == mpi::Param::Comm) {
      hang_points.push_back(point);
    }
  }
  const auto max_hang_points = static_cast<std::size_t>(
      bench::env_u64("FASTFIT_BENCH_HANG_POINTS", 3));
  if (hang_points.size() > max_hang_points) hang_points.resize(max_hang_points);
  const auto hang_trials = static_cast<std::uint32_t>(
      bench::env_u64("FASTFIT_BENCH_HANG_TRIALS", 3));
  const auto watchdog_ms = bench::env_u64("FASTFIT_BENCH_HANG_WATCHDOG_MS",
                                          250);

  core::CampaignOptions hang_options = options;
  hang_options.trials_per_point = hang_trials;
  hang_options.watchdog = std::chrono::milliseconds(watchdog_ms);
  hang_options.watchdog_escalation = 2;

  double hang_sec[2] = {0.0, 0.0};
  std::uint64_t hang_inf[2] = {0, 0};
  std::uint64_t deterministic_deadlocks = 0;
  std::vector<PointResult> hang_results[2];
  for (int detect = 0; detect < 2 && !hang_points.empty(); ++detect) {
    hang_options.deterministic_hang_detection = detect != 0;
    const auto hang_driver = bench::profiled_driver(*workload, hang_options);
    auto& hang_campaign = hang_driver->campaign();
    const auto t4 = std::chrono::steady_clock::now();
    hang_results[detect] = hang_campaign.measure_many(hang_points);
    hang_sec[detect] = seconds_since(t4);
    for (const auto& r : hang_results[detect]) {
      hang_inf[detect] +=
          r.counts[static_cast<std::size_t>(inject::Outcome::InfLoop)];
    }
    if (detect) {
      deterministic_deadlocks =
          hang_campaign.health().deterministic_deadlocks;
    }
    std::printf("%-28s %8.2fs  (%llu INF_LOOP of %zu trials, "
                "%.1f ms/INF_LOOP)\n",
                detect ? "hang campaign, monitor on" :
                         "hang campaign, monitor off",
                hang_sec[detect],
                static_cast<unsigned long long>(hang_inf[detect]),
                hang_points.size() * static_cast<std::size_t>(hang_trials),
                hang_inf[detect] ? 1000.0 * hang_sec[detect] /
                                       static_cast<double>(hang_inf[detect])
                                 : 0.0);
  }
  for (std::size_t i = 0; i < hang_results[0].size(); ++i) {
    if (hang_results[0][i].counts != hang_results[1][i].counts) {
      identical = false;
      std::printf("  hang-campaign mismatch at point %zu (monitor off vs "
                  "on)\n", i);
    }
  }
  const double hang_total =
      static_cast<double>(hang_points.size()) * hang_trials;
  const double off_ms_per_inf =
      hang_inf[0] ? 1000.0 * hang_sec[0] / static_cast<double>(hang_inf[0])
                  : 0.0;
  const double on_ms_per_inf =
      hang_inf[1] ? 1000.0 * hang_sec[1] / static_cast<double>(hang_inf[1])
                  : 0.0;
  const double classify_speedup =
      on_ms_per_inf > 0.0 ? off_ms_per_inf / on_ms_per_inf : 0.0;
  if (hang_inf[1] > 0) {
    std::printf("time-to-classify speedup: %.1fx (%llu deterministic "
                "deadlocks)\n",
                classify_speedup,
                static_cast<unsigned long long>(deterministic_deadlocks));
  }

  // Prefix-replay snapshots on a wide study (default: 32-rank LU at a
  // size where the computation dominates thread spawn). From-scratch
  // trials pay the whole pre-injection prefix in live rendezvous; with
  // snapshots on, the recording is built once and every trial clones
  // it, executing only the post-injection suffix. Two point subsets:
  // "mix" strides across the whole enumeration (the study's blend of
  // early and late cuts — early-cut trials still run their suffix live,
  // so Amdahl bounds the blended speedup), and "suffix" takes the
  // End-phase (verification) points whose prefix is the entire
  // computation — the trials the fast path exists for.
  const int snap_ranks =
      static_cast<int>(bench::env_u64("FASTFIT_BENCH_SNAP_RANKS", 32));
  const auto snap_max_points = static_cast<std::size_t>(
      bench::env_u64("FASTFIT_BENCH_SNAP_POINTS", 6));
  const auto snap_trials = static_cast<std::uint32_t>(
      bench::env_u64("FASTFIT_BENCH_SNAP_TRIALS", 8));
  apps::LuConfig snap_lu_config;
  // Small per-rank grid, many iterations: prefix time is rendezvous-
  // dominated (what replay eliminates), not compute-dominated (what it
  // must re-run).
  snap_lu_config.npoints = static_cast<int>(bench::env_u64(
      "FASTFIT_BENCH_SNAP_NPOINTS",
      static_cast<std::uint64_t>(4 * snap_ranks)));
  snap_lu_config.iterations =
      static_cast<int>(bench::env_u64("FASTFIT_BENCH_SNAP_ITERS", 64));
  const apps::MiniLU snap_workload(snap_lu_config);

  core::CampaignOptions snap_options;
  snap_options.nranks = snap_ranks;
  snap_options.trials_per_point = snap_trials;
  snap_options.seed = bench::bench_seed();

  struct SnapSubset {
    const char* name;
    std::vector<InjectionPoint> points{};
    double sec[3] = {0.0, 0.0, 0.0};
    double tps[3] = {0.0, 0.0, 0.0};
    std::vector<core::PointResult> results[3] = {};
  };
  SnapSubset snap_subsets[2] = {{"mix"}, {"suffix"}};
  struct SnapMode {
    const char* mode;
    core::SnapshotMode setting;
    core::SnapshotCache::Stats stats{};
    long rss_kb = 0;
  };
  SnapMode snap_modes[3] = {{"off", core::SnapshotMode::Off},
                            {"on", core::SnapshotMode::On},
                            {"auto", core::SnapshotMode::Auto}};
  for (std::size_t m = 0; m < 3; ++m) {
    snap_options.snapshots = snap_modes[m].setting;
    const auto snap_driver =
        bench::profiled_driver(snap_workload, snap_options);
    auto& snap_campaign = snap_driver->campaign();
    if (snap_subsets[0].points.empty()) {
      const auto& all = snap_campaign.enumeration().points;
      const std::size_t stride =
          std::max<std::size_t>(1, all.size() / snap_max_points);
      for (std::size_t i = 0;
           i < all.size() && snap_subsets[0].points.size() < snap_max_points;
           i += stride) {
        snap_subsets[0].points.push_back(all[i]);
      }
      for (const auto& point : all) {
        if (point.phase == trace::ExecPhase::End &&
            snap_subsets[1].points.size() < snap_max_points) {
          snap_subsets[1].points.push_back(point);
        }
      }
    }
    for (auto& subset : snap_subsets) {
      const auto t5 = std::chrono::steady_clock::now();
      subset.results[m] = snap_campaign.measure_many(
          std::span<const InjectionPoint>(subset.points.data(),
                                          subset.points.size()),
          snap_trials);
      subset.sec[m] = seconds_since(t5);
      const double total =
          static_cast<double>(subset.points.size()) * snap_trials;
      subset.tps[m] = subset.sec[m] > 0.0 ? total / subset.sec[m] : 0.0;
    }
    snap_modes[m].stats = snap_campaign.snapshot_stats();
    snap_modes[m].rss_kb = peak_rss_kb();
    std::printf("%-28s mix %6.2fs %7.1f t/s | suffix %6.2fs %7.1f t/s  "
                "(%llu clones, %llu fallbacks, rss %ld KiB)\n",
                ("snapshots " + std::string(snap_modes[m].mode) + " (LU, " +
                 std::to_string(snap_ranks) + "r)")
                    .c_str(),
                snap_subsets[0].sec[m], snap_subsets[0].tps[m],
                snap_subsets[1].sec[m], snap_subsets[1].tps[m],
                static_cast<unsigned long long>(snap_modes[m].stats.clones),
                static_cast<unsigned long long>(
                    snap_modes[m].stats.fallbacks),
                snap_modes[m].rss_kb);
  }
  bool snap_identical = true;
  for (auto& subset : snap_subsets) {
    for (std::size_t m = 1; m < 3; ++m) {
      for (std::size_t i = 0; i < subset.points.size(); ++i) {
        if (subset.results[m][i].counts != subset.results[0][i].counts) {
          snap_identical = false;
          identical = false;
          std::printf("  snapshot mismatch: %s point %zu (%s vs off)\n",
                      subset.name, i, snap_modes[m].mode);
        }
      }
    }
  }
  const double snap_speedup_mix =
      snap_subsets[0].sec[1] > 0.0
          ? snap_subsets[0].sec[0] / snap_subsets[0].sec[1]
          : 0.0;
  const double snap_speedup_suffix =
      snap_subsets[1].sec[1] > 0.0
          ? snap_subsets[1].sec[0] / snap_subsets[1].sec[1]
          : 0.0;
  std::printf("snapshot replay speedup: %.1fx study mix, %.1fx "
              "suffix-dominated trials (target >= 10x), counts %s\n",
              snap_speedup_mix, snap_speedup_suffix,
              snap_identical ? "identical" : "DIVERGED");

  json << "\n  ],\n  \"snapshots\": {"
       << "\"workload\": \"LU\", \"ranks\": " << snap_ranks
       << ", \"lu_npoints\": " << snap_lu_config.npoints
       << ", \"lu_iterations\": " << snap_lu_config.iterations
       << ", \"trials_per_point\": " << snap_trials
       << ", \"replay_speedup_mix\": " << snap_speedup_mix
       << ", \"replay_speedup_suffix\": " << snap_speedup_suffix
       << ", \"identical\": " << (snap_identical ? "true" : "false")
       << ",\n    \"modes\": [";
  for (std::size_t m = 0; m < 3; ++m) {
    const auto& run = snap_modes[m];
    const auto& s = run.stats;
    const double lookups =
        static_cast<double>(s.hits) + static_cast<double>(s.snapshot_builds);
    if (m) json << ",";
    json << "\n      {\"mode\": \"" << run.mode << "\"";
    for (const auto& subset : snap_subsets) {
      json << ", \"" << subset.name << "_points\": " << subset.points.size()
           << ", \"" << subset.name << "_seconds\": " << subset.sec[m]
           << ", \"" << subset.name
           << "_trials_per_sec\": " << subset.tps[m];
    }
    json << ", \"recording_builds\": " << s.recording_builds
         << ", \"snapshot_builds\": " << s.snapshot_builds
         << ", \"cache_hits\": " << s.hits
         << ", \"cache_hit_rate\": "
         << (lookups > 0.0 ? static_cast<double>(s.hits) / lookups : 0.0)
         << ", \"clones\": " << s.clones
         << ", \"evictions\": " << s.evictions
         << ", \"fallbacks\": " << s.fallbacks
         << ", \"recording_bytes\": " << s.recording_bytes
         << ", \"cached_bytes\": " << s.cached_bytes
         << ", \"peak_rss_kb\": " << run.rss_kb << "}";
  }
  json << "\n    ]},\n  \"telemetry\": {"
       << "\"off_trials_per_sec\": " << serial_tps
       << ", \"on_trials_per_sec\": " << telemetry_tps
       << ", \"overhead\": " << telemetry_overhead
       << ", \"events_recorded\": " << events_recorded
       << ", \"events_dropped\": " << events_dropped << "},\n"
       << "  \"journal\": {"
       << "\"off_trials_per_sec\": " << serial_tps
       << ", \"on_trials_per_sec\": " << journal_tps
       << ", \"replay_trials_per_sec\": " << replay_tps
       << ", \"write_through_overhead\": "
       << (serial_tps - journal_tps) / serial_tps << "},\n"
       << "  \"hang_detection\": {"
       << "\"points\": " << hang_points.size()
       << ", \"trials_per_point\": " << hang_trials
       << ", \"watchdog_ms\": " << watchdog_ms
       << ", \"inf_loops\": " << hang_inf[1]
       << ", \"deterministic_deadlocks\": " << deterministic_deadlocks
       << ",\n    \"off\": {\"seconds\": " << hang_sec[0]
       << ", \"trials_per_sec\": "
       << (hang_sec[0] > 0.0 ? hang_total / hang_sec[0] : 0.0)
       << ", \"ms_per_inf_loop\": " << off_ms_per_inf << "}"
       << ",\n    \"on\": {\"seconds\": " << hang_sec[1]
       << ", \"trials_per_sec\": "
       << (hang_sec[1] > 0.0 ? hang_total / hang_sec[1] : 0.0)
       << ", \"ms_per_inf_loop\": " << on_ms_per_inf << "}"
       << ",\n    \"time_to_classify_speedup\": " << classify_speedup
       << "},\n"
       << "  \"results_identical_to_serial\": "
       << (identical ? "true" : "false") << "\n}\n";

  std::printf("results identical to serial: %s\n", identical ? "yes" : "NO");
  core::write_file("BENCH_campaign_throughput.json", json.str());
  std::printf("wrote BENCH_campaign_throughput.json\n");
  return identical ? 0 : 1;
}

// Ablation: is FastFIT tied to the random forest?
//
// The paper claims it is not ("It can be replaced by other machine
// learning algorithms, if required", Sec IV-D). This bench swaps the
// model on the Fig-13-style error-rate-level prediction task and compares
// accuracy across random forest, k-NN, Gaussian naive Bayes, and the
// majority baseline.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/ml_loop.hpp"
#include "ml/classifier.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Ablation — prediction model comparison",
      "Sec IV-D: FastFIT is not tied to the random forest algorithm",
      "error-rate-level prediction (4 even levels) on pooled buffer-fault "
      "campaign data; 5 random train/test splits per model");

  // Same dataset recipe as the Figs 12/13 bench.
  const std::uint32_t trials =
      std::max<std::uint32_t>(bench::bench_trials(), 16);
  const std::size_t per_workload = 50;
  const auto thresholds = stats::even_thresholds(4);
  ml::Dataset data(4);
  for (const std::string name : {"miniMD", "IS", "FT", "MG", "LU"}) {
    const auto workload = apps::make_workload(name);
    const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
    auto& campaign = driver->campaign();
    auto dense = core::enumerate_points_semantic_only(campaign.profiler());
    std::vector<core::InjectionPoint> points;
    for (const auto& p : dense.points) {
      if (p.param == mpi::Param::SendBuf) points.push_back(p);
    }
    RngStream rng(bench::bench_seed(), "ablation-sample", fnv1a(name));
    rng.shuffle(points);
    if (points.size() > per_workload) points.resize(per_workload);
    for (const auto& p : points) {
      const auto r = campaign.measure(p, trials);
      data.add(p.features(),
               core::label_of(r, core::LabelMode::ErrorRateLevel,
                              thresholds));
    }
  }
  std::printf("dataset: %zu labelled points\n\n", data.size());

  std::printf("%s%s%s\n", pad("model", 16).c_str(),
              pad("accuracy", 12).c_str(), "per-round accuracies");
  for (const auto& name : ml::classifier_names()) {
    ml::ClassifierConfig config;
    config.seed = bench::bench_seed();
    const auto rounds =
        ml::repeated_random_split_eval(name, config, data, 5);
    double mean = 0.0;
    std::string detail;
    for (const auto& matrix : rounds) {
      mean += matrix.accuracy();
      detail += percent(matrix.accuracy(), 0) + " ";
    }
    std::printf("%s%s%s\n", pad(name, 16).c_str(),
                pad(percent(mean / 5.0), 12).c_str(), detail.c_str());
  }
  std::printf(
      "\nexpected shape: the discriminative models (forest, k-NN) clearly "
      "beat the majority baseline and track each other — the architecture "
      "is model-agnostic. Naive Bayes may land at baseline level: its "
      "feature-independence assumption is a poor fit for the correlated "
      "application features, which is itself a finding about why the "
      "paper's forest choice is sensible\n");
  return 0;
}

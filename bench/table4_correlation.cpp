// Table IV: Eq-1 correlation between application-specific features and
// the error-rate level (LAMMPS).
//
// Paper values: Init 0.56, Input 0.69, Compute 0.30, End 0.49, ErrHdl
// 0.64, Non-ErrHdl 0.36, nInv 0.41, nDiffGraph 0.47, StackDepth 0.37.
// The headline shape: the input/init phases and the error-handling flag
// correlate strongest with sensitivity; 0.5 means "no effect".

#include <cstdio>

#include "bench_common.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Table IV — feature vs error-rate-level correlation (Eq. 1)",
      "Correlation between application specific features and error rate "
      "level (LAMMPS)",
      "miniMD; Eq-1 rescales Pearson onto [0,1] with 0.5 = no effect");

  // The paper's campaign injects into the data buffer (Sec V-C), so the
  // correlation is computed over buffer faults: parameter-handle faults
  // would swamp the application features with the parameter identity.
  const auto all_results = bench::measure_all_points("miniMD");
  std::vector<core::PointResult> results;
  for (const auto& r : all_results) {
    if (r.point.param == mpi::Param::SendBuf ||
        r.point.param == mpi::Param::RecvBuf) {
      results.push_back(r);
    }
  }
  const auto correlations =
      core::feature_correlations(results, stats::even_thresholds(4));

  std::printf("%s%s\n", pad("feature", 16).c_str(), "Eq-1 correlation");
  for (const auto& [name, value] : correlations) {
    std::printf("%s%.2f\n", pad(name, 16).c_str(), value);
  }
  std::printf(
      "\nexpected shape: Input/Init phases and ErrHdl deviate most from "
      "0.5 (strong indicators); ErrHdl and Non-ErrHdl mirror each other "
      "around 0.5\n");
  return 0;
}

// Ablation: how many trials per injection point are enough?
//
// Sec III-A claims "100 random fault injection tests are sufficient to
// cover as many cases as it might appear". This bench sweeps the trial
// count on a mid-sensitivity injection point and reports the error-rate
// estimate with its 95% Wilson interval: the interval should tighten with
// sqrt(T) and stabilize around the asymptotic rate well before T = 100.

#include <cstdio>

#include "apps/minimd.hpp"
#include "bench_common.hpp"
#include "stats/interval.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Ablation — trials-per-point convergence",
      "Sec III-A: 100 fault injection tests per point are sufficient",
      "miniMD thermostat allreduce, data-buffer faults, 95% Wilson "
      "intervals");

  apps::MdConfig config;
  config.steps = 16;
  apps::MiniMD workload(config);
  const auto driver = bench::profiled_driver(workload, bench::bench_campaign_options());
  auto& campaign = driver->campaign();

  // A mid-sensitivity sendbuf point (probe a few, pick the most mid-range).
  const core::InjectionPoint* chosen = nullptr;
  double best_spread = -1.0;
  for (const auto& point : campaign.enumeration().points) {
    if (point.param != mpi::Param::SendBuf) continue;
    if (point.kind != mpi::CollectiveKind::Allreduce) continue;
    const double rate = campaign.measure(point, 16).error_rate();
    const double spread = rate * (1.0 - rate);
    if (spread > best_spread) {
      best_spread = spread;
      chosen = &point;
    }
  }
  if (chosen == nullptr) {
    std::printf("no allreduce sendbuf point found\n");
    return 1;
  }
  std::printf("point: %s %s at %s\n\n", mpi::to_string(chosen->kind),
              to_string(chosen->param), chosen->site_location.c_str());

  std::printf("%s%s%s%s\n", pad("trials", 10).c_str(),
              pad("error rate", 14).c_str(), pad("95% CI", 22).c_str(),
              "CI width");
  const std::uint32_t max_trials =
      static_cast<std::uint32_t>(bench::env_u64("FASTFIT_BENCH_MAX_TRIALS",
                                                160));
  for (std::uint32_t trials = 5; trials <= max_trials; trials *= 2) {
    const auto result = campaign.measure(*chosen, trials);
    const std::size_t errors =
        result.trials -
        result.counts[static_cast<std::size_t>(inject::Outcome::Success)];
    const auto ci = stats::wilson_interval(errors, result.trials);
    std::printf("%s%s%s%.3f\n", pad(std::to_string(trials), 10).c_str(),
                pad(percent(result.error_rate()), 14).c_str(),
                pad("[" + percent(ci.lo) + ", " + percent(ci.hi) + "]", 22)
                    .c_str(),
                ci.width());
  }
  std::printf(
      "\nexpected shape: the interval shrinks ~1/sqrt(T); by T≈100 the "
      "estimate is stable to within one of the paper's sensitivity levels, "
      "supporting the 100-trials-per-point choice\n");
  return 0;
}

// Extension: point-to-point sensitivity (the paper's future work).
//
// Sec VIII: "Even though these techniques were tested only on the
// collective operations in this paper, it can be applied to other
// programming elements of an HPC application, which is a part of our
// future work." This bench runs that study: the same pruning and fault
// model applied to the halo-exchange sends/receives of MG and LU, with
// the collective results alongside for comparison.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/p2p_study.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Extension — point-to-point fault injection (paper future work)",
      "Sec VIII: applying FastFIT to other programming elements",
      "MG and LU halo exchanges vs their collectives, single-bit faults");

  for (const std::string name : {"MG", "LU"}) {
    const auto workload = apps::make_workload(name);
    const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
    auto& campaign = driver->campaign();

    // Collective baseline (buffer faults).
    std::vector<core::PointResult> coll;
    for (const auto& point : campaign.enumeration().points) {
      if (point.param == mpi::Param::SendBuf) {
        coll.push_back(campaign.measure(point));
      }
    }

    // Point-to-point study.
    const auto e = core::enumerate_p2p_points(campaign.profiler());
    std::printf("%s: p2p exploration space %llu -> %llu (semantic) -> %llu "
                "(context); %zu equivalence classes\n",
                name.c_str(),
                static_cast<unsigned long long>(e.stats.total_points),
                static_cast<unsigned long long>(e.stats.after_semantic),
                static_cast<unsigned long long>(e.stats.after_context),
                e.stats.equivalence_classes);
    // Subsample the surviving points to bound wall clock (hung-trial cost
    // is one watchdog each; tag/peer faults hang often by design).
    auto points = e.points;
    RngStream rng(bench::bench_seed(), "p2p-sample", fnv1a(name));
    rng.shuffle(points);
    const std::size_t cap =
        static_cast<std::size_t>(bench::env_u64("FASTFIT_BENCH_P2P_POINTS",
                                                80));
    if (points.size() > cap) points.resize(cap);
    std::vector<core::P2pPointResult> p2p;
    for (const auto& point : points) {
      p2p.push_back(
          core::measure_p2p(campaign, point, bench::bench_trials()));
    }

    std::vector<std::pair<std::string,
                          std::array<double, inject::kNumOutcomes>>>
        rows;
    rows.emplace_back("collective buf", core::outcome_distribution(coll));
    rows.emplace_back("p2p buffer",
                      core::p2p_outcome_distribution(
                          p2p, std::nullopt, mpi::P2pParam::Buffer));
    rows.emplace_back("p2p count",
                      core::p2p_outcome_distribution(
                          p2p, std::nullopt, mpi::P2pParam::Count));
    rows.emplace_back("p2p datatype",
                      core::p2p_outcome_distribution(
                          p2p, std::nullopt, mpi::P2pParam::Datatype));
    rows.emplace_back("p2p peer",
                      core::p2p_outcome_distribution(
                          p2p, std::nullopt, mpi::P2pParam::Peer));
    rows.emplace_back("p2p tag",
                      core::p2p_outcome_distribution(
                          p2p, std::nullopt, mpi::P2pParam::Tag));
    std::printf("%s\n", core::render_outcome_table(rows).c_str());
  }

  std::printf(
      "expected shape: p2p buffer faults are even milder than collective "
      "buffer faults (one halo cell vs a reduced quantity); p2p "
      "peer/tag/count faults are severe (starved receives -> INF_LOOP, "
      "invalid arguments -> MPI_ERR) — the pruning machinery transfers "
      "unchanged, supporting the paper's generality claim\n");
  return 0;
}

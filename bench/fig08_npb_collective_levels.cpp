// Figure 8: NPB benchmarks' response in error-rate levels, per collective
// kind, using the skewed low (<15%) / med (15-85%) / high (>85%) scheme.
//
// Paper findings to compare against: faulty MPI_Reduce and MPI_Barrier are
// the most damaging, MPI_Alltoallv the least; the variance across
// collectives motivates adaptive (per-collective) fault tolerance.

#include <cstdio>

#include "bench_common.hpp"
#include "stats/levels.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 8 — NPB response in error-rate levels per collective",
      "NPB benchmark's response in error rate levels, when faults are "
      "injected into NPB's MPI collectives",
      "levels: low < 15%, med 15-85%, high > 85% of a point's trials "
      "causing error responses");

  // Pool the points of all four kernels, then split per collective kind.
  // The campaign mix follows Sec V-C: data-buffer faults where a data
  // buffer exists; MPI_Barrier (no buffer) gets its communicator
  // parameter — which is what makes faulty barriers lethal in Fig 8.
  std::vector<core::PointResult> pooled;
  for (const std::string name : {"IS", "FT", "MG", "LU"}) {
    for (auto& r : bench::measure_all_points(name)) {
      const bool buffer_fault = r.point.param == mpi::Param::SendBuf;
      const bool barrier_fault =
          r.point.kind == mpi::CollectiveKind::Barrier &&
          r.point.param == mpi::Param::Comm;
      if (buffer_fault || barrier_fault) pooled.push_back(std::move(r));
    }
  }

  const auto thresholds = stats::skewed_low_med_high();
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (mpi::CollectiveKind kind : core::kinds_present(pooled)) {
    rows.emplace_back(mpi::to_string(kind),
                      core::level_distribution(pooled, kind, thresholds));
  }
  std::printf("%s\n",
              core::render_level_table(rows, {"low", "med", "high"}).c_str());
  std::printf(
      "expected shape: MPI_Reduce and MPI_Barrier skew toward med/high; "
      "MPI_Alltoallv is the least damaging\n");
  return 0;
}

// Microbenchmarks (google-benchmark): the substrate costs that set the
// wall-clock budget of a fault-injection campaign — collective latency by
// algorithm, world spin-up, one full injected trial, and random-forest
// training. These are the ablation knobs DESIGN.md calls out: campaign
// time is dominated by trials-per-point x (golden wall time + watchdog
// share of hung trials).

#include <benchmark/benchmark.h>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "ml/random_forest.hpp"
#include "minimpi/mpi.hpp"
#include "support/rng.hpp"

namespace {

using namespace fastfit;
using namespace std::chrono_literals;

mpi::WorldOptions world_opts(int n) {
  mpi::WorldOptions o;
  o.nranks = n;
  o.watchdog = 10000ms;
  return o;
}

void BM_WorldSpinUp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World world(world_opts(n));
    benchmark::DoNotOptimize(world.run([](mpi::Mpi&) {}));
  }
}
BENCHMARK(BM_WorldSpinUp)->Arg(4)->Arg(16)->Arg(32);

void BM_Barrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int reps = 32;
  for (auto _ : state) {
    mpi::World world(world_opts(n));
    world.run([reps](mpi::Mpi& mpi) {
      for (int i = 0; i < reps; ++i) mpi.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
}
BENCHMARK(BM_Barrier)->Arg(4)->Arg(16)->Arg(32);

void BM_Allreduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto count = static_cast<std::int32_t>(state.range(1));
  const int reps = 16;
  for (auto _ : state) {
    mpi::World world(world_opts(n));
    world.run([count, reps](mpi::Mpi& mpi) {
      mpi::RegisteredBuffer<double> send(
          mpi.registry(), static_cast<std::size_t>(count), 1.0);
      mpi::RegisteredBuffer<double> recv(mpi.registry(),
                                         static_cast<std::size_t>(count));
      for (int i = 0; i < reps; ++i) {
        mpi.allreduce(send.data(), recv.data(), count, mpi::kDouble,
                      mpi::kSum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
  state.SetBytesProcessed(state.iterations() * reps *
                          static_cast<std::int64_t>(count) * 8 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Allreduce)->Args({8, 16})->Args({8, 1024})->Args({32, 16});

void BM_Alltoall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int reps = 8;
  for (auto _ : state) {
    mpi::World world(world_opts(n));
    world.run([n, reps](mpi::Mpi& mpi) {
      mpi::RegisteredBuffer<double> send(
          mpi.registry(), static_cast<std::size_t>(8 * n), 1.0);
      mpi::RegisteredBuffer<double> recv(mpi.registry(),
                                         static_cast<std::size_t>(8 * n));
      for (int i = 0; i < reps; ++i) {
        mpi.alltoall(send.data(), 8, mpi::kDouble, recv.data(), 8,
                     mpi::kDouble);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
}
BENCHMARK(BM_Alltoall)->Arg(8)->Arg(16);

void BM_GoldenRun(benchmark::State& state) {
  const auto workload = apps::make_workload("LU");
  for (auto _ : state) {
    trace::ContextRegistry contexts(8);
    benchmark::DoNotOptimize(
        apps::run_job(*workload, world_opts(8), nullptr, contexts));
  }
}
BENCHMARK(BM_GoldenRun);

void BM_InjectedTrial(benchmark::State& state) {
  const auto workload = apps::make_workload("LU");
  core::CampaignOptions options;
  options.nranks = 8;
  options.trials_per_point = 1;
  const auto driver = bench::profiled_driver(*workload, options);
  auto& campaign = driver->campaign();
  const auto& point = campaign.enumeration().points.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.measure(point, 1));
  }
}
BENCHMARK(BM_InjectedTrial);

void BM_ForestTrain(benchmark::State& state) {
  ml::Dataset data(4);
  RngStream rng(1, "bench-data");
  for (int i = 0; i < 400; ++i) {
    ml::FeatureVec x{};
    for (auto& v : x) v = rng.uniform() * 10;
    data.add(x, rng.index(4));
  }
  ml::ForestConfig config;
  config.n_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::RandomForest::train(data, config));
  }
}
BENCHMARK(BM_ForestTrain)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

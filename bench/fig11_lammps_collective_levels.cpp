// Figure 11: LAMMPS' response in error-rate levels per collective kind
// (skewed low/med/high scheme).
//
// Paper findings to compare against: faulty MPI_Barrier is lethal (large
// med/high shares); MPI_Allreduce — despite being >84% of LAMMPS'
// collective traffic — shows a low error rate; other collectives are not
// skewed toward one direction.

#include <cstdio>

#include "bench_common.hpp"
#include "profile/queries.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 11 — LAMMPS response in error-rate levels per collective",
      "LAMMPS benchmark's response in error rate levels, when faults are "
      "injected into LAMMPS' MPI collectives",
      "miniMD; levels: low < 15%, med 15-85%, high > 85%");

  // Campaign mix as in Fig 8: buffer faults for data collectives, the
  // communicator parameter for MPI_Barrier.
  std::vector<core::PointResult> results;
  for (auto& r : bench::measure_all_points("miniMD")) {
    const bool buffer_fault = r.point.param == mpi::Param::SendBuf;
    const bool barrier_fault = r.point.kind == mpi::CollectiveKind::Barrier &&
                               r.point.param == mpi::Param::Comm;
    if (buffer_fault || barrier_fault) results.push_back(std::move(r));
  }
  const auto thresholds = stats::skewed_low_med_high();
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (mpi::CollectiveKind kind : core::kinds_present(results)) {
    rows.emplace_back(mpi::to_string(kind),
                      core::level_distribution(results, kind, thresholds));
  }
  std::printf("%s\n",
              core::render_level_table(rows, {"low", "med", "high"}).c_str());
  std::printf(
      "expected shape: MPI_Barrier skews to med/high (lethal); "
      "MPI_Allreduce has a large low share despite dominating the traffic\n");
  return 0;
}

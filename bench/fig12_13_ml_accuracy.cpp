// Figures 12 and 13 (and Fig 4): accuracy of the ML-based sensitivity
// prediction.
//
// Following Sec V-D, the training set (measured injection points with
// their features and responses) is randomly divided into train/test
// halves five times; we report the averaged per-class prediction accuracy
// for error types (Fig 12: paper reports SUCCESS 86%, APP_DETECTED 80%,
// SEG_FAULT 47%, WRONG_ANS 75%) and the overall accuracy for 2- and
// 3-level error-rate prediction (Fig 13: >80% for 2 levels; 76% low /
// 66% high for 3 levels). One learned decision tree is printed as the
// paper's Fig 4 example.

#include <cstdio>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/ml_loop.hpp"
#include "support/rng.hpp"
#include "ml/random_forest.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figures 12 & 13 (+ Fig 4) — ML prediction accuracy",
      "Error type prediction accuracy; error rate level prediction "
      "accuracy (2 and 3 levels); an example of a decision tree",
      "forest trained on a pooled miniMD + NPB campaign dataset; 5 random "
      "train/test divisions");

  // Build the labelled dataset following the paper's campaign protocol
  // (Sec V-C: faults go into the data buffer): one injection point per
  // surviving (site, stack) with the fault in the send data buffer. The
  // six application features identify such points uniquely; mixing
  // parameter-handle faults in would force identical feature vectors to
  // carry conflicting labels. Extra trials per point de-noise the labels.
  // The accuracy study trains on campaign data, so context pruning is NOT
  // applied here: every invocation of the representative ranks is a
  // labelled sample. A per-workload subsample bounds the wall clock.
  const std::uint32_t trials =
      std::max<std::uint32_t>(bench::bench_trials(), 16);
  const std::size_t per_workload =
      static_cast<std::size_t>(bench::env_u64("FASTFIT_BENCH_ML_POINTS", 60));
  std::vector<core::PointResult> measured;
  for (const std::string name : {"miniMD", "IS", "FT", "MG", "LU"}) {
    const auto workload = apps::make_workload(name);
    const auto driver = bench::profiled_driver(*workload, bench::bench_campaign_options());
    auto& campaign = driver->campaign();
    auto dense = core::enumerate_points_semantic_only(campaign.profiler());
    std::vector<core::InjectionPoint> buffer_points;
    for (const auto& point : dense.points) {
      if (point.param == mpi::Param::SendBuf) buffer_points.push_back(point);
    }
    RngStream rng(bench::bench_seed(), "ml-sample", fnv1a(name));
    rng.shuffle(buffer_points);
    if (buffer_points.size() > per_workload) {
      buffer_points.resize(per_workload);
    }
    for (const auto& point : buffer_points) {
      measured.push_back(campaign.measure(point, trials));
    }
  }
  std::printf("dataset: %zu measured injection points, %u trials each\n\n",
              measured.size(), trials);

  // --- Fig 12: error-type prediction -----------------------------------
  {
    ml::Dataset data(inject::kNumOutcomes);
    for (const auto& r : measured) {
      data.add(r.point.features(),
               core::label_of(r, core::LabelMode::ErrorType, {}));
    }
    ml::ForestConfig config;
    config.n_trees = 48;
    config.seed = bench::bench_seed();
    const auto rounds = ml::repeated_random_split_eval(data, config, 5);
    std::vector<double> recall(inject::kNumOutcomes, 0.0);
    std::vector<double> support(inject::kNumOutcomes, 0.0);
    double accuracy = 0.0;
    for (const auto& matrix : rounds) {
      accuracy += matrix.accuracy();
      for (std::size_t c = 0; c < inject::kNumOutcomes; ++c) {
        recall[c] += matrix.recall(c);
        support[c] += static_cast<double>(matrix.support(c));
      }
    }
    std::printf("Fig 12 — per-error-type prediction accuracy (recall, mean "
                "of 5 splits):\n");
    for (std::size_t c = 0; c < inject::kNumOutcomes; ++c) {
      if (support[c] == 0.0) continue;
      std::printf("  %s%s (test support %.0f)\n",
                  pad(inject::outcome_names()[c], 14).c_str(),
                  percent(recall[c] / 5.0).c_str(), support[c] / 5.0);
    }
    std::printf("  overall accuracy: %s  (paper: SUCCESS 86%%, "
                "APP_DETECTED 80%%, SEG_FAULT 47%%, WRONG_ANS 75%%)\n\n",
                percent(accuracy / 5.0).c_str());
    std::printf("confusion matrix of split 0:\n%s\n",
                rounds.front().render(inject::outcome_names()).c_str());
  }

  // --- Fig 13: error-rate-level prediction (2 and 3 levels) -------------
  for (std::size_t levels : {2u, 3u}) {
    const auto thresholds = stats::even_thresholds(levels);
    ml::Dataset data(levels);
    for (const auto& r : measured) {
      data.add(r.point.features(),
               core::label_of(r, core::LabelMode::ErrorRateLevel,
                              thresholds));
    }
    ml::ForestConfig config;
    config.n_trees = 48;
    config.seed = bench::bench_seed() + levels;
    const auto rounds = ml::repeated_random_split_eval(data, config, 5);
    double accuracy = 0.0;
    std::vector<double> recall(levels, 0.0);
    for (const auto& matrix : rounds) {
      accuracy += matrix.accuracy();
      for (std::size_t c = 0; c < levels; ++c) recall[c] += matrix.recall(c);
    }
    const auto names = stats::level_names(levels);
    std::printf("Fig 13 — %zu-level error-rate prediction accuracy:\n",
                levels);
    std::printf("  overall: %s", percent(accuracy / 5.0).c_str());
    for (std::size_t c = 0; c < levels; ++c) {
      std::printf("  %s: %s", names[c].c_str(),
                  percent(recall[c] / 5.0).c_str());
    }
    std::printf("\n  (paper: 2 levels > 80%% overall; 3 levels: low > 76%%, "
                "high > 66%%)\n\n");
  }

  // --- Fig 4: an example decision tree ----------------------------------
  {
    const auto thresholds = stats::even_thresholds(4);
    ml::Dataset data(4);
    for (const auto& r : measured) {
      data.add(r.point.features(),
               core::label_of(r, core::LabelMode::ErrorRateLevel,
                              thresholds));
    }
    ml::ForestConfig config;
    config.n_trees = 8;
    config.max_depth = 4;  // keep the printed example legible, like Fig 4
    config.seed = bench::bench_seed();
    const auto forest = ml::RandomForest::train(data, config);
    std::printf("Fig 4 — an example learned decision tree (4 sensitivity "
                "levels):\n%s\n",
                forest.render_tree(0, stats::level_names(4)).c_str());
    const auto importance = forest.feature_importance();
    std::printf("feature importance (impurity decrease):\n");
    for (std::size_t f = 0; f < ml::kNumFeatures; ++f) {
      std::printf("  %s%s\n",
                  pad(to_string(static_cast<ml::Feature>(f)), 12).c_str(),
                  percent(importance[f]).c_str());
    }
  }
  return 0;
}

// Figure 7: NPB benchmarks' response by error type when faults are
// injected into their MPI collectives.
//
// Panel (a) restricts injection to the data buffer (Sec V-C's default);
// panel (b) spreads injections across every input parameter (Sec II's
// basic methodology, which is what produces the MPI_ERR / SEG_FAULT-rich
// mix of the published figure). The headline shapes to check against the
// paper: INF_LOOP is the rarest response everywhere, MPI_ERR is the
// signature of FT, SEG_FAULT is a very common response (second to
// SUCCESS), and APP_DETECTED stays small for NPB.

#include <cstdio>

#include "bench_common.hpp"

using namespace fastfit;

int main() {
  bench::banner(
      "Figure 7 — NPB response in error types",
      "NPB benchmark's response in error types, when faults are injected "
      "into NPB's MPI collectives",
      "mini-NPB kernels (IS, FT, MG, LU) on MiniMPI");

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      buffer_rows;
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      all_rows;
  for (const std::string name : {"IS", "FT", "MG", "LU"}) {
    const auto results = bench::measure_all_points(name);
    std::vector<core::PointResult> buffer_only;
    for (const auto& r : results) {
      if (r.point.param == mpi::Param::SendBuf ||
          r.point.param == mpi::Param::RecvBuf) {
        buffer_only.push_back(r);
      }
    }
    buffer_rows.emplace_back(name, core::outcome_distribution(buffer_only));
    all_rows.emplace_back(name, core::outcome_distribution(results));
  }

  std::printf("(a) data-buffer injections only\n%s\n",
              core::render_outcome_table(buffer_rows).c_str());
  std::printf("(b) all input parameters\n%s\n",
              core::render_outcome_table(all_rows).c_str());
  std::printf(
      "expected shape (panel b vs paper Fig 7): INF_LOOP rarest; FT has the "
      "largest MPI_ERR share; SEG_FAULT a common response; APP_DETECTED "
      "small for NPB\n");
  return 0;
}

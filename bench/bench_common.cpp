#include "bench_common.hpp"

#include <cstdio>

#include "apps/registry.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::bench {

void banner(const std::string& id, const std::string& paper_caption,
            const std::string& substitution_note) {
  if (bench_telemetry() && !telemetry::Recorder::instance().enabled()) {
    telemetry::Recorder::instance().enable();
    telemetry::Recorder::bind_thread(telemetry::Track::Main, -1,
                                     "bench-main");
    std::printf("telemetry: recorder enabled (FASTFIT_BENCH_TELEMETRY=1)\n");
  }
  std::printf("==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper: %s\n", paper_caption.c_str());
  if (!substitution_note.empty()) {
    std::printf("note:  %s\n", substitution_note.c_str());
  }
  std::printf("scale: %d ranks, %u trials/point, seed 0x%llx\n",
              bench_ranks(), bench_trials(),
              static_cast<unsigned long long>(bench_seed()));
  std::printf("==============================================================\n");
}

std::unique_ptr<core::StudyDriver> profiled_driver(
    const apps::Workload& workload, core::CampaignOptions options) {
  core::StudyOptions study;
  study.campaign = std::move(options);
  study.use_ml = false;
  auto driver = std::make_unique<core::StudyDriver>(workload,
                                                    std::move(study));
  driver->profile();
  return driver;
}

std::vector<core::PointResult> measure_all_points(
    const std::string& workload_name, std::optional<mpi::Param> only_param) {
  const auto workload = apps::make_workload(workload_name);
  const auto driver = profiled_driver(*workload, bench_campaign_options());
  auto& campaign = driver->campaign();
  std::vector<core::InjectionPoint> selected;
  for (const auto& point : campaign.enumeration().points) {
    if (only_param && point.param != *only_param) continue;
    selected.push_back(point);
  }
  return campaign.measure_many(selected);
}

}  // namespace fastfit::bench

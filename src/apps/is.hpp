#pragma once

// mini-IS: integer sort by bucket ranking, after NPB IS.
//
// Structure and collective usage follow the NPB kernel: per iteration a
// local bucket histogram is combined with MPI_Allreduce, per-destination
// key counts are exchanged with MPI_Alltoall, and the keys themselves move
// with MPI_Alltoallv; verification uses MPI_Allgather (bucket boundaries)
// and MPI_Reduce (global key sum). Partial verification inside the loop —
// a received key outside the rank's bucket range aborts — provides the
// APP_DETECTED path.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct IsConfig {
  std::int32_t keys_per_rank = 192;
  std::int32_t max_key = 1 << 11;
  int iterations = 3;
};

class MiniIS final : public Workload {
 public:
  explicit MiniIS(IsConfig config = {}) : config_(config) {}

  std::string name() const override { return "IS"; }
  std::string params_key() const override {
    return std::to_string(config_.keys_per_rank) + ':' +
           std::to_string(config_.max_key) + ':' +
           std::to_string(config_.iterations);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  IsConfig config_;
};

}  // namespace fastfit::apps

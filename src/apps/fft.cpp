#include "apps/fft.hpp"

#include <numbers>

#include "support/error.hpp"

namespace fastfit::apps {

void fft1d(std::vector<std::complex<double>>& a, int sign) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw InternalError("fft1d: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        static_cast<double>(sign) * 2.0 * std::numbers::pi /
        static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace fastfit::apps

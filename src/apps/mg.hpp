#pragma once

// mini-MG: multigrid V-cycle Poisson solver, after NPB MG.
//
// Solves -u'' = f on a distributed 1-D grid with weighted-Jacobi smoothing,
// full-weighting restriction, and linear prolongation. Matches the NPB
// kernel's communication profile: point-to-point halo exchange inside the
// smoother, MPI_Allreduce for residual norms after every V-cycle,
// MPI_Bcast for setup, MPI_Barrier between cycles, and a final MPI_Reduce
// of the norm. The convergence check after each cycle (residual must not
// diverge, must stay finite) is the workload's error handling.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct MgConfig {
  /// Global grid size; a power of two divisible by the rank count.
  int npoints = 512;
  int vcycles = 3;
  int pre_smooth = 2;
  int post_smooth = 2;
  int coarse_smooth = 8;
};

class MiniMG final : public Workload {
 public:
  explicit MiniMG(MgConfig config = {}) : config_(config) {}

  std::string name() const override { return "MG"; }
  std::string params_key() const override {
    return std::to_string(config_.npoints) + ':' +
           std::to_string(config_.vcycles) + ':' +
           std::to_string(config_.pre_smooth) + ':' +
           std::to_string(config_.post_smooth) + ':' +
           std::to_string(config_.coarse_smooth);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  MgConfig config_;
};

}  // namespace fastfit::apps

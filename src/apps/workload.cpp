#include "apps/workload.hpp"

#include <cmath>
#include <cstring>

#include "support/rng.hpp"

namespace fastfit::apps {

std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t d : digests) {
    h ^= d;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t digest_bytes(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<unsigned char>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t digest_doubles(std::span<const double> values, int decimals) {
  const double scale = std::pow(10.0, decimals);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (double v : values) {
    if (std::isnan(v)) {
      mix(0x4E614E4E614E4E61ULL);  // NaN sentinel
    } else if (std::isinf(v)) {
      mix(v > 0 ? 0x1FF1FF1FF1FF1FFULL : 0x2FF2FF2FF2FF2FFULL);
    } else {
      // Round to the requested decimal resolution; -0 folds onto +0.
      const double r = std::round(v * scale);
      if (std::abs(r) >= 9.0e18) {
        // Past int64 range the quantization grid is far coarser than the
        // double's own resolution anyway: hash the exact bit pattern so
        // astronomical values still discriminate (and avoid UB casts).
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits ^ 0xB16B16B16B16B16BULL);
      } else {
        const auto q = static_cast<std::int64_t>(r == 0.0 ? 0.0 : r);
        mix(static_cast<std::uint64_t>(q));
      }
    }
  }
  return h;
}

JobResult run_job(const Workload& workload, const mpi::WorldOptions& options,
                  mpi::ToolHooks* tools, trace::ContextRegistry& contexts,
                  std::vector<std::shared_ptr<void>> keepalives) {
  mpi::World world(options);
  world.set_tools(tools);
  // Digests live on the heap and the rank closure shares ownership: a rank
  // thread that outlives this frame (quarantined straggler) still writes
  // into valid memory, never into a dead stack.
  auto digests = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(options.nranks), 0);
  world.add_keepalive(digests);
  for (auto& keepalive : keepalives) {
    world.add_keepalive(std::move(keepalive));
  }
  JobResult result;
  result.world = world.run([digests, &workload, &contexts,
                            seed = options.seed](mpi::Mpi& mpi) {
    trace::RankContext& trace = contexts.of(mpi.world_rank());
    mpi.set_stack_probe([&trace]() -> mpi::Mpi::StackProbe {
      return {trace.stack().id(), std::string(trace.stack().innermost())};
    });
    AppContext ctx{mpi, trace, seed};
    try {
      (*digests)[static_cast<std::size_t>(mpi.world_rank())] =
          workload.run_rank(ctx);
    } catch (const RankRevoked&) {
      // A peer fail-stopped under repair mode. Workloads that opt in
      // shrink the communicator and resume; the rest let the revocation
      // unwind (subordinate to the captured RankDead event).
      if (!workload.can_repair()) throw;
      const mpi::Comm survivors = mpi.shrink_and_continue();
      (*digests)[static_cast<std::size_t>(mpi.world_rank())] =
          workload.repair_rank(ctx, survivors);
      mpi.mark_repaired();
    }
  });
  result.digest = result.world.clean() ? combine_digests(*digests) : 0;
  return result;
}

}  // namespace fastfit::apps

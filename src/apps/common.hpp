#pragma once

// Shared helpers for the mini-app workloads.

#include <cmath>
#include <string>

#include "apps/workload.hpp"
#include "support/error.hpp"

namespace fastfit::apps {

/// Application-level sanity check: throws AppError (-> APP_DETECTED) with
/// the workload's own error message when the condition fails. This is the
/// analogue of an application's `if (...) MPI_Abort(...)` error handling.
inline void app_check(bool ok, const std::string& message) {
  if (!ok) throw AppError(message);
}

/// Numeric sanity: NaN or Inf in a state variable is something mature
/// applications detect and abort on.
inline void app_check_finite(double value, const std::string& what) {
  app_check(std::isfinite(value), what + " is not finite");
}

}  // namespace fastfit::apps

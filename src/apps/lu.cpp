#include "apps/lu.hpp"

#include <cmath>
#include <numbers>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;

constexpr std::int32_t kForwardTag = 31;
constexpr std::int32_t kBackwardTag = 32;

}  // namespace

std::uint64_t MiniLU::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();

  if (config_.npoints % n != 0) {
    throw ConfigError("MiniLU: rank count must divide the grid size");
  }
  const int nloc = config_.npoints / n;

  // ---- init phase ---------------------------------------------------------
  tr.set_phase(trace::ExecPhase::Init);
  double omega = 0.0;
  double sigma = 0.0;
  int iterations = 0;
  {
    trace::FunctionScope scope(tr, "read_input");
    RegisteredBuffer<double> params(mpi.registry(), 3);
    if (me == 0) {
      params[0] = config_.omega;
      params[1] = config_.sigma;
      params[2] = static_cast<double>(config_.iterations);
    }
    mpi.bcast(params.data(), 3, mpi::kDouble, 0);
    omega = params[0];
    sigma = params[1];
    iterations = static_cast<int>(params[2]);
    app_check(omega > 0.0 && omega < 2.0, "LU: relaxation factor outside (0,2)");
    app_check_finite(sigma, "LU: reaction coefficient");
    app_check(iterations > 0 && iterations <= 64,
              "LU: implausible iteration count");
  }

  // ---- input phase: matrix coefficients and right-hand side ---------------
  tr.set_phase(trace::ExecPhase::Input);
  // System: (-u_{i-1} + (2 + sigma h^2) u_i - u_{i+1}) / h^2 = f_i.
  const double h = 1.0 / static_cast<double>(config_.npoints + 1);
  const double diag = 2.0 + sigma * h * h;
  std::vector<double> u(static_cast<std::size_t>(nloc) + 2, 0.0);
  std::vector<double> f(static_cast<std::size_t>(nloc) + 2, 0.0);
  {
    trace::FunctionScope scope(tr, "setbv");
    // Seed-dependent forcing; the stream has no rank index, so every rank
    // agrees on the problem.
    RngStream rng(ctx.input_seed, "lu-rhs");
    const double amp = 25.0 + 50.0 * rng.uniform();
    const double phase = 2.0 * std::numbers::pi * rng.uniform();
    for (int i = 1; i <= nloc; ++i) {
      const double x = static_cast<double>(me * nloc + i) * h;
      f[static_cast<std::size_t>(i)] =
          std::exp(-x) * std::sin(3.0 * std::numbers::pi * x + phase) * amp;
    }
  }

  mpi::ScopedRegistration keep_u(mpi.registry(), u.data(),
                                 u.size() * sizeof(double));

  // ---- compute phase: pipelined SSOR iterations ----------------------------
  tr.set_phase(trace::ExecPhase::Compute);
  const double h2 = h * h;
  double previous_rms = 0.0;
  std::vector<double> rms_history;
  for (int iter = 1; iter <= iterations; ++iter) {
    trace::FunctionScope scope(tr, "ssor");
    mpi.check_deadline();

    // Forward sweep: the lower-triangular solve pipelines left-to-right;
    // each rank waits for its left neighbour's updated edge cell.
    {
      trace::FunctionScope sweep(tr, "blts");
      if (me > 0) {
        mpi.recv(&u[0], 1, mpi::kDouble, me - 1, kForwardTag);
      } else {
        u[0] = 0.0;
      }
      for (int i = 1; i <= nloc; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const double gs =
            (h2 * f[idx] + u[idx - 1] + u[idx + 1]) / diag;
        u[idx] += omega * (gs - u[idx]);
      }
      if (me + 1 < n) {
        mpi.send(&u[static_cast<std::size_t>(nloc)], 1, mpi::kDouble, me + 1,
                 kForwardTag);
      }
    }

    // Backward sweep: right-to-left.
    {
      trace::FunctionScope sweep(tr, "buts");
      if (me + 1 < n) {
        mpi.recv(&u[static_cast<std::size_t>(nloc) + 1], 1, mpi::kDouble,
                 me + 1, kBackwardTag);
      } else {
        u[static_cast<std::size_t>(nloc) + 1] = 0.0;
      }
      for (int i = nloc; i >= 1; --i) {
        const auto idx = static_cast<std::size_t>(i);
        const double gs =
            (h2 * f[idx] + u[idx - 1] + u[idx + 1]) / diag;
        u[idx] += omega * (gs - u[idx]);
      }
      if (me > 0) {
        mpi.send(&u[1], 1, mpi::kDouble, me - 1, kBackwardTag);
      }
    }

    // RMS residual over the global grid (the paper's Fig 1 MPI_Allreduce).
    {
      trace::FunctionScope norm(tr, "l2norm");
      double local = 0.0;
      for (int i = 1; i <= nloc; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const double r = f[idx] - (diag * u[idx] - u[idx - 1] - u[idx + 1]) / h2;
        local += r * r;
      }
      const double total = mpi.allreduce_value(local, mpi::kSum);
      const double rms =
          std::sqrt(total / static_cast<double>(config_.npoints));
      {
        trace::ErrorHandlingScope errhal(tr);
        app_check_finite(rms, "LU: RMS residual");
        if (iter > 1) {
          app_check(rms <= previous_rms * 2.0 + 1e-12,
                    "LU: SSOR diverged between iterations");
        }
      }
      previous_rms = rms;
      rms_history.push_back(rms);
    }
  }

  // ---- end phase: verification norms ---------------------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "verify");
    // NPB LU verifies via norms of the solution; combine min/max/sum of u
    // with MPI_Allreduce.
    double local_sum = 0.0;
    double local_max = 0.0;
    for (int i = 1; i <= nloc; ++i) {
      local_sum += u[static_cast<std::size_t>(i)];
      local_max = std::max(local_max,
                           std::abs(u[static_cast<std::size_t>(i)]));
    }
    const double global_sum = mpi.allreduce_value(local_sum, mpi::kSum);
    const double global_max = mpi.allreduce_value(local_max, mpi::kMax);
    app_check_finite(global_sum, "LU: verification sum");
    std::vector<double> observables(u.begin(), u.end());
    observables.push_back(global_sum);
    observables.push_back(global_max);
    observables.insert(observables.end(), rms_history.begin(),
                       rms_history.end());
    digest = digest_doubles(observables, 8);
  }
  return digest;
}

std::uint64_t MiniLU::repair_rank(AppContext& ctx,
                                  mpi::Comm survivors) const {
  auto& mpi = ctx.mpi;
  ctx.trace.set_phase(trace::ExecPhase::End);
  trace::FunctionScope scope(ctx.trace, "ulfm_repair");
  // Deterministic recovery protocol over the shrunk communicator: each
  // survivor contributes a state checksum derived from (problem seed,
  // world rank) and the group agrees on the reduced values. The digest is
  // a pure function of (seed, survivor set) — what the REPAIRED outcome
  // requires — and deliberately not a re-solve: the dimension under study
  // is whether the survivors reach agreement after the shrink, not solver
  // accuracy without the dead rank's subdomain.
  RngStream rng(ctx.input_seed, "lu-repair",
                static_cast<std::uint64_t>(mpi.world_rank()));
  const double local = rng.uniform();
  const double sum = mpi.allreduce_value(local, mpi::kSum, survivors);
  const double peak = mpi.allreduce_value(local, mpi::kMax, survivors);
  const double members = mpi.bcast_value(
      static_cast<double>(mpi.size(survivors)), 0, survivors);
  const double observables[] = {sum, peak, members, local};
  return digest_doubles(observables, 8);
}

}  // namespace fastfit::apps

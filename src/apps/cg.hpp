#pragma once

// mini-CG: conjugate gradient on a sparse SPD system, after NPB CG.
//
// The grid of collectives matches the kernel's logical structure: the
// solution vector is shared for the distributed mat-vec with
// MPI_Allgather, the dot products of CG combine with MPI_Allreduce (two
// per iteration — CG is the most allreduce-bound NPB kernel), setup uses
// MPI_Bcast, and the final residual verification uses MPI_Reduce. The
// per-iteration convergence check (rho finite, non-negative) is the
// workload's error handling.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct CgConfig {
  /// Global unknowns; divisible by the rank count.
  int unknowns = 256;
  int iterations = 8;
  /// Off-diagonal fill per row (sparse band + random couplings).
  int couplings = 4;
};

class MiniCG final : public Workload {
 public:
  explicit MiniCG(CgConfig config = {}) : config_(config) {}

  std::string name() const override { return "CG"; }
  std::string params_key() const override {
    return std::to_string(config_.unknowns) + ':' +
           std::to_string(config_.iterations) + ':' +
           std::to_string(config_.couplings);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  CgConfig config_;
};

}  // namespace fastfit::apps

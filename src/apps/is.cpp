#include "apps/is.hpp"

#include <algorithm>
#include <numeric>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;

struct IsState {
  std::int32_t max_key = 0;
  std::int32_t iterations = 0;
};

}  // namespace

std::uint64_t MiniIS::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();

  // ---- init phase: rank 0 owns the problem parameters and broadcasts ----
  tr.set_phase(trace::ExecPhase::Init);
  IsState state;
  {
    trace::FunctionScope scope(tr, "is_setup");
    RegisteredBuffer<std::int32_t> params(mpi.registry(), 2);
    if (me == 0) {
      params[0] = config_.max_key;
      params[1] = config_.iterations;
    }
    mpi.bcast(params.data(), 2, mpi::kInt32, 0);
    state.max_key = params[0];
    state.iterations = params[1];
    app_check(state.max_key > 0, "IS: non-positive max key");
    app_check(state.iterations > 0 && state.iterations <= 64,
              "IS: implausible iteration count");
  }

  // ---- input phase: generate this rank's keys --------------------------
  tr.set_phase(trace::ExecPhase::Input);
  std::vector<std::int32_t> keys;
  {
    trace::FunctionScope scope(tr, "create_seq");
    RngStream rng(ctx.input_seed, "is-keys",
                  static_cast<std::uint64_t>(me));
    keys.resize(static_cast<std::size_t>(config_.keys_per_rank));
    for (auto& k : keys) {
      k = static_cast<std::int32_t>(
          rng.uniform_u64(0, static_cast<std::uint64_t>(state.max_key) - 1));
    }
  }

  // Bucket b owns keys in [b*width, (b+1)*width).
  const std::int32_t width = (state.max_key + n - 1) / n;
  std::vector<std::int32_t> sorted_keys;

  // ---- compute phase: rank the keys, NPB-style -------------------------
  tr.set_phase(trace::ExecPhase::Compute);
  for (int iter = 0; iter < state.iterations; ++iter) {
    trace::FunctionScope scope(tr, "rank_keys");
    mpi.check_deadline();

    // Local bucket histogram.
    RegisteredBuffer<std::int32_t> bucket_size(mpi.registry(),
                                               static_cast<std::size_t>(n), 0);
    {
      trace::FunctionScope hist(tr, "bucket_histogram");
      for (std::int32_t k : keys) {
        const int b = std::min<std::int32_t>(k / width, n - 1);
        ++bucket_size[static_cast<std::size_t>(b)];
      }
    }

    // Global bucket sizes (NPB IS: MPI_Allreduce on bucket_size).
    RegisteredBuffer<std::int32_t> global_bucket(mpi.registry(),
                                                 static_cast<std::size_t>(n));
    {
      trace::FunctionScope combine(tr, "combine_buckets");
      mpi.allreduce(bucket_size.data(), global_bucket.data(), n, mpi::kInt32,
                    mpi::kSum);
      std::int64_t total = 0;
      for (int b = 0; b < n; ++b) {
        total += global_bucket[static_cast<std::size_t>(b)];
      }
      app_check(total == static_cast<std::int64_t>(config_.keys_per_rank) * n,
                "IS: global bucket population mismatch");
    }

    // How many keys I send to each bucket owner (MPI_Alltoall).
    RegisteredBuffer<std::int32_t> send_count(mpi.registry(),
                                              static_cast<std::size_t>(n));
    RegisteredBuffer<std::int32_t> recv_count(mpi.registry(),
                                              static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      send_count[static_cast<std::size_t>(b)] =
          bucket_size[static_cast<std::size_t>(b)];
    }
    {
      trace::FunctionScope exchange(tr, "exchange_counts");
      mpi.alltoall(send_count.data(), 1, mpi::kInt32, recv_count.data(), 1,
                   mpi::kInt32);
    }

    // Redistribute the keys (MPI_Alltoallv).
    std::vector<std::int32_t> scounts(static_cast<std::size_t>(n));
    std::vector<std::int32_t> sdispls(static_cast<std::size_t>(n));
    std::vector<std::int32_t> rcounts(static_cast<std::size_t>(n));
    std::vector<std::int32_t> rdispls(static_cast<std::size_t>(n));
    std::int32_t soff = 0;
    std::int32_t roff = 0;
    for (int r = 0; r < n; ++r) {
      scounts[static_cast<std::size_t>(r)] =
          send_count[static_cast<std::size_t>(r)];
      sdispls[static_cast<std::size_t>(r)] = soff;
      soff += scounts[static_cast<std::size_t>(r)];
      rcounts[static_cast<std::size_t>(r)] =
          recv_count[static_cast<std::size_t>(r)];
      rdispls[static_cast<std::size_t>(r)] = roff;
      roff += rcounts[static_cast<std::size_t>(r)];
    }
    // Outgoing accounting must match the keys this rank actually holds;
    // corruption of the count exchange would otherwise misdrive the
    // packing below.
    {
      trace::ErrorHandlingScope errhal(tr);
      for (int r = 0; r < n; ++r) {
        app_check(scounts[static_cast<std::size_t>(r)] >= 0,
                  "IS: negative send bucket count");
      }
      app_check(soff == config_.keys_per_rank,
                "IS: send bucket accounting corrupted");
      app_check(roff >= 0 && roff <= config_.keys_per_rank * n,
                "IS: implausible incoming key volume");
    }

    RegisteredBuffer<std::int32_t> send_keys(
        mpi.registry(), std::max<std::size_t>(1, static_cast<std::size_t>(soff)));
    {
      // Pack keys by destination bucket.
      std::vector<std::int32_t> cursor(sdispls.begin(), sdispls.end());
      for (std::int32_t k : keys) {
        const int b = std::min<std::int32_t>(k / width, n - 1);
        send_keys[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(b)]++)] = k;
      }
    }
    RegisteredBuffer<std::int32_t> recv_keys(
        mpi.registry(), std::max<std::size_t>(1, static_cast<std::size_t>(roff)),
        -1);
    {
      trace::FunctionScope move(tr, "exchange_keys");
      mpi.alltoallv(send_keys.data(), scounts, sdispls, mpi::kInt32,
                    recv_keys.data(), rcounts, rdispls, mpi::kInt32);
    }

    // Partial verification (NPB IS verifies inside the loop): every
    // received key must belong to my bucket's range.
    {
      trace::FunctionScope verify(tr, "partial_verify");
      const std::int32_t lo = me * width;
      const std::int32_t hi = std::min(state.max_key,
                                       (me + 1) * width);
      for (std::int32_t i = 0; i < roff; ++i) {
        const std::int32_t k = recv_keys[static_cast<std::size_t>(i)];
        app_check(k >= lo && k < hi,
                  "IS: partial verification failed (key outside bucket)");
      }
    }

    sorted_keys.assign(recv_keys.begin(),
                       recv_keys.begin() + static_cast<std::ptrdiff_t>(roff));
    std::sort(sorted_keys.begin(), sorted_keys.end());
  }

  // ---- end phase: full verification + result digest --------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest = 0;
  {
    trace::FunctionScope scope(tr, "full_verify");
    // Boundary exchange: (min, max) of every rank's bucket, then check the
    // global ordering (MPI_Allgather).
    RegisteredBuffer<std::int32_t> bounds(mpi.registry(), 2);
    bounds[0] = sorted_keys.empty() ? me * width : sorted_keys.front();
    bounds[1] = sorted_keys.empty() ? me * width : sorted_keys.back();
    RegisteredBuffer<std::int32_t> all_bounds(mpi.registry(),
                                              static_cast<std::size_t>(2 * n));
    mpi.allgather(bounds.data(), 2, mpi::kInt32, all_bounds.data(), 2,
                  mpi::kInt32);
    for (int r = 0; r + 1 < n; ++r) {
      app_check(all_bounds[static_cast<std::size_t>(2 * r + 1)] <=
                    all_bounds[static_cast<std::size_t>(2 * (r + 1))],
                "IS: full verification failed (buckets out of order)");
    }

    // Each rank's global ranking offset is the prefix sum of bucket
    // populations (MPI_Scan) — the quantity IS actually ranks with.
    RegisteredBuffer<std::int64_t> my_count(
        mpi.registry(), 1, static_cast<std::int64_t>(sorted_keys.size()));
    RegisteredBuffer<std::int64_t> prefix(mpi.registry(), 1, 0);
    mpi.scan(my_count.data(), prefix.data(), 1, mpi::kInt64, mpi::kSum);
    {
      trace::ErrorHandlingScope errhal(tr);
      app_check(prefix[0] >= my_count[0] &&
                    prefix[0] <= static_cast<std::int64_t>(
                                     config_.keys_per_rank) *
                                     n,
                "IS: ranking prefix out of range");
    }

    // Gather the ragged sorted buckets to rank 0 (MPI_Gatherv), as IS
    // collects its output.
    RegisteredBuffer<std::int64_t> counts64(mpi.registry(),
                                            static_cast<std::size_t>(n));
    RegisteredBuffer<std::int64_t> my_count_bcast(mpi.registry(), 1,
                                                  my_count[0]);
    mpi.allgather(my_count_bcast.data(), 1, mpi::kInt64, counts64.data(), 1,
                  mpi::kInt64);
    std::vector<std::int32_t> gather_counts(static_cast<std::size_t>(n));
    std::vector<std::int32_t> gather_displs(static_cast<std::size_t>(n));
    std::int32_t total_keys = 0;
    bool counts_plausible = true;
    for (int r = 0; r < n; ++r) {
      const std::int64_t c = counts64[static_cast<std::size_t>(r)];
      counts_plausible =
          counts_plausible && c >= 0 &&
          c <= static_cast<std::int64_t>(config_.keys_per_rank) * n;
      gather_counts[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>(std::max<std::int64_t>(0, c));
      gather_displs[static_cast<std::size_t>(r)] = total_keys;
      total_keys += gather_counts[static_cast<std::size_t>(r)];
    }
    {
      trace::ErrorHandlingScope errhal(tr);
      app_check(counts_plausible &&
                    total_keys == config_.keys_per_rank * n,
                "IS: output gathering counts corrupted");
    }
    RegisteredBuffer<std::int32_t> all_keys(
        mpi.registry(),
        std::max<std::size_t>(1, static_cast<std::size_t>(total_keys)));
    RegisteredBuffer<std::int32_t> send_sorted(
        mpi.registry(), std::max<std::size_t>(1, sorted_keys.size()));
    std::copy(sorted_keys.begin(), sorted_keys.end(), send_sorted.begin());
    mpi.gatherv(send_sorted.data(),
                static_cast<std::int32_t>(sorted_keys.size()), mpi::kInt32,
                all_keys.data(), gather_counts, gather_displs, mpi::kInt32,
                0);
    if (me == 0) {
      trace::ErrorHandlingScope errhal(tr);
      for (std::int32_t i = 0; i + 1 < total_keys; ++i) {
        app_check(all_keys[static_cast<std::size_t>(i)] <=
                      all_keys[static_cast<std::size_t>(i + 1)],
                  "IS: gathered output is not globally sorted");
      }
    }

    // Global key sum must equal the generated total (MPI_Reduce to 0).
    RegisteredBuffer<std::int64_t> local_sum(mpi.registry(), 1, 0);
    for (std::int32_t k : sorted_keys) local_sum[0] += k;
    RegisteredBuffer<std::int64_t> global_sum(mpi.registry(), 1, 0);
    mpi.reduce(local_sum.data(), global_sum.data(), 1, mpi::kInt64, mpi::kSum,
               0);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::int32_t k : sorted_keys) {
      h ^= static_cast<std::uint32_t>(k);
      h *= 0x100000001b3ULL;
    }
    h ^= static_cast<std::uint64_t>(sorted_keys.size());
    h *= 0x100000001b3ULL;
    if (me == 0) {
      h ^= static_cast<std::uint64_t>(global_sum[0]);
      h *= 0x100000001b3ULL;
    }
    digest = h;
  }
  return digest;
}

}  // namespace fastfit::apps

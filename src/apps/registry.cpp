#include "apps/registry.hpp"

#include "apps/cg.hpp"
#include "apps/ep.hpp"
#include "apps/ft.hpp"
#include "apps/is.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/minimd.hpp"
#include "support/error.hpp"

namespace fastfit::apps {

std::unique_ptr<Workload> make_workload(const std::string& name) {
  if (name == "IS") return std::make_unique<MiniIS>();
  if (name == "FT") return std::make_unique<MiniFT>();
  if (name == "MG") return std::make_unique<MiniMG>();
  if (name == "LU") return std::make_unique<MiniLU>();
  if (name == "CG") return std::make_unique<MiniCG>();
  if (name == "EP") return std::make_unique<MiniEP>();
  if (name == "miniMD" || name == "LAMMPS") return std::make_unique<MiniMD>();
  throw ConfigError("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  // The paper's evaluation set (IS, FT, MG, LU, LAMMPS) plus the CG and
  // EP kernels as suite extensions.
  return {"IS", "FT", "MG", "LU", "CG", "EP", "miniMD"};
}

}  // namespace fastfit::apps

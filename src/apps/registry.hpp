#pragma once

// Workload registry: the five evaluation workloads of the paper by name.

#include <memory>
#include <string>
#include <vector>

#include "apps/workload.hpp"

namespace fastfit::apps {

/// Creates a workload by name: "IS", "FT", "MG", "LU", or "miniMD"
/// (aliases: "LAMMPS" -> miniMD). Throws ConfigError for unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name);

/// Names of all bundled workloads, NPB kernels first.
std::vector<std::string> workload_names();

}  // namespace fastfit::apps

#pragma once

// mini-LU: pipelined SSOR solver, after NPB LU.
//
// Solves a diffusion-reaction system on a distributed 1-D grid with
// symmetric successive over-relaxation: the forward (lower-triangular)
// sweep pipelines left-to-right through the ranks with point-to-point
// messages, the backward sweep right-to-left — NPB LU's wavefront
// structure in one dimension. Every iteration combines the RMS residual
// with MPI_Allreduce (the collective of the paper's Fig 1); setup uses
// MPI_Bcast and the final verification norms use MPI_Allreduce again.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct LuConfig {
  /// Global grid size, divisible by the rank count.
  int npoints = 512;
  int iterations = 5;
  double omega = 1.2;   ///< SSOR relaxation factor
  double sigma = 10.0;  ///< reaction coefficient (keeps the system SPD-ish)
};

class MiniLU final : public Workload {
 public:
  explicit MiniLU(LuConfig config = {}) : config_(config) {}

  std::string name() const override { return "LU"; }
  std::string params_key() const override {
    return std::to_string(config_.npoints) + ':' +
           std::to_string(config_.iterations) + ':' +
           std::to_string(config_.omega) + ':' +
           std::to_string(config_.sigma);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

  /// LU opts into ULFM-style shrink-and-continue: after a peer's
  /// fail-stop death the survivors run a deterministic recovery protocol
  /// over the shrunk communicator (see repair_rank).
  bool can_repair() const override { return true; }
  std::uint64_t repair_rank(AppContext& ctx,
                            mpi::Comm survivors) const override;

 private:
  LuConfig config_;
};

}  // namespace fastfit::apps

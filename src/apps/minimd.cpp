#include "apps/minimd.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;

}  // namespace

std::uint64_t MiniMD::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();
  const int nlocal = config_.atoms_per_rank;
  const int ntotal = nlocal * n;

  // ---- init phase: "parse the input script" (rank 0 reads, broadcasts) ---
  tr.set_phase(trace::ExecPhase::Init);
  double dt = 0.0;
  double t_target = 0.0;
  double box = 0.0;  // cubic box edge
  int steps = 0;
  {
    trace::FunctionScope scope(tr, "input_script");
    // LAMMPS broadcasts parsed input line by line; model that with a few
    // separate bcast call sites.
    RegisteredBuffer<double> line1(mpi.registry(), 2);
    if (me == 0) {
      line1[0] = config_.dt;
      line1[1] = static_cast<double>(config_.steps);
    }
    mpi.bcast(line1.data(), 2, mpi::kDouble, 0);
    dt = line1[0];
    steps = static_cast<int>(line1[1]);

    RegisteredBuffer<double> line2(mpi.registry(), 2);
    if (me == 0) {
      line2[0] = config_.target_temperature;
      line2[1] = config_.density;
    }
    mpi.bcast(line2.data(), 2, mpi::kDouble, 0);
    t_target = line2[0];
    const double density = line2[1];

    trace::ErrorHandlingScope errhal(tr);
    app_check(dt > 0.0 && dt < 1.0, "miniMD: invalid timestep");
    app_check(steps > 0 && steps <= 1024, "miniMD: invalid run length");
    app_check(t_target > 0.0, "miniMD: invalid target temperature");
    app_check(density > 0.0, "miniMD: invalid density");
    box = std::cbrt(static_cast<double>(ntotal) / density);
  }

  // ---- input phase: read the "data file" and create atoms ---------------
  tr.set_phase(trace::ExecPhase::Input);
  {
    // LAMMPS reads data files on rank 0 and broadcasts them; corrupting
    // this input traffic wrecks the whole run, which is why the paper's
    // Table IV finds the input phase strongly correlated with sensitivity.
    trace::FunctionScope scope(tr, "read_data");
    RegisteredBuffer<std::int64_t> header(mpi.registry(), 2);
    if (me == 0) {
      header[0] = ntotal;
      header[1] = 1;  // atom types
    }
    mpi.bcast(header.data(), 2, mpi::kInt64, 0);
    trace::ErrorHandlingScope errhal(tr);
    app_check(header[0] == ntotal, "miniMD: data file atom count mismatch");
    app_check(header[1] >= 1 && header[1] <= 8,
              "miniMD: unsupported atom type count");
    const std::int64_t agreed =
        mpi.allreduce_value(header[0], mpi::kMax);
    app_check(agreed == ntotal, "miniMD: ranks disagree on atom count");
  }
  std::vector<double> pos(static_cast<std::size_t>(3 * nlocal));
  std::vector<double> vel(static_cast<std::size_t>(3 * nlocal));
  std::vector<double> force(static_cast<std::size_t>(3 * nlocal), 0.0);
  {
    trace::FunctionScope scope(tr, "create_atoms");
    RngStream rng(ctx.input_seed, "md-atoms", static_cast<std::uint64_t>(me));
    // Global simple cubic lattice indexed by global atom id, so spacing is
    // uniform (~box/side >= 1 sigma at the default density) regardless of
    // the rank count: overlapping atoms would blow the LJ potential up.
    const int side = static_cast<int>(std::ceil(std::cbrt(ntotal)));
    const double spacing = box / static_cast<double>(side);
    for (int a = 0; a < nlocal; ++a) {
      const int gid = me * nlocal + a;
      const int ix = gid % side;
      const int iy = (gid / side) % side;
      const int iz = gid / (side * side);
      pos[static_cast<std::size_t>(3 * a + 0)] =
          (ix + 0.5) * spacing + 0.05 * rng.normal();
      pos[static_cast<std::size_t>(3 * a + 1)] =
          (iy + 0.5) * spacing + 0.05 * rng.normal();
      pos[static_cast<std::size_t>(3 * a + 2)] =
          (iz + 0.5) * spacing + 0.05 * rng.normal();
      for (int d = 0; d < 3; ++d) {
        vel[static_cast<std::size_t>(3 * a + d)] =
            std::sqrt(t_target) * rng.normal();
      }
    }
  }

  const auto wrap = [&](double x) {
    x = std::fmod(x, box);
    return x < 0 ? x + box : x;
  };
  const auto min_image = [&](double d) {
    if (d > 0.5 * box) return d - box;
    if (d < -0.5 * box) return d + box;
    return d;
  };

  RegisteredBuffer<double> all_pos(mpi.registry(),
                                   static_cast<std::size_t>(3 * ntotal));
  mpi::ScopedRegistration keep_pos(mpi.registry(), pos.data(),
                                   pos.size() * sizeof(double));

  const double cutoff = std::min(2.5, 0.45 * box);
  const double cutoff2 = cutoff * cutoff;

  // Computes LJ forces for local atoms against the gathered global
  // positions; returns this rank's potential-energy contribution.
  const auto compute_forces = [&]() {
    trace::FunctionScope scope(tr, "force_lj");
    double pe = 0.0;
    for (auto& fc : force) fc = 0.0;
    for (int a = 0; a < nlocal; ++a) {
      const int ga = me * nlocal + a;
      for (int b = 0; b < ntotal; ++b) {
        if (b == ga) continue;
        double dx[3];
        double r2 = 0.0;
        for (int d = 0; d < 3; ++d) {
          dx[d] = min_image(pos[static_cast<std::size_t>(3 * a + d)] -
                            all_pos[static_cast<std::size_t>(3 * b + d)]);
          r2 += dx[d] * dx[d];
        }
        if (r2 >= cutoff2 || r2 < 1e-12) continue;
        const double inv2 = 1.0 / r2;
        const double inv6 = inv2 * inv2 * inv2;
        const double coef = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
        for (int d = 0; d < 3; ++d) {
          force[static_cast<std::size_t>(3 * a + d)] += coef * dx[d];
        }
        pe += 2.0 * inv6 * (inv6 - 1.0);  // half of 4eps(...)
      }
    }
    return pe;
  };

  // ---- compute phase: velocity-Verlet time stepping ----------------------
  tr.set_phase(trace::ExecPhase::Compute);
  std::vector<double> energy_series;
  double temperature = t_target;
  {
    trace::FunctionScope gather0(tr, "comm_positions");
    mpi.allgather(pos.data(), 3 * nlocal, mpi::kDouble, all_pos.data(),
                  3 * nlocal, mpi::kDouble);
  }
  double pe_local = compute_forces();
  // Initial potential energy: a seed-sensitive observable (reported by
  // LAMMPS' "step 0" thermo line) at finer precision than the running
  // series, so distinct inputs digest distinctly.
  const double initial_pe = mpi.allreduce_value(pe_local, mpi::kSum);

  for (int step = 1; step <= steps; ++step) {
    trace::FunctionScope scope(tr, "timestep");
    mpi.check_deadline();

    {
      trace::FunctionScope integrate(tr, "initial_integrate");
      for (int a = 0; a < nlocal; ++a) {
        for (int d = 0; d < 3; ++d) {
          const auto i = static_cast<std::size_t>(3 * a + d);
          vel[i] += 0.5 * dt * force[i];
          pos[i] = wrap(pos[i] + dt * vel[i]);
        }
      }
    }

    {
      trace::FunctionScope gather(tr, "comm_positions");
      mpi.allgather(pos.data(), 3 * nlocal, mpi::kDouble, all_pos.data(),
                    3 * nlocal, mpi::kDouble);
    }
    pe_local = compute_forces();

    double ke_local = 0.0;
    {
      trace::FunctionScope integrate(tr, "final_integrate");
      for (int a = 0; a < nlocal; ++a) {
        for (int d = 0; d < 3; ++d) {
          const auto i = static_cast<std::size_t>(3 * a + d);
          vel[i] += 0.5 * dt * force[i];
          ke_local += 0.5 * vel[i] * vel[i];
        }
      }
    }

    // LAMMPS-style error handling: these consistency allreduces are the
    // paper's ErrHal feature (>40% of LAMMPS' allreduces).
    {
      // LAMMPS' "Lost atoms" check: every rank contributes its local atom
      // count and the sum must reproduce the global total — any
      // perturbation of the contribution changes the sum, so this check
      // is a near-deterministic detector of corruption in its own
      // reduction traffic.
      trace::ErrorHandlingScope errhal(tr);
      trace::FunctionScope check(tr, "check_lost_atoms");
      std::int64_t my_atoms = 0;
      for (int a = 0; a < nlocal; ++a) {
        bool ok = true;
        for (int d = 0; d < 3; ++d) {
          const double x = pos[static_cast<std::size_t>(3 * a + d)];
          ok = ok && std::isfinite(x) && x >= 0.0 && x < box;
        }
        if (ok) ++my_atoms;
      }
      const std::int64_t total_atoms =
          mpi.allreduce_value(my_atoms, mpi::kSum);
      app_check(total_atoms == ntotal, "miniMD: Lost atoms!");
    }
    {
      // Gathered-view consistency: corruption of the position allgather
      // shows up as atoms outside the box in some rank's copy.
      trace::ErrorHandlingScope errhal(tr);
      trace::FunctionScope check(tr, "check_ghost_consistency");
      std::int64_t in_box = 0;
      for (int b = 0; b < ntotal; ++b) {
        bool ok = true;
        for (int d = 0; d < 3; ++d) {
          const double x = all_pos[static_cast<std::size_t>(3 * b + d)];
          ok = ok && std::isfinite(x) && x >= 0.0 && x < box;
        }
        if (ok) ++in_box;
      }
      const std::int64_t min_seen = mpi.allreduce_value(in_box, mpi::kMin);
      app_check(min_seen == ntotal, "miniMD: inconsistent ghost atoms");
    }
    {
      trace::ErrorHandlingScope errhal(tr);
      trace::FunctionScope check(tr, "check_energy_finite");
      const std::int32_t bad =
          !std::isfinite(pe_local) || !std::isfinite(ke_local) ? 1 : 0;
      const std::int32_t any_bad = mpi.allreduce_value(bad, mpi::kLor);
      app_check(any_bad == 0, "miniMD: non-finite energy detected");
    }

    // Thermostat every other step (Berendsen-style velocity rescale).
    if (step % 2 == 0) {
      trace::FunctionScope thermo(tr, "fix_temp_rescale");
      const double ke_total = mpi.allreduce_value(ke_local, mpi::kSum);
      temperature = 2.0 * ke_total / (3.0 * static_cast<double>(ntotal));
      const double factor =
          temperature > 1e-12 ? std::sqrt(t_target / temperature) : 1.0;
      const double damped = 1.0 + 0.5 * (factor - 1.0);
      for (auto& v : vel) v *= damped;
    }

    // Output step: total energy to everyone, synchronized.
    if (step % 4 == 0 || step == steps) {
      trace::FunctionScope output(tr, "thermo_output");
      const double pe_total = mpi.allreduce_value(pe_local, mpi::kSum);
      const double ke_total = mpi.allreduce_value(ke_local, mpi::kSum);
      energy_series.push_back(pe_total + ke_total);
      mpi.barrier();
    }
  }

  // ---- end phase: final report --------------------------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "final_report");
    RegisteredBuffer<double> local(mpi.registry(), 1, pe_local);
    RegisteredBuffer<double> total(mpi.registry(), 1, 0.0);
    mpi.reduce(local.data(), total.data(), 1, mpi::kDouble, mpi::kSum, 0);
    // Statistical result tolerance: quantize observables coarsely, so
    // physically equivalent trajectories digest identically.
    std::vector<double> observables;
    for (double e : energy_series) {
      observables.push_back(e / static_cast<double>(ntotal));  // per-atom
    }
    observables.push_back(temperature);
    observables.push_back(static_cast<double>(ntotal));
    observables.push_back(
        std::round(initial_pe / static_cast<double>(ntotal) * 1e4) / 1e2);
    if (std::getenv("FASTFIT_MD_DEBUG") != nullptr && me == 0) {
      std::fprintf(stderr, "[md-debug rank0] observables:");
      for (double v : observables) std::fprintf(stderr, " %.6g", v);
      std::fprintf(stderr, "\n");
    }
    digest = digest_doubles(observables, 2);
  }
  return digest;
}

}  // namespace fastfit::apps

#pragma once

// miniMD: Lennard-Jones molecular dynamics, the LAMMPS (rhodopsin input)
// stand-in.
//
// Reproduces the traits that drive LAMMPS' distinctive fault-injection
// results in the paper:
//   - MPI_Allreduce dominates the collective mix (>84% in LAMMPS), and a
//     large share of those allreduces are *error handling* (>40.32% in
//     LAMMPS): the "Lost atoms" consistency check and the finite-energy
//     check run inside ErrorHandlingScope every step.
//   - Results are statistical: the digest quantizes energy/temperature
//     coarsely, so small numeric perturbations still count as SUCCESS —
//     the paper's explanation for LAMMPS' low WRONG_ANS rate.
//   - Collectives used: MPI_Bcast (input script), MPI_Allgather (position
//     sharing), MPI_Allreduce (physics + error handling), MPI_Barrier
//     (output steps), MPI_Reduce (final report).

#include "apps/workload.hpp"

namespace fastfit::apps {

struct MdConfig {
  int atoms_per_rank = 12;
  int steps = 8;
  double dt = 0.002;
  double target_temperature = 1.2;
  double density = 0.6;
};

class MiniMD final : public Workload {
 public:
  explicit MiniMD(MdConfig config = {}) : config_(config) {}

  std::string name() const override { return "miniMD"; }
  std::string params_key() const override {
    return std::to_string(config_.atoms_per_rank) + ':' +
           std::to_string(config_.steps) + ':' + std::to_string(config_.dt) +
           ':' + std::to_string(config_.target_temperature) + ':' +
           std::to_string(config_.density);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  MdConfig config_;
};

}  // namespace fastfit::apps

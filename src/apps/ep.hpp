#pragma once

// mini-EP: embarrassingly parallel Gaussian-deviate counting, after NPB
// EP.
//
// Each rank generates uniform pairs, accepts those inside the unit disk,
// transforms them to Gaussian deviates (Marsaglia polar method), and
// tallies them into concentric annuli. Communication happens only at the
// edges: a parameter broadcast up front and the final tally/extrema
// reductions — the sparsest collective profile in the suite, which is
// exactly why NPB includes it. The tally-consistency check (counts sum
// to the number of accepted pairs) is the workload's error handling.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct EpConfig {
  int pairs_per_rank = 4096;
  int annuli = 10;
};

class MiniEP final : public Workload {
 public:
  explicit MiniEP(EpConfig config = {}) : config_(config) {}

  std::string name() const override { return "EP"; }
  std::string params_key() const override {
    return std::to_string(config_.pairs_per_rank) + ':' +
           std::to_string(config_.annuli);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  EpConfig config_;
};

}  // namespace fastfit::apps

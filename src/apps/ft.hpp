#pragma once

// mini-FT: 3-D FFT PDE solver, after NPB FT.
//
// Solves u_t = alpha * laplacian(u) spectrally: forward 3-D FFT of the
// initial field, per-step multiplication by exp(-4 pi^2 alpha t |k|^2),
// inverse FFT, checksum. Decomposition is 1-D slabs over z; the z-direction
// FFT requires a transpose implemented with MPI_Alltoall — exactly the
// collective/structure mix of the NPB kernel. Each iteration reduces a
// complex checksum to rank 0 with MPI_Reduce (the collective of the
// paper's Fig 2), and the setup phase broadcasts parameters with
// MPI_Bcast.

#include "apps/workload.hpp"

namespace fastfit::apps {

struct FtConfig {
  /// Grid extents; nz must be divisible by the rank count, and nx, ny, nz
  /// must be powers of two. nx*ny must be divisible by the rank count.
  int nx = 8;
  int ny = 8;
  int nz = 32;
  int iterations = 3;
  double alpha = 1e-4;
};

class MiniFT final : public Workload {
 public:
  explicit MiniFT(FtConfig config = {}) : config_(config) {}

  std::string name() const override { return "FT"; }
  std::string params_key() const override {
    return std::to_string(config_.nx) + ':' + std::to_string(config_.ny) +
           ':' + std::to_string(config_.nz) + ':' +
           std::to_string(config_.iterations) + ':' +
           std::to_string(config_.alpha);
  }
  std::uint64_t run_rank(AppContext& ctx) const override;

 private:
  FtConfig config_;
};

}  // namespace fastfit::apps

#include "apps/cg.hpp"

#include <cmath>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;

/// Symmetric coupling strength for the (i, j) pair, identical no matter
/// which side computes it.
double coupling(std::uint64_t seed, int i, int j) {
  const auto lo = static_cast<std::uint64_t>(std::min(i, j));
  const auto hi = static_cast<std::uint64_t>(std::max(i, j));
  std::uint64_t state = seed ^ (lo * 0x9E3779B97F4A7C15ULL) ^ (hi << 21);
  const std::uint64_t bits = splitmix64(state);
  // Strength in [-0.5, 0.5).
  return (static_cast<double>(bits >> 11) /
              static_cast<double>(1ULL << 53) -
          0.5);
}

}  // namespace

std::uint64_t MiniCG::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();

  if (config_.unknowns % n != 0) {
    throw ConfigError("MiniCG: rank count must divide the unknown count");
  }
  const int N = config_.unknowns;
  const int nloc = N / n;
  const int row_lo = me * nloc;

  // ---- init phase ---------------------------------------------------------
  tr.set_phase(trace::ExecPhase::Init);
  int iterations = 0;
  int couplings = 0;
  {
    trace::FunctionScope scope(tr, "cg_setup");
    RegisteredBuffer<std::int32_t> params(mpi.registry(), 2);
    if (me == 0) {
      params[0] = config_.iterations;
      params[1] = config_.couplings;
    }
    mpi.bcast(params.data(), 2, mpi::kInt32, 0);
    iterations = params[0];
    couplings = params[1];
    trace::ErrorHandlingScope errhal(tr);
    app_check(iterations > 0 && iterations <= 256,
              "CG: implausible iteration count");
    app_check(couplings > 0 && couplings <= N / 2,
              "CG: implausible coupling count");
  }

  // ---- input phase: matrix rows and right-hand side -----------------------
  tr.set_phase(trace::ExecPhase::Input);
  // Row i couples to columns (i ± k*stride) mod N; the ± symmetry makes
  // the global matrix symmetric, and the dominant diagonal makes it SPD.
  const int stride = 3;
  struct Entry {
    int column;
    double value;
  };
  std::vector<std::vector<Entry>> rows(static_cast<std::size_t>(nloc));
  std::vector<double> b(static_cast<std::size_t>(nloc));
  {
    trace::FunctionScope scope(tr, "makea");
    RngStream rng(ctx.input_seed, "cg-rhs", static_cast<std::uint64_t>(me));
    for (int r = 0; r < nloc; ++r) {
      const int i = row_lo + r;
      double offdiag_mass = 0.0;
      auto& row = rows[static_cast<std::size_t>(r)];
      for (int k = 1; k <= couplings; ++k) {
        for (int sign : {+1, -1}) {
          const int j = ((i + sign * k * stride) % N + N) % N;
          if (j == i) continue;
          const double v = coupling(ctx.input_seed, i, j);
          row.push_back(Entry{j, v});
          offdiag_mass += std::abs(v);
        }
      }
      row.push_back(Entry{i, offdiag_mass + 1.5});
      b[static_cast<std::size_t>(r)] = rng.uniform() - 0.5;
    }
  }

  // ---- compute phase: CG iterations ---------------------------------------
  tr.set_phase(trace::ExecPhase::Compute);
  std::vector<double> x(static_cast<std::size_t>(nloc), 0.0);
  std::vector<double> r_vec(b);
  std::vector<double> p(b);
  RegisteredBuffer<double> p_local(mpi.registry(),
                                   static_cast<std::size_t>(nloc));
  RegisteredBuffer<double> p_full(mpi.registry(),
                                  static_cast<std::size_t>(N));

  const auto matvec = [&](std::vector<double>& out) {
    // q = A p using the gathered full vector.
    trace::FunctionScope scope(tr, "matvec");
    for (int i = 0; i < nloc; ++i) {
      p_local[static_cast<std::size_t>(i)] =
          p[static_cast<std::size_t>(i)];
    }
    mpi.allgather(p_local.data(), nloc, mpi::kDouble, p_full.data(), nloc,
                  mpi::kDouble);
    out.assign(static_cast<std::size_t>(nloc), 0.0);
    for (int i = 0; i < nloc; ++i) {
      for (const auto& entry : rows[static_cast<std::size_t>(i)]) {
        out[static_cast<std::size_t>(i)] +=
            entry.value * p_full[static_cast<std::size_t>(entry.column)];
      }
    }
  };
  const auto dot = [&](const std::vector<double>& a,
                       const std::vector<double>& c) {
    trace::FunctionScope scope(tr, "dot_product");
    double local = 0.0;
    for (int i = 0; i < nloc; ++i) {
      local += a[static_cast<std::size_t>(i)] *
               c[static_cast<std::size_t>(i)];
    }
    return mpi.allreduce_value(local, mpi::kSum);
  };

  std::vector<double> rho_history;
  double rho = dot(r_vec, r_vec);
  const double rho0 = rho;
  std::vector<double> q;
  for (int iter = 0; iter < iterations; ++iter) {
    trace::FunctionScope scope(tr, "cg_iteration");
    mpi.check_deadline();
    matvec(q);
    const double p_dot_q = dot(p, q);
    {
      // SPD invariants: the workload's error handling.
      trace::ErrorHandlingScope errhal(tr);
      app_check_finite(p_dot_q, "CG: pAp");
      app_check(p_dot_q > 0.0, "CG: matrix lost positive definiteness");
    }
    const double alpha = rho / p_dot_q;
    for (int i = 0; i < nloc; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
      r_vec[static_cast<std::size_t>(i)] -=
          alpha * q[static_cast<std::size_t>(i)];
    }
    const double rho_next = dot(r_vec, r_vec);
    {
      trace::ErrorHandlingScope errhal(tr);
      app_check_finite(rho_next, "CG: residual norm");
      app_check(rho_next >= 0.0, "CG: negative residual norm");
      app_check(rho_next <= 100.0 * rho0 + 1e-30,
                "CG: residual exploded");
    }
    const double beta = rho_next / rho;
    for (int i = 0; i < nloc; ++i) {
      p[static_cast<std::size_t>(i)] =
          r_vec[static_cast<std::size_t>(i)] +
          beta * p[static_cast<std::size_t>(i)];
    }
    rho = rho_next;
    rho_history.push_back(rho);
  }

  // ---- end phase: verification --------------------------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "cg_verify");
    RegisteredBuffer<double> local(mpi.registry(), 1, rho);
    RegisteredBuffer<double> final_rho(mpi.registry(), 1, 0.0);
    mpi.reduce(local.data(), final_rho.data(), 1, mpi::kDouble, mpi::kMax, 0);
    std::vector<double> observables(x.begin(), x.end());
    observables.insert(observables.end(), rho_history.begin(),
                       rho_history.end());
    if (me == 0) observables.push_back(final_rho[0]);
    digest = digest_doubles(observables, 8);
  }
  return digest;
}

}  // namespace fastfit::apps

#pragma once

// Workload framework: the contract between applications and FastFIT.
//
// A Workload is an SPMD program over MiniMPI that annotates its structure
// (function scopes, execution phases, error-handling regions) through a
// trace::RankContext and returns a result digest per rank. The digest of a
// faulted run is compared against the golden (fault-free) digest to
// distinguish SUCCESS from WRONG_ANS — the workload's *own* checks throw
// AppError and classify as APP_DETECTED instead.
//
// Digest semantics are workload-defined: NPB-style kernels hash their
// verification values at near-full precision (any numeric deviation is a
// wrong answer), while miniMD quantizes its observables coarsely, modeling
// the statistical tolerance the paper notes for LAMMPS' Monte-Carlo-style
// results.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "minimpi/mpi.hpp"
#include "trace/rank_context.hpp"

namespace fastfit::apps {

/// Everything a rank's main function receives.
struct AppContext {
  mpi::Mpi& mpi;
  trace::RankContext& trace;
  std::uint64_t input_seed;  ///< problem seed, identical on all ranks
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short name used in reports ("IS", "FT", "MG", "LU", "miniMD").
  virtual std::string name() const = 0;

  /// Runs one rank to completion; returns this rank's result digest.
  /// Throws AppError when the workload's own error handling detects an
  /// inconsistency.
  virtual std::uint64_t run_rank(AppContext& ctx) const = 0;

  /// Stable serialization of this instance's problem parameters, used to
  /// distinguish differently-configured instances of the same workload in
  /// process-wide caches (the golden-run memo). Two instances with equal
  /// (name, params_key) must produce identical runs for identical world
  /// options. Default: empty (no parameters).
  virtual std::string params_key() const { return {}; }

  /// Whether this workload can survive a fail-stop peer death when the
  /// world runs in repair mode. Default no: a death then classifies as
  /// RANK_DEAD even with --repair on.
  virtual bool can_repair() const { return false; }

  /// ULFM-style repair hook: runs on each survivor after a peer's death,
  /// with `survivors` the shrunken communicator from shrink_and_continue.
  /// Must be deterministic for a given (seed, survivor set). Returns the
  /// rank's post-repair digest. Only called when can_repair() is true.
  virtual std::uint64_t repair_rank(AppContext& ctx,
                                    mpi::Comm survivors) const {
    (void)ctx;
    (void)survivors;
    throw InternalError("repair_rank: workload declared no repair support");
  }
};

/// Order-sensitive combination of per-rank digests into a job digest.
std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests);

/// Digest of raw bytes (exact).
std::uint64_t digest_bytes(std::span<const std::byte> bytes);

/// Digest of doubles quantized to `decimals` significant decimal digits
/// after scaling; NaN/Inf hash to distinct sentinels so corrupted numerics
/// never alias a finite result.
std::uint64_t digest_doubles(std::span<const double> values, int decimals);

/// Result of one complete job execution.
struct JobResult {
  mpi::WorldResult world;
  std::uint64_t digest = 0;  ///< valid only when world.clean()
};

/// Runs `workload` under a fresh World. `tools` (may be null) is installed
/// as the interposition chain; `contexts` must have options.nranks slots
/// and receives the trace annotations. `keepalives` are handed to the
/// World so everything the rank closure references outlives even a
/// quarantined rank thread — callers that heap-allocate their tools and
/// contexts pass the owning pointers here. Each rank's shadow stack is
/// installed as the Mpi stack probe, so pending-op signatures carry
/// application frames.
JobResult run_job(const Workload& workload, const mpi::WorldOptions& options,
                  mpi::ToolHooks* tools, trace::ContextRegistry& contexts,
                  std::vector<std::shared_ptr<void>> keepalives = {});

}  // namespace fastfit::apps

#include "apps/mg.hpp"

#include <cmath>
#include <functional>
#include <numbers>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;

/// Distributed cell-centered 1-D grid level: `nloc` cells per rank plus
/// one halo cell at each end. Cell-centered coarsening nests exactly for
/// power-of-two sizes, and the piecewise-constant transfer operators keep
/// the hierarchy simple and convergent.
struct Level {
  int nloc = 0;
  double h = 0.0;                 // cell width
  std::vector<double> u;          // nloc + 2 (halo cells at 0 and nloc+1)
  std::vector<double> f;          // nloc + 2
};

constexpr std::int32_t kHaloTag = 17;

/// Exchanges halo cells with the left/right neighbour ranks. Dirichlet
/// zero at the domain faces is imposed by reflection (ghost = -edge cell).
void exchange_halo(mpi::Mpi& mpi, Level& level) {
  const int n = mpi.size();
  const int me = mpi.rank();
  auto& u = level.u;
  const auto nloc = static_cast<std::size_t>(level.nloc);

  mpi::ScopedRegistration keep(mpi.registry(), u.data(),
                               u.size() * sizeof(double));
  // Sends are buffered, so eager sends followed by receives cannot
  // deadlock in fault-free runs.
  if (me + 1 < n) {
    mpi.send(&u[nloc], 1, mpi::kDouble, me + 1, kHaloTag);
  }
  if (me > 0) {
    mpi.send(&u[1], 1, mpi::kDouble, me - 1, kHaloTag);
    mpi.recv(&u[0], 1, mpi::kDouble, me - 1, kHaloTag);
  } else {
    u[0] = -u[1];
  }
  if (me + 1 < n) {
    mpi.recv(&u[nloc + 1], 1, mpi::kDouble, me + 1, kHaloTag);
  } else {
    u[nloc + 1] = -u[nloc];
  }
}

/// Weighted-Jacobi smoothing sweeps for -u'' = f.
void smooth(mpi::Mpi& mpi, Level& level, int sweeps) {
  const double h2 = level.h * level.h;
  const double omega = 2.0 / 3.0;
  std::vector<double> next(level.u.size());
  for (int s = 0; s < sweeps; ++s) {
    exchange_halo(mpi, level);
    for (int i = 1; i <= level.nloc; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double jacobi =
          0.5 * (level.u[idx - 1] + level.u[idx + 1] + h2 * level.f[idx]);
      next[idx] = (1.0 - omega) * level.u[idx] + omega * jacobi;
    }
    for (int i = 1; i <= level.nloc; ++i) {
      level.u[static_cast<std::size_t>(i)] = next[static_cast<std::size_t>(i)];
    }
  }
}

/// Local residual r = f + u'' into `r` (interior cells only).
void residual(mpi::Mpi& mpi, Level& level, std::vector<double>& r) {
  exchange_halo(mpi, level);
  const double inv_h2 = 1.0 / (level.h * level.h);
  r.assign(level.u.size(), 0.0);
  for (int i = 1; i <= level.nloc; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    r[idx] = level.f[idx] +
             (level.u[idx - 1] - 2.0 * level.u[idx] + level.u[idx + 1]) *
                 inv_h2;
  }
}

/// Squared global residual norm (MPI_Allreduce, as NPB MG's norm2u3).
double residual_norm2(mpi::Mpi& mpi, trace::RankContext& tr, Level& level) {
  trace::FunctionScope scope(tr, "norm2u3");
  std::vector<double> r;
  residual(mpi, level, r);
  double local = 0.0;
  for (int i = 1; i <= level.nloc; ++i) {
    local += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
  }
  return mpi.allreduce_value(local, mpi::kSum);
}

}  // namespace

std::uint64_t MiniMG::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();

  if (config_.npoints % n != 0) {
    throw ConfigError("MiniMG: rank count must divide the grid size");
  }

  // ---- init phase --------------------------------------------------------
  tr.set_phase(trace::ExecPhase::Init);
  int npoints = 0;
  int vcycles = 0;
  {
    trace::FunctionScope scope(tr, "mg_setup");
    RegisteredBuffer<std::int32_t> params(mpi.registry(), 2);
    if (me == 0) {
      params[0] = config_.npoints;
      params[1] = config_.vcycles;
    }
    mpi.bcast(params.data(), 2, mpi::kInt32, 0);
    npoints = params[0];
    vcycles = params[1];
    // Upper bound guards against absurd inputs that would exhaust memory
    // (a corrupted broadcast of the grid size would otherwise OOM the job).
    app_check(npoints > 0 && npoints <= (1 << 22) && npoints % n == 0,
              "MG: invalid grid size");
    app_check(vcycles > 0 && vcycles <= 64, "MG: implausible cycle count");
  }

  // Build the level hierarchy; the coarsest level keeps >= 1 point/rank.
  std::vector<Level> levels;
  for (int size = npoints; size % n == 0 && size / n >= 1 && size >= 2;
       size /= 2) {
    Level level;
    level.nloc = size / n;
    level.h = 1.0 / static_cast<double>(size);
    level.u.assign(static_cast<std::size_t>(level.nloc) + 2, 0.0);
    level.f.assign(static_cast<std::size_t>(level.nloc) + 2, 0.0);
    levels.push_back(std::move(level));
    if (size / 2 % n != 0 || size / 2 / n < 1) break;
  }
  app_check(levels.size() >= 2, "MG: hierarchy too shallow");

  // ---- input phase: right-hand side --------------------------------------
  tr.set_phase(trace::ExecPhase::Input);
  {
    trace::FunctionScope scope(tr, "zran3");
    // Seed-dependent smooth right-hand side; the stream has no rank index,
    // so all ranks agree on the problem.
    RngStream rng(ctx.input_seed, "mg-rhs");
    const double amp1 = 0.5 + rng.uniform();
    const double amp2 = 0.25 + 0.5 * rng.uniform();
    const double phase = 2.0 * std::numbers::pi * rng.uniform();
    Level& fine = levels.front();
    for (int i = 1; i <= fine.nloc; ++i) {
      const double x =
          (static_cast<double>(me * fine.nloc + i) - 0.5) * fine.h;
      fine.f[static_cast<std::size_t>(i)] =
          amp1 * std::sin(2.0 * std::numbers::pi * x + phase) +
          amp2 * std::sin(6.0 * std::numbers::pi * x);
    }
  }

  // ---- compute phase: V-cycles -------------------------------------------
  tr.set_phase(trace::ExecPhase::Compute);
  const double initial_norm2 = residual_norm2(mpi, tr, levels.front());
  app_check_finite(initial_norm2, "MG: initial residual norm");

  // Recursive V-cycle over the hierarchy.
  const std::function<void(std::size_t)> vcycle = [&](std::size_t depth) {
    trace::FunctionScope scope(tr, depth + 1 == levels.size() ? "mg_coarse"
                                                              : "mg_level");
    Level& level = levels[depth];
    if (depth + 1 == levels.size()) {
      smooth(mpi, level, config_.coarse_smooth);
      return;
    }
    smooth(mpi, level, config_.pre_smooth);

    // Restrict the residual to the coarse grid: coarse cell j covers fine
    // cells 2j-1 and 2j of this rank's slice (cell averaging).
    std::vector<double> r;
    residual(mpi, level, r);
    Level& coarse = levels[depth + 1];
    for (int j = 1; j <= coarse.nloc; ++j) {
      coarse.f[static_cast<std::size_t>(j)] =
          0.5 * (r[static_cast<std::size_t>(2 * j - 1)] +
                 r[static_cast<std::size_t>(2 * j)]);
      coarse.u[static_cast<std::size_t>(j)] = 0.0;
    }
    vcycle(depth + 1);

    // Prolong the coarse correction (cell-centered linear interpolation,
    // which keeps the post-correction residual smooth) and add.
    exchange_halo(mpi, coarse);
    for (int j = 1; j <= coarse.nloc; ++j) {
      const auto cj = static_cast<std::size_t>(j);
      level.u[static_cast<std::size_t>(2 * j - 1)] +=
          0.75 * coarse.u[cj] + 0.25 * coarse.u[cj - 1];
      level.u[static_cast<std::size_t>(2 * j)] +=
          0.75 * coarse.u[cj] + 0.25 * coarse.u[cj + 1];
    }
    smooth(mpi, level, config_.post_smooth);
  };

  double norm2 = initial_norm2;
  for (int cycle = 0; cycle < vcycles; ++cycle) {
    trace::FunctionScope scope(tr, "mg3P");
    mpi.check_deadline();
    vcycle(0);
    const double next_norm2 = residual_norm2(mpi, tr, levels.front());
    {
      // The convergence check is the kernel's error handling: a diverging
      // or non-finite residual aborts the run.
      trace::ErrorHandlingScope errhal(tr);
      trace::FunctionScope check(tr, "convergence_check");
      app_check_finite(next_norm2, "MG: residual norm");
      app_check(next_norm2 <= norm2 * 1.5 + 1e-30,
                "MG: residual diverged across a V-cycle");
      const double worst =
          mpi.allreduce_value(next_norm2, mpi::kMax);
      app_check_finite(worst, "MG: cross-rank residual norm");
    }
    norm2 = next_norm2;
    mpi.barrier();
  }

  // ---- end phase -----------------------------------------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "mg_report");
    RegisteredBuffer<double> local(mpi.registry(), 1, norm2);
    RegisteredBuffer<double> final_norm(mpi.registry(), 1, 0.0);
    mpi.reduce(local.data(), final_norm.data(), 1, mpi::kDouble, mpi::kSum, 0);
    std::vector<double> observables(levels.front().u.begin(),
                                    levels.front().u.end());
    observables.push_back(std::sqrt(norm2));
    if (me == 0) observables.push_back(std::sqrt(final_norm[0]));
    digest = digest_doubles(observables, 8);
  }
  return digest;
}

}  // namespace fastfit::apps

#include "apps/ep.hpp"

#include <cmath>

#include "apps/common.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {

std::uint64_t MiniEP::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int me = mpi.rank();

  // ---- init phase ----------------------------------------------------------
  tr.set_phase(trace::ExecPhase::Init);
  int pairs = 0;
  int annuli = 0;
  {
    trace::FunctionScope scope(tr, "ep_setup");
    mpi::RegisteredBuffer<std::int32_t> params(mpi.registry(), 2);
    if (me == 0) {
      params[0] = config_.pairs_per_rank;
      params[1] = config_.annuli;
    }
    mpi.bcast(params.data(), 2, mpi::kInt32, 0);
    pairs = params[0];
    annuli = params[1];
    trace::ErrorHandlingScope errhal(tr);
    app_check(pairs > 0 && pairs <= (1 << 24), "EP: implausible pair count");
    app_check(annuli > 0 && annuli <= 64, "EP: implausible annulus count");
  }

  // ---- compute phase: generate and tally (no communication) ----------------
  tr.set_phase(trace::ExecPhase::Compute);
  std::vector<std::int64_t> tally(static_cast<std::size_t>(annuli), 0);
  std::int64_t accepted = 0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double max_norm = 0.0;
  {
    trace::FunctionScope scope(tr, "generate_deviates");
    RngStream rng(ctx.input_seed, "ep-pairs", static_cast<std::uint64_t>(me));
    for (int k = 0; k < pairs; ++k) {
      const double u = 2.0 * rng.uniform() - 1.0;
      const double v = 2.0 * rng.uniform() - 1.0;
      const double s = u * u + v * v;
      if (s >= 1.0 || s == 0.0) continue;
      ++accepted;
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      const double gx = u * factor;
      const double gy = v * factor;
      sum_x += gx;
      sum_y += gy;
      const double norm = std::max(std::abs(gx), std::abs(gy));
      max_norm = std::max(max_norm, norm);
      const int ring = std::min(annuli - 1, static_cast<int>(norm));
      ++tally[static_cast<std::size_t>(ring)];
    }
  }

  // ---- end phase: global tallies and verification ---------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "combine_tallies");
    mpi::RegisteredBuffer<std::int64_t> local(
        mpi.registry(), static_cast<std::size_t>(annuli));
    mpi::RegisteredBuffer<std::int64_t> global(
        mpi.registry(), static_cast<std::size_t>(annuli));
    for (int a = 0; a < annuli; ++a) {
      local[static_cast<std::size_t>(a)] = tally[static_cast<std::size_t>(a)];
    }
    mpi.allreduce(local.data(), global.data(), annuli, mpi::kInt64,
                  mpi::kSum);
    const std::int64_t total_accepted =
        mpi.allreduce_value(accepted, mpi::kSum);
    const double gsx = mpi.allreduce_value(sum_x, mpi::kSum);
    const double gsy = mpi.allreduce_value(sum_y, mpi::kSum);
    const double gmax = mpi.allreduce_value(max_norm, mpi::kMax);

    {
      // EP's verification: annulus counts must add up to the accepted
      // pairs, and the deviate means must be plausibly Gaussian.
      trace::ErrorHandlingScope errhal(tr);
      trace::FunctionScope verify(tr, "ep_verify");
      std::int64_t ring_sum = 0;
      for (int a = 0; a < annuli; ++a) {
        const std::int64_t count = global[static_cast<std::size_t>(a)];
        app_check(count >= 0, "EP: negative annulus count");
        ring_sum += count;
      }
      app_check(ring_sum == total_accepted,
                "EP: annulus tallies do not add up");
      app_check_finite(gsx, "EP: sum of deviates (x)");
      app_check_finite(gsy, "EP: sum of deviates (y)");
      const double mean_bound =
          6.0 * std::sqrt(static_cast<double>(total_accepted) + 1.0);
      app_check(std::abs(gsx) < mean_bound && std::abs(gsy) < mean_bound,
                "EP: deviate means implausibly biased");
    }
    mpi.barrier();

    std::vector<double> observables;
    for (int a = 0; a < annuli; ++a) {
      observables.push_back(
          static_cast<double>(global[static_cast<std::size_t>(a)]));
    }
    observables.push_back(static_cast<double>(total_accepted));
    observables.push_back(gsx);
    observables.push_back(gsy);
    observables.push_back(gmax);
    digest = digest_doubles(observables, 6);
  }
  return digest;
}

}  // namespace fastfit::apps

#pragma once

// Minimal power-of-two complex FFT used by mini-FT. Not performance-tuned;
// correctness and determinism are what the fault-injection substrate
// needs.

#include <complex>
#include <vector>

namespace fastfit::apps {

/// In-place iterative radix-2 Cooley-Tukey transform. `sign` = -1 for the
/// forward transform, +1 for the inverse (unscaled: the caller divides by
/// N once per full round trip). Size must be a power of two.
void fft1d(std::vector<std::complex<double>>& a, int sign);

}  // namespace fastfit::apps

#include "apps/ft.hpp"

#include <complex>
#include <numbers>

#include "apps/common.hpp"
#include "apps/fft.hpp"
#include "support/rng.hpp"

namespace fastfit::apps {
namespace {

using mpi::RegisteredBuffer;
using Complexd = std::complex<double>;

/// Signed frequency index for an unsigned grid index.
double freq(int i, int n) { return i <= n / 2 ? i : i - n; }

}  // namespace

std::uint64_t MiniFT::run_rank(AppContext& ctx) const {
  auto& mpi = ctx.mpi;
  auto& tr = ctx.trace;
  const int n = mpi.size();
  const int me = mpi.rank();

  const int nx = config_.nx;
  const int ny = config_.ny;
  const int nz = config_.nz;
  if (nz % n != 0 || (nx * ny) % n != 0) {
    throw ConfigError("MiniFT: rank count must divide nz and nx*ny");
  }
  const int zloc = nz / n;          // z-planes per rank (slab layout)
  const int cols = nx * ny;         // total z-pencils
  const int cpr = cols / n;         // pencils per rank (pencil layout)

  // ---- init phase: broadcast the problem parameters ---------------------
  tr.set_phase(trace::ExecPhase::Init);
  double alpha = 0.0;
  int iterations = 0;
  {
    trace::FunctionScope scope(tr, "ft_setup");
    RegisteredBuffer<double> params(mpi.registry(), 2);
    if (me == 0) {
      params[0] = config_.alpha;
      params[1] = static_cast<double>(config_.iterations);
    }
    mpi.bcast(params.data(), 2, mpi::kDouble, 0);
    alpha = params[0];
    iterations = static_cast<int>(params[1]);
    app_check_finite(alpha, "FT: diffusion coefficient");
    app_check(iterations > 0 && iterations <= 64,
              "FT: implausible iteration count");
  }

  // ---- input phase: initial field + forward 3-D FFT ---------------------
  tr.set_phase(trace::ExecPhase::Input);
  // Slab field: [z_local][y][x] interleaved complex.
  const auto slab_len = static_cast<std::size_t>(2 * zloc * ny * nx);
  RegisteredBuffer<double> slab(mpi.registry(), slab_len, 0.0);
  {
    trace::FunctionScope scope(tr, "compute_initial_conditions");
    RngStream rng(ctx.input_seed, "ft-field", static_cast<std::uint64_t>(me));
    for (std::size_t i = 0; i < slab_len; ++i) slab[i] = rng.uniform();
  }

  const auto slab_at = [&](int z, int y, int x) {
    return static_cast<std::size_t>(2 * ((z * ny + y) * nx + x));
  };

  // Local x- and y-direction FFTs over the slab.
  const auto fft_xy = [&](RegisteredBuffer<double>& field, int sign) {
    std::vector<Complexd> line;
    for (int z = 0; z < zloc; ++z) {
      for (int y = 0; y < ny; ++y) {
        line.resize(static_cast<std::size_t>(nx));
        for (int x = 0; x < nx; ++x) {
          const auto i = slab_at(z, y, x);
          line[static_cast<std::size_t>(x)] = {field[i], field[i + 1]};
        }
        fft1d(line, sign);
        for (int x = 0; x < nx; ++x) {
          const auto i = slab_at(z, y, x);
          field[i] = line[static_cast<std::size_t>(x)].real();
          field[i + 1] = line[static_cast<std::size_t>(x)].imag();
        }
      }
      for (int x = 0; x < nx; ++x) {
        line.resize(static_cast<std::size_t>(ny));
        for (int y = 0; y < ny; ++y) {
          const auto i = slab_at(z, y, x);
          line[static_cast<std::size_t>(y)] = {field[i], field[i + 1]};
        }
        fft1d(line, sign);
        for (int y = 0; y < ny; ++y) {
          const auto i = slab_at(z, y, x);
          field[i] = line[static_cast<std::size_t>(y)].real();
          field[i + 1] = line[static_cast<std::size_t>(y)].imag();
        }
      }
    }
  };

  // Transpose slab <-> pencil with MPI_Alltoall. Send block for rank r =
  // my zloc planes of r's column chunk; the pencil layout is
  // [local column][global z] interleaved complex.
  const auto block_doubles = 2 * zloc * cpr;
  const auto transpose_to_pencil = [&](RegisteredBuffer<double>& from_slab,
                                       RegisteredBuffer<double>& to_pencil) {
    RegisteredBuffer<double> sendbuf(
        mpi.registry(), static_cast<std::size_t>(block_doubles * n));
    for (int r = 0; r < n; ++r) {
      std::size_t o = static_cast<std::size_t>(r * block_doubles);
      for (int z = 0; z < zloc; ++z) {
        for (int c = 0; c < cpr; ++c) {
          const int col = r * cpr + c;
          const auto i = slab_at(z, col / nx, col % nx);
          sendbuf[o++] = from_slab[i];
          sendbuf[o++] = from_slab[i + 1];
        }
      }
    }
    RegisteredBuffer<double> recvbuf(
        mpi.registry(), static_cast<std::size_t>(block_doubles * n));
    mpi.alltoall(sendbuf.data(), block_doubles, mpi::kDouble, recvbuf.data(),
                 block_doubles, mpi::kDouble);
    for (int s = 0; s < n; ++s) {
      std::size_t o = static_cast<std::size_t>(s * block_doubles);
      for (int dz = 0; dz < zloc; ++dz) {
        const int z = s * zloc + dz;
        for (int c = 0; c < cpr; ++c) {
          const auto i = static_cast<std::size_t>(2 * (c * nz + z));
          to_pencil[i] = recvbuf[o++];
          to_pencil[i + 1] = recvbuf[o++];
        }
      }
    }
  };
  const auto transpose_to_slab = [&](RegisteredBuffer<double>& from_pencil,
                                     RegisteredBuffer<double>& to_slab) {
    RegisteredBuffer<double> sendbuf(
        mpi.registry(), static_cast<std::size_t>(block_doubles * n));
    for (int r = 0; r < n; ++r) {
      std::size_t o = static_cast<std::size_t>(r * block_doubles);
      for (int dz = 0; dz < zloc; ++dz) {
        const int z = r * zloc + dz;
        for (int c = 0; c < cpr; ++c) {
          const auto i = static_cast<std::size_t>(2 * (c * nz + z));
          sendbuf[o++] = from_pencil[i];
          sendbuf[o++] = from_pencil[i + 1];
        }
      }
    }
    RegisteredBuffer<double> recvbuf(
        mpi.registry(), static_cast<std::size_t>(block_doubles * n));
    mpi.alltoall(sendbuf.data(), block_doubles, mpi::kDouble, recvbuf.data(),
                 block_doubles, mpi::kDouble);
    for (int s = 0; s < n; ++s) {
      std::size_t o = static_cast<std::size_t>(s * block_doubles);
      for (int z = 0; z < zloc; ++z) {
        for (int c = 0; c < cpr; ++c) {
          const int col = s * cpr + c;
          const auto i = slab_at(z, col / nx, col % nx);
          to_slab[i] = recvbuf[o++];
          to_slab[i + 1] = recvbuf[o++];
        }
      }
    }
  };

  // Forward transform of the initial field into pencil spectral space.
  const auto pencil_len = static_cast<std::size_t>(2 * cpr * nz);
  RegisteredBuffer<double> u0hat(mpi.registry(), pencil_len, 0.0);
  {
    trace::FunctionScope scope(tr, "forward_fft");
    fft_xy(slab, -1);
    transpose_to_pencil(slab, u0hat);
    std::vector<Complexd> line(static_cast<std::size_t>(nz));
    for (int c = 0; c < cpr; ++c) {
      for (int z = 0; z < nz; ++z) {
        const auto i = static_cast<std::size_t>(2 * (c * nz + z));
        line[static_cast<std::size_t>(z)] = {u0hat[i], u0hat[i + 1]};
      }
      fft1d(line, -1);
      for (int z = 0; z < nz; ++z) {
        const auto i = static_cast<std::size_t>(2 * (c * nz + z));
        u0hat[i] = line[static_cast<std::size_t>(z)].real();
        u0hat[i + 1] = line[static_cast<std::size_t>(z)].imag();
      }
    }
  }

  // ---- compute phase: evolve + inverse transform + checksum -------------
  tr.set_phase(trace::ExecPhase::Compute);
  RegisteredBuffer<double> work_pencil(mpi.registry(), pencil_len, 0.0);
  RegisteredBuffer<double> out_slab(mpi.registry(), slab_len, 0.0);
  std::vector<double> checksums;
  const double norm = 1.0 / static_cast<double>(nx * ny * nz);
  for (int iter = 1; iter <= iterations; ++iter) {
    trace::FunctionScope scope(tr, "evolve_step");
    mpi.check_deadline();
    {
      trace::FunctionScope evolve(tr, "evolve");
      const double t = static_cast<double>(iter);
      for (int c = 0; c < cpr; ++c) {
        const int col = me * cpr + c;
        const double ky = freq(col / nx, ny);
        const double kx = freq(col % nx, nx);
        for (int z = 0; z < nz; ++z) {
          const double kz = freq(z, nz);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const double factor = std::exp(
              -4.0 * std::numbers::pi * std::numbers::pi * alpha * t * k2);
          const auto i = static_cast<std::size_t>(2 * (c * nz + z));
          work_pencil[i] = u0hat[i] * factor;
          work_pencil[i + 1] = u0hat[i + 1] * factor;
        }
      }
    }
    {
      trace::FunctionScope inverse(tr, "inverse_fft");
      std::vector<Complexd> line(static_cast<std::size_t>(nz));
      for (int c = 0; c < cpr; ++c) {
        for (int z = 0; z < nz; ++z) {
          const auto i = static_cast<std::size_t>(2 * (c * nz + z));
          line[static_cast<std::size_t>(z)] = {work_pencil[i],
                                               work_pencil[i + 1]};
        }
        fft1d(line, +1);
        for (int z = 0; z < nz; ++z) {
          const auto i = static_cast<std::size_t>(2 * (c * nz + z));
          work_pencil[i] = line[static_cast<std::size_t>(z)].real();
          work_pencil[i + 1] = line[static_cast<std::size_t>(z)].imag();
        }
      }
      transpose_to_slab(work_pencil, out_slab);
      fft_xy(out_slab, +1);
      for (std::size_t i = 0; i < slab_len; ++i) out_slab[i] *= norm;
    }
    {
      // NPB FT checksums strided samples of u(t) and reduces the complex
      // sum to rank 0 (the paper's Fig 2 collective).
      trace::FunctionScope checksum(tr, "checksum");
      RegisteredBuffer<double> local(mpi.registry(), 2, 0.0);
      for (int j = 1; j <= 128; ++j) {
        const int x = j % nx;
        const int y = (3 * j) % ny;
        const int z = (5 * j) % nz;
        if (z / zloc == me) {
          const auto i = slab_at(z % zloc, y, x);
          local[0] += out_slab[i];
          local[1] += out_slab[i + 1];
        }
      }
      RegisteredBuffer<double> global(mpi.registry(), 2, 0.0);
      mpi.reduce(local.data(), global.data(), 2, mpi::kDouble, mpi::kSum, 0);
      if (me == 0) {
        app_check_finite(global[0], "FT: checksum (real part)");
        app_check_finite(global[1], "FT: checksum (imaginary part)");
        checksums.push_back(global[0]);
        checksums.push_back(global[1]);
      }
    }
  }

  // ---- end phase: digest -------------------------------------------------
  tr.set_phase(trace::ExecPhase::End);
  std::uint64_t digest;
  {
    trace::FunctionScope scope(tr, "ft_report");
    std::vector<double> observables(out_slab.begin(), out_slab.end());
    observables.insert(observables.end(), checksums.begin(), checksums.end());
    digest = digest_doubles(observables, 6);
  }
  return digest;
}

}  // namespace fastfit::apps

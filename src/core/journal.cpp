#include "core/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {
namespace {

constexpr int kJournalVersion = 1;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal scanner for the flat one-line JSON objects the journal writes.
/// Values come back as raw text for numbers and unescaped text for
/// strings. Throws ConfigError on anything malformed.
std::map<std::string, std::string> parse_flat_object(const std::string& line) {
  const auto fail = [&]() -> std::map<std::string, std::string> {
    throw ConfigError("journal: malformed line: " + line);
  };
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&]() -> std::string {
    if (i >= line.size() || line[i] != '"') fail();
    ++i;
    std::string s;
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) fail();
        const char esc = line[i++];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (i + 4 > line.size()) fail();
            s += static_cast<char>(
                std::strtoul(line.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
            break;
          }
          default: fail();
        }
      } else {
        s += c;
      }
    }
    if (i >= line.size()) fail();
    ++i;  // closing quote
    return s;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') fail();
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return out;
  while (true) {
    skip_ws();
    const std::string key = parse_string();
    skip_ws();
    if (i >= line.size() || line[i] != ':') fail();
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      value = parse_string();
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        value += line[i++];
      }
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) fail();
    }
    out[key] = value;
    skip_ws();
    if (i >= line.size()) fail();
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') break;
    fail();
  }
  return out;
}

std::uint64_t parse_u64_field(const std::map<std::string, std::string>& kv,
                              const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw ConfigError("journal: missing field '" + key + "'");
  }
  const std::string& value = it->second;
  if (value.empty()) throw ConfigError("journal: empty field '" + key + "'");
  std::uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw ConfigError("journal: field '" + key +
                        "' is not a non-negative integer: " + value);
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw ConfigError("journal: field '" + key + "' overflows: " + value);
    }
    out = out * 10 + digit;
  }
  return out;
}

std::string require_field(const std::map<std::string, std::string>& kv,
                          const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw ConfigError("journal: missing field '" + key + "'");
  }
  return it->second;
}

std::string header_line(const JournalHeader& header) {
  std::ostringstream out;
  out << "{\"fastfit_journal\":" << kJournalVersion << ",\"workload\":\""
      << json_escape(header.workload) << "\",\"seed\":" << header.seed
      << ",\"nranks\":" << header.nranks
      << ",\"trials_per_point\":" << header.trials_per_point
      << ",\"fault_model\":\"" << json_escape(header.fault_model)
      << "\",\"algorithms\":\"" << json_escape(header.algorithms)
      << "\",\"golden_digest\":" << header.golden_digest
      << ",\"shard_index\":" << header.shard_index
      << ",\"shard_count\":" << header.shard_count << '}';
  return out.str();
}

/// Shard fields default to 1 (unsharded) when absent so pre-shard
/// journals keep resuming.
std::uint64_t parse_shard_field(const std::map<std::string, std::string>& kv,
                                const std::string& key) {
  return kv.count(key) ? parse_u64_field(kv, key) : 1;
}

template <typename T>
void check_header_field(const std::string& name, const T& journaled,
                        const T& live) {
  if (journaled == live) return;
  std::ostringstream out;
  out << "journal: cannot resume, " << name << " differs (journal: "
      << journaled << ", campaign: " << live << ")";
  throw ConfigError(out.str());
}

int open_for_append(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw ConfigError("journal: cannot open for append: " + path + ": " +
                      std::strerror(errno));
  }
  return fd;
}

}  // namespace

std::string point_key(const InjectionPoint& point) {
  std::string key = std::to_string(point.site_id) + ':' +
                    std::to_string(point.rank) + ':' +
                    std::to_string(point.invocation) + ':' +
                    std::to_string(static_cast<int>(point.param));
  // The fault-model axis joins the key only for non-default specs, so
  // pre-v2 journals (implicitly exact-point single-bit-flip throughout)
  // keep resuming byte for byte.
  if (!point.fault.is_default()) key += ':' + point.fault.canonical();
  return key;
}

TrialJournal::TrialJournal(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

TrialJournal::~TrialJournal() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; the synced prefix is still valid.
  }
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TrialJournal> TrialJournal::create(
    const std::string& path, const JournalHeader& header) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      throw ConfigError("journal: " + path +
                        " already exists; resume it or remove it");
    }
    throw ConfigError("journal: cannot create " + path + ": " +
                      std::strerror(errno));
  }
  auto journal = std::unique_ptr<TrialJournal>(new TrialJournal(path, fd));
  {
    std::lock_guard lock(journal->mutex_);
    journal->append_line(header_line(header));
    journal->flush_locked();  // the identity header must survive any crash
  }
  return journal;
}

std::unique_ptr<TrialJournal> TrialJournal::resume(
    const std::string& path, const JournalHeader& expected) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return create(path, expected);  // died before the first write

  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string content = raw.str();

  // Split on '\n' by hand so a torn final line (a partial write cut by
  // SIGKILL) is recognizable: every intact record ends with a newline.
  std::vector<std::string> lines;
  std::vector<std::size_t> line_ends;  // byte offset just past each '\n'
  std::size_t start = 0;
  std::string tail;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      lines.push_back(content.substr(start, i - start));
      line_ends.push_back(i + 1);
      start = i + 1;
    }
  }
  if (start < content.size()) tail = content.substr(start);

  if (lines.empty()) {
    // Only a torn fragment (or empty file): nothing usable — start over.
    if (::truncate(path.c_str(), 0) != 0) {
      throw ConfigError("journal: cannot truncate " + path + ": " +
                        std::strerror(errno));
    }
    ::unlink(path.c_str());
    return create(path, expected);
  }

  const auto header = parse_flat_object(lines[0]);
  if (parse_u64_field(header, "fastfit_journal") !=
      static_cast<std::uint64_t>(kJournalVersion)) {
    throw ConfigError("journal: unsupported version in " + path);
  }
  check_header_field("workload", require_field(header, "workload"),
                     expected.workload);
  check_header_field("seed", parse_u64_field(header, "seed"), expected.seed);
  check_header_field("nranks", parse_u64_field(header, "nranks"),
                     static_cast<std::uint64_t>(expected.nranks));
  check_header_field("trials_per_point",
                     parse_u64_field(header, "trials_per_point"),
                     static_cast<std::uint64_t>(expected.trials_per_point));
  check_header_field("fault_model", require_field(header, "fault_model"),
                     expected.fault_model);
  check_header_field("algorithms", require_field(header, "algorithms"),
                     expected.algorithms);
  check_header_field("golden_digest", parse_u64_field(header, "golden_digest"),
                     expected.golden_digest);
  check_header_field("shard_index", parse_shard_field(header, "shard_index"),
                     static_cast<std::uint64_t>(expected.shard_index));
  check_header_field("shard_count", parse_shard_field(header, "shard_count"),
                     static_cast<std::uint64_t>(expected.shard_count));

  auto journal = std::unique_ptr<TrialJournal>(new TrialJournal(path, -1));
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto kv = parse_flat_object(lines[i]);  // corrupt body is fatal
    const auto type = require_field(kv, "t");
    const auto key = require_field(kv, "p");
    if (type == "trial") {
      const auto trial = parse_u64_field(kv, "i");
      const auto outcome = parse_u64_field(kv, "o");
      if (outcome >= inject::kNumOutcomes) {
        throw ConfigError("journal: outcome out of range: " + lines[i]);
      }
      auto& slots = journal->trials_[key];
      if (trial >= slots.size()) slots.resize(trial + 1, -1);
      if (slots[trial] < 0) ++journal->loaded_;
      slots[trial] = static_cast<std::int16_t>(outcome);
    } else if (type == "label") {
      journal->labels_[key] =
          static_cast<std::size_t>(parse_u64_field(kv, "l"));
    } else if (type == "quar") {
      QuarantineRecord record;
      record.retries =
          static_cast<std::uint32_t>(parse_u64_field(kv, "retries"));
      record.error = require_field(kv, "err");
      journal->quarantines_[key] = std::move(record);
    } else {
      throw ConfigError("journal: unknown record type '" + type + "'");
    }
  }

  if (!tail.empty()) {
    // Torn final line: drop it. The trials it named simply re-run.
    if (::truncate(path.c_str(), static_cast<off_t>(line_ends.back())) != 0) {
      throw ConfigError("journal: cannot truncate torn line in " + path +
                        ": " + std::strerror(errno));
    }
  }
  journal->fd_ = open_for_append(path);
  return journal;
}

std::optional<inject::Outcome> TrialJournal::lookup(
    const std::string& key, std::uint64_t trial) const {
  std::lock_guard lock(mutex_);
  const auto it = trials_.find(key);
  if (it == trials_.end()) return std::nullopt;
  if (trial >= it->second.size() || it->second[trial] < 0) return std::nullopt;
  return static_cast<inject::Outcome>(it->second[trial]);
}

void TrialJournal::record_trial(const std::string& key, std::uint64_t trial,
                                inject::Outcome outcome, bool deterministic,
                                const std::string& autopsy,
                                const std::string& model) {
  std::lock_guard lock(mutex_);
  auto& slots = trials_[key];
  if (trial >= slots.size()) slots.resize(trial + 1, -1);
  if (slots[trial] >= 0) return;  // already journaled
  slots[trial] = static_cast<std::int16_t>(outcome);
  std::ostringstream line;
  line << "{\"t\":\"trial\",\"p\":\"" << json_escape(key) << "\",\"i\":"
       << trial << ",\"o\":" << static_cast<int>(outcome);
  // Forensic fields ("d", "a", "m"): audit-trail only. Replay reads just
  // (p, i, o), and parse_flat_object tolerates unknown keys, so older
  // and newer journals interleave freely. "m" names the fault model the
  // trial ran under (canonical spec string).
  if (deterministic) line << ",\"d\":1";
  if (!autopsy.empty()) line << ",\"a\":\"" << json_escape(autopsy) << '"';
  if (!model.empty()) line << ",\"m\":\"" << json_escape(model) << '"';
  line << '}';
  append_line(line.str());
}

void TrialJournal::record_quarantine(const std::string& key,
                                     std::uint32_t retries,
                                     const std::string& error) {
  std::lock_guard lock(mutex_);
  quarantines_[key] = QuarantineRecord{retries, error};
  std::ostringstream line;
  line << "{\"t\":\"quar\",\"p\":\"" << json_escape(key) << "\",\"retries\":"
       << retries << ",\"err\":\"" << json_escape(error) << "\"}";
  append_line(line.str());
}

std::optional<QuarantineRecord> TrialJournal::quarantine(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = quarantines_.find(key);
  if (it == quarantines_.end()) return std::nullopt;
  return it->second;
}

void TrialJournal::check_or_record_label(const std::string& key,
                                         std::size_t label) {
  std::lock_guard lock(mutex_);
  const auto it = labels_.find(key);
  if (it != labels_.end()) {
    if (it->second != label) {
      throw ConfigError("journal: training label for point " + key +
                        " diverged (journal: " + std::to_string(it->second) +
                        ", campaign: " + std::to_string(label) +
                        ") — resumed with a different label mode or "
                        "thresholds?");
    }
    return;
  }
  labels_[key] = label;
  std::ostringstream line;
  line << "{\"t\":\"label\",\"p\":\"" << json_escape(key) << "\",\"l\":"
       << label << '}';
  append_line(line.str());
}

std::optional<std::size_t> TrialJournal::label(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = labels_.find(key);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

void TrialJournal::append_line(const std::string& line) {
  buffer_ += line;
  buffer_ += '\n';
  if (auto& rec = telemetry::Recorder::instance(); rec.enabled()) {
    static auto& lines = rec.counter("fastfit_journal_lines_total",
                                     "JSONL records appended to the journal");
    lines.add();
  }
  if (++buffered_lines_ >= kFlushBatch) flush_locked();
}

void TrialJournal::flush_locked() {
  if (buffer_.empty()) return;
  telemetry::ScopedSpan span("journal-fsync", telemetry::Track::Journal, 0);
  span.arg("lines", std::to_string(buffered_lines_));
  span.arg("bytes", std::to_string(buffer_.size()));
  if (auto& rec = telemetry::Recorder::instance(); rec.enabled()) {
    static auto& flushes = rec.counter(
        "fastfit_journal_flushes_total", "Write+fsync batches of the journal");
    flushes.add();
  }
  const char* data = buffer_.data();
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConfigError("journal: write failed: " + path_ + ": " +
                        std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
  buffered_lines_ = 0;
  if (::fsync(fd_) != 0) {
    throw ConfigError("journal: fsync failed: " + path_ + ": " +
                      std::strerror(errno));
  }
}

void TrialJournal::flush() {
  std::lock_guard lock(mutex_);
  flush_locked();
}

}  // namespace fastfit::core

#include "core/fastfit.hpp"

namespace fastfit::core {

FastFit::FastFit(const apps::Workload& workload, FastFitOptions options)
    : driver_(workload, std::move(options)) {}

FastFitResult FastFit::run() { return driver_.run(); }

Campaign& FastFit::campaign() { return driver_.campaign(); }

const Campaign& FastFit::campaign() const { return driver_.campaign(); }

}  // namespace fastfit::core

#include "core/fastfit.hpp"

#include "support/error.hpp"

namespace fastfit::core {

double FastFitResult::total_reduction() const {
  if (stats.total_points == 0) return 0.0;
  return 1.0 - static_cast<double>(measured.size()) /
                   static_cast<double>(stats.total_points);
}

FastFit::FastFit(const apps::Workload& workload, FastFitOptions options)
    : options_(options), campaign_(workload, options.campaign) {}

FastFitResult FastFit::run() {
  if (ran_) throw InternalError("FastFit::run: single use");
  ran_ = true;

  campaign_.profile();
  if (!options_.journal.empty()) {
    campaign_.attach_journal(options_.journal, options_.resume
                                                   ? JournalMode::Resume
                                                   : JournalMode::Create);
  }

  FastFitResult result;
  result.stats = campaign_.stats();

  if (options_.use_ml) {
    auto ml = run_ml_loop(campaign_, campaign_.enumeration().points,
                          options_.ml);
    result.ml_reduction = ml.ml_reduction();
    result.measured = std::move(ml.measured);
    result.predicted = std::move(ml.predicted);
    result.final_accuracy = ml.final_accuracy;
    result.threshold_reached = ml.threshold_reached;
    result.ml_rounds = ml.rounds;
    result.model = std::move(ml.model);
  } else {
    // Traditional mode: measure every structurally surviving point.
    result.measured = campaign_.measure_many(campaign_.enumeration().points);
  }
  campaign_.detach_journal();
  result.health = campaign_.health();
  return result;
}

}  // namespace fastfit::core

#pragma once

// Durable prefix-replay recordings (satellite of the fiber-engine PR).
//
// The fault-free recording behind the snapshot fast path is a pure
// function of the campaign identity (workload, params, nranks, seed,
// algorithms) — the golden digest proves it. That makes it safely
// shareable across processes: a resumed campaign can reload it instead
// of re-running the fault-free world, and the shard workers of one study
// can point at a single file and pay the recording cost once between
// them.
//
// The on-disk format is a little-endian binary log: a magic+version
// header, the identity string and golden digest it was recorded under,
// then the per-rank op streams with their payload chunks inline. Loads
// re-intern every chunk through a fresh ChunkStore, so the in-memory
// dedup (and payload_bytes) is identical to a freshly recorded run.
// Writers go through a temp file + rename, so concurrent shard workers
// racing on the same path see either nothing or a complete file.

#include <memory>
#include <string>

#include "minimpi/snapshot.hpp"

namespace fastfit::core {

/// Serializes `recording` to `path` (atomically, via temp + rename),
/// stamping it with the campaign identity and golden digest. Returns
/// false (without throwing) when the file cannot be written — recording
/// persistence is an optimization, never a reason to fail a campaign.
bool save_recording(const std::string& path,
                    const mpi::WorldRecording& recording,
                    const std::string& identity, std::uint64_t golden_digest);

/// Loads a recording previously saved at `path`, validating the identity
/// string and golden digest. Returns nullptr (with the reason in `why`,
/// if non-null) when the file is missing, truncated, corrupt, or was
/// recorded under a different campaign — the caller re-records.
std::shared_ptr<const mpi::WorldRecording> load_recording(
    const std::string& path, const std::string& identity,
    std::uint64_t golden_digest, std::string* why = nullptr);

}  // namespace fastfit::core

#include "core/p2p_study.hpp"

#include <sstream>

#include "profile/queries.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::core {
namespace {

std::string short_location(const profile::P2pSiteProfile& site) {
  std::string name = site.file;
  if (const auto slash = name.rfind('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return name + ":" + std::to_string(site.line);
}

std::vector<mpi::P2pParam> p2p_params() {
  return {mpi::P2pParam::Buffer, mpi::P2pParam::Count,
          mpi::P2pParam::Datatype, mpi::P2pParam::Peer, mpi::P2pParam::Tag};
}

}  // namespace

P2pEnumeration enumerate_p2p_points(const profile::Profiler& profiler) {
  P2pEnumeration out;
  out.stats.nranks = profiler.nranks();

  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).p2p_sites) {
      out.stats.total_points +=
          site.invocations.size() * static_cast<std::size_t>(mpi::kNumP2pParams);
    }
  }

  const auto classes = trace::equivalence_classes(profiler.contexts());
  out.stats.equivalence_classes = classes.size();
  for (const auto& cls : classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).p2p_sites) {
      out.stats.after_semantic +=
          site.invocations.size() * static_cast<std::size_t>(mpi::kNumP2pParams);
    }
  }

  for (const auto& cls : classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).p2p_sites) {
      const auto representatives = profile::stack_representatives(site);
      const auto n_inv = profile::n_invocations(site);
      const auto depth = profile::mean_stack_depth(site);
      const auto n_stacks = profile::n_distinct_stacks(site);
      for (const auto& inv : representatives) {
        for (mpi::P2pParam param : p2p_params()) {
          P2pInjectionPoint point;
          point.site_id = site_id;
          point.kind = site.kind;
          point.site_location = short_location(site);
          point.rank = rep;
          point.invocation = inv.invocation;
          point.param = param;
          point.stack = inv.stack;
          point.phase = inv.phase;
          point.errhal = inv.errhal;
          point.n_inv = n_inv;
          point.stack_depth = depth;
          point.n_diff_stack = n_stacks;
          out.points.push_back(point);
        }
      }
    }
  }
  out.stats.after_context = out.points.size();
  return out;
}

double P2pPointResult::error_rate() const {
  if (trials == 0) return 0.0;
  return 1.0 -
         static_cast<double>(
             counts[static_cast<std::size_t>(inject::Outcome::Success)]) /
             static_cast<double>(trials);
}

double P2pPointResult::fraction(inject::Outcome outcome) const {
  if (trials == 0) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(outcome)]) /
         static_cast<double>(trials);
}

P2pPointResult measure_p2p(Campaign& campaign, const P2pInjectionPoint& point,
                           std::uint32_t trials) {
  P2pPointResult result;
  result.point = point;
  for (std::uint32_t t = 0; t < trials; ++t) {
    inject::P2pFaultSpec spec;
    spec.site_id = point.site_id;
    spec.rank = point.rank;
    spec.invocation = point.invocation;
    spec.param = point.param;
    // P2P studies take the manifestation of the campaign's *first* fault
    // model; the p2p injector has no trigger/message/death machinery.
    const auto& fault = campaign.options().fault_models.front();
    if (!inject::is_parameter_model(fault.model)) {
      // Defense in depth: the CLI rejects this at parse time; direct API
      // callers get the same actionable message here.
      throw ConfigError("measure_p2p: fault model '" + fault.canonical() +
                        "' has no p2p parameter manifestation; supported "
                        "families: " +
                        inject::parameter_fault_model_names());
    }
    spec.model = fault.model;
    spec.trial = t;  // P2pFaultSpec::stream_index mixes in the coordinates

    inject::P2pInjector injector(spec, campaign.options().seed);
    mpi::WorldOptions opts;
    opts.nranks = campaign.options().nranks;
    opts.seed = campaign.options().seed;
    opts.watchdog = campaign.watchdog();
    opts.algorithms = campaign.options().algorithms;
    trace::ContextRegistry contexts(opts.nranks);
    const auto job =
        apps::run_job(campaign.workload(), opts, &injector, contexts);
    result.record(
        inject::classify(job.world, job.digest, campaign.golden_digest()));
  }
  return result;
}

std::array<double, inject::kNumOutcomes> p2p_outcome_distribution(
    const std::vector<P2pPointResult>& results,
    std::optional<mpi::P2pKind> kind, std::optional<mpi::P2pParam> param) {
  std::array<double, inject::kNumOutcomes> out{};
  std::uint64_t total = 0;
  for (const auto& r : results) {
    if (kind && r.point.kind != *kind) continue;
    if (param && r.point.param != *param) continue;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      out[o] += r.counts[o];
      total += r.counts[o];
    }
  }
  if (total > 0) {
    for (double& v : out) v /= static_cast<double>(total);
  }
  return out;
}

}  // namespace fastfit::core

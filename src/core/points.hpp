#pragma once

// Injection points and the bookkeeping of their pruning.
//
// Paper Sec II: "Each invocation of an MPI collective call site [on each
// process, for each input parameter] is a potential fault injection
// point." FastFIT prunes that space in two structural steps before the ML
// stage: semantic pruning (representative ranks per equivalence class) and
// application-context pruning (representative invocations per distinct
// call stack).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "inject/fault_model.hpp"
#include "inject/outcome.hpp"
#include "minimpi/hooks.hpp"
#include "minimpi/types.hpp"
#include "ml/dataset.hpp"
#include "trace/rank_context.hpp"
#include "trace/shadow_stack.hpp"

namespace fastfit::core {

/// One (surviving) fault injection point, with the application features
/// the ML model consumes attached.
struct InjectionPoint {
  std::uint32_t site_id = 0;
  mpi::CollectiveKind kind{};
  std::string site_location;     ///< "file:line" for reports
  int rank = 0;                  ///< representative world rank
  std::uint64_t invocation = 0;  ///< representative invocation ordinal
  mpi::Param param{};
  /// Fault model x trigger this point runs under (campaign fault-model
  /// axis; the default is the paper's exact-point single bit flip).
  inject::FaultModelSpec fault{};

  // Application features (paper Sec III-C).
  trace::StackId stack = 0;
  trace::ExecPhase phase{};
  bool errhal = false;
  std::uint64_t n_inv = 0;        ///< invocations of this site on this rank
  double stack_depth = 0.0;       ///< mean shadow-stack depth at the site
  std::uint64_t n_diff_stack = 0; ///< distinct call stacks at the site

  /// Feature vector in the ml::Feature order.
  ml::FeatureVec features() const;
};

/// Point counts through the pruning pipeline (the raw material of the
/// paper's Table III).
struct PruningStats {
  std::uint64_t total_points = 0;     ///< all ranks x sites x invocations x params
  std::uint64_t after_semantic = 0;   ///< representative ranks only
  std::uint64_t after_context = 0;    ///< + one invocation per distinct stack
  std::size_t equivalence_classes = 0;
  int nranks = 0;

  /// Table III "MPI" column: reduction from semantic pruning alone.
  double semantic_reduction() const;
  /// Table III "App" column: additional reduction from context pruning,
  /// relative to the post-semantic count.
  double context_reduction() const;
  /// Combined structural reduction (before ML).
  double structural_reduction() const;

  /// Shard-merge validation compares the stats of every fragment.
  bool operator==(const PruningStats& other) const = default;
};

/// Supervision record of one point's execution (not part of the paper's
/// response statistics; the campaign's own health).
struct ExecStats {
  std::uint32_t retries = 0;  ///< internal-error retries consumed
  bool quarantined = false;   ///< the trial guard gave up on this point
  /// Last internal error, attributed: "attempt N on executor thread K:
  /// <what()>" (or "on main thread" for the serial path), so quarantine
  /// messages line up with trace lanes and logs.
  std::string last_error;
  /// World autopsy of the point's most recent non-SUCCESS trial (one-line
  /// summary: verdict + per-rank phase counts).
  std::string last_autopsy;
};

/// Statistics of one injection point over its trials.
struct PointResult {
  InjectionPoint point;
  std::array<std::uint32_t, inject::kNumOutcomes> counts{};
  std::uint32_t trials = 0;
  ExecStats exec;

  void record(inject::Outcome outcome) {
    ++counts[static_cast<std::size_t>(outcome)];
    ++trials;
  }
  /// Fraction of trials with any of the five error responses.
  double error_rate() const;
  /// Fraction of trials with a given response.
  double fraction(inject::Outcome outcome) const;
  /// Most frequent response (ties to the lower enum value).
  inject::Outcome dominant() const;
};

}  // namespace fastfit::core

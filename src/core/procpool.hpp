#pragma once

// Process-isolated trial execution: a fork-server worker pool.
//
// The paper's outcome taxonomy includes SEG_FAULT, but an in-process
// trial can only *simulate* it — a genuine signal would kill the whole
// campaign. ProcPool makes real crashes classifiable: the supervisor
// pre-forks one warm fork-server per lane, ships each (point, spec,
// trial) work item over a length-prefixed pipe, and the server forks a
// fresh single-use child per trial. The child executes the trial and
// writes its serialized result back; the server consolidates that result
// with the child's waitpid status + rusage into exactly one reply frame.
//
//   supervisor ──cmd pipe──▶ fork-server ──fork──▶ trial child
//       ▲                        │  ▲                  │
//       └──────result pipe───────┘  └───trial pipe─────┘
//
// Death taxonomy (docs/process_isolation.md):
//   * child killed by SIGSEGV/SIGBUS/SIGFPE/SIGABRT → SignalDeath, a
//     *datum* (the campaign classifies it SEG_FAULT with the signal
//     number and rusage in the forensic field);
//   * child (or server) wedged past the lease deadline → the whole lane
//     process group is SIGKILLed → LeaseExpired (the campaign routes it
//     through the existing retry-with-quarantine guard);
//   * server death / protocol corruption → LaneFailure; the lane is
//     respawned on next use until the respawn budget runs out, after
//     which the pool reports degraded() and the campaign falls back to
//     in-process execution (recorded in CampaignHealth).
//
// The default `thread` isolation mode never constructs a ProcPool, so
// pre-existing behaviour is preserved bit for bit.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "inject/fault_model.hpp"
#include "inject/outcome.hpp"

namespace fastfit::core {

/// The --isolation / FASTFIT_ISOLATION knob: where trials execute.
enum class IsolationMode : std::uint8_t {
  Thread,   ///< in-process rank threads (default; pre-existing behaviour)
  Process,  ///< fork-server workers; real signals become classifiable
};

/// Parses "thread" / "process" (throws ConfigError otherwise).
IsolationMode parse_isolation_mode(const std::string& text);
const char* to_string(IsolationMode mode) noexcept;

namespace procpool {

/// One trial's coordinates on the wire: everything the worker needs to
/// reconstruct the injection deterministically. The per-trial RNG
/// identity is a pure function of (seed, point, trial) via
/// FaultSpec::stream_index, so shipping only the coordinates preserves
/// bit-identical results across isolation modes.
struct WorkItem {
  std::uint32_t site_id = 0;
  int rank = 0;
  std::uint64_t invocation = 0;
  std::uint8_t param = 0;  ///< mpi::Param ordinal
  inject::FaultModelSpec fault;
  std::uint64_t trial = 0;
  std::uint64_t watchdog_ms = 0;
};

/// What the trial child reports back on success-or-contained-error. A
/// child that dies before writing this is reported by its server via the
/// waitpid status instead.
struct TrialReply {
  bool ok = false;                   ///< false = `error` holds the cause
  inject::Outcome outcome{};         ///< valid when ok
  bool deterministic_hang = false;   ///< valid when ok
  std::string autopsy;               ///< valid when ok
  std::uint32_t leaked_threads = 0;  ///< rank threads the child quarantined
  std::string error;                 ///< valid when !ok
};

/// Runs one trial inside the forked worker child. Must not throw — a
/// contained failure is reported through TrialReply::error.
using TrialFn = std::function<TrialReply(const WorkItem&)>;

/// Runs once inside each freshly forked server (e.g. to disable the
/// telemetry recorder, whose mutexes may have been mid-lock in another
/// thread of the supervisor at fork time).
using ChildInit = std::function<void()>;

}  // namespace procpool

/// Supervisor-side handle to the fork-server pool. Thread-safe: run() may
/// be called concurrently from every scheduler worker; each call owns one
/// lane for its duration.
class ProcPool {
 public:
  struct Options {
    std::size_t lanes = 1;
    /// How many lane *respawns* (after a lease kill or server death) are
    /// allowed before the pool declares itself degraded. The initial
    /// per-lane spawns are free.
    std::size_t respawn_budget = 4;
    procpool::ChildInit child_init;
  };

  struct Result {
    enum class Kind : std::uint8_t {
      Completed,     ///< trial ran; `reply` holds outcome or contained error
      SignalDeath,   ///< child killed by a signal: `signal` + rusage
      LeaseExpired,  ///< lane SIGKILLed for blowing the lease deadline
      LaneFailure,   ///< server died / protocol error / pool degraded
    };
    Kind kind = Kind::LaneFailure;
    procpool::TrialReply reply;  ///< Completed
    int signal = 0;              ///< SignalDeath
    std::uint64_t user_us = 0;   ///< SignalDeath: rusage user time
    std::uint64_t sys_us = 0;    ///< SignalDeath: rusage system time
    std::uint64_t maxrss_kb = 0; ///< SignalDeath: rusage peak RSS
    std::string error;           ///< LaneFailure / LeaseExpired detail
  };

  struct Stats {
    std::uint64_t servers_spawned = 0;  ///< initial spawns + respawns
    std::uint64_t respawns = 0;         ///< spawns after a lane loss
    std::uint64_t trials_dispatched = 0;
    std::uint64_t signal_deaths = 0;
    std::uint64_t lease_kills = 0;
    std::uint64_t lane_failures = 0;
  };

  /// Forks all lane servers eagerly. Call from as quiet a moment as
  /// possible (before the trial pool spawns threads): every later worker
  /// child inherits the supervisor's memory image as of this fork.
  /// Throws InternalError when no lane can be spawned at all.
  ProcPool(Options options, procpool::TrialFn fn);
  ~ProcPool();

  ProcPool(const ProcPool&) = delete;
  ProcPool& operator=(const ProcPool&) = delete;

  /// Dispatches one trial to a free lane and waits for its consolidated
  /// reply, up to `lease`. On lease expiry the lane's process group is
  /// SIGKILLed. Never throws for worker-side conditions — every failure
  /// mode is a Result kind the campaign maps onto its retry ladder.
  Result run(const procpool::WorkItem& item, std::chrono::milliseconds lease);

  /// True once the respawn budget is exhausted: callers should stop
  /// dispatching and fall back to in-process execution.
  bool degraded() const noexcept;

  std::size_t lanes() const noexcept { return lanes_.size(); }
  Stats stats() const;

  /// Live fork-server pids (0 for lanes awaiting respawn). Tests use this
  /// to SIGKILL a worker mid-trial.
  std::vector<int> server_pids() const;

 private:
  struct Lane {
    int pid = 0;         ///< server pid (0 = dead, respawn on next use)
    int cmd_fd = -1;     ///< supervisor → server work items
    int result_fd = -1;  ///< server → supervisor consolidated replies
    std::uint64_t seq = 0;
  };

  bool spawn_locked(Lane& lane, bool is_respawn);
  void kill_lane_locked(Lane& lane);
  std::size_t acquire_lane();
  void release_lane(std::size_t index);

  Options options_;
  procpool::TrialFn fn_;
  mutable std::mutex mutex_;
  std::condition_variable lane_available_;
  std::vector<Lane> lanes_;
  std::vector<std::size_t> free_;
  std::size_t respawns_used_ = 0;
  bool degraded_ = false;
  Stats stats_;
};

/// The journal's forensic line for a signal death: signal name + number
/// and the child's rusage, e.g.
/// "worker killed by SIGSEGV (signal 11); rusage: user=3ms sys=1ms
/// maxrss=2048KiB".
std::string describe_worker_death(int signo, std::uint64_t user_us,
                                  std::uint64_t sys_us,
                                  std::uint64_t maxrss_kb);

}  // namespace fastfit::core

#pragma once

// Sensitivity-report computations: the aggregations behind the paper's
// evaluation figures (7-11) and Table IV.

#include <array>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"

namespace fastfit::core {

/// Fraction of all trials per outcome, optionally filtered by collective
/// kind and/or injected parameter. Sums to 1 over the six outcomes (0s if
/// no trials match).
std::array<double, inject::kNumOutcomes> outcome_distribution(
    const std::vector<PointResult>& results,
    std::optional<mpi::CollectiveKind> kind = std::nullopt,
    std::optional<mpi::Param> param = std::nullopt);

/// Collective kinds present in the results, in enum order.
std::vector<mpi::CollectiveKind> kinds_present(
    const std::vector<PointResult>& results);

/// Injected parameters present in the results, in enum order.
std::vector<mpi::Param> params_present(
    const std::vector<PointResult>& results);

/// Error-rate-level distribution for one collective kind: the fraction of
/// its injection points falling in each level (Figs 8 and 11 use the
/// skewed low/med/high thresholds).
std::vector<double> level_distribution(
    const std::vector<PointResult>& results, mpi::CollectiveKind kind,
    const std::vector<double>& thresholds);

/// Table IV: Eq-1 correlation between each application-specific feature
/// and the error-rate level, over the measured points. Columns follow the
/// paper: per-phase indicators, ErrHdl / Non-ErrHdl indicators, nInv,
/// nDiffGraph (distinct call stacks), StackDepth.
std::vector<std::pair<std::string, double>> feature_correlations(
    const std::vector<PointResult>& results,
    const std::vector<double>& thresholds);

/// Plain-text stacked-bar rendering of outcome distributions: one row per
/// label (benchmark, collective, or parameter). `extended_outcomes` adds
/// the RANK_DEAD / REPAIRED columns (StudyResult::extended_outcomes).
std::string render_outcome_table(
    const std::vector<std::pair<std::string,
                                std::array<double, inject::kNumOutcomes>>>&
        rows,
    bool extended_outcomes = false);

/// Plain-text rendering of level distributions.
std::string render_level_table(
    const std::vector<std::pair<std::string, std::vector<double>>>& rows,
    const std::vector<std::string>& level_labels);

/// Campaign health summary: what the resilience machinery had to do
/// (retries, quarantines, watchdog escalations/recalibrations, journal
/// replays). One line when the campaign was perfectly healthy.
std::string render_health(const CampaignHealth& health);

/// Absolute per-outcome trial totals over all measured points, one line
/// per non-zero outcome plus a total. The cli prints this on stderr in
/// every run — telemetry on or off — so outcome counts are never only an
/// exit code.
std::string render_outcome_totals(const std::vector<PointResult>& results);

}  // namespace fastfit::core

#pragma once

// Machine-Learning-driven fault injection (paper Sec III-C, Fig 5's
// injection ⇄ learning feedback loop).
//
// Points are measured in small batches; after each batch a random forest
// is retrained on everything measured so far and verified against the next
// batch of fresh measurements. Once the verification accuracy reaches the
// user's threshold, the remaining points are *predicted* instead of
// measured — that skipped fraction is the "ML" column of Table III. If the
// loop exhausts all points first, it degrades gracefully to the
// traditional method (every point measured), as the paper specifies.

#include <optional>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "ml/random_forest.hpp"
#include "stats/levels.hpp"

namespace fastfit::core {

/// What the model predicts: the paper evaluates both error types (Fig 12)
/// and quantized error-rate levels (Figs 13, 4).
enum class LabelMode { ErrorType, ErrorRateLevel };

/// Label of a measured point under a mode. For ErrorRateLevel,
/// `thresholds` quantizes the error rate (see stats/levels.hpp).
std::size_t label_of(const PointResult& result, LabelMode mode,
                     const std::vector<double>& thresholds);

/// Number of classes a mode yields.
std::size_t label_count(LabelMode mode, const std::vector<double>& thresholds);

/// Class names for rendering (outcome names or level names).
std::vector<std::string> label_names(LabelMode mode,
                                     const std::vector<double>& thresholds);

struct MlLoopConfig {
  LabelMode mode = LabelMode::ErrorRateLevel;
  std::vector<double> thresholds = stats::even_thresholds(4);
  /// Verification accuracy that stops the measuring (paper Fig 6 sweeps
  /// this; 65% is the paper's chosen operating point).
  double accuracy_threshold = 0.65;
  std::size_t train_batch = 8;
  std::size_t verify_batch = 6;
  /// The accuracy compared against the threshold is computed over the
  /// most recent `verify_window` verification samples (each scored by the
  /// model that was current when it was measured), giving finer
  /// granularity than a single batch. 0 means "just the last batch".
  std::size_t verify_window = 18;
  /// The loop may not stop before this many verification samples exist:
  /// guards against declaring victory on one lucky batch.
  std::size_t min_verify_samples = 12;
  ml::ForestConfig forest;
};

struct MlLoopResult {
  std::vector<PointResult> measured;
  std::vector<std::pair<InjectionPoint, std::size_t>> predicted;
  double final_accuracy = 0.0;
  std::size_t rounds = 0;
  bool threshold_reached = false;
  std::optional<ml::RandomForest> model;

  /// Table III "ML" column: fraction of post-structural points whose
  /// response was predicted rather than measured.
  double ml_reduction() const;
};

/// Runs the feedback loop over `points` (typically
/// campaign.enumeration().points). Deterministic in the campaign seed.
MlLoopResult run_ml_loop(Campaign& campaign,
                         std::vector<InjectionPoint> points,
                         const MlLoopConfig& config);

}  // namespace fastfit::core

#include "core/export.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace fastfit::core {
namespace {

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_point(std::ostringstream& out, const InjectionPoint& p) {
  out << "{\"site\":\"" << json_escape(p.site_location) << "\",\"kind\":\""
      << mpi::to_string(p.kind) << "\",\"param\":\"" << to_string(p.param)
      << "\",\"rank\":" << p.rank << ",\"invocation\":" << p.invocation
      << ",\"phase\":\"" << trace::to_string(p.phase) << "\",\"errhal\":"
      << (p.errhal ? "true" : "false") << ",\"nInv\":" << p.n_inv
      << ",\"stackDep\":" << p.stack_depth
      << ",\"nDiffStack\":" << p.n_diff_stack << '}';
}

}  // namespace

std::string to_csv(const std::vector<PointResult>& results,
                   bool extended_outcomes) {
  const std::size_t n_outcomes = inject::active_outcomes(extended_outcomes);
  std::ostringstream out;
  out << "site,kind,param,rank,invocation,phase,errhal,n_inv,stack_depth,"
         "n_diff_stack,trials";
  for (std::size_t o = 0; o < n_outcomes; ++o) {
    out << ',' << inject::outcome_names()[o];
  }
  out << ",error_rate,retries,quarantined\n";
  for (const auto& r : results) {
    const auto& p = r.point;
    out << csv_quote(p.site_location) << ',' << mpi::to_string(p.kind) << ','
        << to_string(p.param) << ',' << p.rank << ',' << p.invocation << ','
        << trace::to_string(p.phase) << ',' << (p.errhal ? 1 : 0) << ','
        << p.n_inv << ',' << p.stack_depth << ',' << p.n_diff_stack << ','
        << r.trials;
    for (std::size_t o = 0; o < n_outcomes; ++o) {
      out << ',' << r.counts[o];
    }
    out << ',' << r.error_rate() << ',' << r.exec.retries << ','
        << (r.exec.quarantined ? 1 : 0) << '\n';
  }
  return out.str();
}

std::string to_json(const FastFitResult& result) {
  std::ostringstream out;
  out << "{\n  \"pruning\": {\"total\": " << result.stats.total_points
      << ", \"afterSemantic\": " << result.stats.after_semantic
      << ", \"afterContext\": " << result.stats.after_context
      << ", \"equivalenceClasses\": " << result.stats.equivalence_classes
      << ", \"nranks\": " << result.stats.nranks << "},\n";
  out << "  \"mlReduction\": " << result.ml_reduction
      << ",\n  \"finalAccuracy\": " << result.final_accuracy
      << ",\n  \"thresholdReached\": "
      << (result.threshold_reached ? "true" : "false") << ",\n";

  out << "  \"measured\": [\n";
  for (std::size_t i = 0; i < result.measured.size(); ++i) {
    const auto& r = result.measured[i];
    out << "    {\"point\": ";
    json_point(out, r.point);
    out << ", \"trials\": " << r.trials << ", \"counts\": {";
    for (std::size_t o = 0; o < inject::active_outcomes(result.extended_outcomes);
         ++o) {
      if (o) out << ", ";
      out << '"' << inject::outcome_names()[o] << "\": " << r.counts[o];
    }
    out << "}, \"errorRate\": " << r.error_rate();
    // Only emitted when set: a resumed campaign must produce output
    // byte-identical to the uninterrupted one, and on a healthy machine
    // no point is ever quarantined.
    if (r.exec.quarantined) out << ", \"quarantined\": true";
    out << '}';
    out << (i + 1 < result.measured.size() ? ",\n" : "\n");
  }
  out << "  ],\n";

  out << "  \"predicted\": [\n";
  for (std::size_t i = 0; i < result.predicted.size(); ++i) {
    const auto& [point, label] = result.predicted[i];
    out << "    {\"point\": ";
    json_point(out, point);
    out << ", \"label\": " << label << '}';
    out << (i + 1 < result.predicted.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

namespace {

constexpr const char* kEnumerationHeader = "fastfit-enumeration v1";

}  // namespace

std::string to_text(const Enumeration& enumeration) {
  std::ostringstream out;
  out << kEnumerationHeader << '\n';
  const auto& s = enumeration.stats;
  out << "stats " << s.total_points << ' ' << s.after_semantic << ' '
      << s.after_context << ' ' << s.equivalence_classes << ' ' << s.nranks
      << '\n';
  for (const auto& cls : enumeration.classes) {
    out << "class";
    for (int rank : cls.ranks) out << ' ' << rank;
    out << '\n';
  }
  for (const auto& p : enumeration.points) {
    out << "point " << p.site_id << ' ' << static_cast<int>(p.kind) << ' '
        << p.rank << ' ' << p.invocation << ' ' << static_cast<int>(p.param)
        << ' ' << p.stack << ' ' << static_cast<int>(p.phase) << ' '
        << (p.errhal ? 1 : 0) << ' ' << p.n_inv << ' ' << p.stack_depth
        << ' ' << p.n_diff_stack << ' ' << p.site_location << '\n';
  }
  return out.str();
}

Enumeration enumeration_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kEnumerationHeader) {
    throw ConfigError("enumeration_from_text: bad header");
  }
  Enumeration out;
  bool saw_stats = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "stats") {
      fields >> out.stats.total_points >> out.stats.after_semantic >>
          out.stats.after_context >> out.stats.equivalence_classes >>
          out.stats.nranks;
      if (!fields) throw ConfigError("enumeration_from_text: bad stats line");
      saw_stats = true;
    } else if (tag == "class") {
      trace::EquivalenceClass cls;
      int rank;
      while (fields >> rank) cls.ranks.push_back(rank);
      if (cls.ranks.empty()) {
        throw ConfigError("enumeration_from_text: empty class");
      }
      out.classes.push_back(std::move(cls));
    } else if (tag == "point") {
      InjectionPoint p;
      int kind = 0;
      int param = 0;
      int phase = 0;
      int errhal = 0;
      fields >> p.site_id >> kind >> p.rank >> p.invocation >> param >>
          p.stack >> phase >> errhal >> p.n_inv >> p.stack_depth >>
          p.n_diff_stack >> p.site_location;
      if (!fields) throw ConfigError("enumeration_from_text: bad point line");
      if (kind < 0 || kind >= static_cast<int>(mpi::kNumCollectiveKinds) ||
          param < 0 || param >= static_cast<int>(mpi::kNumParams) ||
          phase < 0 || phase >= static_cast<int>(trace::kNumPhases)) {
        throw ConfigError("enumeration_from_text: enum value out of range");
      }
      p.kind = static_cast<mpi::CollectiveKind>(kind);
      p.param = static_cast<mpi::Param>(param);
      p.phase = static_cast<trace::ExecPhase>(phase);
      p.errhal = errhal != 0;
      out.points.push_back(std::move(p));
    } else {
      throw ConfigError("enumeration_from_text: unknown tag '" + tag + "'");
    }
  }
  if (!saw_stats) throw ConfigError("enumeration_from_text: missing stats");
  return out;
}

namespace {

constexpr const char* kFragmentHeader = "fastfit-shard-fragment v1";

/// Inverse of json_escape for the fragment's free-text fields (last
/// internal error, world autopsy), which live alone at the end of their
/// line.
std::string text_unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (++i >= text.size()) {
      throw ConfigError("fragment: dangling escape in: " + text);
    }
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= text.size()) {
          throw ConfigError("fragment: truncated \\u escape in: " + text);
        }
        out += static_cast<char>(
            std::strtoul(text.substr(i + 1, 4).c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default:
        throw ConfigError("fragment: unknown escape in: " + text);
    }
  }
  return out;
}

/// %.17g: enough digits that the parsed double is bit-exact, so the
/// merged report renders features byte-identically to the unsharded run.
std::string exact_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

struct ParsedFragment {
  ShardSpec shard;
  PruningStats stats;
  std::uint64_t golden_digest = 0;
  CampaignHealth health;
  /// Outcome columns per point line: the six-way base set unless the
  /// fragment declares the extended set with an "outcomes" line.
  std::size_t n_outcomes = inject::kNumBaseOutcomes;
  std::vector<std::pair<std::size_t, PointResult>> points;  // by ordinal
};

ParsedFragment parse_fragment(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kFragmentHeader) {
    throw ConfigError("fragment: bad header (expected '" +
                      std::string(kFragmentHeader) + "')");
  }
  ParsedFragment out;
  bool saw_shard = false, saw_stats = false, saw_golden = false;
  bool saw_health = false;
  // error/autopsy lines attach to an already-parsed point by ordinal.
  std::map<std::size_t, std::size_t> index_of;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "shard") {
      std::size_t index = 0, count = 0;
      fields >> index >> count;
      if (!fields || index < 1 || count < 1 || index > count) {
        throw ConfigError("fragment: bad shard line: " + line);
      }
      out.shard.index = index;
      out.shard.count = count;
      saw_shard = true;
    } else if (tag == "outcomes") {
      std::size_t n = 0;
      fields >> n;
      if (!fields || n <= inject::kNumBaseOutcomes ||
          n > inject::kNumOutcomes) {
        throw ConfigError("fragment: bad outcomes line: " + line);
      }
      out.n_outcomes = n;
    } else if (tag == "stats") {
      fields >> out.stats.total_points >> out.stats.after_semantic >>
          out.stats.after_context >> out.stats.equivalence_classes >>
          out.stats.nranks;
      if (!fields) throw ConfigError("fragment: bad stats line: " + line);
      saw_stats = true;
    } else if (tag == "golden") {
      fields >> out.golden_digest;
      if (!fields) throw ConfigError("fragment: bad golden line: " + line);
      saw_golden = true;
    } else if (tag == "health") {
      auto& h = out.health;
      fields >> h.total_retries >> h.quarantined_points >>
          h.watchdog_confirmations >> h.watchdog_recalibrations >>
          h.replayed_trials >> h.deterministic_deadlocks >>
          h.quarantined_rank_threads >> h.leaked_rank_threads;
      if (!fields) throw ConfigError("fragment: bad health line: " + line);
      saw_health = true;
    } else if (tag == "point") {
      std::size_t ordinal = 0;
      PointResult r;
      auto& p = r.point;
      int kind = 0, param = 0, phase = 0, errhal = 0, quarantined = 0;
      fields >> ordinal >> p.site_id >> kind >> p.rank >> p.invocation >>
          param >> p.stack >> phase >> errhal >> p.n_inv >> p.stack_depth >>
          p.n_diff_stack >> r.trials;
      for (std::size_t o = 0; o < out.n_outcomes; ++o) {
        fields >> r.counts[o];
      }
      fields >> r.exec.retries >> quarantined >> p.site_location;
      if (!fields) throw ConfigError("fragment: bad point line: " + line);
      if (kind < 0 || kind >= static_cast<int>(mpi::kNumCollectiveKinds) ||
          param < 0 || param >= static_cast<int>(mpi::kNumParams) ||
          phase < 0 || phase >= static_cast<int>(trace::kNumPhases)) {
        throw ConfigError("fragment: enum value out of range: " + line);
      }
      p.kind = static_cast<mpi::CollectiveKind>(kind);
      p.param = static_cast<mpi::Param>(param);
      p.phase = static_cast<trace::ExecPhase>(phase);
      p.errhal = errhal != 0;
      r.exec.quarantined = quarantined != 0;
      if (!index_of.emplace(ordinal, out.points.size()).second) {
        throw ConfigError("fragment: duplicate ordinal " +
                          std::to_string(ordinal));
      }
      out.points.emplace_back(ordinal, std::move(r));
    } else if (tag == "error" || tag == "autopsy") {
      std::size_t ordinal = 0;
      fields >> ordinal;
      if (!fields) throw ConfigError("fragment: bad " + tag + " line: " + line);
      const auto it = index_of.find(ordinal);
      if (it == index_of.end()) {
        throw ConfigError("fragment: " + tag + " line for unknown ordinal " +
                          std::to_string(ordinal));
      }
      std::string rest;
      std::getline(fields, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      auto& exec = out.points[it->second].second.exec;
      (tag == "error" ? exec.last_error : exec.last_autopsy) =
          text_unescape(rest);
    } else {
      throw ConfigError("fragment: unknown tag '" + tag + "'");
    }
  }
  if (!saw_shard || !saw_stats || !saw_golden || !saw_health) {
    throw ConfigError("fragment: missing shard/stats/golden/health line");
  }
  return out;
}

}  // namespace

std::string to_shard_fragment(const StudyResult& result) {
  if (!result.shard_ordinals.empty() &&
      result.shard_ordinals.size() != result.measured.size()) {
    throw InternalError(
        "to_shard_fragment: shard_ordinals does not match measured");
  }
  std::ostringstream out;
  out << kFragmentHeader << '\n';
  out << "shard " << result.shard.index << ' ' << result.shard.count << '\n';
  // Emitted only for extended-outcome studies so default-configuration
  // fragments stay byte-identical to pre-v2 ones (which the parser reads
  // as the six-outcome base set).
  if (result.extended_outcomes) {
    out << "outcomes " << inject::kNumOutcomes << '\n';
  }
  const auto& s = result.stats;
  out << "stats " << s.total_points << ' ' << s.after_semantic << ' '
      << s.after_context << ' ' << s.equivalence_classes << ' ' << s.nranks
      << '\n';
  out << "golden " << result.golden_digest << '\n';
  const auto& h = result.health;
  out << "health " << h.total_retries << ' ' << h.quarantined_points << ' '
      << h.watchdog_confirmations << ' ' << h.watchdog_recalibrations << ' '
      << h.replayed_trials << ' ' << h.deterministic_deadlocks << ' '
      << h.quarantined_rank_threads << ' ' << h.leaked_rank_threads << '\n';
  for (std::size_t i = 0; i < result.measured.size(); ++i) {
    const auto& r = result.measured[i];
    const auto& p = r.point;
    const std::size_t ordinal =
        result.shard_ordinals.empty() ? i : result.shard_ordinals[i];
    out << "point " << ordinal << ' ' << p.site_id << ' '
        << static_cast<int>(p.kind) << ' ' << p.rank << ' ' << p.invocation
        << ' ' << static_cast<int>(p.param) << ' ' << p.stack << ' '
        << static_cast<int>(p.phase) << ' ' << (p.errhal ? 1 : 0) << ' '
        << p.n_inv << ' ' << exact_double(p.stack_depth) << ' '
        << p.n_diff_stack << ' ' << r.trials;
    for (std::size_t o = 0;
         o < inject::active_outcomes(result.extended_outcomes); ++o) {
      out << ' ' << r.counts[o];
    }
    out << ' ' << r.exec.retries << ' ' << (r.exec.quarantined ? 1 : 0) << ' '
        << p.site_location << '\n';
    if (!r.exec.last_error.empty()) {
      out << "error " << ordinal << ' ' << json_escape(r.exec.last_error)
          << '\n';
    }
    if (!r.exec.last_autopsy.empty()) {
      out << "autopsy " << ordinal << ' ' << json_escape(r.exec.last_autopsy)
          << '\n';
    }
  }
  return out.str();
}

StudyResult merge_fragments(const std::vector<std::string>& fragments) {
  if (fragments.empty()) throw ConfigError("merge: no fragments");

  StudyResult merged;
  std::map<std::size_t, PointResult> by_ordinal;
  std::vector<char> shard_seen;
  bool first = true;

  for (const auto& text : fragments) {
    auto fragment = parse_fragment(text);
    if (first) {
      merged.stats = fragment.stats;
      merged.golden_digest = fragment.golden_digest;
      merged.extended_outcomes =
          fragment.n_outcomes > inject::kNumBaseOutcomes;
      shard_seen.assign(fragment.shard.count, 0);
      first = false;
    } else {
      if (fragment.shard.count != shard_seen.size()) {
        throw ConfigError("merge: fragments disagree on shard count (" +
                          std::to_string(shard_seen.size()) + " vs " +
                          std::to_string(fragment.shard.count) + ")");
      }
      if (!(fragment.stats == merged.stats)) {
        throw ConfigError(
            "merge: fragments disagree on pruning stats — were they produced "
            "by the same study configuration?");
      }
      if (fragment.golden_digest != merged.golden_digest) {
        throw ConfigError(
            "merge: fragments disagree on the golden digest — different "
            "campaign (seed, workload, or problem size)");
      }
      if ((fragment.n_outcomes > inject::kNumBaseOutcomes) !=
          merged.extended_outcomes) {
        throw ConfigError(
            "merge: fragments disagree on the outcome set — mixed "
            "default and extended fault-model configurations");
      }
    }
    if (fragments.size() != shard_seen.size()) {
      throw ConfigError("merge: " + std::to_string(fragments.size()) +
                        " fragment(s) for a " +
                        std::to_string(shard_seen.size()) + "-shard study");
    }
    if (shard_seen[fragment.shard.index - 1]) {
      throw ConfigError("merge: duplicate fragment for shard " +
                        fragment.shard.str());
    }
    shard_seen[fragment.shard.index - 1] = 1;

    merged.health.total_retries += fragment.health.total_retries;
    merged.health.quarantined_points += fragment.health.quarantined_points;
    merged.health.watchdog_confirmations +=
        fragment.health.watchdog_confirmations;
    merged.health.watchdog_recalibrations +=
        fragment.health.watchdog_recalibrations;
    merged.health.replayed_trials += fragment.health.replayed_trials;
    merged.health.deterministic_deadlocks +=
        fragment.health.deterministic_deadlocks;
    merged.health.quarantined_rank_threads +=
        fragment.health.quarantined_rank_threads;
    merged.health.leaked_rank_threads += fragment.health.leaked_rank_threads;

    for (auto& [ordinal, result] : fragment.points) {
      if (ordinal >= merged.stats.after_context) {
        throw ConfigError("merge: ordinal " + std::to_string(ordinal) +
                          " out of range (post-pruning set has " +
                          std::to_string(merged.stats.after_context) +
                          " points)");
      }
      if (!by_ordinal.emplace(ordinal, std::move(result)).second) {
        throw ConfigError("merge: ordinal " + std::to_string(ordinal) +
                          " measured by more than one shard");
      }
    }
  }

  if (by_ordinal.size() != merged.stats.after_context) {
    throw ConfigError(
        "merge: fragments cover " + std::to_string(by_ordinal.size()) +
        " of " + std::to_string(merged.stats.after_context) +
        " post-pruning points — a shard is missing or was run with a "
        "different partition");
  }

  merged.measured.reserve(by_ordinal.size());
  for (auto& [ordinal, result] : by_ordinal) {
    merged.measured.push_back(std::move(result));
  }
  return merged;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  out << content;
  if (!out) throw ConfigError("write failed: " + path);
}

}  // namespace fastfit::core

#include "core/export.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace fastfit::core {
namespace {

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_point(std::ostringstream& out, const InjectionPoint& p) {
  out << "{\"site\":\"" << json_escape(p.site_location) << "\",\"kind\":\""
      << mpi::to_string(p.kind) << "\",\"param\":\"" << to_string(p.param)
      << "\",\"rank\":" << p.rank << ",\"invocation\":" << p.invocation
      << ",\"phase\":\"" << trace::to_string(p.phase) << "\",\"errhal\":"
      << (p.errhal ? "true" : "false") << ",\"nInv\":" << p.n_inv
      << ",\"stackDep\":" << p.stack_depth
      << ",\"nDiffStack\":" << p.n_diff_stack << '}';
}

}  // namespace

std::string to_csv(const std::vector<PointResult>& results) {
  std::ostringstream out;
  out << "site,kind,param,rank,invocation,phase,errhal,n_inv,stack_depth,"
         "n_diff_stack,trials";
  for (const auto& name : inject::outcome_names()) out << ',' << name;
  out << ",error_rate,retries,quarantined\n";
  for (const auto& r : results) {
    const auto& p = r.point;
    out << csv_quote(p.site_location) << ',' << mpi::to_string(p.kind) << ','
        << to_string(p.param) << ',' << p.rank << ',' << p.invocation << ','
        << trace::to_string(p.phase) << ',' << (p.errhal ? 1 : 0) << ','
        << p.n_inv << ',' << p.stack_depth << ',' << p.n_diff_stack << ','
        << r.trials;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      out << ',' << r.counts[o];
    }
    out << ',' << r.error_rate() << ',' << r.exec.retries << ','
        << (r.exec.quarantined ? 1 : 0) << '\n';
  }
  return out.str();
}

std::string to_json(const FastFitResult& result) {
  std::ostringstream out;
  out << "{\n  \"pruning\": {\"total\": " << result.stats.total_points
      << ", \"afterSemantic\": " << result.stats.after_semantic
      << ", \"afterContext\": " << result.stats.after_context
      << ", \"equivalenceClasses\": " << result.stats.equivalence_classes
      << ", \"nranks\": " << result.stats.nranks << "},\n";
  out << "  \"mlReduction\": " << result.ml_reduction
      << ",\n  \"finalAccuracy\": " << result.final_accuracy
      << ",\n  \"thresholdReached\": "
      << (result.threshold_reached ? "true" : "false") << ",\n";

  out << "  \"measured\": [\n";
  for (std::size_t i = 0; i < result.measured.size(); ++i) {
    const auto& r = result.measured[i];
    out << "    {\"point\": ";
    json_point(out, r.point);
    out << ", \"trials\": " << r.trials << ", \"counts\": {";
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      if (o) out << ", ";
      out << '"' << inject::outcome_names()[o] << "\": " << r.counts[o];
    }
    out << "}, \"errorRate\": " << r.error_rate();
    // Only emitted when set: a resumed campaign must produce output
    // byte-identical to the uninterrupted one, and on a healthy machine
    // no point is ever quarantined.
    if (r.exec.quarantined) out << ", \"quarantined\": true";
    out << '}';
    out << (i + 1 < result.measured.size() ? ",\n" : "\n");
  }
  out << "  ],\n";

  out << "  \"predicted\": [\n";
  for (std::size_t i = 0; i < result.predicted.size(); ++i) {
    const auto& [point, label] = result.predicted[i];
    out << "    {\"point\": ";
    json_point(out, point);
    out << ", \"label\": " << label << '}';
    out << (i + 1 < result.predicted.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

namespace {

constexpr const char* kEnumerationHeader = "fastfit-enumeration v1";

}  // namespace

std::string to_text(const Enumeration& enumeration) {
  std::ostringstream out;
  out << kEnumerationHeader << '\n';
  const auto& s = enumeration.stats;
  out << "stats " << s.total_points << ' ' << s.after_semantic << ' '
      << s.after_context << ' ' << s.equivalence_classes << ' ' << s.nranks
      << '\n';
  for (const auto& cls : enumeration.classes) {
    out << "class";
    for (int rank : cls.ranks) out << ' ' << rank;
    out << '\n';
  }
  for (const auto& p : enumeration.points) {
    out << "point " << p.site_id << ' ' << static_cast<int>(p.kind) << ' '
        << p.rank << ' ' << p.invocation << ' ' << static_cast<int>(p.param)
        << ' ' << p.stack << ' ' << static_cast<int>(p.phase) << ' '
        << (p.errhal ? 1 : 0) << ' ' << p.n_inv << ' ' << p.stack_depth
        << ' ' << p.n_diff_stack << ' ' << p.site_location << '\n';
  }
  return out.str();
}

Enumeration enumeration_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kEnumerationHeader) {
    throw ConfigError("enumeration_from_text: bad header");
  }
  Enumeration out;
  bool saw_stats = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "stats") {
      fields >> out.stats.total_points >> out.stats.after_semantic >>
          out.stats.after_context >> out.stats.equivalence_classes >>
          out.stats.nranks;
      if (!fields) throw ConfigError("enumeration_from_text: bad stats line");
      saw_stats = true;
    } else if (tag == "class") {
      trace::EquivalenceClass cls;
      int rank;
      while (fields >> rank) cls.ranks.push_back(rank);
      if (cls.ranks.empty()) {
        throw ConfigError("enumeration_from_text: empty class");
      }
      out.classes.push_back(std::move(cls));
    } else if (tag == "point") {
      InjectionPoint p;
      int kind = 0;
      int param = 0;
      int phase = 0;
      int errhal = 0;
      fields >> p.site_id >> kind >> p.rank >> p.invocation >> param >>
          p.stack >> phase >> errhal >> p.n_inv >> p.stack_depth >>
          p.n_diff_stack >> p.site_location;
      if (!fields) throw ConfigError("enumeration_from_text: bad point line");
      if (kind < 0 || kind >= static_cast<int>(mpi::kNumCollectiveKinds) ||
          param < 0 || param >= static_cast<int>(mpi::kNumParams) ||
          phase < 0 || phase >= static_cast<int>(trace::kNumPhases)) {
        throw ConfigError("enumeration_from_text: enum value out of range");
      }
      p.kind = static_cast<mpi::CollectiveKind>(kind);
      p.param = static_cast<mpi::Param>(param);
      p.phase = static_cast<trace::ExecPhase>(phase);
      p.errhal = errhal != 0;
      out.points.push_back(std::move(p));
    } else {
      throw ConfigError("enumeration_from_text: unknown tag '" + tag + "'");
    }
  }
  if (!saw_stats) throw ConfigError("enumeration_from_text: missing stats");
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot open for writing: " + path);
  out << content;
  if (!out) throw ConfigError("write failed: " + path);
}

}  // namespace fastfit::core

#include "core/campaign.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <tuple>

#include "core/pipeline.hpp"
#include "core/recording_io.hpp"
#include "core/trial_executor.hpp"
#include "inject/injector.hpp"
#include "minimpi/quarantine.hpp"
#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

using namespace std::chrono_literals;

namespace tel = fastfit::telemetry;

namespace {

// Watchdog calibration: the fault-free path must fit comfortably, a hung
// job must be detected promptly.
constexpr std::chrono::milliseconds kWatchdogFloor = 150ms;
constexpr int kWatchdogMultiplier = 12;

std::string algorithms_id(const mpi::CollectiveAlgorithms& algorithms) {
  return std::to_string(static_cast<int>(algorithms.allreduce)) + '/' +
         std::to_string(static_cast<int>(algorithms.bcast));
}

/// Where a trial attempt ran, for error attribution and trace spans.
std::string execution_site() {
  const int worker = TrialExecutor::current_worker();
  return worker >= 0 ? "executor thread " + std::to_string(worker)
                     : "main thread";
}

/// Crosses the structurally-pruned point set with the campaign's fault
/// models (spec-major, so shard partitions stay contiguous per model).
/// The default single-spec configuration returns the input untouched —
/// the pre-v2 point set, byte for byte. Manifestations that ignore the
/// parameter axis (message faults, rank death) keep one point per
/// (site, rank, invocation) instead of one per parameter: the parameter
/// only says *which argument* to mutate, which those models never do.
std::vector<InjectionPoint> cross_with_fault_models(
    std::vector<InjectionPoint> points,
    const std::vector<inject::FaultModelSpec>& specs) {
  if (specs.size() == 1 && specs.front().is_default()) return points;
  std::vector<InjectionPoint> crossed;
  for (const auto& spec : specs) {
    if (inject::is_parameter_model(spec.model)) {
      for (const auto& point : points) {
        crossed.push_back(point);
        crossed.back().fault = spec;
      }
      continue;
    }
    std::set<std::tuple<std::uint32_t, int, std::uint64_t>> seen;
    for (const auto& point : points) {
      if (!seen.insert({point.site_id, point.rank, point.invocation}).second) {
        continue;
      }
      crossed.push_back(point);
      crossed.back().fault = spec;
    }
  }
  return crossed;
}

}  // namespace

Campaign::Campaign(const apps::Workload& workload, CampaignOptions options)
    : workload_(&workload), options_(options) {
  if (options_.nranks < 1) throw ConfigError("Campaign: nranks must be >= 1");
  if (options_.trials_per_point == 0) {
    throw ConfigError("Campaign: trials_per_point must be positive");
  }
  if (options_.watchdog_escalation < 1) {
    throw ConfigError("Campaign: watchdog_escalation must be >= 1");
  }
  if (options_.fault_models.empty()) {
    throw ConfigError("Campaign: fault_models must be non-empty");
  }
  for (std::size_t i = 0; i < options_.fault_models.size(); ++i) {
    for (std::size_t j = i + 1; j < options_.fault_models.size(); ++j) {
      if (options_.fault_models[i] == options_.fault_models[j]) {
        throw ConfigError("Campaign: duplicate fault model '" +
                          options_.fault_models[i].canonical() + "'");
      }
    }
  }
  // Real-signal manifestations kill the entire trial process; without
  // the fork-server backend that process is the campaign itself.
  for (const auto& spec : options_.fault_models) {
    if (inject::is_signal_model(spec.model) &&
        options_.isolation != IsolationMode::Process) {
      throw ConfigError("Campaign: fault model '" + spec.canonical() +
                        "' raises a genuine signal and requires "
                        "--isolation process");
    }
  }
  if (options_.watchdog_storm_fraction <= 0.0 ||
      options_.watchdog_storm_fraction > 1.0) {
    throw ConfigError("Campaign: watchdog_storm_fraction must be in (0, 1]");
  }
  // Validate the structural pruning chain up front: unknown names and
  // measurer-needing passes ("ml") should fail at construction, not at
  // profile() time deep into a study.
  for (const auto& name : options_.pruning_passes) {
    if (make_pruning_pass(name)->needs_measurer()) {
      throw ConfigError("Campaign: pruning pass '" + name +
                        "' needs a measurer; select the ML stage through "
                        "the study driver, not CampaignOptions");
    }
  }
  if (options_.shard.count < 1 || options_.shard.index < 1 ||
      options_.shard.index > options_.shard.count) {
    throw ConfigError("Campaign: shard must satisfy 1 <= index <= count");
  }
  if (options_.snapshot_cache_mb < 1) {
    throw ConfigError("Campaign: snapshot_cache_mb must be >= 1");
  }
  if (options_.snapshots != SnapshotMode::Off) {
    snapshot_cache_ = std::make_unique<SnapshotCache>(
        static_cast<std::size_t>(options_.snapshot_cache_mb) * 1024 * 1024);
  }
  recording_file_ = options_.recording_path;
}

std::string Campaign::golden_key() const {
  // Deliberately engine-free: both substrates produce identical digests
  // and wall times of the same order, so a fiber golden run is valid for
  // a thread campaign and vice versa.
  return workload_->name() + '|' + workload_->params_key() + '|' +
         std::to_string(options_.nranks) + '|' +
         std::to_string(options_.seed) + '|' +
         algorithms_id(options_.algorithms) + '|' +
         (options_.deterministic_hang_detection ? "hd1" : "hd0");
}

std::pair<std::uint64_t, std::chrono::milliseconds> Campaign::run_golden(
    std::chrono::milliseconds watchdog_budget) {
  // Golden memo: one verified fault-free run per (workload, params,
  // nranks, seed, algorithms, hang detection) per process. A storm
  // recalibration invalidates the entry first, so it always re-measures.
  const std::string key = golden_key();
  if (const auto cached = GoldenCache::instance().find(key)) {
    tel::ScopedSpan span("golden-run");
    span.arg("cached", "1");
    return {cached->digest, cached->wall};
  }
  mpi::WorldOptions opts;
  opts.nranks = options_.nranks;
  opts.engine = options_.engine;
  opts.seed = options_.seed;
  opts.algorithms = options_.algorithms;
  opts.watchdog = watchdog_budget;
  opts.hang_detection = options_.deterministic_hang_detection;
  auto contexts = std::make_shared<trace::ContextRegistry>(options_.nranks);
  tel::ScopedSpan span("golden-run");
  const auto t0 = std::chrono::steady_clock::now();
  const auto golden =
      apps::run_job(*workload_, opts, nullptr, *contexts, {contexts});
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  span.finish();
  if (!golden.world.clean()) {
    throw InternalError("Campaign: golden run failed: " +
                        golden.world.event->message);
  }
  // Uninjected runs get the strict leak audit: with no fault to explain
  // them, a leaked thread, a still-registered region, or a queued message
  // is a harness bug, full stop.
  if (golden.world.leaked_threads > 0 || golden.world.leaked_regions > 0 ||
      golden.world.undelivered_messages > 0) {
    throw InternalError(
        "Campaign: golden run leaked (" +
        std::to_string(golden.world.leaked_threads) + " thread(s), " +
        std::to_string(golden.world.leaked_regions) + " region(s), " +
        std::to_string(golden.world.undelivered_messages) +
        " undelivered message(s))");
  }
  GoldenCache::instance().put(key, {golden.digest, wall});
  return {golden.digest, wall};
}

void Campaign::profile() {
  if (profiled_) throw InternalError("Campaign::profile: already profiled");

  // Golden (fault-free, un-instrumented) run: digest + wall time.
  const auto [digest, golden_wall] =
      run_golden(options_.watchdog.value_or(30'000ms));
  golden_digest_ = digest;

  watchdog_ = options_.watchdog.value_or(
      std::max(kWatchdogFloor, golden_wall * kWatchdogMultiplier));

  // Profiling run (paper Fig 5 phase 1): same problem as the injection
  // runs, so the features transfer.
  contexts_ = std::make_shared<trace::ContextRegistry>(options_.nranks);
  profiler_ = std::make_shared<profile::Profiler>(*contexts_);
  mpi::WorldOptions profile_opts;
  profile_opts.nranks = options_.nranks;
  profile_opts.engine = options_.engine;
  profile_opts.seed = options_.seed;
  profile_opts.algorithms = options_.algorithms;
  profile_opts.watchdog = options_.watchdog.value_or(30'000ms);
  profile_opts.hang_detection = options_.deterministic_hang_detection;
  tel::ScopedSpan profiling_span("profiling-run");
  const auto profiled = apps::run_job(*workload_, profile_opts,
                                      profiler_.get(), *contexts_,
                                      {contexts_, profiler_});
  profiling_span.finish();
  if (!profiled.world.clean()) {
    throw InternalError("Campaign: profiling run failed: " +
                        profiled.world.event->message);
  }
  if (profiled.digest != golden_digest_) {
    throw InternalError("Campaign: profiling run digest diverged");
  }
  if (profiled.world.leaked_threads > 0 ||
      profiled.world.leaked_regions > 0 ||
      profiled.world.undelivered_messages > 0) {
    throw InternalError(
        "Campaign: profiling run leaked (" +
        std::to_string(profiled.world.leaked_threads) + " thread(s), " +
        std::to_string(profiled.world.leaked_regions) + " region(s), " +
        std::to_string(profiled.world.undelivered_messages) +
        " undelivered message(s))");
  }

  {
    tel::ScopedSpan span("enumerate-points");
    enumeration_ = enumerate_with_passes(*profiler_, options_.pruning_passes);
    enumeration_.points = cross_with_fault_models(
        std::move(enumeration_.points), options_.fault_models);
    // A non-identity cross changes the measured point set: after_context
    // is what sharding partitions and merge validates coverage against,
    // so it must track the crossed size (monotonicity of the earlier
    // stages is preserved by maxing them up). The default single-spec
    // cross is the identity and leaves every stat byte-identical.
    auto& stats = enumeration_.stats;
    stats.after_context = enumeration_.points.size();
    stats.after_semantic = std::max(stats.after_semantic, stats.after_context);
    stats.total_points = std::max(stats.total_points, stats.after_semantic);
  }
  profiled_ = true;
}

const Enumeration& Campaign::enumeration() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return enumeration_;
}

const profile::Profiler& Campaign::profiler() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return *profiler_;
}

std::uint64_t Campaign::golden_digest() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return golden_digest_;
}

void Campaign::attach_journal(const std::string& path, JournalMode mode) {
  if (!profiled_) {
    throw InternalError("Campaign::attach_journal: profile() not run");
  }
  if (measuring()) {
    throw InternalError("Campaign::attach_journal: a measure is running");
  }
  JournalHeader header;
  header.workload = workload_->name();
  header.seed = options_.seed;
  header.nranks = options_.nranks;
  header.trials_per_point = options_.trials_per_point;
  header.fault_model = inject::canonical_fault_models(options_.fault_models);
  header.algorithms = algorithms_id(options_.algorithms);
  header.golden_digest = golden_digest_;
  header.shard_index = options_.shard.index;
  header.shard_count = options_.shard.count;
  journal_ = mode == JournalMode::Resume ? TrialJournal::resume(path, header)
                                         : TrialJournal::create(path, header);
  // The recording is as durable as the journal: default it to live next
  // door, so a resumed campaign replays the prefix without re-recording.
  if (recording_file_.empty()) {
    recording_file_ = path + ".recording";
  }
}

void Campaign::detach_journal() {
  if (!journal_) return;
  journal_->flush();
  journal_.reset();
}

void Campaign::set_max_parallel_trials(std::size_t max_parallel) {
  if (measuring()) {
    throw InternalError(
        "Campaign::set_max_parallel_trials: a measure is running");
  }
  options_.max_parallel_trials = max_parallel;
}

SnapshotCache::Stats Campaign::snapshot_stats() const {
  return snapshot_cache_ ? snapshot_cache_->stats() : SnapshotCache::Stats{};
}

CampaignHealth Campaign::health() const noexcept {
  CampaignHealth h;
  h.total_retries = total_retries_.load(std::memory_order_relaxed);
  h.quarantined_points = quarantined_points_.load(std::memory_order_relaxed);
  h.watchdog_confirmations = confirmations_.load(std::memory_order_relaxed);
  h.watchdog_recalibrations = recalibrations_.load(std::memory_order_relaxed);
  h.replayed_trials = replayed_trials_.load(std::memory_order_relaxed);
  h.deterministic_deadlocks =
      deterministic_deadlocks_.load(std::memory_order_relaxed);
  h.quarantined_rank_threads =
      leaked_threads_total_.load(std::memory_order_relaxed);
  h.leaked_rank_threads =
      leaked_threads_outstanding_.load(std::memory_order_relaxed);
  h.worker_deaths = worker_deaths_.load(std::memory_order_relaxed);
  h.worker_lease_kills =
      worker_lease_kills_.load(std::memory_order_relaxed);
  h.isolation_fallbacks =
      isolation_fallbacks_.load(std::memory_order_relaxed);
  return h;
}

std::shared_ptr<const mpi::WorldRecording> Campaign::build_recording() {
  tel::ScopedSpan span("snapshot-build");
  // Durable fast path: a recording persisted by an earlier run (or a
  // sibling shard worker) with our exact identity and golden digest IS
  // the golden execution — loading it is as sound as re-recording.
  if (!recording_file_.empty()) {
    if (auto loaded =
            load_recording(recording_file_, golden_key(), golden_digest_)) {
      span.arg("loaded", "1");
      if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
        static auto& loads = rec.counter(
            "fastfit_snapshot_recording_loads_total",
            "Prefix-replay recordings reloaded from disk instead of re-run");
        loads.add();
      }
      return loaded;
    }
  }
  try {
    auto recorder = std::make_shared<mpi::PrefixRecorder>(options_.nranks);
    mpi::WorldOptions opts;
    opts.nranks = options_.nranks;
    opts.engine = options_.engine;
    opts.seed = options_.seed;
    opts.algorithms = options_.algorithms;
    // The recording run is fault-free; give it the relaxed golden-style
    // budget rather than the trial watchdog, so a loaded machine cannot
    // poison the recording with a spurious timeout.
    opts.watchdog = std::max<std::chrono::milliseconds>(
        30'000ms, watchdog_ * options_.watchdog_escalation);
    opts.hang_detection = options_.deterministic_hang_detection;
    opts.recorder = recorder;
    auto contexts = std::make_shared<trace::ContextRegistry>(options_.nranks);
    const auto job = apps::run_job(*workload_, opts, nullptr, *contexts,
                                   {contexts, recorder});
    if (!job.world.clean() || job.world.leaked_threads > 0 ||
        job.world.leaked_regions > 0 || job.world.undelivered_messages > 0) {
      return nullptr;
    }
    if (job.digest != golden_digest_) {
      // The recording must be *the* golden execution, byte for byte —
      // replaying anything else would corrupt every trial built on it.
      return nullptr;
    }
    auto recording = recorder->finish();
    span.arg("ops", std::to_string(recording->total_ops));
    span.arg("payload_bytes", std::to_string(recording->payload_bytes));
    if (!recording_file_.empty()) {
      // Best-effort: a failed write costs nothing but the reuse.
      (void)save_recording(recording_file_, *recording, golden_key(),
                           golden_digest_);
    }
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& builds = rec.counter(
          "fastfit_snapshot_recordings_total",
          "Fault-free recording runs performed for prefix replay");
      builds.add();
    }
    return recording;
  } catch (...) {
    return nullptr;
  }
}

inject::TrialForensics Campaign::run_trial(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog) {
  // Snapshot fast path only for replayable specs: a fault that perturbs
  // prefix-visible state (message delay/drop, probabilistic or windowed
  // triggers that may fire inside the prefix) must execute from scratch —
  // the recorded fault-free prefix would silently mask the perturbation.
  if (inject::is_replayable(point.fault) && snapshot_cache_ &&
      !snapshot_cache_->disabled()) {
    std::shared_ptr<const mpi::WorldSnapshot> snapshot;
    {
      tel::ScopedSpan clone_span("snapshot-clone");
      snapshot = snapshot_cache_->lookup(point.site_id, point.invocation,
                                         [this] { return build_recording(); });
    }
    if (snapshot) {
      try {
        return execute_trial(point, trial, watchdog, std::move(snapshot));
      } catch (const mpi::ReplayError& e) {
        // Divergence is a harness condition, never a trial outcome: fall
        // back to the from-scratch path below. Under `auto` one
        // divergence retires the subsystem for the whole campaign.
        snapshot_cache_->note_fallback();
        if (options_.snapshots == SnapshotMode::Auto) {
          snapshot_cache_->disable(e.what());
        }
      }
    }
  }
  return execute_trial(point, trial, watchdog, nullptr);
}

inject::TrialForensics Campaign::execute_trial(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog,
    std::shared_ptr<const mpi::WorldSnapshot> snapshot) {
  inject::FaultSpec spec;
  spec.site_id = point.site_id;
  spec.rank = point.rank;
  spec.invocation = point.invocation;
  spec.param = point.param;
  spec.trial = trial;
  spec.fault = point.fault;

  // Heap-owned tool and contexts, handed to the world as keepalives: a
  // rank thread that has to be quarantined must never dangle into this
  // frame.
  auto injector = std::make_shared<inject::Injector>(spec, options_.seed);
  mpi::WorldOptions opts;
  opts.nranks = options_.nranks;
  opts.engine = options_.engine;
  opts.seed = options_.seed;
  opts.watchdog = watchdog;
  opts.algorithms = options_.algorithms;
  opts.hang_detection = options_.deterministic_hang_detection;
  opts.repair = options_.repair;
  opts.replay = snapshot;
  auto contexts = std::make_shared<trace::ContextRegistry>(options_.nranks);
  auto& rec = tel::Recorder::instance();
  if (snapshot && rec.enabled()) {
    static auto& clones = rec.counter(
        "fastfit_snapshot_clones_total",
        "Trials that executed only the post-injection suffix via replay");
    clones.add();
  }
  tel::ScopedSpan world_span("world-run");
  const auto t0 = std::chrono::steady_clock::now();
  const auto job = apps::run_job(*workload_, opts, injector.get(), *contexts,
                                 {injector, contexts});
  world_span.finish();
  if (rec.enabled()) {
    static auto& executed = rec.counter(
        "fastfit_trials_executed_total",
        "Injected world executions (fresh runs; excludes journal replays)");
    executed.add();
    static auto& latency = rec.latency(
        "fastfit_trial_seconds", "Wall time of one injected world execution");
    latency.observe_us(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
  }
  trials_run_.fetch_add(1, std::memory_order_relaxed);

  // Post-trial audit. A quarantined thread is accounted, never retried:
  // the trial already classified (forced SIM_TIMEOUT), deterministic
  // seeding means a re-run wedges identically, and the quarantine's
  // keepalives contain the straggler until the end-of-measure reap — the
  // max_leaked_threads gate there catches threads that never come back.
  if (job.world.leaked_threads > 0) {
    leaked_threads_total_.fetch_add(
        static_cast<std::uint64_t>(job.world.leaked_threads),
        std::memory_order_relaxed);
  } else if (job.world.leaked_regions > 0) {
    // With every rank thread joined, all RegisteredBuffer destructors have
    // run; a region still registered is a harness bug, not a fault
    // consequence. Throw so the guard retries (and eventually quarantines
    // the point) rather than keep a result from a corrupted registry.
    throw InternalError("post-trial audit: " +
                        std::to_string(job.world.leaked_regions) +
                        " memory region(s) still registered after teardown");
  }
  // Undelivered transport messages are deliberately NOT audited here: an
  // injected run can legitimately succeed with strays queued (a corrupted
  // root re-routes sends nobody awaits while the digest never sees the
  // difference). The uninjected golden/profiling runs assert zero.
  tel::ScopedSpan classify_span("classify");
  return inject::classify_with_forensics(job.world, job.digest,
                                         golden_digest_);
}

void Campaign::warm_snapshots(std::span<const InjectionPoint> points) {
  if (!snapshot_cache_ || snapshot_cache_->disabled()) return;
  std::set<std::pair<std::uint32_t, std::uint64_t>> warmed;
  for (const auto& point : points) {
    if (!inject::is_replayable(point.fault)) continue;
    if (!warmed.insert({point.site_id, point.invocation}).second) continue;
    (void)snapshot_cache_->warm(point.site_id, point.invocation,
                                [this] { return build_recording(); });
    if (snapshot_cache_->disabled()) return;
  }
}

inject::TrialForensics Campaign::dispatch_trial(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog) {
  ProcPool* pool = active_pool_.load(std::memory_order_acquire);
  if (pool != nullptr && !pool->degraded()) {
    procpool::WorkItem item;
    item.site_id = point.site_id;
    item.rank = point.rank;
    item.invocation = point.invocation;
    item.param = static_cast<std::uint8_t>(point.param);
    item.fault = point.fault;
    item.trial = trial;
    item.watchdog_ms = static_cast<std::uint64_t>(watchdog.count());
    // The in-world watchdog is the real trial timeout; the lease is a
    // generous backstop that only catches a wedged worker *process*
    // (e.g. one that inherited a locked mutex across fork).
    const auto lease = options_.worker_lease.value_or(
        std::max<std::chrono::milliseconds>(
            60'000ms, watchdog * 4 + std::chrono::milliseconds(10'000)));
    const auto result = pool->run(item, lease);
    switch (result.kind) {
      case ProcPool::Result::Kind::Completed: {
        if (!result.reply.ok) {
          // A contained worker-side failure re-enters the guard exactly
          // like an in-process internal error would.
          throw InternalError("worker: " + result.reply.error);
        }
        trials_run_.fetch_add(1, std::memory_order_relaxed);
        if (result.reply.leaked_threads > 0) {
          // The child's quarantined threads died with the child; they are
          // accounted (for health parity with the thread backend) but can
          // never still be running in this process.
          leaked_threads_total_.fetch_add(result.reply.leaked_threads,
                                          std::memory_order_relaxed);
        }
        inject::TrialForensics forensics;
        forensics.outcome = result.reply.outcome;
        forensics.deterministic_hang = result.reply.deterministic_hang;
        forensics.autopsy = result.reply.autopsy;
        return forensics;
      }
      case ProcPool::Result::Kind::SignalDeath: {
        trials_run_.fetch_add(1, std::memory_order_relaxed);
        worker_deaths_.fetch_add(1, std::memory_order_relaxed);
        inject::TrialForensics forensics;
        forensics.outcome = inject::Outcome::SegFault;
        forensics.autopsy =
            describe_worker_death(result.signal, result.user_us,
                                  result.sys_us, result.maxrss_kb);
        return forensics;
      }
      case ProcPool::Result::Kind::LeaseExpired:
        worker_lease_kills_.fetch_add(1, std::memory_order_relaxed);
        throw InternalError(result.error);
      case ProcPool::Result::Kind::LaneFailure:
        throw InternalError(result.error);
    }
    throw InternalError("dispatch_trial: unknown worker result");
  }
  if (inject::is_signal_model(point.fault.model)) {
    // Never raise a real signal inside the campaign process: with the
    // pool gone this trial cannot run, so it takes the retry → quarantine
    // ladder instead of the in-process fallback.
    throw InternalError(
        "fault model '" + point.fault.canonical() +
        "' needs a live worker pool (process isolation degraded)");
  }
  if (pool != nullptr) {
    // Degraded pool, non-signal model: graceful in-process fallback,
    // recorded in CampaignHealth (results are identical either way).
    isolation_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return run_trial(point, trial, watchdog);
}

TrialRunner::Attempt Campaign::run_guarded(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog) {
  Attempt attempt;
  for (std::uint32_t tries = 0;; ++tries) {
    // Attribution prefix for the error: which attempt failed, on which
    // executor worker (quarantine messages must be traceable to a lane).
    const std::string site = "attempt " + std::to_string(tries + 1) + " on " +
                             execution_site() + ": ";
    try {
      const auto forensics = dispatch_trial(point, trial, watchdog);
      attempt.outcome = forensics.outcome;
      attempt.deterministic_hang = forensics.deterministic_hang;
      attempt.autopsy = forensics.autopsy;
      attempt.ok = true;
      return attempt;
    } catch (const std::exception& e) {
      attempt.error = site + e.what();
    } catch (...) {
      attempt.error = site + "unknown internal error";
    }
    if (tries >= options_.max_trial_retries) {
      attempt.ok = false;
      return attempt;
    }
    ++attempt.retries;
    total_retries_.fetch_add(1, std::memory_order_relaxed);
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& retries = rec.counter("fastfit_trial_retries_total",
                                         "Guarded-trial internal retries");
      retries.add();
    }
    // Exponential backoff: transient failures (OOM pressure, fd
    // exhaustion) need breathing room, not an immediate identical retry.
    const auto backoff = std::min<std::chrono::milliseconds>(
        250ms, std::chrono::milliseconds(5) * (1u << std::min(tries, 6u)));
    std::this_thread::sleep_for(backoff);
  }
}

std::size_t Campaign::parallel_trials() const noexcept {
  return resolve_parallel_trials(
      options_.max_parallel_trials, options_.nranks,
      options_.engine == mpi::WorldEngine::Threads);
}

void Campaign::recalibrate_after_storm(std::size_t pool) {
  const auto budget = std::max<std::chrono::milliseconds>(
      30'000ms, watchdog_ * options_.watchdog_escalation);
  tel::ScopedSpan recal_span("watchdog-recalibrate");
  // The whole point is a fresh wall-time measurement on the machine as it
  // is now: drop the memoized golden so run_golden re-measures (and
  // refreshes the entry for later campaigns).
  GoldenCache::instance().invalidate(golden_key());
  const auto [digest, wall] = run_golden(budget);
  if (digest != golden_digest_) {
    throw InternalError("Campaign: recalibration golden digest diverged");
  }
  watchdog_ = std::max(kWatchdogFloor, wall * kWatchdogMultiplier);
  options_.max_parallel_trials = std::max<std::size_t>(1, pool / 2);
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& recals =
        rec.counter("fastfit_watchdog_recalibrations_total",
                    "Storm-triggered golden recalibrations");
    recals.add();
  }
}

std::vector<PointResult> Campaign::measure_impl(
    std::span<const InjectionPoint> points, std::uint32_t trials,
    std::size_t pool) {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  measuring_.fetch_add(1, std::memory_order_acq_rel);
  struct MeasuringGuard {
    std::atomic<int>& flag;
    ~MeasuringGuard() { flag.fetch_sub(1, std::memory_order_acq_rel); }
  } measuring_guard{measuring_};

  tel::ScopedSpan batch_span("measure-batch");
  batch_span.arg("points", std::to_string(points.size()));
  batch_span.arg("trials", std::to_string(trials));
  batch_span.arg("pool", std::to_string(pool));
  batch_span.arg("isolation", to_string(options_.isolation));

  // Process isolation: fork the lane servers now, from the quietest
  // moment this measure has — before the trial pool spawns threads, and
  // after pre-paying the snapshot recording so every worker inherits it
  // instead of rebuilding it per child.
  std::unique_ptr<ProcPool> proc_pool;
  if (options_.isolation == IsolationMode::Process) {
    warm_snapshots(points);
    ProcPool::Options pool_options;
    pool_options.lanes = std::max<std::size_t>(1, pool);
    pool_options.respawn_budget = pool_options.lanes * 2 + 2;
    // Forked servers may have inherited a recorder mutex mid-lock from
    // some other supervisor thread; worker-side telemetry is lost either
    // way (parent-side sinks carry the counters that matter), so turn
    // the recorder off outright in the worker tree.
    pool_options.child_init = [] { tel::Recorder::instance().disable(); };
    proc_pool = std::make_unique<ProcPool>(
        pool_options, [this](const procpool::WorkItem& item) {
          // Runs inside the single-use trial child. Never throws: a
          // contained failure travels back as TrialReply::error and
          // re-enters the supervisor-side retry guard.
          procpool::TrialReply reply;
          try {
            InjectionPoint point;
            point.site_id = item.site_id;
            point.rank = item.rank;
            point.invocation = item.invocation;
            point.param = static_cast<mpi::Param>(item.param);
            point.fault = item.fault;
            const auto leaks_before =
                leaked_threads_total_.load(std::memory_order_relaxed);
            const auto forensics = run_trial(
                point, item.trial,
                std::chrono::milliseconds(
                    static_cast<std::int64_t>(item.watchdog_ms)));
            reply.ok = true;
            reply.outcome = forensics.outcome;
            reply.deterministic_hang = forensics.deterministic_hang;
            reply.autopsy = forensics.autopsy;
            reply.leaked_threads = static_cast<std::uint32_t>(
                leaked_threads_total_.load(std::memory_order_relaxed) -
                leaks_before);
          } catch (const std::exception& e) {
            reply.ok = false;
            reply.error = e.what();
          } catch (...) {
            reply.ok = false;
            reply.error = "unknown worker error";
          }
          return reply;
        });
    active_pool_.store(proc_pool.get(), std::memory_order_release);
  }
  struct PoolGuard {
    std::atomic<ProcPool*>& slot;
    ~PoolGuard() { slot.store(nullptr, std::memory_order_release); }
  } pool_guard{active_pool_};

  // The scheduler owns the (point, trial) job matrix — replay, concurrent
  // execution, storm response, escalated re-confirmation, deterministic
  // aggregation. Campaign contributes the engine (TrialRunner) and the
  // observers: the report accumulator, the metrics sink, and (when
  // attached) the journal write-through.
  SchedulerConfig scheduler_config;
  scheduler_config.pool = pool;
  scheduler_config.storm_fraction = options_.watchdog_storm_fraction;
  scheduler_config.watchdog_escalation = options_.watchdog_escalation;
  TrialScheduler scheduler(*this, scheduler_config);

  ResultAccumulator accumulator(points);
  TelemetrySink telemetry_sink(options_.extended_outcomes());
  std::optional<JournalSink> journal_sink;
  std::vector<OutcomeSink*> sinks{&accumulator, &telemetry_sink};
  if (journal_) {
    journal_sink.emplace(*journal_, points);
    sinks.push_back(&*journal_sink);
  }
  const auto batch = scheduler.run(points, trials, journal_.get(), sinks);

  // Fold the batch's resilience activity into the campaign-wide health
  // counters.
  replayed_trials_.fetch_add(batch.replayed, std::memory_order_relaxed);
  deterministic_deadlocks_.fetch_add(batch.deterministic_deadlocks,
                                     std::memory_order_relaxed);
  confirmations_.fetch_add(batch.confirmations, std::memory_order_relaxed);
  recalibrations_.fetch_add(batch.recalibrations, std::memory_order_relaxed);
  quarantined_points_.fetch_add(batch.quarantined_points,
                                std::memory_order_relaxed);

  auto results = accumulator.take();
  auto& rec = tel::Recorder::instance();
  const bool telemetry_on = rec.enabled();

  // Leak accounting: reap quarantined threads that have since finished
  // (a faulted compute loop only notices poison at its next MPI call, so
  // most stragglers exit on their own), publish what is still running,
  // and fail the measure once *live* leaks exceed the budget — a wedged
  // rank thread is contained, never ignored.
  tel::ScopedSpan reap_span("quarantine-reap");
  const auto outstanding = mpi::ThreadQuarantine::instance().reap();
  reap_span.arg("outstanding", std::to_string(outstanding));
  reap_span.finish();
  leaked_threads_outstanding_.store(static_cast<std::uint64_t>(outstanding),
                                    std::memory_order_relaxed);
  if (telemetry_on) {
    static auto& leaked = rec.gauge(
        "fastfit_leaked_threads",
        "Quarantined rank threads still running after the end-of-measure reap");
    leaked.set(static_cast<std::int64_t>(outstanding));
  }
  if (outstanding > options_.max_leaked_threads) {
    throw InternalError(
        "campaign has " + std::to_string(outstanding) +
        " rank threads still running in quarantine after reap "
        "(max_leaked_threads = " +
        std::to_string(options_.max_leaked_threads) + ")");
  }
  return results;
}

PointResult Campaign::measure(const InjectionPoint& point,
                              std::uint32_t trials) {
  const InjectionPoint points[1] = {point};
  auto results = measure_impl(
      std::span<const InjectionPoint>(points, 1), trials, /*pool=*/1);
  return std::move(results.front());
}

PointResult Campaign::measure(const InjectionPoint& point) {
  return measure(point, options_.trials_per_point);
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points, std::uint32_t trials) {
  return measure_impl(points, trials, parallel_trials());
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points) {
  return measure_many(points, options_.trials_per_point);
}

}  // namespace fastfit::core

#include "core/campaign.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

#include "core/trial_executor.hpp"
#include "inject/injector.hpp"
#include "minimpi/quarantine.hpp"
#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

using namespace std::chrono_literals;

namespace tel = fastfit::telemetry;

namespace {

// Watchdog calibration: the fault-free path must fit comfortably, a hung
// job must be detected promptly.
constexpr std::chrono::milliseconds kWatchdogFloor = 150ms;
constexpr int kWatchdogMultiplier = 12;

// Outcome-slot sentinels for measure_impl's (point, trial) matrix.
constexpr int kPending = -1;  ///< not yet executed
constexpr int kSkipped = -2;  ///< abandoned after the point quarantined

std::string algorithms_id(const mpi::CollectiveAlgorithms& algorithms) {
  return std::to_string(static_cast<int>(algorithms.allreduce)) + '/' +
         std::to_string(static_cast<int>(algorithms.bcast));
}

/// Where a trial attempt ran, for error attribution and trace spans.
std::string execution_site() {
  const int worker = TrialExecutor::current_worker();
  return worker >= 0 ? "executor thread " + std::to_string(worker)
                     : "main thread";
}

}  // namespace

double PointResult::error_rate() const {
  if (trials == 0) return 0.0;
  const auto successes =
      counts[static_cast<std::size_t>(inject::Outcome::Success)];
  return 1.0 - static_cast<double>(successes) / static_cast<double>(trials);
}

double PointResult::fraction(inject::Outcome outcome) const {
  if (trials == 0) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(outcome)]) /
         static_cast<double>(trials);
}

inject::Outcome PointResult::dominant() const {
  std::size_t best = 0;
  for (std::size_t o = 1; o < inject::kNumOutcomes; ++o) {
    if (counts[o] > counts[best]) best = o;
  }
  return static_cast<inject::Outcome>(best);
}

Campaign::Campaign(const apps::Workload& workload, CampaignOptions options)
    : workload_(&workload), options_(options) {
  if (options_.nranks < 1) throw ConfigError("Campaign: nranks must be >= 1");
  if (options_.trials_per_point == 0) {
    throw ConfigError("Campaign: trials_per_point must be positive");
  }
  if (options_.watchdog_escalation < 1) {
    throw ConfigError("Campaign: watchdog_escalation must be >= 1");
  }
  if (options_.watchdog_storm_fraction <= 0.0 ||
      options_.watchdog_storm_fraction > 1.0) {
    throw ConfigError("Campaign: watchdog_storm_fraction must be in (0, 1]");
  }
}

std::pair<std::uint64_t, std::chrono::milliseconds> Campaign::run_golden(
    std::chrono::milliseconds watchdog_budget) {
  mpi::WorldOptions opts;
  opts.nranks = options_.nranks;
  opts.seed = options_.seed;
  opts.algorithms = options_.algorithms;
  opts.watchdog = watchdog_budget;
  opts.hang_detection = options_.deterministic_hang_detection;
  auto contexts = std::make_shared<trace::ContextRegistry>(options_.nranks);
  tel::ScopedSpan span("golden-run");
  const auto t0 = std::chrono::steady_clock::now();
  const auto golden =
      apps::run_job(*workload_, opts, nullptr, *contexts, {contexts});
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  span.finish();
  if (!golden.world.clean()) {
    throw InternalError("Campaign: golden run failed: " +
                        golden.world.event->message);
  }
  // Uninjected runs get the strict leak audit: with no fault to explain
  // them, a leaked thread, a still-registered region, or a queued message
  // is a harness bug, full stop.
  if (golden.world.leaked_threads > 0 || golden.world.leaked_regions > 0 ||
      golden.world.undelivered_messages > 0) {
    throw InternalError(
        "Campaign: golden run leaked (" +
        std::to_string(golden.world.leaked_threads) + " thread(s), " +
        std::to_string(golden.world.leaked_regions) + " region(s), " +
        std::to_string(golden.world.undelivered_messages) +
        " undelivered message(s))");
  }
  return {golden.digest, wall};
}

void Campaign::profile() {
  if (profiled_) throw InternalError("Campaign::profile: already profiled");

  // Golden (fault-free, un-instrumented) run: digest + wall time.
  const auto [digest, golden_wall] =
      run_golden(options_.watchdog.value_or(30'000ms));
  golden_digest_ = digest;

  watchdog_ = options_.watchdog.value_or(
      std::max(kWatchdogFloor, golden_wall * kWatchdogMultiplier));

  // Profiling run (paper Fig 5 phase 1): same problem as the injection
  // runs, so the features transfer.
  contexts_ = std::make_shared<trace::ContextRegistry>(options_.nranks);
  profiler_ = std::make_shared<profile::Profiler>(*contexts_);
  mpi::WorldOptions profile_opts;
  profile_opts.nranks = options_.nranks;
  profile_opts.seed = options_.seed;
  profile_opts.algorithms = options_.algorithms;
  profile_opts.watchdog = options_.watchdog.value_or(30'000ms);
  profile_opts.hang_detection = options_.deterministic_hang_detection;
  tel::ScopedSpan profiling_span("profiling-run");
  const auto profiled = apps::run_job(*workload_, profile_opts,
                                      profiler_.get(), *contexts_,
                                      {contexts_, profiler_});
  profiling_span.finish();
  if (!profiled.world.clean()) {
    throw InternalError("Campaign: profiling run failed: " +
                        profiled.world.event->message);
  }
  if (profiled.digest != golden_digest_) {
    throw InternalError("Campaign: profiling run digest diverged");
  }
  if (profiled.world.leaked_threads > 0 ||
      profiled.world.leaked_regions > 0 ||
      profiled.world.undelivered_messages > 0) {
    throw InternalError(
        "Campaign: profiling run leaked (" +
        std::to_string(profiled.world.leaked_threads) + " thread(s), " +
        std::to_string(profiled.world.leaked_regions) + " region(s), " +
        std::to_string(profiled.world.undelivered_messages) +
        " undelivered message(s))");
  }

  {
    tel::ScopedSpan span("enumerate-points");
    enumeration_ = enumerate_points(*profiler_);
  }
  profiled_ = true;
}

const Enumeration& Campaign::enumeration() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return enumeration_;
}

const profile::Profiler& Campaign::profiler() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return *profiler_;
}

std::uint64_t Campaign::golden_digest() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return golden_digest_;
}

void Campaign::attach_journal(const std::string& path, JournalMode mode) {
  if (!profiled_) {
    throw InternalError("Campaign::attach_journal: profile() not run");
  }
  if (measuring()) {
    throw InternalError("Campaign::attach_journal: a measure is running");
  }
  JournalHeader header;
  header.workload = workload_->name();
  header.seed = options_.seed;
  header.nranks = options_.nranks;
  header.trials_per_point = options_.trials_per_point;
  header.fault_model = to_string(options_.fault_model);
  header.algorithms = algorithms_id(options_.algorithms);
  header.golden_digest = golden_digest_;
  journal_ = mode == JournalMode::Resume ? TrialJournal::resume(path, header)
                                         : TrialJournal::create(path, header);
}

void Campaign::detach_journal() {
  if (!journal_) return;
  journal_->flush();
  journal_.reset();
}

void Campaign::set_max_parallel_trials(std::size_t max_parallel) {
  if (measuring()) {
    throw InternalError(
        "Campaign::set_max_parallel_trials: a measure is running");
  }
  options_.max_parallel_trials = max_parallel;
}

CampaignHealth Campaign::health() const noexcept {
  CampaignHealth h;
  h.total_retries = total_retries_.load(std::memory_order_relaxed);
  h.quarantined_points = quarantined_points_.load(std::memory_order_relaxed);
  h.watchdog_confirmations = confirmations_.load(std::memory_order_relaxed);
  h.watchdog_recalibrations = recalibrations_.load(std::memory_order_relaxed);
  h.replayed_trials = replayed_trials_.load(std::memory_order_relaxed);
  h.deterministic_deadlocks =
      deterministic_deadlocks_.load(std::memory_order_relaxed);
  h.quarantined_rank_threads =
      leaked_threads_total_.load(std::memory_order_relaxed);
  h.leaked_rank_threads =
      leaked_threads_outstanding_.load(std::memory_order_relaxed);
  return h;
}

inject::TrialForensics Campaign::run_trial(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog) {
  inject::FaultSpec spec;
  spec.site_id = point.site_id;
  spec.rank = point.rank;
  spec.invocation = point.invocation;
  spec.param = point.param;
  spec.trial = trial;
  spec.model = options_.fault_model;

  // Heap-owned tool and contexts, handed to the world as keepalives: a
  // rank thread that has to be quarantined must never dangle into this
  // frame.
  auto injector = std::make_shared<inject::Injector>(spec, options_.seed);
  mpi::WorldOptions opts;
  opts.nranks = options_.nranks;
  opts.seed = options_.seed;
  opts.watchdog = watchdog;
  opts.algorithms = options_.algorithms;
  opts.hang_detection = options_.deterministic_hang_detection;
  auto contexts = std::make_shared<trace::ContextRegistry>(options_.nranks);
  auto& rec = tel::Recorder::instance();
  tel::ScopedSpan world_span("world-run");
  const auto t0 = std::chrono::steady_clock::now();
  const auto job = apps::run_job(*workload_, opts, injector.get(), *contexts,
                                 {injector, contexts});
  world_span.finish();
  if (rec.enabled()) {
    static auto& executed = rec.counter(
        "fastfit_trials_executed_total",
        "Injected world executions (fresh runs; excludes journal replays)");
    executed.add();
    static auto& latency = rec.latency(
        "fastfit_trial_seconds", "Wall time of one injected world execution");
    latency.observe_us(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
  }
  trials_run_.fetch_add(1, std::memory_order_relaxed);

  // Post-trial audit. A quarantined thread is accounted, never retried:
  // the trial already classified (forced SIM_TIMEOUT), deterministic
  // seeding means a re-run wedges identically, and the quarantine's
  // keepalives contain the straggler until the end-of-measure reap — the
  // max_leaked_threads gate there catches threads that never come back.
  if (job.world.leaked_threads > 0) {
    leaked_threads_total_.fetch_add(
        static_cast<std::uint64_t>(job.world.leaked_threads),
        std::memory_order_relaxed);
  } else if (job.world.leaked_regions > 0) {
    // With every rank thread joined, all RegisteredBuffer destructors have
    // run; a region still registered is a harness bug, not a fault
    // consequence. Throw so the guard retries (and eventually quarantines
    // the point) rather than keep a result from a corrupted registry.
    throw InternalError("post-trial audit: " +
                        std::to_string(job.world.leaked_regions) +
                        " memory region(s) still registered after teardown");
  }
  // Undelivered transport messages are deliberately NOT audited here: an
  // injected run can legitimately succeed with strays queued (a corrupted
  // root re-routes sends nobody awaits while the digest never sees the
  // difference). The uninjected golden/profiling runs assert zero.
  tel::ScopedSpan classify_span("classify");
  return inject::classify_with_forensics(job.world, job.digest,
                                         golden_digest_);
}

Campaign::TrialAttempt Campaign::run_trial_guarded(
    const InjectionPoint& point, std::uint64_t trial,
    std::chrono::milliseconds watchdog) {
  TrialAttempt attempt;
  for (std::uint32_t tries = 0;; ++tries) {
    // Attribution prefix for the error: which attempt failed, on which
    // executor worker (quarantine messages must be traceable to a lane).
    const std::string site = "attempt " + std::to_string(tries + 1) + " on " +
                             execution_site() + ": ";
    try {
      const auto forensics = run_trial(point, trial, watchdog);
      attempt.outcome = forensics.outcome;
      attempt.deterministic_hang = forensics.deterministic_hang;
      attempt.autopsy = forensics.autopsy;
      attempt.ok = true;
      return attempt;
    } catch (const std::exception& e) {
      attempt.error = site + e.what();
    } catch (...) {
      attempt.error = site + "unknown internal error";
    }
    if (tries >= options_.max_trial_retries) {
      attempt.ok = false;
      return attempt;
    }
    ++attempt.retries;
    total_retries_.fetch_add(1, std::memory_order_relaxed);
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& retries = rec.counter("fastfit_trial_retries_total",
                                         "Guarded-trial internal retries");
      retries.add();
    }
    // Exponential backoff: transient failures (OOM pressure, fd
    // exhaustion) need breathing room, not an immediate identical retry.
    const auto backoff = std::min<std::chrono::milliseconds>(
        250ms, std::chrono::milliseconds(5) * (1u << std::min(tries, 6u)));
    std::this_thread::sleep_for(backoff);
  }
}

std::size_t Campaign::parallel_trials() const noexcept {
  return resolve_parallel_trials(options_.max_parallel_trials,
                                 options_.nranks);
}

std::vector<PointResult> Campaign::measure_impl(
    std::span<const InjectionPoint> points, std::uint32_t trials,
    std::size_t pool) {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  measuring_.fetch_add(1, std::memory_order_acq_rel);
  struct MeasuringGuard {
    std::atomic<int>& flag;
    ~MeasuringGuard() { flag.fetch_sub(1, std::memory_order_acq_rel); }
  } measuring_guard{measuring_};

  tel::ScopedSpan batch_span("measure-batch");
  batch_span.arg("points", std::to_string(points.size()));
  batch_span.arg("trials", std::to_string(trials));
  batch_span.arg("pool", std::to_string(pool));

  std::vector<PointResult> results(points.size());
  // One outcome slot per (point, trial) job; aggregated afterwards in
  // trial order so the result is byte-for-byte the serial one.
  std::vector<std::vector<int>> outcomes(points.size(),
                                         std::vector<int>(trials, kPending));
  std::vector<std::vector<std::uint8_t>> replayed(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  // Forensics per (point, trial): whether an INF_LOOP was proven
  // deterministically (skips escalated re-confirmation) and the world
  // autopsy carried into the journal and point stats.
  std::vector<std::vector<std::uint8_t>> deterministic(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  std::vector<std::vector<std::string>> autopsies(
      points.size(), std::vector<std::string>(trials));

  // Per-point supervision state. deque: stable addresses, no moves — the
  // elements hold atomics.
  struct PointState {
    std::atomic<bool> quarantined{false};
    std::atomic<std::uint32_t> retries{0};
    std::mutex error_mutex;
    std::string last_error;
  };
  std::deque<PointState> state(points.size());

  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = point_key(points[i]);
  }

  // Phase 0: replay journaled outcomes; only the gaps execute.
  if (journal_) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (const auto o = journal_->lookup(keys[i], t)) {
          outcomes[i][t] = static_cast<int>(*o);
          replayed[i][t] = 1;
          replayed_trials_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  // Phase 1: concurrent guarded execution of the missing trials.
  std::atomic<std::uint64_t> fresh{0};
  std::atomic<std::uint64_t> fresh_timeouts{0};
  {
    TrialExecutor executor(pool);
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (outcomes[i][t] != kPending) continue;
        // Submission timestamp: the gap to execution start is the queue
        // wait, rendered as its own span on the executing worker's lane.
        auto& rec = tel::Recorder::instance();
        const std::int64_t submit_us = rec.enabled() ? rec.now_us() : -1;
        executor.submit([this, &outcomes, &state, &points, &keys, &fresh,
                         &fresh_timeouts, &deterministic, &autopsies,
                         submit_us, i, t] {
          auto& st = state[i];
          if (st.quarantined.load(std::memory_order_acquire)) {
            outcomes[i][t] = kSkipped;
            return;
          }
          auto& rec = tel::Recorder::instance();
          if (submit_us >= 0 && rec.enabled()) {
            const auto info = tel::Recorder::thread_info();
            tel::Event wait;
            wait.name = "queue-wait";
            wait.start_us = submit_us;
            wait.dur_us = rec.now_us() - submit_us;
            wait.track = info.track;
            wait.index = info.index;
            rec.record(std::move(wait));
          }
          tel::ScopedSpan trial_span("trial");
          trial_span.arg("point", keys[i]);
          trial_span.arg("trial", std::to_string(t));
          const auto attempt = run_trial_guarded(points[i], t, watchdog_);
          if (attempt.ok) {
            trial_span.arg("outcome", inject::to_string(attempt.outcome));
          }
          st.retries.fetch_add(attempt.retries, std::memory_order_relaxed);
          if (!attempt.ok) {
            {
              std::lock_guard lock(st.error_mutex);
              st.last_error = attempt.error;
            }
            st.quarantined.store(true, std::memory_order_release);
            outcomes[i][t] = kSkipped;
            return;
          }
          fresh.fetch_add(1, std::memory_order_relaxed);
          if (attempt.outcome == inject::Outcome::InfLoop) {
            if (attempt.deterministic_hang) {
              // Proven structural deadlock: load-independent, so it
              // neither feeds the storm heuristic nor needs an escalated
              // re-confirmation.
              deterministic[i][t] = 1;
              deterministic_deadlocks_.fetch_add(1,
                                                 std::memory_order_relaxed);
            } else {
              fresh_timeouts.fetch_add(1, std::memory_order_relaxed);
            }
          }
          autopsies[i][t] = attempt.autopsy;
          outcomes[i][t] = static_cast<int>(attempt.outcome);
        });
      }
    }
    executor.wait();
  }

  // Phase 2: watchdog-storm response. When most of a batch times out the
  // likely cause is an overloaded machine (or a stale calibration), not a
  // sudden epidemic of genuine hangs: re-measure the golden wall time,
  // recalibrate the watchdog from it, and degrade trial parallelism
  // toward serial. The escalated re-confirmation below then reclassifies
  // with the fresh budget.
  const auto fresh_count = fresh.load(std::memory_order_relaxed);
  const auto timeout_count = fresh_timeouts.load(std::memory_order_relaxed);
  if (pool > 1 && fresh_count > 0 &&
      static_cast<double>(timeout_count) >
          options_.watchdog_storm_fraction *
              static_cast<double>(fresh_count)) {
    const auto budget = std::max<std::chrono::milliseconds>(
        30'000ms, watchdog_ * options_.watchdog_escalation);
    tel::ScopedSpan recal_span("watchdog-recalibrate");
    const auto [digest, wall] = run_golden(budget);
    if (digest != golden_digest_) {
      throw InternalError("Campaign: recalibration golden digest diverged");
    }
    watchdog_ = std::max(kWatchdogFloor, wall * kWatchdogMultiplier);
    options_.max_parallel_trials = std::max<std::size_t>(1, pool / 2);
    recalibrations_.fetch_add(1, std::memory_order_relaxed);
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& recals =
          rec.counter("fastfit_watchdog_recalibrations_total",
                      "Storm-triggered golden recalibrations");
      recals.add();
    }
  }

  // Phase 3: the watchdog is the one outcome gate that feels CPU
  // contention: a slow-but-finishing faulted run can cross the wall-clock
  // deadline only because concurrent Worlds shared the cores. Re-run
  // every freshly timed-out trial serially — alone on the machine, with
  // an escalated budget — and keep the confirmed outcome. Genuinely hung
  // runs time out again (same INF_LOOP), so classification is identical
  // at every parallelism level. Journal-replayed INF_LOOPs were already
  // confirmed when first recorded.
  // Deterministic verdicts skip this entirely: the monitor *proved* the
  // deadlock structurally, so contention cannot have caused it.
  const auto escalated = watchdog_ * options_.watchdog_escalation;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (outcomes[i][t] != static_cast<int>(inject::Outcome::InfLoop) ||
          replayed[i][t] || deterministic[i][t]) {
        continue;
      }
      tel::ScopedSpan confirm_span("watchdog-confirm");
      confirm_span.arg("point", keys[i]);
      confirm_span.arg("trial", std::to_string(t));
      const auto attempt = run_trial_guarded(points[i], t, escalated);
      confirmations_.fetch_add(1, std::memory_order_relaxed);
      if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
        static auto& confirms =
            rec.counter("fastfit_watchdog_confirmations_total",
                        "Escalated uncontended INF_LOOP re-confirmations");
        confirms.add();
      }
      state[i].retries.fetch_add(attempt.retries, std::memory_order_relaxed);
      // A confirmation that fails internally keeps the original outcome:
      // the trial did produce one, and quarantining here would discard it.
      if (attempt.ok) outcomes[i][t] = static_cast<int>(attempt.outcome);
    }
  }

  // Phase 4: aggregate in trial order and write through to the journal.
  // Outcome counters increment here — for replayed *and* fresh trials —
  // so a journal-resumed campaign reports identical totals.
  auto& rec = tel::Recorder::instance();
  const bool telemetry_on = rec.enabled();
  std::array<tel::Counter*, inject::kNumOutcomes> outcome_counters{};
  if (telemetry_on) {
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      const std::string labels =
          "outcome=\"" +
          std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
          '"';
      outcome_counters[o] = &rec.counter(
          "fastfit_trials_total", "Trial outcomes recorded (incl. journal replays)",
          labels);
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].point = points[i];
    auto& st = state[i];
    for (std::uint32_t t = 0; t < trials; ++t) {
      const int o = outcomes[i][t];
      if (o < 0) continue;  // skipped after quarantine
      results[i].record(static_cast<inject::Outcome>(o));
      if (telemetry_on) {
        outcome_counters[static_cast<std::size_t>(o)]->add();
        if (replayed[i][t]) {
          static auto& replays = rec.counter(
              "fastfit_trials_replayed_total", "Trials served from the journal");
          replays.add();
        }
      }
      if (!autopsies[i][t].empty()) {
        results[i].exec.last_autopsy = autopsies[i][t];
      }
      if (journal_ && !replayed[i][t]) {
        journal_->record_trial(keys[i], t, static_cast<inject::Outcome>(o),
                               deterministic[i][t] != 0, autopsies[i][t]);
      }
    }
    results[i].exec.retries = st.retries.load(std::memory_order_relaxed);
    if (st.quarantined.load(std::memory_order_acquire)) {
      results[i].exec.quarantined = true;
      std::lock_guard lock(st.error_mutex);
      results[i].exec.last_error = st.last_error;
      quarantined_points_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_on) {
        static auto& quarantines =
            rec.counter("fastfit_quarantined_points_total",
                        "Points the trial guard gave up on");
        quarantines.add();
      }
      if (journal_) {
        journal_->record_quarantine(keys[i], results[i].exec.retries,
                                    results[i].exec.last_error);
      }
    }
  }
  if (journal_) journal_->flush();

  // Leak accounting: reap quarantined threads that have since finished
  // (a faulted compute loop only notices poison at its next MPI call, so
  // most stragglers exit on their own), publish what is still running,
  // and fail the measure once *live* leaks exceed the budget — a wedged
  // rank thread is contained, never ignored.
  tel::ScopedSpan reap_span("quarantine-reap");
  const auto outstanding = mpi::ThreadQuarantine::instance().reap();
  reap_span.arg("outstanding", std::to_string(outstanding));
  reap_span.finish();
  leaked_threads_outstanding_.store(static_cast<std::uint64_t>(outstanding),
                                    std::memory_order_relaxed);
  if (telemetry_on) {
    static auto& leaked = rec.gauge(
        "fastfit_leaked_threads",
        "Quarantined rank threads still running after the end-of-measure reap");
    leaked.set(static_cast<std::int64_t>(outstanding));
  }
  if (outstanding > options_.max_leaked_threads) {
    throw InternalError(
        "campaign has " + std::to_string(outstanding) +
        " rank threads still running in quarantine after reap "
        "(max_leaked_threads = " +
        std::to_string(options_.max_leaked_threads) + ")");
  }
  return results;
}

PointResult Campaign::measure(const InjectionPoint& point,
                              std::uint32_t trials) {
  const InjectionPoint points[1] = {point};
  auto results = measure_impl(
      std::span<const InjectionPoint>(points, 1), trials, /*pool=*/1);
  return std::move(results.front());
}

PointResult Campaign::measure(const InjectionPoint& point) {
  return measure(point, options_.trials_per_point);
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points, std::uint32_t trials) {
  return measure_impl(points, trials, parallel_trials());
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points) {
  return measure_many(points, options_.trials_per_point);
}

}  // namespace fastfit::core

#include "core/campaign.hpp"

#include <algorithm>

#include "core/trial_executor.hpp"
#include "inject/injector.hpp"
#include "support/error.hpp"

namespace fastfit::core {

using namespace std::chrono_literals;

double PointResult::error_rate() const {
  if (trials == 0) return 0.0;
  const auto successes =
      counts[static_cast<std::size_t>(inject::Outcome::Success)];
  return 1.0 - static_cast<double>(successes) / static_cast<double>(trials);
}

double PointResult::fraction(inject::Outcome outcome) const {
  if (trials == 0) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(outcome)]) /
         static_cast<double>(trials);
}

inject::Outcome PointResult::dominant() const {
  std::size_t best = 0;
  for (std::size_t o = 1; o < inject::kNumOutcomes; ++o) {
    if (counts[o] > counts[best]) best = o;
  }
  return static_cast<inject::Outcome>(best);
}

Campaign::Campaign(const apps::Workload& workload, CampaignOptions options)
    : workload_(&workload), options_(options) {
  if (options_.nranks < 1) throw ConfigError("Campaign: nranks must be >= 1");
  if (options_.trials_per_point == 0) {
    throw ConfigError("Campaign: trials_per_point must be positive");
  }
}

void Campaign::profile() {
  if (profiled_) throw InternalError("Campaign::profile: already profiled");

  // Golden (fault-free, un-instrumented) run: digest + wall time.
  mpi::WorldOptions golden_opts;
  golden_opts.nranks = options_.nranks;
  golden_opts.seed = options_.seed;
  golden_opts.algorithms = options_.algorithms;
  golden_opts.watchdog = options_.watchdog.value_or(30'000ms);
  trace::ContextRegistry golden_contexts(options_.nranks);
  const auto t0 = std::chrono::steady_clock::now();
  const auto golden =
      apps::run_job(*workload_, golden_opts, nullptr, golden_contexts);
  const auto golden_wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  if (!golden.world.clean()) {
    throw InternalError("Campaign: golden run failed: " +
                        golden.world.event->message);
  }
  golden_digest_ = golden.digest;

  // Watchdog for injected runs: a hung job must be detected promptly, but
  // the fault-free path must fit comfortably.
  watchdog_ = options_.watchdog.value_or(
      std::max<std::chrono::milliseconds>(150ms, golden_wall * 12));

  // Profiling run (paper Fig 5 phase 1): same problem as the injection
  // runs, so the features transfer.
  contexts_ = std::make_unique<trace::ContextRegistry>(options_.nranks);
  profiler_ = std::make_unique<profile::Profiler>(*contexts_);
  mpi::WorldOptions profile_opts = golden_opts;
  const auto profiled =
      apps::run_job(*workload_, profile_opts, profiler_.get(), *contexts_);
  if (!profiled.world.clean()) {
    throw InternalError("Campaign: profiling run failed: " +
                        profiled.world.event->message);
  }
  if (profiled.digest != golden_digest_) {
    throw InternalError("Campaign: profiling run digest diverged");
  }

  enumeration_ = enumerate_points(*profiler_);
  profiled_ = true;
}

const Enumeration& Campaign::enumeration() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return enumeration_;
}

const profile::Profiler& Campaign::profiler() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return *profiler_;
}

std::uint64_t Campaign::golden_digest() const {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  return golden_digest_;
}

inject::Outcome Campaign::run_trial(const InjectionPoint& point,
                                    std::uint64_t trial) {
  inject::FaultSpec spec;
  spec.site_id = point.site_id;
  spec.rank = point.rank;
  spec.invocation = point.invocation;
  spec.param = point.param;
  spec.trial = trial;
  spec.model = options_.fault_model;

  inject::Injector injector(spec, options_.seed);
  mpi::WorldOptions opts;
  opts.nranks = options_.nranks;
  opts.seed = options_.seed;
  opts.watchdog = watchdog_;
  opts.algorithms = options_.algorithms;
  trace::ContextRegistry contexts(options_.nranks);
  const auto job = apps::run_job(*workload_, opts, &injector, contexts);
  trials_run_.fetch_add(1, std::memory_order_relaxed);
  return inject::classify(job.world, job.digest, golden_digest_);
}

PointResult Campaign::measure(const InjectionPoint& point,
                              std::uint32_t trials) {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  PointResult result;
  result.point = point;
  for (std::uint32_t t = 0; t < trials; ++t) {
    result.record(run_trial(point, t));
  }
  return result;
}

PointResult Campaign::measure(const InjectionPoint& point) {
  return measure(point, options_.trials_per_point);
}

std::size_t Campaign::parallel_trials() const noexcept {
  return resolve_parallel_trials(options_.max_parallel_trials,
                                 options_.nranks);
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points, std::uint32_t trials) {
  if (!profiled_) throw InternalError("Campaign: profile() not run");
  std::vector<PointResult> results(points.size());
  // One outcome slot per (point, trial) job; aggregated afterwards in
  // trial order so the result is byte-for-byte the serial one.
  std::vector<std::vector<inject::Outcome>> outcomes(
      points.size(), std::vector<inject::Outcome>(trials));
  const std::size_t pool = parallel_trials();
  TrialExecutor executor(pool);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      executor.submit([this, &outcomes, &points, i, t] {
        outcomes[i][t] = run_trial(points[i], t);
      });
    }
  }
  executor.wait();
  // The watchdog is the one outcome gate that feels CPU contention: a
  // slow-but-finishing faulted run can cross the wall-clock deadline only
  // because `pool` Worlds shared the cores. Re-run every timed-out trial
  // serially — alone on the machine, exactly the serial loop's conditions
  // — and keep the confirmed outcome. Genuinely hung runs time out again
  // (same INF_LOOP, one extra watchdog wait each), so classification is
  // identical to the serial path at every parallelism level.
  if (pool > 1) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (outcomes[i][t] == inject::Outcome::InfLoop) {
          outcomes[i][t] = run_trial(points[i], t);
        }
      }
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].point = points[i];
    for (std::uint32_t t = 0; t < trials; ++t) {
      results[i].record(outcomes[i][t]);
    }
  }
  return results;
}

std::vector<PointResult> Campaign::measure_many(
    std::span<const InjectionPoint> points) {
  return measure_many(points, options_.trials_per_point);
}

}  // namespace fastfit::core

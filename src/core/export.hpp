#pragma once

// Result serialization: campaigns are expensive; their results should
// outlive the process. CSV for spreadsheet/pandas post-processing of
// per-point responses, JSON for the full study (pruning statistics,
// measured points, predictions).

#include <string>
#include <vector>

#include "core/fastfit.hpp"

namespace fastfit::core {

/// One row per measured injection point: identification, features, trial
/// counts per outcome, and the error rate. RFC-4180-style quoting.
/// `extended_outcomes` selects whether the RANK_DEAD / REPAIRED columns
/// appear (StudyResult::extended_outcomes).
std::string to_csv(const std::vector<PointResult>& results,
                   bool extended_outcomes = false);

/// The full study as a JSON document: options-independent content only
/// (stats, measured points, predicted labels, accuracy).
std::string to_json(const FastFitResult& result);

/// Writes content to a file, throwing ConfigError on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Serializes an enumeration (pruning stats + equivalence classes +
/// surviving injection points) to a versioned text format. The paper
/// notes the profiling phase "is a one time cost as the collected
/// information can be used for any number of fault injection campaigns" —
/// this is that reuse path: profile once, persist, drive later campaigns
/// from the file.
std::string to_text(const Enumeration& enumeration);

/// Parses to_text() output. Throws ConfigError on malformed or
/// version-mismatched input.
Enumeration enumeration_from_text(const std::string& text);

/// Serializes one shard's study result to a versioned text fragment:
/// shard coordinates, campaign identity (pruning stats + golden digest),
/// resilience health, and one line per measured point carrying its
/// ordinal within the full post-pruning point set. Fragments are the
/// unit `fastfit merge` consumes. Also valid for an unsharded result
/// (shard 1/1, ordinals 0..n-1).
std::string to_shard_fragment(const StudyResult& result);

/// Merges the text fragments of a complete sharded study back into one
/// StudyResult, bit-identical to the unsharded run: validates that the
/// fragments agree on identity (pruning stats and golden digest),
/// that their shard indices tile 1..N exactly, and that their point
/// ordinals partition the full post-pruning point set; then reassembles
/// `measured` in ordinal order and sums the health counters. Throws
/// ConfigError on any gap, overlap, or identity mismatch.
StudyResult merge_fragments(const std::vector<std::string>& fragments);

}  // namespace fastfit::core

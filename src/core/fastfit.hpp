#pragma once

// FastFIT orchestrator: the three-phase tool of the paper's Fig 5.
//
//   profiling  ->  (semantic + context pruning)  ->  injection ⇄ learning
//
// One FastFit object runs a complete sensitivity study for one workload
// and returns everything the evaluation reports: pruning statistics
// (Table III), measured per-point responses (Figs 7-11, Table IV),
// predicted responses for untested points, and the trained model
// (Figs 4, 12, 13).

#include <memory>

#include "core/campaign.hpp"
#include "core/ml_loop.hpp"

namespace fastfit::core {

struct FastFitOptions {
  CampaignOptions campaign;
  /// ML-driven pruning on/off. The paper enables it for LAMMPS only (the
  /// NPB spaces are already small after structural pruning).
  bool use_ml = true;
  MlLoopConfig ml;
  /// Durable trial journal path (empty = no journal). Attached after
  /// profiling, so the journal header can pin the golden digest.
  std::string journal;
  /// Resume from an existing journal at `journal` instead of refusing to
  /// overwrite it (see Campaign::attach_journal / docs/resilience.md).
  bool resume = false;
};

struct FastFitResult {
  PruningStats stats;
  std::vector<PointResult> measured;
  std::vector<std::pair<InjectionPoint, std::size_t>> predicted;
  double ml_reduction = 0.0;       ///< Table III "ML" column (0 if ML off)
  double final_accuracy = 0.0;
  bool threshold_reached = false;
  std::size_t ml_rounds = 0;
  std::optional<ml::RandomForest> model;
  /// What the resilience machinery had to do (see CampaignHealth); the
  /// CLI maps health.clean() to its exit code.
  CampaignHealth health;

  /// Table III "Total" column: overall fraction of the exploration space
  /// whose response was obtained without direct injection.
  double total_reduction() const;
};

class FastFit {
 public:
  FastFit(const apps::Workload& workload, FastFitOptions options);

  /// Runs all three phases and returns the study. Callable once.
  FastFitResult run();

  /// The underlying campaign (valid after run(); exposes the profiler,
  /// enumeration, and golden digest for further analysis).
  Campaign& campaign() { return campaign_; }
  const Campaign& campaign() const { return campaign_; }

 private:
  FastFitOptions options_;
  Campaign campaign_;
  bool ran_ = false;
};

}  // namespace fastfit::core

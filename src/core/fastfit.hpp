#pragma once

// FastFIT facade: the three-phase tool of the paper's Fig 5.
//
//   profiling  ->  (semantic + context pruning)  ->  injection ⇄ learning
//
// One FastFit object runs a complete sensitivity study for one workload
// and returns everything the evaluation reports: pruning statistics
// (Table III), measured per-point responses (Figs 7-11, Table IV),
// predicted responses for untested points, and the trained model
// (Figs 4, 12, 13).
//
// The orchestration itself lives in core/study.hpp (StudyDriver);
// FastFit is the stable public name for "run the whole paper pipeline".

#include "core/study.hpp"

namespace fastfit::core {

using FastFitOptions = StudyOptions;
using FastFitResult = StudyResult;

class FastFit {
 public:
  FastFit(const apps::Workload& workload, FastFitOptions options);

  /// Runs all three phases and returns the study. Callable once.
  FastFitResult run();

  /// The underlying campaign (profiler, enumeration, golden digest, for
  /// further analysis). Valid only after run() has completed: before
  /// that the campaign is unprofiled, so this throws InternalError
  /// instead of handing out an engine whose every accessor would fail.
  Campaign& campaign();
  const Campaign& campaign() const;

 private:
  StudyDriver driver_;
};

}  // namespace fastfit::core

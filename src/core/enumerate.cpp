#include "core/enumerate.hpp"

#include <array>
#include <memory>

#include "core/pipeline.hpp"
#include "support/error.hpp"

namespace fastfit::core {

Enumeration enumerate_with_passes(const profile::Profiler& profiler,
                                  std::span<const std::string> pass_names) {
  std::vector<std::unique_ptr<PruningPass>> passes;
  passes.reserve(pass_names.size());
  for (const auto& name : pass_names) {
    auto pass = make_pruning_pass(name);
    if (pass->needs_measurer()) {
      throw ConfigError("enumerate: pass '" + name +
                        "' needs a measurer and cannot run at enumeration "
                        "time; select it through the study driver");
    }
    passes.push_back(std::move(pass));
  }

  ProfilePointSource source(profiler);
  PassContext ctx;
  ctx.profiler = &profiler;
  auto points = run_pruning_chain(source, passes, ctx);

  Enumeration out;
  out.stats = ctx.stats;
  out.classes = std::move(ctx.classes);
  out.points = std::move(points);
  return out;
}

Enumeration enumerate_points(const profile::Profiler& profiler) {
  static const std::array<std::string, 2> kDefault{"semantic", "context"};
  return enumerate_with_passes(profiler, kDefault);
}

Enumeration enumerate_points_semantic_only(
    const profile::Profiler& profiler) {
  static const std::array<std::string, 1> kSemanticOnly{"semantic"};
  return enumerate_with_passes(profiler, kSemanticOnly);
}

}  // namespace fastfit::core

#include "core/enumerate.hpp"

#include <sstream>

#include "profile/queries.hpp"

namespace fastfit::core {
namespace {

std::string short_location(const profile::SiteProfile& site) {
  std::string name = site.file;
  if (const auto slash = name.rfind('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return name + ":" + std::to_string(site.line);
}

}  // namespace

namespace {

Enumeration enumerate_impl(const profile::Profiler& profiler,
                           bool context_pruning);

}  // namespace

Enumeration enumerate_points(const profile::Profiler& profiler) {
  return enumerate_impl(profiler, /*context_pruning=*/true);
}

Enumeration enumerate_points_semantic_only(
    const profile::Profiler& profiler) {
  return enumerate_impl(profiler, /*context_pruning=*/false);
}

namespace {

Enumeration enumerate_impl(const profile::Profiler& profiler,
                           bool context_pruning) {
  Enumeration out;
  out.stats.nranks = profiler.nranks();

  // Total exploration space: every invocation of every site on every rank,
  // one point per injectable parameter (paper Sec II).
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      out.stats.total_points +=
          site.invocations.size() * mpi::injectable_params(site.kind).size();
    }
  }

  // Semantic pruning: one representative rank per equivalence class.
  out.classes = trace::equivalence_classes(profiler.contexts());
  out.stats.equivalence_classes = out.classes.size();
  for (const auto& cls : out.classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).sites) {
      out.stats.after_semantic +=
          site.invocations.size() * mpi::injectable_params(site.kind).size();
    }
  }

  // Context pruning: one invocation per distinct call stack, with the ML
  // feature vector attached.
  for (const auto& cls : out.classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).sites) {
      const auto representatives = context_pruning
                                       ? profile::stack_representatives(site)
                                       : site.invocations;
      const auto params = mpi::injectable_params(site.kind);
      const auto n_inv = profile::n_invocations(site);
      const auto depth = profile::mean_stack_depth(site);
      const auto n_stacks = profile::n_distinct_stacks(site);
      for (const auto& inv : representatives) {
        for (mpi::Param param : params) {
          InjectionPoint point;
          point.site_id = site_id;
          point.kind = site.kind;
          point.site_location = short_location(site);
          point.rank = rep;
          point.invocation = inv.invocation;
          point.param = param;
          point.stack = inv.stack;
          point.phase = inv.phase;
          point.errhal = inv.errhal;
          point.n_inv = n_inv;
          point.stack_depth = depth;
          point.n_diff_stack = n_stacks;
          out.points.push_back(point);
        }
      }
    }
  }
  out.stats.after_context = out.points.size();
  return out;
}

}  // namespace

}  // namespace fastfit::core

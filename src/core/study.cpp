#include "core/study.hpp"

#include "core/pipeline.hpp"
#include "support/error.hpp"

namespace fastfit::core {

namespace {

/// Splits the study's pass chain into the structural prefix (run at
/// profile time by the campaign) and the ML stage flag, validating the
/// shape: a measurer-needing pass must be last, and naming one while ML
/// is disabled is a contradiction.
struct ChainShape {
  std::vector<std::string> structural;
  bool ml_stage = false;
};

ChainShape split_chain(const StudyOptions& options) {
  ChainShape shape;
  if (options.passes.empty()) {
    shape.structural = options.campaign.pruning_passes;
    shape.ml_stage = options.use_ml;
    return shape;
  }
  for (std::size_t i = 0; i < options.passes.size(); ++i) {
    const auto& name = options.passes[i];
    if (make_pruning_pass(name)->needs_measurer()) {
      if (i + 1 != options.passes.size()) {
        throw ConfigError("study: pass '" + name +
                          "' runs trials and must be the last pass in the "
                          "chain");
      }
      if (!options.use_ml) {
        throw ConfigError("study: the pass chain selects '" + name +
                          "' but ML is disabled");
      }
      shape.ml_stage = true;
    } else {
      shape.structural.push_back(name);
    }
  }
  return shape;
}

CampaignOptions resolved_campaign_options(const StudyOptions& options) {
  CampaignOptions campaign = options.campaign;
  campaign.pruning_passes = split_chain(options).structural;
  return campaign;
}

}  // namespace

double StudyResult::total_reduction() const {
  if (stats.total_points == 0) return 0.0;
  return 1.0 - static_cast<double>(measured.size()) /
                   static_cast<double>(stats.total_points);
}

StudyDriver::StudyDriver(const apps::Workload& workload, StudyOptions options)
    : options_(std::move(options)),
      ml_stage_(split_chain(options_).ml_stage),
      campaign_(workload, resolved_campaign_options(options_)) {
  if (ml_stage_ && options_.campaign.shard.sharded()) {
    throw ConfigError(
        "study: sharding requires a static post-pruning point set, but the "
        "ML stage resolves points adaptively; run sharded studies with the "
        "structural chain only (e.g. --no-ml)");
  }
}

void StudyDriver::profile() {
  if (profiled_) return;
  campaign_.profile();
  profiled_ = true;
}

StudyResult StudyDriver::run() {
  if (started_) throw InternalError("StudyDriver::run: single use");
  started_ = true;

  profile();
  if (!options_.journal.empty()) {
    campaign_.attach_journal(options_.journal, options_.resume
                                                   ? JournalMode::Resume
                                                   : JournalMode::Create);
  }

  StudyResult result;
  result.stats = campaign_.stats();
  result.shard = options_.campaign.shard;
  result.extended_outcomes = options_.campaign.extended_outcomes();
  result.golden_digest = campaign_.golden_digest();
  const auto& points = campaign_.enumeration().points;

  if (ml_stage_) {
    // The injection ⇄ learning stage, run through the pipeline's pass
    // interface: it consumes the structurally surviving points and
    // resolves every one of them, by measurement or by prediction.
    PassContext ctx;
    ctx.profiler = &campaign_.profiler();
    ctx.measurer = &campaign_;
    ctx.ml = &options_.ml;
    MlPredictionPass pass;
    pass.apply(ctx, points);
    result.measured = std::move(ctx.measured);
    result.predicted = std::move(ctx.predicted);
    result.final_accuracy = ctx.final_accuracy;
    result.threshold_reached = ctx.threshold_reached;
    result.ml_rounds = ctx.ml_rounds;
    result.model = std::move(ctx.model);
    const std::size_t resolved =
        result.measured.size() + result.predicted.size();
    if (resolved > 0) {
      result.ml_reduction = static_cast<double>(result.predicted.size()) /
                            static_cast<double>(resolved);
    }
  } else if (options_.campaign.shard.sharded()) {
    // Deterministic partition by stable point identity: every shard
    // computes the same ordinals from the same enumeration, so the N
    // fragments tile the unsharded study exactly.
    std::vector<InjectionPoint> own;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (shard_owns(options_.campaign.shard, points[i])) {
        result.shard_ordinals.push_back(i);
        own.push_back(points[i]);
      }
    }
    result.measured = campaign_.measure_many(own);
  } else {
    // Traditional mode: measure every structurally surviving point.
    result.measured = campaign_.measure_many(points);
  }

  campaign_.detach_journal();
  result.health = campaign_.health();
  return result;
}

Campaign& StudyDriver::campaign() {
  if (!profiled_) {
    throw InternalError(
        "StudyDriver::campaign: neither profile() nor run() has completed; "
        "the campaign is not profiled yet");
  }
  return campaign_;
}

const Campaign& StudyDriver::campaign() const {
  if (!profiled_) {
    throw InternalError(
        "StudyDriver::campaign: neither profile() nor run() has completed; "
        "the campaign is not profiled yet");
  }
  return campaign_;
}

}  // namespace fastfit::core

#pragma once

// Campaign-side snapshot management (tentpole of the prefix-replay work):
//
//  * SnapshotMode — the --snapshots on|off|auto knob. `auto` (default)
//    uses replay but permanently falls back campaign-wide on the first
//    divergence or unsupported recording; `on` keeps trying per trial;
//    `off` is today's from-scratch path, bit for bit.
//
//  * SnapshotCache — one per campaign: builds the fault-free recording
//    lazily (once), derives one WorldSnapshot per injected (site,
//    invocation) — shared by every trial of that point and by the whole
//    semantic-equivalence class behind it — and bounds memory with an
//    LRU over the per-cut snapshots plus the recording itself
//    (--snapshot-cache-mb).
//
//  * GoldenCache — process-wide memo of (workload, params, nranks, seed,
//    algorithms, hang detection) -> (golden digest, wall time), so a
//    study that builds many campaigns over the same configuration pays
//    for the fault-free run once. Watchdog-storm recalibration bypasses
//    the read and refreshes the entry (the invalidation hook).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "minimpi/snapshot.hpp"

namespace fastfit::core {

enum class SnapshotMode : std::uint8_t { Off, On, Auto };

/// Parses "off" / "on" / "auto" (throws ConfigError otherwise).
SnapshotMode parse_snapshot_mode(const std::string& text);
const char* to_string(SnapshotMode mode) noexcept;

/// Per-campaign snapshot store. Thread-safe: measure_many worker threads
/// look up concurrently; one mutex serializes the cache (the recording
/// build runs under it, so exactly one trial pays for it).
class SnapshotCache {
 public:
  using RecordingBuilder =
      std::function<std::shared_ptr<const mpi::WorldRecording>()>;

  explicit SnapshotCache(std::size_t budget_bytes);

  /// The snapshot for the collective at (site_id, invocation), deriving
  /// it (and, first time through, the recording via `build`) on demand.
  /// Returns nullptr when the subsystem is disabled, the recording is
  /// not replayable, or the cut is invalid for this point — the caller
  /// runs the trial from scratch. A failed recording build is memoized:
  /// it is deterministic, so it is attempted exactly once.
  std::shared_ptr<const mpi::WorldSnapshot> lookup(
      std::uint32_t site_id, std::uint64_t invocation,
      const RecordingBuilder& build);

  /// Pre-derives the recording and the cut for (site_id, invocation)
  /// without handing out a snapshot. The process-isolation backend warms
  /// the cache in the supervisor before forking its workers, so every
  /// child inherits the recording and cuts instead of re-paying for
  /// them. Returns true when a snapshot would be available.
  bool warm(std::uint32_t site_id, std::uint64_t invocation,
            const RecordingBuilder& build);

  /// Permanently turns the subsystem off (mode `auto` after a replay
  /// divergence) and releases the recording and all snapshots.
  void disable(const std::string& why);
  bool disabled() const;
  std::string disabled_reason() const;

  /// Counts one replay divergence that fell back to a from-scratch run.
  void note_fallback();

  struct Stats {
    std::uint64_t recording_builds = 0;  ///< 0 or 1 per campaign
    std::uint64_t snapshot_builds = 0;   ///< distinct cuts derived
    std::uint64_t hits = 0;              ///< lookups served from cache
    std::uint64_t clones = 0;            ///< lookups that handed out a snapshot
    std::uint64_t evictions = 0;         ///< snapshots dropped by the LRU
    std::uint64_t fallbacks = 0;         ///< replay divergences (note_fallback)
    std::size_t recording_bytes = 0;     ///< recording payload (post-dedup)
    std::size_t cached_bytes = 0;        ///< recording + live snapshots
  };
  Stats stats() const;

 private:
  using Key = std::pair<std::uint32_t, std::uint64_t>;

  void evict_to_fit_locked();

  mutable std::mutex mutex_;
  std::size_t budget_bytes_;
  bool disabled_ = false;
  std::string disabled_why_;
  bool recording_attempted_ = false;
  std::shared_ptr<const mpi::WorldRecording> recording_;

  // LRU over derived snapshots: most recent key at the front.
  std::list<Key> order_;
  struct Entry {
    std::shared_ptr<const mpi::WorldSnapshot> snapshot;
    std::list<Key>::iterator where;
  };
  std::map<Key, Entry> entries_;
  /// Cuts that failed to derive (e.g. p2p sites): memoized so every
  /// trial of such a point does not redo the O(total ops) scan.
  std::set<Key> invalid_;
  std::size_t snapshot_bytes_ = 0;

  Stats stats_;
};

/// Process-wide golden-run memo. Keys are opaque strings composed by the
/// campaign (workload name, params, nranks, seed, algorithms, hang
/// detection); values are the verified digest and wall time of one
/// successful fault-free run.
class GoldenCache {
 public:
  struct Value {
    std::uint64_t digest = 0;
    std::chrono::milliseconds wall{0};
  };

  static GoldenCache& instance();

  std::optional<Value> find(const std::string& key) const;
  void put(const std::string& key, const Value& value);
  /// Drops one entry (watchdog recalibration refreshes it afterwards).
  void invalidate(const std::string& key);
  std::size_t size() const;
  void clear();  // tests

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Value> entries_;
};

}  // namespace fastfit::core

#include "core/ml_loop.hpp"

#include <algorithm>
#include <span>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

std::size_t label_of(const PointResult& result, LabelMode mode,
                     const std::vector<double>& thresholds) {
  switch (mode) {
    case LabelMode::ErrorType:
      return static_cast<std::size_t>(result.dominant());
    case LabelMode::ErrorRateLevel:
      return stats::level_of(result.error_rate(), thresholds);
  }
  throw InternalError("label_of: unknown mode");
}

std::size_t label_count(LabelMode mode,
                        const std::vector<double>& thresholds) {
  switch (mode) {
    case LabelMode::ErrorType:
      return inject::kNumOutcomes;
    case LabelMode::ErrorRateLevel:
      return thresholds.size() + 1;
  }
  throw InternalError("label_count: unknown mode");
}

std::vector<std::string> label_names(LabelMode mode,
                                     const std::vector<double>& thresholds) {
  switch (mode) {
    case LabelMode::ErrorType:
      return inject::outcome_names();
    case LabelMode::ErrorRateLevel:
      return stats::level_names(thresholds.size() + 1);
  }
  throw InternalError("label_names: unknown mode");
}

double MlLoopResult::ml_reduction() const {
  const std::size_t total = measured.size() + predicted.size();
  if (total == 0) return 0.0;
  return static_cast<double>(predicted.size()) / static_cast<double>(total);
}

MlLoopResult run_ml_loop(Campaign& campaign,
                         std::vector<InjectionPoint> points,
                         const MlLoopConfig& config) {
  if (config.train_batch == 0 || config.verify_batch == 0) {
    throw ConfigError("run_ml_loop: batch sizes must be positive");
  }
  MlLoopResult result;
  if (points.empty()) return result;

  // Randomize visiting order so batches are unbiased samples of the space.
  RngStream rng(campaign.options().seed, "ml-loop-order");
  rng.shuffle(points);

  const std::size_t classes = label_count(config.mode, config.thresholds);
  ml::Dataset train(classes);
  std::size_t cursor = 0;
  std::vector<bool> verification_hits;  // per fresh verification sample

  // Whole train/verify batches go to the campaign at once so the trial
  // executor can overlap their injected executions. Quarantined points
  // (the trial guard gave up — see docs/resilience.md) are reported but
  // excluded from training and verification: their truncated trial counts
  // would teach the model from unrepresentative statistics. Labels of
  // healthy points are checkpointed through the campaign journal, so a
  // resumed run both restores the training set and cross-checks that it
  // reproduces the original labels.
  const auto usable = [](const PointResult& r) {
    return !r.exec.quarantined && r.trials > 0;
  };
  const auto checkpoint_label = [&](const PointResult& r, std::size_t label) {
    if (auto* journal = campaign.journal()) {
      journal->check_or_record_label(point_key(r.point), label);
    }
  };
  const auto measure_next = [&](std::size_t count,
                                std::vector<PointResult>& into) {
    const std::size_t take = std::min(count, points.size() - cursor);
    auto batch = campaign.measure_many(
        std::span<const InjectionPoint>(points.data() + cursor, take));
    cursor += take;
    for (const auto& r : batch) into.push_back(r);
    return batch;
  };

  while (cursor < points.size()) {
    ++result.rounds;
    telemetry::ScopedSpan round_span("ml-round", telemetry::Track::MlLoop, 0);
    round_span.arg("round", std::to_string(result.rounds));
    if (auto& rec = telemetry::Recorder::instance(); rec.enabled()) {
      static auto& rounds = rec.counter(
          "fastfit_ml_rounds_total", "Injection ⇄ learning feedback rounds");
      rounds.add();
    }
    // Measure a training batch and fold it in.
    for (const auto& r : measure_next(config.train_batch, result.measured)) {
      if (!usable(r)) continue;
      const auto label = label_of(r, config.mode, config.thresholds);
      checkpoint_label(r, label);
      train.add(r.point.features(), label);
    }
    if (train.empty() || cursor >= points.size()) break;

    // Train the model on everything measured so far.
    ml::ForestConfig forest_config = config.forest;
    forest_config.seed = campaign.options().seed ^ (result.rounds * 0x9e37ULL);
    {
      telemetry::ScopedSpan train_span("ml-train", telemetry::Track::MlLoop,
                                       0);
      train_span.arg("samples", std::to_string(train.size()));
      result.model = ml::RandomForest::train(train, forest_config);
    }

    // Verify on the next fresh batch of measurements.
    telemetry::ScopedSpan verify_span("ml-verify", telemetry::Track::MlLoop,
                                      0);
    const auto verify_batch =
        measure_next(config.verify_batch, result.measured);
    if (verify_batch.empty()) break;
    std::size_t fresh_hits = 0;
    for (const auto& r : verify_batch) {
      if (!usable(r)) continue;
      const auto actual = label_of(r, config.mode, config.thresholds);
      checkpoint_label(r, actual);
      verification_hits.push_back(
          result.model->predict(r.point.features()) == actual);
      ++fresh_hits;
      train.add(r.point.features(), actual);  // verification data is not wasted
    }
    verify_span.finish();
    if (verification_hits.empty()) continue;
    // Sliding-window accuracy over the freshest verification samples.
    const std::size_t window =
        config.verify_window == 0
            ? std::max<std::size_t>(fresh_hits, 1)
            : std::min(config.verify_window, verification_hits.size());
    std::size_t correct = 0;
    for (std::size_t i = verification_hits.size() - window;
         i < verification_hits.size(); ++i) {
      if (verification_hits[i]) ++correct;
    }
    result.final_accuracy =
        static_cast<double>(correct) / static_cast<double>(window);
    if (verification_hits.size() >= config.min_verify_samples &&
        result.final_accuracy >= config.accuracy_threshold) {
      result.threshold_reached = true;
      break;
    }
  }

  // Retrain once on all measurements, then predict the untested points.
  if (!train.empty() && cursor < points.size()) {
    ml::ForestConfig forest_config = config.forest;
    forest_config.seed = campaign.options().seed ^ 0xF1A7ULL;
    {
      telemetry::ScopedSpan train_span("ml-train", telemetry::Track::MlLoop,
                                       0);
      result.model = ml::RandomForest::train(train, forest_config);
    }
    telemetry::ScopedSpan predict_span("ml-predict", telemetry::Track::MlLoop,
                                       0);
    predict_span.arg("points", std::to_string(points.size() - cursor));
    for (std::size_t i = cursor; i < points.size(); ++i) {
      result.predicted.emplace_back(
          points[i], result.model->predict(points[i].features()));
    }
    if (auto& rec = telemetry::Recorder::instance(); rec.enabled()) {
      static auto& predicted = rec.counter(
          "fastfit_ml_predicted_points_total",
          "Points classified by the model instead of measured");
      predicted.add(points.size() - cursor);
    }
  }
  return result;
}

}  // namespace fastfit::core

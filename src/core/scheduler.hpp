#pragma once

// TrialScheduler: the ordering/batching stage of the study pipeline.
//
// The scheduler owns the (point, trial) job matrix of one batch: journal
// replay, concurrent guarded execution on a TrialExecutor pool,
// watchdog-storm response, escalated uncontended INF_LOOP
// re-confirmation, and the final deterministic aggregation in
// (point, trial) order. It is engine-agnostic — trials execute through
// the narrow TrialRunner interface (implemented by Campaign, which
// routes each run_guarded call either to in-process rank threads or to
// the fork-server worker pool, per the --isolation knob; the scheduler
// never knows which backend ran a trial) — and
// result-agnostic: every recorded outcome fans out to OutcomeSink
// observers (report accumulator, telemetry counters, journal
// write-through), so the scheduler itself never knows what a report is.
//
// Aggregating in (point, trial) order after execution is what makes the
// batch bit-identical to a serial run at every pool size: execution order
// is free (per-trial RNG identity is order-independent), observation
// order is not.

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/points.hpp"
#include "inject/outcome.hpp"

namespace fastfit::core {

/// Execution engine behind the scheduler: runs one supervised trial.
/// Implemented by Campaign (fresh Injector + World per call).
class TrialRunner {
 public:
  /// Result of one supervised trial: outcome plus guard forensics.
  struct Attempt {
    bool ok = false;  ///< false = retries exhausted, quarantine the point
    inject::Outcome outcome{};
    bool deterministic_hang = false;  ///< monitor-proven deadlock
    std::string autopsy;              ///< world autopsy (non-SUCCESS runs)
    std::uint32_t retries = 0;        ///< internal-error retries consumed
    std::string error;                ///< last internal error, attributed
  };

  virtual ~TrialRunner() = default;

  /// One guarded trial of `point` under `watchdog`. Deterministic in
  /// (engine seed, point, trial); must be safe to call concurrently.
  virtual Attempt run_guarded(const InjectionPoint& point,
                              std::uint64_t trial,
                              std::chrono::milliseconds watchdog) = 0;

  /// Current per-trial watchdog budget (may change after recalibration).
  virtual std::chrono::milliseconds watchdog() const = 0;

  /// Watchdog-storm response: most of a batch's fresh trials timed out,
  /// which reads as machine overload, not an epidemic of genuine hangs.
  /// The engine re-measures its golden wall time, recalibrates the
  /// watchdog, and degrades `pool` toward serial for later batches.
  virtual void recalibrate_after_storm(std::size_t pool) = 0;
};

/// One recorded (point, trial) outcome, observed in deterministic
/// (point, trial) order during aggregation. References stay valid only
/// for the duration of the callback.
struct TrialRecord {
  const std::string& key;   ///< stable point identity (point_key)
  std::size_t point_index;  ///< index into the batch's point span
  std::uint32_t trial;
  inject::Outcome outcome{};
  bool replayed = false;       ///< served from the journal, not executed
  bool deterministic = false;  ///< INF_LOOP proven structurally
  const std::string& autopsy;  ///< world autopsy ("" if none)
};

/// Per-point supervision summary, observed right after the point's last
/// TrialRecord.
struct PointStatus {
  const std::string& key;
  std::size_t point_index;
  std::uint32_t retries = 0;
  bool quarantined = false;
  const std::string& error;  ///< last internal error ("" if none)
};

/// Observer of a batch's outcomes. Implementations: ResultAccumulator
/// (report), the campaign's telemetry sink, and the journal write-through
/// sink. Callbacks arrive on the scheduling thread, in deterministic
/// order: all trials of point 0, point 0's status, all trials of point 1,
/// ... then one on_batch_end.
class OutcomeSink {
 public:
  virtual ~OutcomeSink() = default;
  virtual void on_trial(const TrialRecord& record) = 0;
  virtual void on_point(const PointStatus& status) = 0;
  virtual void on_batch_end() {}
};

/// Builds the per-point response statistics (the report's raw material)
/// from the record stream.
class ResultAccumulator final : public OutcomeSink {
 public:
  explicit ResultAccumulator(std::span<const InjectionPoint> points);
  void on_trial(const TrialRecord& record) override;
  void on_point(const PointStatus& status) override;
  /// The accumulated results, in point order. Call once, after the batch.
  std::vector<PointResult> take() { return std::move(results_); }

 private:
  std::vector<PointResult> results_;
};

/// Journal write-through: appends fresh trials and quarantine records,
/// flushes at batch end. Replayed trials are skipped — they are already
/// durable.
class JournalSink final : public OutcomeSink {
 public:
  /// `points` is the batch's point span (outlives the sink): the sink
  /// resolves record.point_index to the point's fault-model spec so
  /// every appended trial names what was injected ("m" field; omitted
  /// for the default spec to keep pre-v2 journals byte-identical).
  JournalSink(TrialJournal& journal, std::span<const InjectionPoint> points)
      : journal_(&journal), points_(points) {}
  void on_trial(const TrialRecord& record) override;
  void on_point(const PointStatus& status) override;
  void on_batch_end() override;

 private:
  TrialJournal* journal_;
  std::span<const InjectionPoint> points_;
};

/// Campaign metrics: per-outcome trial counters (replays included, so a
/// resumed campaign reports identical totals), replay and quarantine
/// counters. No-op while the telemetry recorder is disabled.
class TelemetrySink final : public OutcomeSink {
 public:
  /// `extended_outcomes` widens the registered counter set with
  /// RANK_DEAD / REPAIRED (CampaignOptions::extended_outcomes); default
  /// campaigns register only the paper's six, so their metrics snapshot
  /// stays byte-identical to pre-v2 output.
  explicit TelemetrySink(bool extended_outcomes = false)
      : extended_outcomes_(extended_outcomes) {}
  void on_trial(const TrialRecord& record) override;
  void on_point(const PointStatus& status) override;

 private:
  bool extended_outcomes_;
};

/// What the scheduler's resilience machinery did during one batch; the
/// engine folds this into its campaign-wide health counters.
struct BatchStats {
  std::uint64_t replayed = 0;                ///< trials served from journal
  std::uint64_t deterministic_deadlocks = 0; ///< monitor-proven INF_LOOPs
  std::uint64_t confirmations = 0;           ///< escalated re-confirmations
  std::uint64_t recalibrations = 0;          ///< storm recalibrations
  std::uint64_t quarantined_points = 0;      ///< points given up on
};

struct SchedulerConfig {
  std::size_t pool = 1;         ///< concurrent (point, trial) jobs
  double storm_fraction = 0.5;  ///< fresh-timeout fraction that is a storm
  std::uint32_t watchdog_escalation = 4;  ///< re-confirmation multiplier
};

class TrialScheduler {
 public:
  TrialScheduler(TrialRunner& runner, SchedulerConfig config)
      : runner_(&runner), config_(config) {}

  /// Runs `trials` per point, replaying from `replay` (may be null) and
  /// fanning every outcome out to `sinks` in deterministic order.
  BatchStats run(std::span<const InjectionPoint> points,
                 std::uint32_t trials, const TrialJournal* replay,
                 std::span<OutcomeSink* const> sinks);

 private:
  TrialRunner* runner_;
  SchedulerConfig config_;
};

}  // namespace fastfit::core

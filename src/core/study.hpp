#pragma once

// StudyDriver: the slim orchestrator of one sensitivity study.
//
// A study is the composition of the pipeline's five stages (see
// core/pipeline.hpp and core/scheduler.hpp):
//
//   PointSource -> [PruningPass...] -> TrialScheduler -> OutcomeSink*
//
// with the driver as the only piece that knows the whole shape. The
// structural prefix of the pass chain runs at profile() time inside the
// campaign engine; a trailing "ml" stage runs the injection ⇄ learning
// feedback loop (paper Fig 5) through the same PruningPass interface.
//
// Deterministic sharding: with campaign.shard = i/N the driver measures
// only the points whose stable identity hash lands in shard i of the
// post-pruning point set. Every shard profiles and prunes identically
// (those phases are cheap and deterministic), so the partition — and the
// per-trial RNG identity of every point — is the same on every machine.
// Merging the N fragments (core/export.hpp) reproduces the unsharded
// study bit-for-bit.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/ml_loop.hpp"
#include "core/shard.hpp"

namespace fastfit::core {

struct StudyOptions {
  CampaignOptions campaign;
  /// Full pass chain, in order. Structural passes ("semantic",
  /// "context", reorderable and repeatable) run at profile time; a
  /// trailing "ml" selects the ML prediction stage. Empty = the
  /// campaign's pruning_passes plus "ml" when use_ml. An explicit chain
  /// is complete — it decides the ML stage by containing "ml" or not —
  /// except that naming "ml" while use_ml is false is a contradiction
  /// and throws ConfigError.
  std::vector<std::string> passes;
  /// ML-driven pruning on/off. The paper enables it for LAMMPS only (the
  /// NPB spaces are already small after structural pruning).
  bool use_ml = true;
  MlLoopConfig ml;
  /// Durable trial journal path (empty = no journal). Attached after
  /// profiling, so the journal header can pin the golden digest (and the
  /// shard, for a sharded study).
  std::string journal;
  /// Resume from an existing journal at `journal` instead of refusing to
  /// overwrite it (see Campaign::attach_journal / docs/resilience.md).
  bool resume = false;
};

struct StudyResult {
  PruningStats stats;
  std::vector<PointResult> measured;
  std::vector<std::pair<InjectionPoint, std::size_t>> predicted;
  double ml_reduction = 0.0;       ///< Table III "ML" column (0 if ML off)
  double final_accuracy = 0.0;
  bool threshold_reached = false;
  std::size_t ml_rounds = 0;
  std::optional<ml::RandomForest> model;
  /// What the resilience machinery had to do (see CampaignHealth); the
  /// CLI maps health.clean() to its exit code.
  CampaignHealth health;
  /// Whether serialized surfaces (report JSON/CSV, fragments, merged
  /// metrics) carry the extended RANK_DEAD / REPAIRED outcome columns;
  /// see CampaignOptions::extended_outcomes.
  bool extended_outcomes = false;
  /// Which shard of the study this result covers (1/1 = all of it).
  ShardSpec shard;
  /// Golden digest of the campaign that produced this result. Pins
  /// fragment identity: merging fragments from different campaigns
  /// (changed seed, workload, problem size) is refused.
  std::uint64_t golden_digest = 0;
  /// Sharded studies only: ordinal of each measured point within the
  /// full post-pruning point set, ascending and parallel to `measured`.
  /// Pins the fragment's position for `fastfit merge`. Empty when
  /// unsharded.
  std::vector<std::size_t> shard_ordinals;

  /// Table III "Total" column: overall fraction of the exploration space
  /// whose response was obtained without direct injection.
  double total_reduction() const;
};

/// Orchestrates one study: profile, prune, measure/predict, report.
/// Owns the campaign engine; everything else is composed through the
/// pipeline interfaces.
class StudyDriver {
 public:
  StudyDriver(const apps::Workload& workload, StudyOptions options);

  /// Runs phase 1 only: golden execution, trace collection, pruning.
  /// Idempotent; run() profiles implicitly when this was not called.
  /// For callers that want the enumeration without a campaign (the CLI's
  /// `profile` subcommand, benchmarks that drive measurement manually).
  void profile();

  /// Runs the study. Callable once.
  StudyResult run();

  /// The underlying campaign engine (profiler, enumeration, golden
  /// digest). Valid only after profile() or run() — before that the
  /// campaign is unprofiled and throws InternalError here instead of
  /// from deeper, more confusing places.
  Campaign& campaign();
  const Campaign& campaign() const;

 private:
  StudyOptions options_;
  bool ml_stage_ = false;
  Campaign campaign_;
  bool profiled_ = false;
  bool started_ = false;
};

}  // namespace fastfit::core

#include "core/report.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "stats/correlation.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

namespace fastfit::core {

std::array<double, inject::kNumOutcomes> outcome_distribution(
    const std::vector<PointResult>& results,
    std::optional<mpi::CollectiveKind> kind, std::optional<mpi::Param> param) {
  std::array<double, inject::kNumOutcomes> out{};
  std::uint64_t total = 0;
  for (const auto& r : results) {
    if (kind && r.point.kind != *kind) continue;
    if (param && r.point.param != *param) continue;
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      out[o] += r.counts[o];
      total += r.counts[o];
    }
  }
  if (total > 0) {
    for (double& v : out) v /= static_cast<double>(total);
  }
  return out;
}

std::vector<mpi::CollectiveKind> kinds_present(
    const std::vector<PointResult>& results) {
  std::set<mpi::CollectiveKind> kinds;
  for (const auto& r : results) kinds.insert(r.point.kind);
  return {kinds.begin(), kinds.end()};
}

std::vector<mpi::Param> params_present(
    const std::vector<PointResult>& results) {
  std::set<mpi::Param> params;
  for (const auto& r : results) params.insert(r.point.param);
  return {params.begin(), params.end()};
}

std::vector<double> level_distribution(
    const std::vector<PointResult>& results, mpi::CollectiveKind kind,
    const std::vector<double>& thresholds) {
  std::vector<double> out(thresholds.size() + 1, 0.0);
  std::uint64_t total = 0;
  for (const auto& r : results) {
    if (r.point.kind != kind || r.trials == 0) continue;
    ++out[stats::level_of(r.error_rate(), thresholds)];
    ++total;
  }
  if (total > 0) {
    for (double& v : out) v /= static_cast<double>(total);
  }
  return out;
}

std::vector<std::pair<std::string, double>> feature_correlations(
    const std::vector<PointResult>& results,
    const std::vector<double>& thresholds) {
  // Feature extractors in the paper's Table IV column order.
  const std::vector<std::pair<std::string,
                              std::function<double(const InjectionPoint&)>>>
      columns{
          {"Init Phase",
           [](const InjectionPoint& p) {
             return p.phase == trace::ExecPhase::Init ? 1.0 : 0.0;
           }},
          {"Input Phase",
           [](const InjectionPoint& p) {
             return p.phase == trace::ExecPhase::Input ? 1.0 : 0.0;
           }},
          {"Compute Phase",
           [](const InjectionPoint& p) {
             return p.phase == trace::ExecPhase::Compute ? 1.0 : 0.0;
           }},
          {"End Phase",
           [](const InjectionPoint& p) {
             return p.phase == trace::ExecPhase::End ? 1.0 : 0.0;
           }},
          {"ErrHdl",
           [](const InjectionPoint& p) { return p.errhal ? 1.0 : 0.0; }},
          {"Non-ErrHdl",
           [](const InjectionPoint& p) { return p.errhal ? 0.0 : 1.0; }},
          {"nInv",
           [](const InjectionPoint& p) {
             return static_cast<double>(p.n_inv);
           }},
          {"nDiffGraph",
           [](const InjectionPoint& p) {
             return static_cast<double>(p.n_diff_stack);
           }},
          {"StackDepth",
           [](const InjectionPoint& p) { return p.stack_depth; }},
      };

  std::vector<double> levels;
  levels.reserve(results.size());
  for (const auto& r : results) {
    levels.push_back(static_cast<double>(
        stats::level_of(r.error_rate(), thresholds)));
  }

  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, extract] : columns) {
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto& r : results) xs.push_back(extract(r.point));
    out.emplace_back(name, stats::eq1_correlation(xs, levels));
  }
  return out;
}

std::string render_outcome_table(
    const std::vector<std::pair<std::string,
                                std::array<double, inject::kNumOutcomes>>>&
        rows,
    bool extended_outcomes) {
  const std::size_t n_outcomes = inject::active_outcomes(extended_outcomes);
  std::ostringstream out;
  out << pad("", 24);
  for (std::size_t o = 0; o < n_outcomes; ++o) {
    out << pad(inject::outcome_names()[o], 14);
  }
  out << '\n';
  for (const auto& [label, dist] : rows) {
    out << pad(label, 24);
    for (std::size_t o = 0; o < n_outcomes; ++o) {
      out << pad(percent(dist[o], 1), 14);
    }
    out << '\n';
  }
  return out.str();
}

std::string render_level_table(
    const std::vector<std::pair<std::string, std::vector<double>>>& rows,
    const std::vector<std::string>& level_labels) {
  std::ostringstream out;
  out << pad("", 20);
  for (const auto& label : level_labels) out << pad(label, 10);
  out << '\n';
  for (const auto& [label, dist] : rows) {
    out << pad(label, 20);
    for (double v : dist) out << pad(percent(v, 1), 10);
    out << '\n';
  }
  return out.str();
}

std::string render_outcome_totals(const std::vector<PointResult>& results) {
  std::array<std::uint64_t, inject::kNumOutcomes> totals{};
  std::uint64_t all = 0;
  for (const auto& r : results) {
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      totals[o] += r.counts[o];
      all += r.counts[o];
    }
  }
  std::ostringstream out;
  out << "Trial outcomes (" << results.size() << " points, " << all
      << " trials):\n";
  const auto names = inject::outcome_names();
  for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
    if (totals[o] == 0) continue;
    out << "  " << pad(names[o], 14) << totals[o] << '\n';
  }
  return out.str();
}

std::string render_health(const CampaignHealth& health) {
  std::ostringstream out;
  out << "Campaign health: ";
  if (health.clean()) {
    out << "clean";
  } else if (health.leaked_rank_threads > 0) {
    out << "completed with leaked rank threads";
  } else {
    out << "completed with quarantined points";
  }
  out << '\n';
  if (health.replayed_trials > 0) {
    out << "  trials replayed from journal: " << health.replayed_trials
        << '\n';
  }
  if (health.total_retries > 0) {
    out << "  internal-error retries:       " << health.total_retries << '\n';
  }
  if (health.quarantined_points > 0) {
    out << "  quarantined points:           " << health.quarantined_points
        << '\n';
  }
  if (health.watchdog_confirmations > 0) {
    out << "  watchdog re-confirmations:    " << health.watchdog_confirmations
        << '\n';
  }
  if (health.watchdog_recalibrations > 0) {
    out << "  watchdog recalibrations:      " << health.watchdog_recalibrations
        << '\n';
  }
  if (health.deterministic_deadlocks > 0) {
    out << "  deterministic deadlocks:      " << health.deterministic_deadlocks
        << '\n';
  }
  if (health.quarantined_rank_threads > 0) {
    out << "  rank threads quarantined:     "
        << health.quarantined_rank_threads << " ("
        << health.leaked_rank_threads << " still running)\n";
  }
  if (health.worker_deaths > 0) {
    out << "  worker signal deaths:         " << health.worker_deaths
        << " (classified SEG_FAULT)\n";
  }
  if (health.worker_lease_kills > 0) {
    out << "  worker lease kills:           " << health.worker_lease_kills
        << '\n';
  }
  if (health.isolation_fallbacks > 0) {
    out << "  isolation fallbacks:          " << health.isolation_fallbacks
        << " (pool degraded, ran in-process)\n";
  }
  return out.str();
}

}  // namespace fastfit::core

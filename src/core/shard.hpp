#pragma once

// Deterministic study sharding: partition a post-pruning point set across
// N independent processes by stable point identity.
//
// Because the per-trial RNG identity is a pure function of
// (campaign seed, point, trial index) — FaultSpec::stream_index — a shard
// that measures a subset of the points produces, for each of them, exactly
// the trials the unsharded study would have produced. Partitioning by
// inject::point_identity_hash (never by enumeration position) keeps the
// assignment independent of traversal order, so `fastfit merge` can stitch
// the fragments back into a report bit-identical to the unsharded run.

#include <cstddef>
#include <string>

#include "core/points.hpp"

namespace fastfit::core {

/// One shard of a study: "index/count", 1-based, as the --shard flag and
/// FASTFIT_SHARD spell it. The default {1, 1} is the unsharded study.
struct ShardSpec {
  std::size_t index = 1;  ///< 1-based shard ordinal
  std::size_t count = 1;  ///< total shards in the study

  bool sharded() const noexcept { return count > 1; }
  /// "i/N" rendering for logs, journal headers, and fragments.
  std::string str() const;

  bool operator==(const ShardSpec&) const = default;
};

/// Parses "i/N" (1 <= i <= N). Throws ConfigError on malformed input.
ShardSpec parse_shard(const std::string& text);

/// True when `spec` owns `point`: identity-hash partition, stable across
/// processes and enumeration orders.
bool shard_owns(const ShardSpec& spec, const InjectionPoint& point);

}  // namespace fastfit::core

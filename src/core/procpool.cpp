#include "core/procpool.hpp"

#include <csignal>
#include <cstring>

#include <errno.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

namespace tel = fastfit::telemetry;

IsolationMode parse_isolation_mode(const std::string& text) {
  if (text == "thread") return IsolationMode::Thread;
  if (text == "process") return IsolationMode::Process;
  throw ConfigError("isolation: must be one of thread|process, got '" + text +
                    "'");
}

const char* to_string(IsolationMode mode) noexcept {
  switch (mode) {
    case IsolationMode::Thread: return "thread";
    case IsolationMode::Process: return "process";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// Wire format: length-prefixed frames of little-endian scalars + strings.
// ---------------------------------------------------------------------------

// A frame larger than this is protocol corruption, not a big autopsy.
constexpr std::uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > buf_.size()) return false;
    v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    v = 0;
    for (int i = 0; i < 4; ++i) {
      std::uint8_t b = 0;
      if (!u8(b)) return false;
      v |= static_cast<std::uint32_t>(b) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    v = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint8_t b = 0;
      if (!u8(b)) return false;
      v |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (pos_ + n > buf_.size()) return false;
    s.assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  bool done() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

bool write_full(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t n) {
  auto* p = static_cast<unsigned char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, const std::string& payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char hdr[4];
  for (int i = 0; i < 4; ++i) hdr[i] = static_cast<unsigned char>(len >> (8 * i));
  return write_full(fd, hdr, sizeof(hdr)) &&
         write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  unsigned char hdr[4];
  if (!read_full(fd, hdr, sizeof(hdr))) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || read_full(fd, payload.data(), len);
}

enum class DeadlineRead { Ok, Timeout, Closed };

/// read_frame with a deadline: the server writes a reply frame in one
/// burst, so per-chunk polling only has to bridge scheduler hiccups.
DeadlineRead read_frame_deadline(int fd, std::string& payload,
                                 std::chrono::steady_clock::time_point deadline) {
  std::size_t want = 4;  // header first, then the payload
  std::string raw;
  bool header_done = false;
  std::uint32_t len = 0;
  std::size_t got = 0;
  raw.resize(want);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return DeadlineRead::Timeout;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1,
                          static_cast<int>(std::min<std::int64_t>(
                              remaining.count(), 60'000)));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return DeadlineRead::Closed;
    }
    if (pr == 0) continue;  // re-check the deadline
    const ssize_t r = ::read(fd, raw.data() + got, want - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return DeadlineRead::Closed;
    }
    if (r == 0) return DeadlineRead::Closed;
    got += static_cast<std::size_t>(r);
    if (got < want) continue;
    if (!header_done) {
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(raw[i]))
               << (8 * i);
      }
      if (len > kMaxFrameBytes) return DeadlineRead::Closed;
      header_done = true;
      raw.clear();
      raw.resize(len);
      want = len;
      got = 0;
      if (len == 0) break;
      continue;
    }
    break;
  }
  payload = std::move(raw);
  return DeadlineRead::Ok;
}

// ---------------------------------------------------------------------------
// Payload encodings
// ---------------------------------------------------------------------------

std::string encode_work(const procpool::WorkItem& item, std::uint64_t seq) {
  ByteWriter w;
  w.u64(seq);
  w.u32(item.site_id);
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(item.rank)));
  w.u64(item.invocation);
  w.u8(item.param);
  w.u8(static_cast<std::uint8_t>(item.fault.model));
  w.u8(static_cast<std::uint8_t>(item.fault.trigger));
  w.f64(item.fault.probability);
  w.u64(item.fault.window);
  w.u64(item.fault.duty_k);
  w.u64(item.trial);
  w.u64(item.watchdog_ms);
  return w.bytes();
}

bool decode_work(const std::string& payload, procpool::WorkItem& item,
                 std::uint64_t& seq) {
  ByteReader r(payload);
  std::uint64_t rank = 0;
  std::uint8_t model = 0;
  std::uint8_t trigger = 0;
  if (!r.u64(seq) || !r.u32(item.site_id) || !r.u64(rank) ||
      !r.u64(item.invocation) || !r.u8(item.param) || !r.u8(model) ||
      !r.u8(trigger) || !r.f64(item.fault.probability) ||
      !r.u64(item.fault.window) || !r.u64(item.fault.duty_k) ||
      !r.u64(item.trial) ||
      !r.u64(item.watchdog_ms) || !r.done()) {
    return false;
  }
  item.rank = static_cast<int>(static_cast<std::int64_t>(rank));
  item.fault.model = static_cast<inject::FaultModel>(model);
  item.fault.trigger = static_cast<inject::FaultTrigger>(trigger);
  return true;
}

std::string encode_reply(const procpool::TrialReply& reply) {
  ByteWriter w;
  w.u8(reply.ok ? 1 : 0);
  if (reply.ok) {
    w.u8(static_cast<std::uint8_t>(reply.outcome));
    w.u8(reply.deterministic_hang ? 1 : 0);
    w.u32(reply.leaked_threads);
    w.str(reply.autopsy);
  } else {
    w.str(reply.error);
  }
  return w.bytes();
}

bool decode_reply(ByteReader& r, procpool::TrialReply& reply) {
  std::uint8_t ok = 0;
  if (!r.u8(ok)) return false;
  reply.ok = ok != 0;
  if (reply.ok) {
    std::uint8_t outcome = 0;
    std::uint8_t det = 0;
    if (!r.u8(outcome) || !r.u8(det) || !r.u32(reply.leaked_threads) ||
        !r.str(reply.autopsy)) {
      return false;
    }
    if (outcome >= inject::kNumOutcomes) return false;
    reply.outcome = static_cast<inject::Outcome>(outcome);
    reply.deterministic_hang = det != 0;
  } else {
    if (!r.str(reply.error)) return false;
  }
  return true;
}

/// Consolidated server → supervisor frame kinds.
enum class ReplyKind : std::uint8_t {
  Completed = 0,    ///< child exited 0 with a TrialReply
  SignalDeath = 1,  ///< child killed by a signal
  BadExit = 2,      ///< child exited (possibly nonzero) without a reply
  ServeError = 3,   ///< server-side failure (fork/pipe), trial not run
};

// ---------------------------------------------------------------------------
// The fork-server: single-threaded after fork, one fresh child per trial.
// ---------------------------------------------------------------------------

[[noreturn]] void serve(int cmd_fd, int result_fd, const procpool::TrialFn& fn) {
  for (;;) {
    std::string frame;
    if (!read_frame(cmd_fd, frame)) std::_Exit(0);  // supervisor closed
    procpool::WorkItem item;
    std::uint64_t seq = 0;
    if (!decode_work(frame, item, seq)) std::_Exit(3);

    ByteWriter out;
    out.u64(seq);

    int trial_pipe[2] = {-1, -1};
    if (::pipe(trial_pipe) != 0) {
      out.u8(static_cast<std::uint8_t>(ReplyKind::ServeError));
      out.str(std::string("fork-server: pipe failed: ") +
              std::strerror(errno));
      if (!write_frame(result_fd, out.bytes())) std::_Exit(0);
      continue;
    }

    const pid_t child = ::fork();
    if (child == 0) {
      // Trial child: run exactly one trial, write the reply, and _exit
      // without flushing inherited stdio buffers or running static
      // destructors — the supervisor's journal fd and buffers are
      // duplicated here and must never see a write from this process.
      ::close(cmd_fd);
      ::close(result_fd);
      ::close(trial_pipe[0]);
      procpool::TrialReply reply;
      reply.ok = false;
      reply.error = "trial function did not run";
      reply = fn(item);
      write_frame(trial_pipe[1], encode_reply(reply));
      std::_Exit(0);
    }
    if (child < 0) {
      ::close(trial_pipe[0]);
      ::close(trial_pipe[1]);
      out.u8(static_cast<std::uint8_t>(ReplyKind::ServeError));
      out.str(std::string("fork-server: fork failed: ") +
              std::strerror(errno));
      if (!write_frame(result_fd, out.bytes())) std::_Exit(0);
      continue;
    }
    ::close(trial_pipe[1]);

    // A wedged child never writes and never exits; this read then blocks
    // until the supervisor's lease expires and SIGKILLs the whole lane
    // process group (server + child).
    std::string child_frame;
    const bool got_reply = read_frame(trial_pipe[0], child_frame);
    ::close(trial_pipe[0]);

    int status = 0;
    struct rusage ru{};
    while (::wait4(child, &status, 0, &ru) < 0 && errno == EINTR) {}

    if (WIFSIGNALED(status)) {
      out.u8(static_cast<std::uint8_t>(ReplyKind::SignalDeath));
      out.u32(static_cast<std::uint32_t>(WTERMSIG(status)));
      out.u64(static_cast<std::uint64_t>(ru.ru_utime.tv_sec) * 1'000'000 +
              static_cast<std::uint64_t>(ru.ru_utime.tv_usec));
      out.u64(static_cast<std::uint64_t>(ru.ru_stime.tv_sec) * 1'000'000 +
              static_cast<std::uint64_t>(ru.ru_stime.tv_usec));
      out.u64(static_cast<std::uint64_t>(ru.ru_maxrss));
    } else if (got_reply && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Forward the child's reply verbatim inside the consolidated frame.
      out.u8(static_cast<std::uint8_t>(ReplyKind::Completed));
      std::string merged = out.bytes();
      merged += child_frame;
      if (!write_frame(result_fd, merged)) std::_Exit(0);
      continue;
    } else {
      out.u8(static_cast<std::uint8_t>(ReplyKind::BadExit));
      out.u32(static_cast<std::uint32_t>(
          WIFEXITED(status) ? WEXITSTATUS(status) : -1));
    }
    if (!write_frame(result_fd, out.bytes())) std::_Exit(0);
  }
}

void ignore_sigpipe_once() {
  // A write to a lane whose server just died must surface as EPIPE (a
  // LaneFailure the campaign retries), not kill the supervisor.
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

std::string signal_name(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(signo);
  }
}

}  // namespace

ProcPool::ProcPool(Options options, procpool::TrialFn fn)
    : options_(options), fn_(std::move(fn)) {
  if (options_.lanes < 1) {
    throw ConfigError("ProcPool: lanes must be >= 1");
  }
  if (!fn_) throw InternalError("ProcPool: trial function must be set");
  ignore_sigpipe_once();
  lanes_.resize(options_.lanes);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t alive = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (spawn_locked(lanes_[i], /*is_respawn=*/false)) ++alive;
    free_.push_back(i);
  }
  if (alive == 0) {
    throw InternalError("ProcPool: could not spawn any fork-server lane");
  }
}

ProcPool::~ProcPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Closing the command pipe is the shutdown signal: the server's next
  // read sees EOF and _exits. No trial is outstanding here — the
  // scheduler joins its workers before the campaign tears the pool down.
  for (auto& lane : lanes_) {
    if (lane.cmd_fd >= 0) ::close(lane.cmd_fd);
    if (lane.result_fd >= 0) ::close(lane.result_fd);
    lane.cmd_fd = lane.result_fd = -1;
  }
  for (auto& lane : lanes_) {
    if (lane.pid <= 0) continue;
    // Grace period, then escalate: a server mid-teardown exits on EOF in
    // microseconds; anything still alive after the grace is wedged.
    int status = 0;
    bool reaped = false;
    for (int spin = 0; spin < 200; ++spin) {
      const pid_t r = ::waitpid(lane.pid, &status, WNOHANG);
      if (r == lane.pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::usleep(10'000);
    }
    if (!reaped) {
      ::killpg(lane.pid, SIGKILL);
      while (::waitpid(lane.pid, &status, 0) < 0 && errno == EINTR) {}
    }
    lane.pid = 0;
  }
}

bool ProcPool::spawn_locked(Lane& lane, bool is_respawn) {
  if (is_respawn) {
    if (respawns_used_ >= options_.respawn_budget) {
      degraded_ = true;
      return false;
    }
    ++respawns_used_;
    ++stats_.respawns;
  }
  int cmd[2] = {-1, -1};
  int res[2] = {-1, -1};
  if (::pipe(cmd) != 0) return false;
  if (::pipe(res) != 0) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    return false;
  }
  // Every parent-side fd of every other lane, so the fresh server can
  // drop them: a sibling holding a dead lane's pipe ends would keep that
  // lane's EOF from ever arriving.
  std::vector<int> parent_fds;
  for (const auto& other : lanes_) {
    if (other.cmd_fd >= 0) parent_fds.push_back(other.cmd_fd);
    if (other.result_fd >= 0) parent_fds.push_back(other.result_fd);
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Fork-server child: own process group (so one killpg reaps the
    // server and its current trial child together), no foreign fds, and
    // the caller's child_init (e.g. telemetry disable) before serving.
    ::setpgid(0, 0);
    ::close(cmd[1]);
    ::close(res[0]);
    for (int fd : parent_fds) ::close(fd);
    try {
      if (options_.child_init) options_.child_init();
    } catch (...) {
      // Serving with a failed init is better than losing the lane.
    }
    serve(cmd[0], res[1], fn_);
  }
  if (pid < 0) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    ::close(res[0]);
    ::close(res[1]);
    return false;
  }
  ::setpgid(pid, pid);  // also from the parent: closes the killpg race
  ::close(cmd[0]);
  ::close(res[1]);
  lane.pid = static_cast<int>(pid);
  lane.cmd_fd = cmd[1];
  lane.result_fd = res[0];
  lane.seq = 0;
  ++stats_.servers_spawned;
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& spawns = rec.counter(
        "fastfit_worker_spawns_total",
        "Fork-server lane spawns (initial + respawns after a lane loss)");
    spawns.add();
  }
  return true;
}

void ProcPool::kill_lane_locked(Lane& lane) {
  if (lane.pid > 0) {
    ::killpg(lane.pid, SIGKILL);
    int status = 0;
    while (::waitpid(lane.pid, &status, 0) < 0 && errno == EINTR) {}
  }
  if (lane.cmd_fd >= 0) ::close(lane.cmd_fd);
  if (lane.result_fd >= 0) ::close(lane.result_fd);
  lane.pid = 0;
  lane.cmd_fd = lane.result_fd = -1;
}

std::size_t ProcPool::acquire_lane() {
  std::unique_lock<std::mutex> lock(mutex_);
  lane_available_.wait(lock, [this] { return !free_.empty(); });
  const std::size_t index = free_.back();
  free_.pop_back();
  return index;
}

void ProcPool::release_lane(std::size_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(index);
  }
  lane_available_.notify_one();
}

bool ProcPool::degraded() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

ProcPool::Stats ProcPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<int> ProcPool::server_pids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> pids;
  pids.reserve(lanes_.size());
  for (const auto& lane : lanes_) pids.push_back(lane.pid);
  return pids;
}

ProcPool::Result ProcPool::run(const procpool::WorkItem& item,
                               std::chrono::milliseconds lease) {
  tel::ScopedSpan span("worker-dispatch");
  Result result;
  const std::size_t index = acquire_lane();
  struct Release {
    ProcPool& pool;
    std::size_t index;
    ~Release() { pool.release_lane(index); }
  } release{*this, index};

  std::uint64_t seq = 0;
  int cmd_fd = -1;
  int result_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Lane& lane = lanes_[index];
    if (lane.pid <= 0 && !spawn_locked(lane, /*is_respawn=*/true)) {
      ++stats_.lane_failures;
      result.kind = Result::Kind::LaneFailure;
      result.error = degraded_
                         ? "worker respawn budget exhausted; pool degraded"
                         : "fork-server respawn failed";
      return result;
    }
    ++stats_.trials_dispatched;
    seq = ++lane.seq;
    cmd_fd = lane.cmd_fd;
    result_fd = lane.result_fd;
  }
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& dispatched = rec.counter(
        "fastfit_worker_trials_total",
        "Trials dispatched to fork-server worker processes");
    dispatched.add();
  }

  // Holding no lock across the blocking I/O: only this thread owns the
  // lane until release, so the fds cannot be closed under it.
  if (!write_frame(cmd_fd, encode_work(item, seq))) {
    std::lock_guard<std::mutex> lock(mutex_);
    kill_lane_locked(lanes_[index]);
    ++stats_.lane_failures;
    result.kind = Result::Kind::LaneFailure;
    result.error = "fork-server command pipe closed (server died)";
    return result;
  }

  std::string frame;
  const auto deadline = std::chrono::steady_clock::now() + lease;
  const auto read_status = read_frame_deadline(result_fd, frame, deadline);
  if (read_status == DeadlineRead::Timeout) {
    std::lock_guard<std::mutex> lock(mutex_);
    kill_lane_locked(lanes_[index]);
    ++stats_.lease_kills;
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& kills = rec.counter(
          "fastfit_worker_lease_kills_total",
          "Worker lanes SIGKILLed for exceeding the trial lease deadline");
      kills.add();
    }
    result.kind = Result::Kind::LeaseExpired;
    result.error = "trial worker exceeded its " +
                   std::to_string(lease.count()) +
                   " ms lease; lane SIGKILLed";
    return result;
  }
  if (read_status == DeadlineRead::Closed) {
    std::lock_guard<std::mutex> lock(mutex_);
    kill_lane_locked(lanes_[index]);
    ++stats_.lane_failures;
    result.kind = Result::Kind::LaneFailure;
    result.error = "fork-server result pipe closed (server died)";
    return result;
  }

  ByteReader reader(frame);
  std::uint64_t got_seq = 0;
  std::uint8_t kind_raw = 0;
  bool parsed = reader.u64(got_seq) && reader.u8(kind_raw);
  if (!parsed || got_seq != seq) {
    std::lock_guard<std::mutex> lock(mutex_);
    kill_lane_locked(lanes_[index]);
    ++stats_.lane_failures;
    result.kind = Result::Kind::LaneFailure;
    result.error = "fork-server protocol error (bad frame); lane killed";
    return result;
  }
  switch (static_cast<ReplyKind>(kind_raw)) {
    case ReplyKind::Completed: {
      procpool::TrialReply reply;
      if (!decode_reply(reader, reply)) break;
      result.kind = Result::Kind::Completed;
      result.reply = std::move(reply);
      return result;
    }
    case ReplyKind::SignalDeath: {
      std::uint32_t signo = 0;
      if (!reader.u32(signo) || !reader.u64(result.user_us) ||
          !reader.u64(result.sys_us) || !reader.u64(result.maxrss_kb)) {
        break;
      }
      result.kind = Result::Kind::SignalDeath;
      result.signal = static_cast<int>(signo);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.signal_deaths;
      }
      if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
        static auto& deaths = rec.counter(
            "fastfit_worker_deaths_total",
            "Trial worker children killed by a genuine signal");
        deaths.add();
      }
      return result;
    }
    case ReplyKind::BadExit: {
      std::uint32_t code = 0;
      if (!reader.u32(code)) break;
      result.kind = Result::Kind::Completed;
      result.reply.ok = false;
      result.reply.error = "trial worker exited with status " +
                           std::to_string(static_cast<std::int32_t>(code)) +
                           " before reporting a result";
      return result;
    }
    case ReplyKind::ServeError: {
      std::string message;
      if (!reader.str(message)) break;
      result.kind = Result::Kind::Completed;
      result.reply.ok = false;
      result.reply.error = std::move(message);
      return result;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    kill_lane_locked(lanes_[index]);
    ++stats_.lane_failures;
  }
  result.kind = Result::Kind::LaneFailure;
  result.error = "fork-server protocol error (bad payload); lane killed";
  return result;
}

std::string describe_worker_death(int signo, std::uint64_t user_us,
                                  std::uint64_t sys_us,
                                  std::uint64_t maxrss_kb) {
  return "worker killed by " + signal_name(signo) + " (signal " +
         std::to_string(signo) + "); rusage: user=" +
         std::to_string(user_us / 1000) + "ms sys=" +
         std::to_string(sys_us / 1000) + "ms maxrss=" +
         std::to_string(maxrss_kb) + "KiB";
}

}  // namespace fastfit::core

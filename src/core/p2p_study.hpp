#pragma once

// Point-to-point sensitivity study: FastFIT's pruning and campaign
// machinery applied to send/recv calls (the paper's future-work claim
// that its techniques "can be applied to other programming elements of an
// HPC application"). The enumeration reuses the same semantic (process
// equivalence) and context (distinct call stacks) pruning; trials run
// through the P2pInjector.

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "inject/p2p_injector.hpp"

namespace fastfit::core {

struct P2pInjectionPoint {
  std::uint32_t site_id = 0;
  mpi::P2pKind kind{};
  std::string site_location;
  int rank = 0;
  std::uint64_t invocation = 0;
  mpi::P2pParam param{};

  trace::StackId stack = 0;
  trace::ExecPhase phase{};
  bool errhal = false;
  std::uint64_t n_inv = 0;
  double stack_depth = 0.0;
  std::uint64_t n_diff_stack = 0;
};

struct P2pEnumeration {
  PruningStats stats;
  std::vector<P2pInjectionPoint> points;
};

/// Enumerates point-to-point injection points from a profiled run with
/// semantic + context pruning (the collective pipeline's rules, applied
/// to p2p sites).
P2pEnumeration enumerate_p2p_points(const profile::Profiler& profiler);

/// Per-point statistics for a p2p point.
struct P2pPointResult {
  P2pInjectionPoint point;
  std::array<std::uint32_t, inject::kNumOutcomes> counts{};
  std::uint32_t trials = 0;

  void record(inject::Outcome outcome) {
    ++counts[static_cast<std::size_t>(outcome)];
    ++trials;
  }
  double error_rate() const;
  double fraction(inject::Outcome outcome) const;
};

/// Runs `trials` injected executions of one p2p point against the
/// campaign's workload/golden digest. The campaign must be profiled.
P2pPointResult measure_p2p(Campaign& campaign, const P2pInjectionPoint& point,
                           std::uint32_t trials);

/// Outcome distribution over p2p results, optionally filtered by
/// direction and/or parameter.
std::array<double, inject::kNumOutcomes> p2p_outcome_distribution(
    const std::vector<P2pPointResult>& results,
    std::optional<mpi::P2pKind> kind = std::nullopt,
    std::optional<mpi::P2pParam> param = std::nullopt);

}  // namespace fastfit::core

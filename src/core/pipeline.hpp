#pragma once

// The staged study pipeline (paper Fig 5, made explicit in code):
//
//   PointSource  ->  PruningPass chain  ->  TrialScheduler  ->  OutcomeSink
//
// A PointSource materializes the full exploration space from a profiled
// run. Each PruningPass then *resolves* part of that space: a structural
// pass (semantic, context) resolves points by dropping them — their
// response is covered by a surviving representative — while a measuring
// pass (ML prediction) resolves points by measuring some and predicting
// the rest through the campaign it is handed. A pass consumes the vector
// of still-unresolved points and returns the points that remain for the
// next pass; whatever survives the whole chain is measured exhaustively.
//
// The passes are selectable and reorderable at runtime (--passes /
// FASTFIT_PASSES; see make_pruning_pass), and the default chain
// [semantic, context] reproduces the pre-pipeline enumerate_points()
// byte for byte: same stats, same classes, same point order.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/points.hpp"
#include "ml/random_forest.hpp"
#include "trace/similarity.hpp"

namespace fastfit::profile {
class Profiler;
}

namespace fastfit::core {

class Campaign;
struct MlLoopConfig;

/// Shared state threaded through a pruning chain: inputs the passes read
/// (profiler, measurer, ML config) and outputs they accumulate (pruning
/// stats, equivalence classes, measured/predicted responses).
struct PassContext {
  // Inputs.
  const profile::Profiler* profiler = nullptr;  ///< structural passes
  Campaign* measurer = nullptr;                 ///< measuring passes (ML)
  const MlLoopConfig* ml = nullptr;             ///< MlPredictionPass config

  // Outputs.
  PruningStats stats;
  std::vector<trace::EquivalenceClass> classes;
  std::vector<PointResult> measured;
  std::vector<std::pair<InjectionPoint, std::size_t>> predicted;
  double final_accuracy = 0.0;
  bool threshold_reached = false;
  std::size_t ml_rounds = 0;
  std::optional<ml::RandomForest> model;
};

/// Stage 1: enumeration. Materializes the full exploration space — every
/// invocation of every site on every rank, one point per injectable
/// parameter — in canonical order (rank ascending, site id, invocation,
/// parameter), with the ML features attached. Sets stats.total_points and
/// stats.nranks.
class PointSource {
 public:
  virtual ~PointSource() = default;
  virtual std::vector<InjectionPoint> enumerate(PassContext& ctx) = 0;
};

/// The standard source: the space recorded by a profiling run.
class ProfilePointSource final : public PointSource {
 public:
  explicit ProfilePointSource(const profile::Profiler& profiler)
      : profiler_(&profiler) {}
  std::vector<InjectionPoint> enumerate(PassContext& ctx) override;

 private:
  const profile::Profiler* profiler_;
};

/// Stage 2: one pruning pass. apply() consumes the unresolved points and
/// returns those still unresolved afterwards.
class PruningPass {
 public:
  virtual ~PruningPass() = default;
  virtual std::string_view name() const = 0;
  /// True for passes that resolve points by running trials (ML): they
  /// need ctx.measurer and may only run under a study driver, never at
  /// enumeration time.
  virtual bool needs_measurer() const { return false; }
  virtual std::vector<InjectionPoint> apply(
      PassContext& ctx, std::vector<InjectionPoint> points) = 0;
};

/// Semantic-driven pruning (paper Sec III-A): computes the process
/// equivalence classes and keeps only points on each class's lowest-rank
/// representative. Sets stats.equivalence_classes, ctx.classes, and
/// stats.after_semantic (the surviving count).
class SemanticPruningPass final : public PruningPass {
 public:
  std::string_view name() const override { return "semantic"; }
  std::vector<InjectionPoint> apply(
      PassContext& ctx, std::vector<InjectionPoint> points) override;
};

/// Application-context-driven pruning (paper Sec III-B): per (rank, site),
/// keeps one invocation per distinct call stack (the first, in invocation
/// order).
class ContextPruningPass final : public PruningPass {
 public:
  std::string_view name() const override { return "context"; }
  std::vector<InjectionPoint> apply(
      PassContext& ctx, std::vector<InjectionPoint> points) override;
};

/// ML-driven pruning (paper Sec III-C): the injection ⇄ learning loop.
/// Measures batches through ctx.measurer until the model's verification
/// accuracy crosses the threshold, then predicts every remaining point.
/// Resolves everything: returns an empty vector.
class MlPredictionPass final : public PruningPass {
 public:
  std::string_view name() const override { return "ml"; }
  bool needs_measurer() const override { return true; }
  std::vector<InjectionPoint> apply(
      PassContext& ctx, std::vector<InjectionPoint> points) override;
};

/// Pass factory for the runtime-selectable chain ("semantic", "context",
/// "ml"). Throws ConfigError on an unknown name.
std::unique_ptr<PruningPass> make_pruning_pass(const std::string& name);

/// Splits a comma-separated pass list ("semantic,context,ml") into names,
/// validating each against the factory. Throws ConfigError on unknown
/// names or an empty list entry.
std::vector<std::string> parse_pass_list(const std::string& text);

/// Runs source -> passes and returns the unresolved points. After every
/// structural pass, stats.after_context tracks the unresolved count, so a
/// chain ending in structural passes leaves it at the post-structural
/// point count (measuring passes do not change it).
std::vector<InjectionPoint> run_pruning_chain(
    PointSource& source,
    std::span<const std::unique_ptr<PruningPass>> passes, PassContext& ctx);

}  // namespace fastfit::core

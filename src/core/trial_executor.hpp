#pragma once

// Fixed-size worker pool for fault-injection trials.
//
// Trials are embarrassingly parallel: every injected execution owns its
// World, Injector, and ContextRegistry, and the per-trial RNG identity is
// a pure function of (campaign seed, point, trial index) — so running them
// concurrently cannot change any PointResult, only the wall clock. The
// executor is deliberately small: submit closures, wait for the queue to
// drain, reuse. Each trial itself spawns `nranks` rank threads, so the
// pool size is the *outer* concurrency knob; see
// `resolve_parallel_trials` for the oversubscription-avoiding default.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fastfit::core {

/// Resolves CampaignOptions::max_parallel_trials: an explicit value
/// passes through; 0 ("auto") becomes hardware_concurrency() / nranks,
/// clamped to at least 1, so outer trial workers times inner rank threads
/// roughly matches the machine. With `rank_threads` false (the fiber
/// world engine: every trial runs all its ranks on the submitting
/// thread), "auto" is simply hardware_concurrency() — one lane per core,
/// since trials no longer multiply the thread count by nranks.
std::size_t resolve_parallel_trials(std::size_t configured, int nranks,
                                    bool rank_threads = true);

class TrialExecutor {
 public:
  /// Spawns `max_parallel` workers. `max_parallel <= 1` is the serial
  /// path: no threads are spawned and submit() runs each job inline, in
  /// submission order.
  explicit TrialExecutor(std::size_t max_parallel);

  /// Joins the workers; jobs still queued (only possible after a wait()
  /// that threw was not retried) are discarded.
  ~TrialExecutor();

  TrialExecutor(const TrialExecutor&) = delete;
  TrialExecutor& operator=(const TrialExecutor&) = delete;

  /// Enqueues one job. Jobs must not submit further jobs.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished. If any job threw, the
  /// first captured exception is rethrown here (remaining jobs still run
  /// to completion first — one bad trial never wedges the pool), and the
  /// executor stays usable for further submits.
  void wait();

  /// Number of worker threads (0 on the serial path).
  std::size_t workers() const noexcept { return threads_.size(); }

  /// Ordinal of the executor worker running the calling thread, or -1
  /// when called from outside a pool (the serial path, the campaign
  /// driver, a rank thread). Used to attribute errors and trace spans to
  /// their worker.
  static int current_worker() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable idle_cv_;  // wait(): queue drained, nothing active
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace fastfit::core

#include "core/scheduler.hpp"

#include <array>
#include <atomic>
#include <deque>
#include <limits>
#include <mutex>

#include "core/trial_executor.hpp"
#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

namespace tel = fastfit::telemetry;

namespace {

// Outcome-slot sentinels for the (point, trial) matrix.
constexpr int kPending = -1;  ///< not yet executed
constexpr int kSkipped = -2;  ///< abandoned after the point quarantined

// "No trial of this point has failed" marker for the per-point CAS-min.
constexpr std::uint32_t kNoFailure =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

ResultAccumulator::ResultAccumulator(std::span<const InjectionPoint> points)
    : results_(points.size()) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    results_[i].point = points[i];
  }
}

void ResultAccumulator::on_trial(const TrialRecord& record) {
  auto& result = results_[record.point_index];
  result.record(record.outcome);
  if (!record.autopsy.empty()) result.exec.last_autopsy = record.autopsy;
}

void ResultAccumulator::on_point(const PointStatus& status) {
  auto& exec = results_[status.point_index].exec;
  exec.retries = status.retries;
  if (status.quarantined) {
    exec.quarantined = true;
    exec.last_error = status.error;
  }
}

void JournalSink::on_trial(const TrialRecord& record) {
  // Replayed trials are already durable; re-recording is a no-op anyway
  // (the journal is idempotent), so skip the append entirely.
  if (record.replayed) return;
  const auto& fault = points_[record.point_index].fault;
  journal_->record_trial(record.key, record.trial, record.outcome,
                         record.deterministic, record.autopsy,
                         fault.is_default() ? std::string{}
                                            : fault.canonical());
}

void JournalSink::on_point(const PointStatus& status) {
  if (!status.quarantined) return;
  journal_->record_quarantine(status.key, status.retries, status.error);
}

void JournalSink::on_batch_end() { journal_->flush(); }

void TelemetrySink::on_trial(const TrialRecord& record) {
  auto& rec = tel::Recorder::instance();
  if (!rec.enabled()) return;
  // Outcome counters increment for replayed *and* fresh trials, so a
  // journal-resumed campaign reports identical totals. Registration is
  // per-slot idempotent rather than once-for-all: a default campaign
  // registers only the six base outcomes (pre-v2 metrics snapshot,
  // byte-identical) and a later extended campaign in the same process
  // fills in the remaining slots. on_trial runs on the scheduler's
  // aggregation thread only, so the unguarded slot check is safe.
  static std::array<tel::Counter*, inject::kNumOutcomes> counters{};
  const std::size_t active = inject::active_outcomes(extended_outcomes_);
  for (std::size_t o = 0; o < active; ++o) {
    if (counters[o]) continue;
    const std::string labels =
        "outcome=\"" +
        std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
        '"';
    counters[o] = &rec.counter(
        "fastfit_trials_total",
        "Trial outcomes recorded (incl. journal replays)", labels);
  }
  counters[static_cast<std::size_t>(record.outcome)]->add();
  if (record.replayed) {
    static auto& replays = rec.counter("fastfit_trials_replayed_total",
                                       "Trials served from the journal");
    replays.add();
  }
}

void TelemetrySink::on_point(const PointStatus& status) {
  if (!status.quarantined) return;
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& quarantines =
        rec.counter("fastfit_quarantined_points_total",
                    "Points the trial guard gave up on");
    quarantines.add();
  }
}

BatchStats TrialScheduler::run(std::span<const InjectionPoint> points,
                               std::uint32_t trials,
                               const TrialJournal* replay,
                               std::span<OutcomeSink* const> sinks) {
  BatchStats stats;

  // One outcome slot per (point, trial) job; aggregated afterwards in
  // trial order so the fan-out is byte-for-byte the serial one.
  std::vector<std::vector<int>> outcomes(points.size(),
                                         std::vector<int>(trials, kPending));
  std::vector<std::vector<std::uint8_t>> replayed(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  // Forensics per (point, trial): whether an INF_LOOP was proven
  // deterministically (skips escalated re-confirmation) and the world
  // autopsy carried into the journal and point stats.
  std::vector<std::vector<std::uint8_t>> deterministic(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  std::vector<std::vector<std::string>> autopsies(
      points.size(), std::vector<std::string>(trials));

  // Per-point supervision state. deque: stable addresses, no moves — the
  // elements hold atomics. `first_failed` is the *minimum* failed trial
  // ordinal (CAS-min): under pool > 1 the first trial to fail in
  // wall-clock time is not necessarily the first in trial order, and
  // every per-point aggregate (which trials count, whose error message
  // survives, how many retries) must be derived from the trial-order
  // minimum — never from arrival order — to stay bit-identical to the
  // serial run. Everything else is recorded per (point, trial) slot.
  struct PointState {
    std::atomic<std::uint32_t> first_failed{kNoFailure};
  };
  std::deque<PointState> state(points.size());
  std::vector<std::vector<std::uint32_t>> trial_retries(
      points.size(), std::vector<std::uint32_t>(trials, 0));
  std::vector<std::vector<std::string>> errors(
      points.size(), std::vector<std::string>(trials));
  std::vector<std::vector<std::uint8_t>> failed(
      points.size(), std::vector<std::uint8_t>(trials, 0));

  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = point_key(points[i]);
  }

  // Phase 0: replay journaled outcomes; only the gaps execute.
  if (replay) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (const auto o = replay->lookup(keys[i], t)) {
          outcomes[i][t] = static_cast<int>(*o);
          replayed[i][t] = 1;
          ++stats.replayed;
        }
      }
    }
  }

  // One fresh guarded trial, writing only into slot (i, t). Shared by
  // the pool jobs and by the post-wait repair pass, so the two paths
  // cannot drift.
  const auto run_fresh = [this, &outcomes, &state, &points, &keys,
                          &deterministic, &autopsies, &trial_retries,
                          &errors, &failed](std::size_t i, std::uint32_t t,
                                            std::int64_t submit_us) {
    auto& rec = tel::Recorder::instance();
    if (submit_us >= 0 && rec.enabled()) {
      const auto info = tel::Recorder::thread_info();
      tel::Event wait;
      wait.name = "queue-wait";
      wait.start_us = submit_us;
      wait.dur_us = rec.now_us() - submit_us;
      wait.track = info.track;
      wait.index = info.index;
      rec.record(std::move(wait));
    }
    tel::ScopedSpan trial_span("trial");
    trial_span.arg("point", keys[i]);
    trial_span.arg("trial", std::to_string(t));
    const auto attempt =
        runner_->run_guarded(points[i], t, runner_->watchdog());
    trial_retries[i][t] = attempt.retries;
    if (!attempt.ok) {
      errors[i][t] = attempt.error;
      failed[i][t] = 1;
      // CAS-min: remember the lowest failed ordinal, not the first to
      // arrive.
      auto& first = state[i].first_failed;
      std::uint32_t seen = first.load(std::memory_order_relaxed);
      while (t < seen && !first.compare_exchange_weak(
                             seen, t, std::memory_order_acq_rel)) {
      }
      outcomes[i][t] = kSkipped;
      return;
    }
    trial_span.arg("outcome", inject::to_string(attempt.outcome));
    if (attempt.outcome == inject::Outcome::InfLoop &&
        attempt.deterministic_hang) {
      // Proven structural deadlock: load-independent, so it neither
      // feeds the storm heuristic nor needs an escalated
      // re-confirmation.
      deterministic[i][t] = 1;
    }
    autopsies[i][t] = attempt.autopsy;
    outcomes[i][t] = static_cast<int>(attempt.outcome);
  };

  // Phase 1: concurrent guarded execution of the missing trials.
  {
    TrialExecutor executor(config_.pool);
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (outcomes[i][t] != kPending) continue;
        // Submission timestamp: the gap to execution start is the queue
        // wait, rendered as its own span on the executing worker's lane.
        auto& rec = tel::Recorder::instance();
        const std::int64_t submit_us = rec.enabled() ? rec.now_us() : -1;
        executor.submit([&run_fresh, &state, &outcomes, submit_us, i, t] {
          // Skip only trials *beyond* a known failure: those are the
          // ones the serial run would never have executed. Trials below
          // it must still run — the serial stream includes them.
          if (state[i].first_failed.load(std::memory_order_acquire) < t) {
            outcomes[i][t] = kSkipped;
            return;
          }
          run_fresh(i, t, submit_us);
        });
      }
    }
    executor.wait();
  }

  // Truncation/repair pass: rebuild the serial stream per point. Serial
  // semantics are "trials execute in order until the first failure f;
  // f's slot and everything after it are skipped". Under pool > 1, slots
  // beyond f may have executed anyway (wasted work — discard them) and a
  // slot at or below f may have been skipped against a failure ordinal
  // that a later CAS-min then lowered — re-run those serially here.
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::uint32_t f = state[i].first_failed.load(std::memory_order_acquire);
    for (std::uint32_t t = 0; t < trials && t < f; ++t) {
      if (outcomes[i][t] == kSkipped && !failed[i][t] && !replayed[i][t]) {
        run_fresh(i, t, -1);
        f = state[i].first_failed.load(std::memory_order_acquire);
      }
    }
    for (std::uint32_t t = f; t < trials; ++t) {
      // Journal-replayed outcomes survive the truncation — the serial
      // run never re-executes (or un-records) them either.
      if (!replayed[i][t]) outcomes[i][t] = kSkipped;
    }
  }

  // Fresh-trial census for the storm heuristic and the health stats,
  // taken *after* truncation so wasted beyond-failure executions do not
  // feed either (the serial run never ran them).
  std::uint64_t fresh_count = 0;
  std::uint64_t timeout_count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (outcomes[i][t] < 0 || replayed[i][t]) continue;
      ++fresh_count;
      if (outcomes[i][t] == static_cast<int>(inject::Outcome::InfLoop)) {
        if (deterministic[i][t]) {
          ++stats.deterministic_deadlocks;
        } else {
          ++timeout_count;
        }
      }
    }
  }

  // Phase 2: watchdog-storm response. When most of a batch times out the
  // likely cause is an overloaded machine (or a stale calibration), not a
  // sudden epidemic of genuine hangs: hand the engine its storm response
  // (golden recalibration + parallelism degradation). The escalated
  // re-confirmation below then reclassifies with the fresh budget.
  if (config_.pool > 1 && fresh_count > 0 &&
      static_cast<double>(timeout_count) >
          config_.storm_fraction * static_cast<double>(fresh_count)) {
    runner_->recalibrate_after_storm(config_.pool);
    ++stats.recalibrations;
  }

  // Phase 3: the watchdog is the one outcome gate that feels CPU
  // contention: a slow-but-finishing faulted run can cross the wall-clock
  // deadline only because concurrent Worlds shared the cores. Re-run
  // every freshly timed-out trial serially — alone on the machine, with
  // an escalated budget — and keep the confirmed outcome. Genuinely hung
  // runs time out again (same INF_LOOP), so classification is identical
  // at every parallelism level. Journal-replayed INF_LOOPs were already
  // confirmed when first recorded.
  // Deterministic verdicts skip this entirely: the monitor *proved* the
  // deadlock structurally, so contention cannot have caused it.
  const auto escalated = runner_->watchdog() * config_.watchdog_escalation;
  std::vector<std::uint32_t> confirm_retries(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (outcomes[i][t] != static_cast<int>(inject::Outcome::InfLoop) ||
          replayed[i][t] || deterministic[i][t]) {
        continue;
      }
      tel::ScopedSpan confirm_span("watchdog-confirm");
      confirm_span.arg("point", keys[i]);
      confirm_span.arg("trial", std::to_string(t));
      const auto attempt = runner_->run_guarded(points[i], t, escalated);
      ++stats.confirmations;
      if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
        static auto& confirms =
            rec.counter("fastfit_watchdog_confirmations_total",
                        "Escalated uncontended INF_LOOP re-confirmations");
        confirms.add();
      }
      confirm_retries[i] += attempt.retries;
      // A confirmation that fails internally keeps the original outcome:
      // the trial did produce one, and quarantining here would discard it.
      if (attempt.ok) outcomes[i][t] = static_cast<int>(attempt.outcome);
    }
  }

  // Phase 4: fan out in deterministic (point, trial) order. Execution
  // order above was free; observation order is pinned here, which is what
  // keeps reports, journals, and counters bit-identical at every pool
  // size.
  const std::string no_error;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      const int o = outcomes[i][t];
      if (o < 0) continue;  // skipped after quarantine
      TrialRecord record{keys[i],
                         i,
                         t,
                         static_cast<inject::Outcome>(o),
                         replayed[i][t] != 0,
                         deterministic[i][t] != 0,
                         autopsies[i][t]};
      for (auto* sink : sinks) sink->on_trial(record);
    }
    // Point aggregates from the truncated stream: retries come from the
    // trials the serial run would have executed (ordinals <= the first
    // failure) plus the escalated confirmations; the surviving error is
    // the first failure's, never a later racer's.
    const std::uint32_t f =
        state[i].first_failed.load(std::memory_order_acquire);
    const bool quarantined = f != kNoFailure;
    std::uint32_t retry_total = confirm_retries[i];
    for (std::uint32_t t = 0; t < trials && t <= f; ++t) {
      retry_total += trial_retries[i][t];
    }
    PointStatus status{keys[i], i, retry_total, quarantined,
                       quarantined ? errors[i][f] : no_error};
    if (quarantined) ++stats.quarantined_points;
    for (auto* sink : sinks) sink->on_point(status);
  }
  for (auto* sink : sinks) sink->on_batch_end();
  return stats;
}

}  // namespace fastfit::core

#include "core/scheduler.hpp"

#include <array>
#include <atomic>
#include <deque>
#include <mutex>

#include "core/trial_executor.hpp"
#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

namespace tel = fastfit::telemetry;

namespace {

// Outcome-slot sentinels for the (point, trial) matrix.
constexpr int kPending = -1;  ///< not yet executed
constexpr int kSkipped = -2;  ///< abandoned after the point quarantined

}  // namespace

ResultAccumulator::ResultAccumulator(std::span<const InjectionPoint> points)
    : results_(points.size()) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    results_[i].point = points[i];
  }
}

void ResultAccumulator::on_trial(const TrialRecord& record) {
  auto& result = results_[record.point_index];
  result.record(record.outcome);
  if (!record.autopsy.empty()) result.exec.last_autopsy = record.autopsy;
}

void ResultAccumulator::on_point(const PointStatus& status) {
  auto& exec = results_[status.point_index].exec;
  exec.retries = status.retries;
  if (status.quarantined) {
    exec.quarantined = true;
    exec.last_error = status.error;
  }
}

void JournalSink::on_trial(const TrialRecord& record) {
  // Replayed trials are already durable; re-recording is a no-op anyway
  // (the journal is idempotent), so skip the append entirely.
  if (record.replayed) return;
  journal_->record_trial(record.key, record.trial, record.outcome,
                         record.deterministic, record.autopsy);
}

void JournalSink::on_point(const PointStatus& status) {
  if (!status.quarantined) return;
  journal_->record_quarantine(status.key, status.retries, status.error);
}

void JournalSink::on_batch_end() { journal_->flush(); }

void TelemetrySink::on_trial(const TrialRecord& record) {
  auto& rec = tel::Recorder::instance();
  if (!rec.enabled()) return;
  // Outcome counters increment for replayed *and* fresh trials, so a
  // journal-resumed campaign reports identical totals.
  static std::array<tel::Counter*, inject::kNumOutcomes> counters{};
  static std::once_flag once;
  std::call_once(once, [&rec] {
    for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
      const std::string labels =
          "outcome=\"" +
          std::string(inject::to_string(static_cast<inject::Outcome>(o))) +
          '"';
      counters[o] = &rec.counter(
          "fastfit_trials_total",
          "Trial outcomes recorded (incl. journal replays)", labels);
    }
  });
  counters[static_cast<std::size_t>(record.outcome)]->add();
  if (record.replayed) {
    static auto& replays = rec.counter("fastfit_trials_replayed_total",
                                       "Trials served from the journal");
    replays.add();
  }
}

void TelemetrySink::on_point(const PointStatus& status) {
  if (!status.quarantined) return;
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& quarantines =
        rec.counter("fastfit_quarantined_points_total",
                    "Points the trial guard gave up on");
    quarantines.add();
  }
}

BatchStats TrialScheduler::run(std::span<const InjectionPoint> points,
                               std::uint32_t trials,
                               const TrialJournal* replay,
                               std::span<OutcomeSink* const> sinks) {
  BatchStats stats;

  // One outcome slot per (point, trial) job; aggregated afterwards in
  // trial order so the fan-out is byte-for-byte the serial one.
  std::vector<std::vector<int>> outcomes(points.size(),
                                         std::vector<int>(trials, kPending));
  std::vector<std::vector<std::uint8_t>> replayed(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  // Forensics per (point, trial): whether an INF_LOOP was proven
  // deterministically (skips escalated re-confirmation) and the world
  // autopsy carried into the journal and point stats.
  std::vector<std::vector<std::uint8_t>> deterministic(
      points.size(), std::vector<std::uint8_t>(trials, 0));
  std::vector<std::vector<std::string>> autopsies(
      points.size(), std::vector<std::string>(trials));

  // Per-point supervision state. deque: stable addresses, no moves — the
  // elements hold atomics.
  struct PointState {
    std::atomic<bool> quarantined{false};
    std::atomic<std::uint32_t> retries{0};
    std::mutex error_mutex;
    std::string last_error;
  };
  std::deque<PointState> state(points.size());

  std::vector<std::string> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = point_key(points[i]);
  }

  // Phase 0: replay journaled outcomes; only the gaps execute.
  if (replay) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (const auto o = replay->lookup(keys[i], t)) {
          outcomes[i][t] = static_cast<int>(*o);
          replayed[i][t] = 1;
          ++stats.replayed;
        }
      }
    }
  }

  // Phase 1: concurrent guarded execution of the missing trials.
  std::atomic<std::uint64_t> fresh{0};
  std::atomic<std::uint64_t> fresh_timeouts{0};
  std::atomic<std::uint64_t> proven_deadlocks{0};
  {
    TrialExecutor executor(config_.pool);
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::uint32_t t = 0; t < trials; ++t) {
        if (outcomes[i][t] != kPending) continue;
        // Submission timestamp: the gap to execution start is the queue
        // wait, rendered as its own span on the executing worker's lane.
        auto& rec = tel::Recorder::instance();
        const std::int64_t submit_us = rec.enabled() ? rec.now_us() : -1;
        executor.submit([this, &outcomes, &state, &points, &keys, &fresh,
                         &fresh_timeouts, &proven_deadlocks, &deterministic,
                         &autopsies, submit_us, i, t] {
          auto& st = state[i];
          if (st.quarantined.load(std::memory_order_acquire)) {
            outcomes[i][t] = kSkipped;
            return;
          }
          auto& rec = tel::Recorder::instance();
          if (submit_us >= 0 && rec.enabled()) {
            const auto info = tel::Recorder::thread_info();
            tel::Event wait;
            wait.name = "queue-wait";
            wait.start_us = submit_us;
            wait.dur_us = rec.now_us() - submit_us;
            wait.track = info.track;
            wait.index = info.index;
            rec.record(std::move(wait));
          }
          tel::ScopedSpan trial_span("trial");
          trial_span.arg("point", keys[i]);
          trial_span.arg("trial", std::to_string(t));
          const auto attempt =
              runner_->run_guarded(points[i], t, runner_->watchdog());
          if (attempt.ok) {
            trial_span.arg("outcome", inject::to_string(attempt.outcome));
          }
          st.retries.fetch_add(attempt.retries, std::memory_order_relaxed);
          if (!attempt.ok) {
            {
              std::lock_guard lock(st.error_mutex);
              st.last_error = attempt.error;
            }
            st.quarantined.store(true, std::memory_order_release);
            outcomes[i][t] = kSkipped;
            return;
          }
          fresh.fetch_add(1, std::memory_order_relaxed);
          if (attempt.outcome == inject::Outcome::InfLoop) {
            if (attempt.deterministic_hang) {
              // Proven structural deadlock: load-independent, so it
              // neither feeds the storm heuristic nor needs an escalated
              // re-confirmation.
              deterministic[i][t] = 1;
              proven_deadlocks.fetch_add(1, std::memory_order_relaxed);
            } else {
              fresh_timeouts.fetch_add(1, std::memory_order_relaxed);
            }
          }
          autopsies[i][t] = attempt.autopsy;
          outcomes[i][t] = static_cast<int>(attempt.outcome);
        });
      }
    }
    executor.wait();
  }
  stats.deterministic_deadlocks =
      proven_deadlocks.load(std::memory_order_relaxed);

  // Phase 2: watchdog-storm response. When most of a batch times out the
  // likely cause is an overloaded machine (or a stale calibration), not a
  // sudden epidemic of genuine hangs: hand the engine its storm response
  // (golden recalibration + parallelism degradation). The escalated
  // re-confirmation below then reclassifies with the fresh budget.
  const auto fresh_count = fresh.load(std::memory_order_relaxed);
  const auto timeout_count = fresh_timeouts.load(std::memory_order_relaxed);
  if (config_.pool > 1 && fresh_count > 0 &&
      static_cast<double>(timeout_count) >
          config_.storm_fraction * static_cast<double>(fresh_count)) {
    runner_->recalibrate_after_storm(config_.pool);
    ++stats.recalibrations;
  }

  // Phase 3: the watchdog is the one outcome gate that feels CPU
  // contention: a slow-but-finishing faulted run can cross the wall-clock
  // deadline only because concurrent Worlds shared the cores. Re-run
  // every freshly timed-out trial serially — alone on the machine, with
  // an escalated budget — and keep the confirmed outcome. Genuinely hung
  // runs time out again (same INF_LOOP), so classification is identical
  // at every parallelism level. Journal-replayed INF_LOOPs were already
  // confirmed when first recorded.
  // Deterministic verdicts skip this entirely: the monitor *proved* the
  // deadlock structurally, so contention cannot have caused it.
  const auto escalated = runner_->watchdog() * config_.watchdog_escalation;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t t = 0; t < trials; ++t) {
      if (outcomes[i][t] != static_cast<int>(inject::Outcome::InfLoop) ||
          replayed[i][t] || deterministic[i][t]) {
        continue;
      }
      tel::ScopedSpan confirm_span("watchdog-confirm");
      confirm_span.arg("point", keys[i]);
      confirm_span.arg("trial", std::to_string(t));
      const auto attempt = runner_->run_guarded(points[i], t, escalated);
      ++stats.confirmations;
      if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
        static auto& confirms =
            rec.counter("fastfit_watchdog_confirmations_total",
                        "Escalated uncontended INF_LOOP re-confirmations");
        confirms.add();
      }
      state[i].retries.fetch_add(attempt.retries, std::memory_order_relaxed);
      // A confirmation that fails internally keeps the original outcome:
      // the trial did produce one, and quarantining here would discard it.
      if (attempt.ok) outcomes[i][t] = static_cast<int>(attempt.outcome);
    }
  }

  // Phase 4: fan out in deterministic (point, trial) order. Execution
  // order above was free; observation order is pinned here, which is what
  // keeps reports, journals, and counters bit-identical at every pool
  // size.
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto& st = state[i];
    for (std::uint32_t t = 0; t < trials; ++t) {
      const int o = outcomes[i][t];
      if (o < 0) continue;  // skipped after quarantine
      TrialRecord record{keys[i],
                         i,
                         t,
                         static_cast<inject::Outcome>(o),
                         replayed[i][t] != 0,
                         deterministic[i][t] != 0,
                         autopsies[i][t]};
      for (auto* sink : sinks) sink->on_trial(record);
    }
    const bool quarantined = st.quarantined.load(std::memory_order_acquire);
    std::lock_guard lock(st.error_mutex);
    PointStatus status{keys[i], i, st.retries.load(std::memory_order_relaxed),
                       quarantined, st.last_error};
    if (quarantined) ++stats.quarantined_points;
    for (auto* sink : sinks) sink->on_point(status);
  }
  for (auto* sink : sinks) sink->on_batch_end();
  return stats;
}

}  // namespace fastfit::core

#include "core/shard.hpp"

#include "inject/fault_spec.hpp"
#include "support/error.hpp"

namespace fastfit::core {

std::string ShardSpec::str() const {
  return std::to_string(index) + '/' + std::to_string(count);
}

ShardSpec parse_shard(const std::string& text) {
  const auto fail = [&]() -> ShardSpec {
    throw ConfigError("shard: expected \"i/N\" with 1 <= i <= N, got '" +
                      text + "'");
  };
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    fail();
  }
  const auto parse_part = [&](const std::string& part) -> std::size_t {
    if (part.empty() || part.size() > 9) fail();
    std::size_t out = 0;
    for (char c : part) {
      if (c < '0' || c > '9') fail();
      out = out * 10 + static_cast<std::size_t>(c - '0');
    }
    return out;
  };
  ShardSpec spec;
  spec.index = parse_part(text.substr(0, slash));
  spec.count = parse_part(text.substr(slash + 1));
  if (spec.index < 1 || spec.count < 1 || spec.index > spec.count) fail();
  return spec;
}

bool shard_owns(const ShardSpec& spec, const InjectionPoint& point) {
  if (!spec.sharded()) return true;
  const auto hash = inject::point_identity_hash(
      point.site_id, static_cast<std::uint64_t>(point.rank), point.invocation,
      static_cast<std::uint64_t>(point.param));
  return hash % spec.count == spec.index - 1;
}

}  // namespace fastfit::core

#pragma once

// Durable trial journal: crash resilience for long campaigns.
//
// A FastFIT campaign is itself a long-running workload — thousands of
// (point, trial) executions — and must survive being killed at any
// instant. The journal is an append-only JSONL file: one header line
// pinning the campaign's identity (workload, seed, nranks, fault model,
// algorithms, golden digest) followed by one line per completed
// (point, trial) outcome, plus quarantine records and the ML loop's
// training-label checkpoints. Writes are fsync-batched; a SIGKILL can
// lose at most the unsynced tail (those trials simply re-run on resume)
// and a torn final line is detected and truncated away.
//
// Resume is bit-identical by construction: the per-trial RNG identity is
// a pure function of (campaign seed, point, trial index)
// (FaultSpec::stream_index), so replaying journaled outcomes and running
// only the missing trials yields exactly the uninterrupted campaign.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/points.hpp"
#include "inject/outcome.hpp"

namespace fastfit::core {

/// Stable identity of one injection point within a campaign
/// ("site:rank:invocation:param"); the key journal lines are indexed by.
std::string point_key(const InjectionPoint& point);

/// Campaign identity written as the journal's first line. Resume refuses
/// to continue a journal whose identity differs from the live campaign —
/// a changed seed or golden digest would silently break the bit-identical
/// resume guarantee.
struct JournalHeader {
  std::string workload;
  std::uint64_t seed = 0;
  int nranks = 0;
  std::uint32_t trials_per_point = 0;
  std::string fault_model;
  std::string algorithms;
  std::uint64_t golden_digest = 0;
  /// Deterministic shard this journal belongs to (1/1 = unsharded). A
  /// shard's journal only ever holds that shard's points; resuming it
  /// under a different --shard would replay the wrong partition.
  /// Pre-shard journals omit the fields and read back as 1/1.
  std::size_t shard_index = 1;
  std::size_t shard_count = 1;
};

/// Why a point was abandoned by the trial guard (audit trail; resumed
/// campaigns retry quarantined points from scratch).
struct QuarantineRecord {
  std::uint32_t retries = 0;
  std::string error;
};

class TrialJournal {
 public:
  /// Creates a fresh journal at `path` and writes the header. Throws
  /// ConfigError if the file already exists (an existing journal must be
  /// resumed explicitly or removed — never silently clobbered).
  static std::unique_ptr<TrialJournal> create(const std::string& path,
                                              const JournalHeader& header);

  /// Opens an existing journal: validates its header against `expected`
  /// field by field (ConfigError on any mismatch), loads every completed
  /// trial/label/quarantine record, truncates a torn final line, and
  /// reopens for appending. A missing file degrades to create() — a
  /// killed campaign may die before its journal's first write.
  static std::unique_ptr<TrialJournal> resume(const std::string& path,
                                              const JournalHeader& expected);

  ~TrialJournal();

  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Outcome of (point, trial) if journaled, either loaded at resume or
  /// recorded earlier in this process.
  std::optional<inject::Outcome> lookup(const std::string& key,
                                        std::uint64_t trial) const;

  /// Appends one completed trial. Idempotent: re-recording a journaled
  /// (key, trial) is a no-op (outcomes are deterministic). Non-SUCCESS
  /// trials may carry forensics: `deterministic` marks a monitor-proven
  /// deadlock ("d":1) and `autopsy` the one-line world autopsy ("a");
  /// `model` (the canonical fault-model spec, "m") names what was
  /// injected. All are extra record fields older readers ignore; replay
  /// keys only on (point, trial, outcome), so reports stay bit-identical.
  void record_trial(const std::string& key, std::uint64_t trial,
                    inject::Outcome outcome, bool deterministic = false,
                    const std::string& autopsy = {},
                    const std::string& model = {});

  /// Appends a quarantine record for an abandoned point.
  void record_quarantine(const std::string& key, std::uint32_t retries,
                         const std::string& error);

  /// Quarantine record of a point, if any was journaled.
  std::optional<QuarantineRecord> quarantine(const std::string& key) const;

  /// ML-loop training checkpoint: records the label derived for a
  /// measured point, or — when the label was already journaled — verifies
  /// it, throwing ConfigError on divergence (a diverged label means the
  /// resumed campaign is not reproducing the original, e.g. changed
  /// thresholds or label mode).
  void check_or_record_label(const std::string& key, std::size_t label);

  /// Label checkpoint of a point, if journaled.
  std::optional<std::size_t> label(const std::string& key) const;

  /// Writes buffered lines to disk and fsyncs. Called automatically every
  /// kFlushBatch records and from the destructor.
  void flush();

  /// Trial records loaded from disk at resume() (0 for a fresh journal).
  std::uint64_t loaded_trials() const noexcept { return loaded_; }

  const std::string& path() const noexcept { return path_; }

  /// Records between fsyncs; at most this many trial results can be lost
  /// to a crash (they re-run on resume).
  static constexpr std::size_t kFlushBatch = 64;

 private:
  TrialJournal(std::string path, int fd);

  void append_line(const std::string& line);  // caller holds mutex_
  void flush_locked();

  std::string path_;
  int fd_ = -1;
  std::string buffer_;
  std::size_t buffered_lines_ = 0;
  std::uint64_t loaded_ = 0;
  // Trial outcomes per point key, indexed by trial ordinal; -1 = unset.
  std::unordered_map<std::string, std::vector<std::int16_t>> trials_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::unordered_map<std::string, QuarantineRecord> quarantines_;
  mutable std::mutex mutex_;
};

}  // namespace fastfit::core

#include "core/snapshot_cache.hpp"

#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::core {

namespace tel = fastfit::telemetry;

SnapshotMode parse_snapshot_mode(const std::string& text) {
  if (text == "off") return SnapshotMode::Off;
  if (text == "on") return SnapshotMode::On;
  if (text == "auto") return SnapshotMode::Auto;
  throw ConfigError("snapshots must be one of on|off|auto, got '" + text +
                    "'");
}

const char* to_string(SnapshotMode mode) noexcept {
  switch (mode) {
    case SnapshotMode::Off: return "off";
    case SnapshotMode::On: return "on";
    case SnapshotMode::Auto: return "auto";
  }
  return "unknown";
}

SnapshotCache::SnapshotCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::shared_ptr<const mpi::WorldSnapshot> SnapshotCache::lookup(
    std::uint32_t site_id, std::uint64_t invocation,
    const RecordingBuilder& build) {
  std::unique_lock lock(mutex_);
  if (disabled_) return nullptr;

  if (!recording_attempted_) {
    // Build the recording under the lock: the build is expensive but
    // happens exactly once, and concurrent trials must not each run it.
    recording_attempted_ = true;
    std::shared_ptr<const mpi::WorldRecording> recording;
    try {
      recording = build();
    } catch (const std::exception& e) {
      // A recording failure must never cost the trial (let alone the
      // point): disable the subsystem and let every trial run live.
      disabled_ = true;
      disabled_why_ = std::string("recording run failed: ") + e.what();
      return nullptr;
    }
    if (!recording || !recording->replayable) {
      disabled_ = true;
      disabled_why_ = recording ? "recording not replayable: " +
                                      recording->unsupported_reason
                                : "recording run failed";
      return nullptr;
    }
    if (recording->payload_bytes > budget_bytes_) {
      disabled_ = true;
      disabled_why_ = "recording of " +
                      std::to_string(recording->payload_bytes) +
                      " bytes exceeds the snapshot cache budget";
      return nullptr;
    }
    recording_ = std::move(recording);
    ++stats_.recording_builds;
    stats_.recording_bytes = recording_->payload_bytes;
  }
  if (!recording_) return nullptr;

  const Key key{site_id, invocation};
  if (invalid_.count(key) != 0) return nullptr;
  if (auto it = entries_.find(key); it != entries_.end()) {
    order_.splice(order_.begin(), order_, it->second.where);
    ++stats_.hits;
    ++stats_.clones;
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& hits = rec.counter("fastfit_snapshot_cache_hits_total",
                                      "Snapshot lookups served from cache");
      hits.add();
    }
    return it->second.snapshot;
  }

  auto snapshot = mpi::WorldSnapshot::build(recording_, site_id, invocation);
  ++stats_.snapshot_builds;
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& builds = rec.counter("fastfit_snapshot_builds_total",
                                      "Per-(site, invocation) cut derivations");
    builds.add();
  }
  if (!snapshot) {
    invalid_.insert(key);
    return nullptr;
  }

  order_.push_front(key);
  entries_.emplace(key, Entry{snapshot, order_.begin()});
  snapshot_bytes_ += snapshot->approx_bytes;
  evict_to_fit_locked();
  ++stats_.clones;
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& gauge =
        rec.gauge("fastfit_snapshot_cache_bytes",
                  "Bytes held by the snapshot cache (recording + cuts)");
    gauge.set(static_cast<std::int64_t>(stats_.recording_bytes +
                                        snapshot_bytes_));
  }
  return snapshot;
}

bool SnapshotCache::warm(std::uint32_t site_id, std::uint64_t invocation,
                         const RecordingBuilder& build) {
  return lookup(site_id, invocation, build) != nullptr;
}

void SnapshotCache::evict_to_fit_locked() {
  const std::size_t base = recording_ ? recording_->payload_bytes : 0;
  while (entries_.size() > 1 && base + snapshot_bytes_ > budget_bytes_) {
    const Key victim = order_.back();
    order_.pop_back();
    auto it = entries_.find(victim);
    snapshot_bytes_ -= it->second.snapshot->approx_bytes;
    entries_.erase(it);
    ++stats_.evictions;
    if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
      static auto& evictions =
          rec.counter("fastfit_snapshot_cache_evictions_total",
                      "Snapshots dropped by the LRU budget");
      evictions.add();
    }
  }
}

void SnapshotCache::disable(const std::string& why) {
  std::lock_guard lock(mutex_);
  if (disabled_) return;
  disabled_ = true;
  disabled_why_ = why;
  recording_.reset();
  entries_.clear();
  order_.clear();
  invalid_.clear();
  snapshot_bytes_ = 0;
}

bool SnapshotCache::disabled() const {
  std::lock_guard lock(mutex_);
  return disabled_;
}

std::string SnapshotCache::disabled_reason() const {
  std::lock_guard lock(mutex_);
  return disabled_why_;
}

void SnapshotCache::note_fallback() {
  {
    std::lock_guard lock(mutex_);
    ++stats_.fallbacks;
  }
  if (auto& rec = tel::Recorder::instance(); rec.enabled()) {
    static auto& fallbacks =
        rec.counter("fastfit_snapshot_fallbacks_total",
                    "Replay divergences that fell back to from-scratch runs");
    fallbacks.add();
  }
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.cached_bytes = (recording_ ? recording_->payload_bytes : 0) +
                     snapshot_bytes_;
  return out;
}

GoldenCache& GoldenCache::instance() {
  static GoldenCache cache;
  return cache;
}

std::optional<GoldenCache::Value> GoldenCache::find(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) return it->second;
  return std::nullopt;
}

void GoldenCache::put(const std::string& key, const Value& value) {
  std::lock_guard lock(mutex_);
  entries_[key] = value;
}

void GoldenCache::invalidate(const std::string& key) {
  std::lock_guard lock(mutex_);
  entries_.erase(key);
}

std::size_t GoldenCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void GoldenCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

}  // namespace fastfit::core

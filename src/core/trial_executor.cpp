#include "core/trial_executor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "telemetry/recorder.hpp"

namespace fastfit::core {

namespace {
thread_local int t_worker = -1;
}  // namespace

int TrialExecutor::current_worker() noexcept { return t_worker; }

std::size_t resolve_parallel_trials(std::size_t configured, int nranks,
                                    bool rank_threads) {
  if (configured > 0) return configured;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (!rank_threads) return hw;  // fiber trials: one thread each
  const auto ranks = static_cast<std::size_t>(std::max(1, nranks));
  return std::max<std::size_t>(1, hw / ranks);
}

TrialExecutor::TrialExecutor(std::size_t max_parallel) {
  if (max_parallel <= 1) return;  // serial path: submit() runs inline
  threads_.reserve(max_parallel);
  for (std::size_t i = 0; i < max_parallel; ++i) {
    threads_.emplace_back([this, i] {
      t_worker = static_cast<int>(i);
      if (telemetry::Recorder::instance().enabled()) {
        telemetry::Recorder::bind_thread(telemetry::Track::Executor,
                                         static_cast<int>(i),
                                         "executor-" + std::to_string(i));
      }
      worker_loop();
    });
  }
}

TrialExecutor::~TrialExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void TrialExecutor::submit(std::function<void()> job) {
  if (threads_.empty()) {
    // Serial path: same capture-first-error contract as the pool, so
    // callers observe identical behaviour at every parallelism level.
    try {
      job();
    } catch (...) {
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void TrialExecutor::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TrialExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) first_error_ = error;
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace fastfit::core

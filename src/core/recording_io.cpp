#include "core/recording_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "minimpi/memory.hpp"

namespace fastfit::core {
namespace {

constexpr char kMagic[8] = {'F', 'F', 'I', 'T', 'R', 'E', 'C', '1'};

// Caps that no legitimate recording approaches; a corrupt length field
// must fail the load, not drive a multi-gigabyte allocation.
constexpr std::uint64_t kMaxString = 1u << 20;
constexpr std::uint64_t kMaxRanks = 1u << 20;
constexpr std::uint64_t kMaxOpsPerRank = 1u << 28;
constexpr std::uint64_t kMaxWritesPerOp = 1u << 24;
constexpr std::uint64_t kMaxChunkBytes = 1u << 30;

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    raw(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }
  bool flush() {
    out_.flush();
    return out_.good();
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool open() const { return in_.is_open(); }

  bool u8(std::uint8_t& v) { return raw(&v, 1); }
  bool u64(std::uint64_t& v) {
    std::uint8_t b[8];
    if (!raw(b, 8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }
  bool str(std::string& s, std::uint64_t max_len) {
    std::uint64_t len = 0;
    if (!u64(len) || len > max_len) return false;
    s.resize(static_cast<std::size_t>(len));
    return raw(s.data(), s.size());
  }
  bool raw(void* data, std::size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    return in_.good() || (bytes == 0 && !in_.bad());
  }
  bool at_eof() {
    return in_.peek() == std::ifstream::traits_type::eof();
  }

 private:
  std::ifstream in_;
};

bool fail(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
  return false;
}

}  // namespace

bool save_recording(const std::string& path,
                    const mpi::WorldRecording& recording,
                    const std::string& identity,
                    std::uint64_t golden_digest) {
  const std::string tmp = path + ".tmp";
  {
    Writer w(tmp);
    if (!w.ok()) return false;
    w.raw(kMagic, sizeof(kMagic));
    w.str(identity);
    w.u64(golden_digest);
    w.u8(recording.replayable ? 1 : 0);
    w.str(recording.unsupported_reason);
    w.u64(static_cast<std::uint64_t>(recording.nranks));
    for (const auto& stream : recording.ops) {
      w.u64(stream.size());
      for (const auto& op : stream) {
        w.u8(static_cast<std::uint8_t>(op.kind));
        w.u8(static_cast<std::uint8_t>(op.coll));
        w.u64(op.site_id);
        w.i64(op.site_line);
        w.u64(op.invocation);
        w.u64(op.comm);
        w.i64(op.self_comm);
        w.i64(op.peer);
        w.i64(op.peer_world);
        w.u64(op.transport_tag);
        w.u64(op.writes.size());
        for (const auto& chunk : op.writes) {
          if (chunk == nullptr) {
            w.u64(0);
            continue;
          }
          w.u64(chunk->size());
          w.raw(chunk->data(), chunk->size());
        }
      }
    }
    if (!w.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::shared_ptr<const mpi::WorldRecording> load_recording(
    const std::string& path, const std::string& identity,
    std::uint64_t golden_digest, std::string* why) {
  Reader r(path);
  std::string reason;
  if (!r.open()) {
    fail(why, "no recording file at " + path);
    return nullptr;
  }
  char magic[sizeof(kMagic)];
  if (!r.raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(why, "bad magic (not a recording file, or a newer format)");
    return nullptr;
  }
  std::string file_identity;
  std::uint64_t file_digest = 0;
  if (!r.str(file_identity, kMaxString) || !r.u64(file_digest)) {
    fail(why, "truncated header");
    return nullptr;
  }
  if (file_identity != identity) {
    fail(why, "campaign identity mismatch (recorded under '" + file_identity +
                  "')");
    return nullptr;
  }
  if (file_digest != golden_digest) {
    fail(why, "golden digest mismatch");
    return nullptr;
  }

  auto rec = std::make_shared<mpi::WorldRecording>();
  std::uint8_t replayable = 0;
  std::uint64_t nranks = 0;
  if (!r.u8(replayable) ||
      !r.str(rec->unsupported_reason, kMaxString) || !r.u64(nranks) ||
      nranks > kMaxRanks) {
    fail(why, "truncated recording body");
    return nullptr;
  }
  rec->replayable = replayable != 0;
  rec->nranks = static_cast<int>(nranks);
  rec->ops.resize(static_cast<std::size_t>(nranks));

  mpi::ChunkStore chunks;
  std::vector<std::byte> scratch;
  for (auto& stream : rec->ops) {
    std::uint64_t nops = 0;
    if (!r.u64(nops) || nops > kMaxOpsPerRank) {
      fail(why, "truncated op stream");
      return nullptr;
    }
    stream.resize(static_cast<std::size_t>(nops));
    for (auto& op : stream) {
      std::uint8_t kind = 0;
      std::uint8_t coll = 0;
      std::uint64_t site_id = 0;
      std::int64_t site_line = 0;
      std::int64_t self_comm = 0;
      std::int64_t peer = 0;
      std::int64_t peer_world = 0;
      std::uint64_t comm = 0;
      std::uint64_t nwrites = 0;
      if (!r.u8(kind) || !r.u8(coll) || !r.u64(site_id) ||
          !r.i64(site_line) || !r.u64(op.invocation) || !r.u64(comm) ||
          !r.i64(self_comm) || !r.i64(peer) || !r.i64(peer_world) ||
          !r.u64(op.transport_tag) || !r.u64(nwrites) ||
          nwrites > kMaxWritesPerOp) {
        fail(why, "truncated op record");
        return nullptr;
      }
      op.kind = static_cast<mpi::RecordedOp::Kind>(kind);
      op.coll = static_cast<mpi::CollectiveKind>(coll);
      op.site_id = static_cast<std::uint32_t>(site_id);
      op.comm = static_cast<mpi::RawHandle>(comm);
      op.site_line = static_cast<int>(site_line);
      op.self_comm = static_cast<int>(self_comm);
      op.peer = static_cast<int>(peer);
      op.peer_world = static_cast<int>(peer_world);
      op.writes.reserve(static_cast<std::size_t>(nwrites));
      for (std::uint64_t i = 0; i < nwrites; ++i) {
        std::uint64_t len = 0;
        if (!r.u64(len) || len > kMaxChunkBytes) {
          fail(why, "truncated chunk");
          return nullptr;
        }
        scratch.resize(static_cast<std::size_t>(len));
        if (!r.raw(scratch.data(), scratch.size())) {
          fail(why, "truncated chunk payload");
          return nullptr;
        }
        // Re-intern: restores content dedup across ops and ranks, so the
        // loaded recording has the same memory shape as a live one.
        op.writes.push_back(chunks.intern(scratch.data(), scratch.size()));
      }
      rec->total_ops += 1;
    }
  }
  if (!r.at_eof()) {
    fail(why, "trailing bytes after recording");
    return nullptr;
  }
  rec->payload_bytes = chunks.unique_bytes();
  return rec;
}

}  // namespace fastfit::core

#include "core/pipeline.hpp"

#include <map>
#include <unordered_set>
#include <utility>

#include "core/campaign.hpp"
#include "core/ml_loop.hpp"
#include "profile/profiler.hpp"
#include "profile/queries.hpp"
#include "support/error.hpp"

namespace fastfit::core {
namespace {

std::string short_location(const profile::SiteProfile& site) {
  std::string name = site.file;
  if (const auto slash = name.rfind('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return name + ":" + std::to_string(site.line);
}

const profile::Profiler& require_profiler(const PassContext& ctx,
                                          const char* who) {
  if (!ctx.profiler) {
    throw InternalError(std::string(who) + ": PassContext has no profiler");
  }
  return *ctx.profiler;
}

}  // namespace

std::vector<InjectionPoint> ProfilePointSource::enumerate(PassContext& ctx) {
  const auto& profiler = *profiler_;
  ctx.profiler = profiler_;
  ctx.stats.nranks = profiler.nranks();

  std::vector<InjectionPoint> points;
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      const auto params = mpi::injectable_params(site.kind);
      const auto n_inv = profile::n_invocations(site);
      const auto depth = profile::mean_stack_depth(site);
      const auto n_stacks = profile::n_distinct_stacks(site);
      for (const auto& inv : site.invocations) {
        for (mpi::Param param : params) {
          InjectionPoint point;
          point.site_id = site_id;
          point.kind = site.kind;
          point.site_location = short_location(site);
          point.rank = r;
          point.invocation = inv.invocation;
          point.param = param;
          point.stack = inv.stack;
          point.phase = inv.phase;
          point.errhal = inv.errhal;
          point.n_inv = n_inv;
          point.stack_depth = depth;
          point.n_diff_stack = n_stacks;
          points.push_back(std::move(point));
        }
      }
    }
  }
  ctx.stats.total_points = points.size();
  return points;
}

std::vector<InjectionPoint> SemanticPruningPass::apply(
    PassContext& ctx, std::vector<InjectionPoint> points) {
  const auto& profiler = require_profiler(ctx, "semantic pass");
  ctx.classes = trace::equivalence_classes(profiler.contexts());
  ctx.stats.equivalence_classes = ctx.classes.size();

  std::vector<char> representative(
      static_cast<std::size_t>(profiler.nranks()), 0);
  for (const auto& cls : ctx.classes) {
    representative[static_cast<std::size_t>(cls.representative())] = 1;
  }
  std::vector<InjectionPoint> out;
  out.reserve(points.size());
  for (auto& point : points) {
    if (representative[static_cast<std::size_t>(point.rank)]) {
      out.push_back(std::move(point));
    }
  }
  ctx.stats.after_semantic = out.size();
  return out;
}

std::vector<InjectionPoint> ContextPruningPass::apply(
    PassContext& ctx, std::vector<InjectionPoint> points) {
  const auto& profiler = require_profiler(ctx, "context pass");
  // Representative invocations per (rank, site): the first invocation of
  // each distinct call stack, computed once per group.
  std::map<std::pair<int, std::uint32_t>, std::unordered_set<std::uint64_t>>
      keep;
  std::vector<InjectionPoint> out;
  out.reserve(points.size());
  for (auto& point : points) {
    const auto group = std::make_pair(point.rank, point.site_id);
    auto it = keep.find(group);
    if (it == keep.end()) {
      const auto& site = profiler.rank(point.rank).sites.at(point.site_id);
      std::unordered_set<std::uint64_t> invocations;
      for (const auto& inv : profile::stack_representatives(site)) {
        invocations.insert(inv.invocation);
      }
      it = keep.emplace(group, std::move(invocations)).first;
    }
    if (it->second.count(point.invocation)) out.push_back(std::move(point));
  }
  return out;
}

std::vector<InjectionPoint> MlPredictionPass::apply(
    PassContext& ctx, std::vector<InjectionPoint> points) {
  if (!ctx.measurer) {
    throw InternalError(
        "ml pass: PassContext has no measurer (the ML pass resolves points "
        "by running trials, so it is only valid under a study driver)");
  }
  const MlLoopConfig config = ctx.ml ? *ctx.ml : MlLoopConfig{};
  auto ml = run_ml_loop(*ctx.measurer, std::move(points), config);
  for (auto& r : ml.measured) ctx.measured.push_back(std::move(r));
  for (auto& p : ml.predicted) ctx.predicted.push_back(std::move(p));
  ctx.final_accuracy = ml.final_accuracy;
  ctx.threshold_reached = ml.threshold_reached;
  ctx.ml_rounds = ml.rounds;
  ctx.model = std::move(ml.model);
  return {};
}

std::unique_ptr<PruningPass> make_pruning_pass(const std::string& name) {
  if (name == "semantic") return std::make_unique<SemanticPruningPass>();
  if (name == "context") return std::make_unique<ContextPruningPass>();
  if (name == "ml") return std::make_unique<MlPredictionPass>();
  throw ConfigError("unknown pruning pass '" + name +
                    "' (available: semantic, context, ml)");
}

std::vector<std::string> parse_pass_list(const std::string& text) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    const std::string name = text.substr(start, end - start);
    if (name.empty()) {
      throw ConfigError("pass list: empty entry in '" + text + "'");
    }
    make_pruning_pass(name);  // validate the name
    names.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (names.empty()) throw ConfigError("pass list: empty");
  return names;
}

std::vector<InjectionPoint> run_pruning_chain(
    PointSource& source,
    std::span<const std::unique_ptr<PruningPass>> passes, PassContext& ctx) {
  auto points = source.enumerate(ctx);
  ctx.stats.after_context = points.size();
  for (const auto& pass : passes) {
    points = pass->apply(ctx, std::move(points));
    if (!pass->needs_measurer()) ctx.stats.after_context = points.size();
  }
  return points;
}

}  // namespace fastfit::core

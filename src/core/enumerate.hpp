#pragma once

// Injection-point enumeration over a profiled run: applies semantic-driven
// pruning (paper Sec III-A) and application-context-driven pruning
// (Sec III-B) and yields the surviving points with their ML features.
//
// These are convenience wrappers over the staged pipeline in
// core/pipeline.hpp: a ProfilePointSource feeding a chain of structural
// PruningPass objects. enumerate_points() is the default chain
// [semantic, context]; the chain is runtime-configurable through
// enumerate_with_passes().

#include <span>
#include <string>
#include <vector>

#include "core/points.hpp"
#include "profile/profiler.hpp"
#include "trace/similarity.hpp"

namespace fastfit::core {

struct Enumeration {
  PruningStats stats;
  std::vector<trace::EquivalenceClass> classes;
  std::vector<InjectionPoint> points;  ///< the post-pruning points
};

/// Enumerates injection points from the profiling run. For every process
/// equivalence class, its lowest-rank representative is kept; for every
/// (rank, site), one invocation per distinct call stack is kept; every
/// surviving invocation contributes one point per injectable parameter of
/// the collective kind.
Enumeration enumerate_points(const profile::Profiler& profiler);

/// Variant without the context (call-stack) pruning step: every invocation
/// of every representative rank contributes points. Used to build dense
/// training datasets for the ML accuracy evaluation (paper Sec V-D) and to
/// study the context-pruning premise itself (Fig 3).
Enumeration enumerate_points_semantic_only(const profile::Profiler& profiler);

/// Enumerates through an explicit structural pass chain (pass names as
/// understood by make_pruning_pass). Throws ConfigError for passes that
/// need a measurer ("ml") — those resolve points by running trials and
/// belong to the study driver, not to enumeration.
Enumeration enumerate_with_passes(const profile::Profiler& profiler,
                                  std::span<const std::string> pass_names);

}  // namespace fastfit::core

#pragma once

// Campaign execution: golden run, per-trial fault injection, and the
// per-point statistics the evaluation section reports.
//
// The campaign engine is crash-resilient in three coordinated layers:
//  (1) a durable trial journal (core/journal.hpp) that measure() /
//      measure_many() write through and resume from,
//  (2) a retrying trial guard that contains internal (non-fault)
//      exceptions: a trial that keeps failing quarantines its point
//      instead of tearing down the campaign, and
//  (3) watchdog escalation: INF_LOOP outcomes are re-confirmed
//      uncontended with an escalated budget, and a watchdog "storm"
//      (most of a batch timing out — an overloaded machine, not a
//      thousand genuine hangs) triggers golden-wall recalibration and
//      degrades trial parallelism toward serial.

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "core/enumerate.hpp"
#include "core/journal.hpp"
#include "core/points.hpp"
#include "core/procpool.hpp"
#include "core/scheduler.hpp"
#include "core/shard.hpp"
#include "core/snapshot_cache.hpp"
#include "inject/fault_spec.hpp"
#include "inject/outcome.hpp"
#include "profile/profiler.hpp"

namespace fastfit::core {

struct CampaignOptions {
  int nranks = 16;
  std::uint64_t seed = 0x5eedfa57f17ULL;
  /// Fault injection tests per injection point (Table II: NUM_INJ). The
  /// paper uses 100; smaller values trade statistical resolution for
  /// wall-clock time.
  std::uint32_t trials_per_point = 30;
  /// Watchdog for injected runs; if unset, calibrated from the golden run
  /// (a multiple of the fault-free wall time).
  std::optional<std::chrono::milliseconds> watchdog;
  /// Fault models (manifestation x trigger) the campaign injects
  /// (--fault-models, FASTFIT_FAULT_MODELS). profile() crosses the
  /// enumerated points with every spec; the default single entry — the
  /// paper's exact-point single bit flip — reproduces the pre-v2 point
  /// set and outcomes byte for byte. Must be non-empty and
  /// duplicate-free (parse_fault_models enforces both).
  std::vector<inject::FaultModelSpec> fault_models = {
      inject::FaultModelSpec{}};
  /// ULFM-style shrink-and-continue repair (--repair, FASTFIT_REPAIR):
  /// injected worlds run with WorldOptions::repair set, so a fail-stop
  /// rank death revokes the communicator instead of poisoning the world
  /// and repair-capable workloads resume on the survivors (outcome
  /// REPAIRED instead of RANK_DEAD).
  bool repair = false;
  /// True when this configuration opted into the extended fault-model
  /// library (any non-default spec, or repair mode) and serialized
  /// surfaces must carry the RANK_DEAD / REPAIRED outcome columns. The
  /// default configuration keeps the paper's six-way taxonomy so its
  /// output is byte-identical to pre-v2 builds.
  bool extended_outcomes() const noexcept {
    return repair || fault_models.size() != 1 ||
           !fault_models.front().is_default();
  }
  /// Collective algorithm selection for every run of this campaign.
  mpi::CollectiveAlgorithms algorithms;
  /// MiniMPI world engine (--world-engine, FASTFIT_WORLD_ENGINE) for
  /// every world this campaign runs — golden, profiling, recording, and
  /// injected trials alike. `Fibers` (default) multiplexes resumable
  /// rank fibers on the trial's own thread; `Threads` is the pre-fiber
  /// thread-per-rank substrate. Reports, journals, and counters are
  /// byte-identical across engines (the parity suite enforces it); only
  /// wall-clock cost and OS thread counts change.
  mpi::WorldEngine engine = mpi::WorldEngine::Fibers;
  /// Upper bound on concurrently executing trials in measure_many. 0 means
  /// "auto": hardware_concurrency() / nranks (min 1), since every trial
  /// already runs nranks rank threads and the outer pool must not
  /// oversubscribe the machine. 1 forces the serial path. Results are
  /// identical at every setting; only wall-clock time changes.
  std::size_t max_parallel_trials = 0;
  /// Trial guard: how many times an internal (non-fault) trial failure is
  /// retried with exponential backoff before the point is quarantined.
  /// (FASTFIT_MAX_TRIAL_RETRIES; 0 disables retries.)
  std::uint32_t max_trial_retries = 2;
  /// Watchdog multiplier for the uncontended INF_LOOP re-confirmation run
  /// and for the golden recalibration budget. Must be >= 1.
  /// (FASTFIT_WATCHDOG_ESCALATION.)
  std::uint32_t watchdog_escalation = 4;
  /// If more than this fraction of a measure_many batch's freshly-run
  /// trials hit the watchdog, the machine is assumed overloaded: the
  /// campaign re-measures the golden wall time, recalibrates the
  /// watchdog, and halves trial parallelism instead of mass-classifying
  /// INF_LOOP. Must be in (0, 1]. Only *non-deterministic* timeouts count
  /// toward the storm: proven deadlocks are load-independent.
  double watchdog_storm_fraction = 0.5;
  /// Deterministic hang detection (FASTFIT_HANG_DETECTION): run the
  /// MiniMPI progress monitor in every injected world, so structural
  /// deadlocks classify INF_LOOP in milliseconds and skip the escalated
  /// re-confirmation. Off = watchdog/escalation path for every hang.
  bool deterministic_hang_detection = true;
  /// Leak-proof teardown budget (FASTFIT_MAX_LEAKED_THREADS): a rank
  /// thread that survives the escalated world teardown is quarantined
  /// (with keepalives, so it can never dangle) and reaped once it exits —
  /// e.g. an injected compute loop that only notices poison at its next
  /// MPI call. If, after the end-of-measure reap, more than this many
  /// threads are *still running* in quarantine, measure() fails with
  /// InternalError instead of letting wedged threads accumulate.
  std::size_t max_leaked_threads = 8;
  /// Structural pruning chain applied at profile() time, in order
  /// (FASTFIT_PASSES). Names as understood by make_pruning_pass; passes
  /// that need a measurer ("ml") are rejected here — the ML stage runs
  /// points and belongs to the study driver.
  std::vector<std::string> pruning_passes = {"semantic", "context"};
  /// Which deterministic shard of the post-pruning point set this
  /// campaign executes (FASTFIT_SHARD, "--shard i/N"). The campaign
  /// itself only pins the shard into the journal header; the study
  /// driver does the actual partitioning.
  ShardSpec shard;
  /// Prefix-replay world snapshots (--snapshots, FASTFIT_SNAPSHOTS):
  /// trials clone a recorded fault-free prefix and execute only the
  /// post-injection suffix. Results are bit-identical at every setting;
  /// `auto` additionally falls back campaign-wide on the first replay
  /// divergence, `on` keeps replaying point by point, `off` is the
  /// from-scratch path.
  SnapshotMode snapshots = SnapshotMode::Auto;
  /// LRU budget for the snapshot cache in MiB (--snapshot-cache-mb,
  /// FASTFIT_SNAPSHOT_CACHE_MB): bounds the recording payload plus all
  /// derived per-cut snapshots. Must be >= 1.
  std::uint64_t snapshot_cache_mb = 256;
  /// Durable home for the prefix-replay recording (--snapshot-recording,
  /// FASTFIT_SNAPSHOT_RECORDING). When set, build_recording() reloads a
  /// matching recording from this file instead of re-running the
  /// fault-free world, and persists a freshly built one for the next
  /// process — the resume path and every `--shard i/N` worker of one
  /// study can share a single file. Empty = derive `<journal>.recording`
  /// once a journal is attached; no journal and no path = in-memory only.
  std::string recording_path;
  /// Trial execution backend (--isolation, FASTFIT_ISOLATION). `Thread`
  /// (default) runs trials in-process on rank threads — pre-existing
  /// behaviour bit for bit. `Process` dispatches each trial to a fresh
  /// child of a per-lane fork-server (core/procpool.hpp): worker death
  /// by a real signal classifies SEG_FAULT instead of killing the
  /// campaign; results for non-signal fault models stay byte-identical
  /// to the thread backend.
  IsolationMode isolation = IsolationMode::Thread;
  /// Per-trial lease for process-isolated workers: past this deadline
  /// the whole lane process group is SIGKILLed and the trial re-enters
  /// the retry-with-quarantine guard. Unset = a generous backstop
  /// derived from the watchdog (the in-world watchdog is the real
  /// timeout; the lease only catches a wedged worker process).
  std::optional<std::chrono::milliseconds> worker_lease;
};

/// Aggregate campaign health: what the resilience machinery had to do.
/// All zeros on a healthy machine.
struct CampaignHealth {
  std::uint64_t total_retries = 0;           ///< guarded-trial retries
  std::uint64_t quarantined_points = 0;      ///< points given up on
  std::uint64_t watchdog_confirmations = 0;  ///< escalated INF_LOOP re-runs
  std::uint64_t watchdog_recalibrations = 0; ///< storm-triggered recalibrations
  std::uint64_t replayed_trials = 0;         ///< trials served from the journal
  std::uint64_t deterministic_deadlocks = 0; ///< monitor-proven INF_LOOPs
  std::uint64_t quarantined_rank_threads = 0; ///< threads ever quarantined
  std::uint64_t leaked_rank_threads = 0;     ///< quarantined threads still running
  std::uint64_t worker_deaths = 0;           ///< workers killed by a real signal
  std::uint64_t worker_lease_kills = 0;      ///< workers SIGKILLed past the lease
  std::uint64_t isolation_fallbacks = 0;     ///< trials run in-process post-degradation

  /// True when no point was quarantined and no rank thread is still
  /// leaked (retries, confirmations, and deterministic verdicts are
  /// routine; quarantine and leaks mean lost coverage or held resources).
  /// Worker deaths are *data* (the classified SEG_FAULT outcomes), lease
  /// kills feed the retry ladder whose terminal state is quarantine, and
  /// degradation fallbacks still produce correct results — none of the
  /// worker counters flips a run unclean on its own, so exit codes stay
  /// 0/2/1-consistent with quarantine and leaks alone.
  bool clean() const noexcept {
    return quarantined_points == 0 && leaked_rank_threads == 0;
  }
};

/// Journal attachment mode (see Campaign::attach_journal).
enum class JournalMode {
  Create,  ///< fresh journal; refuses to clobber an existing file
  Resume,  ///< validate + replay an existing journal (create if missing)
};

/// One fault-injection campaign over one workload: owns the profiling
/// phase, the golden digest, and trial execution. The heavy lifting of
/// deciding *which* points to run lives above (the study driver and its
/// pruning passes); the ordering/batching machinery lives below
/// (TrialScheduler). Campaign is the *engine*: it implements TrialRunner
/// (privately — only its own measure calls may schedule on it) and
/// contributes the world execution, golden calibration, and trial guard.
class Campaign : private TrialRunner {
 public:
  Campaign(const apps::Workload& workload, CampaignOptions options);

  /// Phase 1 (paper Fig 5): profiling run + golden digest + watchdog
  /// calibration + point enumeration. Must be called before trials.
  void profile();

  const Enumeration& enumeration() const;
  const PruningStats& stats() const { return enumeration().stats; }
  const profile::Profiler& profiler() const;

  /// Attaches a durable trial journal at `path`. Requires profile():
  /// the journal header pins the campaign identity including the golden
  /// digest, and Resume refuses a journal whose identity differs from
  /// this campaign (changed seed, workload, fault model, algorithms,
  /// nranks, or golden digest). After attaching, measure()/measure_many()
  /// replay journaled trials instead of executing them and append every
  /// fresh outcome, so a killed campaign resumes bit-identically.
  void attach_journal(const std::string& path, JournalMode mode);

  /// Flushes and closes the journal (also done on destruction).
  void detach_journal();

  /// The attached journal, or nullptr.
  TrialJournal* journal() noexcept { return journal_.get(); }
  const TrialJournal* journal() const noexcept { return journal_.get(); }

  /// Runs `trials` injected executions of one point and aggregates the
  /// responses. Deterministic in (campaign seed, point, trial index): the
  /// per-trial RNG identity is derived from the point coordinates and the
  /// trial ordinal (FaultSpec::stream_index), so the result does not
  /// depend on what was measured before — or concurrently. Trials run
  /// serially; internal failures are retried and, on exhaustion, the
  /// point is quarantined (see PointResult::exec) rather than thrown.
  PointResult measure(const InjectionPoint& point, std::uint32_t trials);

  /// Convenience: measure with the configured trials_per_point.
  PointResult measure(const InjectionPoint& point);

  /// Measures a batch of points, running up to max_parallel_trials
  /// (point, trial) jobs concurrently on a TrialExecutor. Returns results
  /// in input order, bit-identical to calling measure() on each point:
  /// per-trial RNG identity is execution-order-free, and any trial that
  /// hits the watchdog is confirmed by an uncontended re-run with an
  /// escalated (watchdog_escalation ×) budget before being classified
  /// INF_LOOP.
  std::vector<PointResult> measure_many(std::span<const InjectionPoint> points,
                                        std::uint32_t trials);

  /// Convenience: batch measure with the configured trials_per_point.
  std::vector<PointResult> measure_many(
      std::span<const InjectionPoint> points);

  /// Resolved trial concurrency (the "auto" default made concrete).
  std::size_t parallel_trials() const noexcept;

  /// Adjusts the trial concurrency of later measure_many calls; results
  /// are unaffected. Throws InternalError if a measure is in flight —
  /// the knob races with the running pool's sizing otherwise.
  void set_max_parallel_trials(std::size_t max_parallel);

  /// True while a measure()/measure_many() call is executing (any thread).
  bool measuring() const noexcept {
    return measuring_.load(std::memory_order_acquire) != 0;
  }

  /// Total injected executions so far (a statistic, not an RNG input).
  std::uint64_t trials_run() const noexcept {
    return trials_run_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the campaign's resilience counters.
  CampaignHealth health() const noexcept;

  /// Statistics of the prefix-replay snapshot subsystem (all zeros when
  /// snapshots are off or never engaged).
  SnapshotCache::Stats snapshot_stats() const;

  std::uint64_t golden_digest() const;
  std::chrono::milliseconds watchdog() const override { return watchdog_; }
  const CampaignOptions& options() const noexcept { return options_; }
  const apps::Workload& workload() const noexcept { return *workload_; }

 private:
  const apps::Workload* workload_;
  CampaignOptions options_;
  bool profiled_ = false;
  std::uint64_t golden_digest_ = 0;
  std::chrono::milliseconds watchdog_{0};
  // shared_ptr: the profiling world holds these as keepalives so even a
  // quarantined rank thread from the profiling run stays memory-safe.
  std::shared_ptr<trace::ContextRegistry> contexts_;
  std::shared_ptr<profile::Profiler> profiler_;
  Enumeration enumeration_;
  std::unique_ptr<TrialJournal> journal_;
  /// Present unless snapshots == Off; owns the recording + cut LRU.
  std::unique_ptr<SnapshotCache> snapshot_cache_;
  /// Effective recording file: options_.recording_path, or derived from
  /// the journal path by attach_journal. Empty = no persistence.
  std::string recording_file_;
  std::atomic<std::uint64_t> trials_run_{0};
  std::atomic<std::uint64_t> total_retries_{0};
  std::atomic<std::uint64_t> quarantined_points_{0};
  std::atomic<std::uint64_t> confirmations_{0};
  std::atomic<std::uint64_t> recalibrations_{0};
  std::atomic<std::uint64_t> replayed_trials_{0};
  std::atomic<std::uint64_t> deterministic_deadlocks_{0};
  std::atomic<std::uint64_t> leaked_threads_total_{0};
  std::atomic<std::uint64_t> leaked_threads_outstanding_{0};
  std::atomic<std::uint64_t> worker_deaths_{0};
  std::atomic<std::uint64_t> worker_lease_kills_{0};
  std::atomic<std::uint64_t> isolation_fallbacks_{0};
  std::atomic<int> measuring_{0};
  /// Live only while a process-isolated measure is in flight; run_guarded
  /// dispatches through it instead of running the trial in-process.
  std::atomic<ProcPool*> active_pool_{nullptr};

  /// One injected execution: fresh Injector + World + ContextRegistry.
  /// Thread-safe after profile(): touches only immutable campaign state.
  /// Performs the post-trial audit: a fully torn-down world that left
  /// memory regions registered is a harness bug and throws InternalError
  /// so the guard retries it. Quarantined threads are *accounted*, not
  /// retried — a re-run of the same deterministic trial would wedge the
  /// same way, and the campaign-level reap gate (max_leaked_threads)
  /// catches threads that never come back. Stray undelivered messages are
  /// a legitimate fault consequence (e.g. a corrupted root re-routes
  /// sends nobody awaits), so only the uninjected golden/profiling runs
  /// assert on them.
  inject::TrialForensics run_trial(const InjectionPoint& point,
                                   std::uint64_t trial,
                                   std::chrono::milliseconds watchdog);

  /// The world execution behind run_trial. With a snapshot, only the
  /// post-injection suffix executes (prefix replayed from the recording);
  /// may throw mpi::ReplayError, which run_trial converts into a
  /// from-scratch fallback.
  inject::TrialForensics execute_trial(
      const InjectionPoint& point, std::uint64_t trial,
      std::chrono::milliseconds watchdog,
      std::shared_ptr<const mpi::WorldSnapshot> snapshot);

  /// One fault-free recording run (digest-checked against golden).
  /// Returns nullptr on any failure — the snapshot subsystem disables
  /// itself instead of costing the trial.
  std::shared_ptr<const mpi::WorldRecording> build_recording();

  /// Key of this campaign's configuration in the process-wide golden
  /// cache.
  std::string golden_key() const;

  /// Routes one trial to the right backend: the live worker pool under
  /// process isolation (worker death → SEG_FAULT forensics, lease
  /// expiry/lane loss → InternalError for the retry guard), or the
  /// in-process run_trial otherwise — including the degraded-pool
  /// fallback, which is refused for signal models (a real signal must
  /// never fire inside the campaign process).
  inject::TrialForensics dispatch_trial(const InjectionPoint& point,
                                        std::uint64_t trial,
                                        std::chrono::milliseconds watchdog);

  /// Pre-derives the snapshot recording + cuts for every replayable point
  /// of the batch, so forked workers inherit them instead of each child
  /// re-paying the recording cost.
  void warm_snapshots(std::span<const InjectionPoint> points);

  /// TrialRunner: supervised execution of one trial — retries internal
  /// (non-fault) failures with exponential backoff up to
  /// max_trial_retries before reporting !ok (quarantine).
  Attempt run_guarded(const InjectionPoint& point, std::uint64_t trial,
                      std::chrono::milliseconds watchdog) override;

  /// TrialRunner: watchdog-storm response — re-measure the golden wall
  /// time, recalibrate the watchdog from it, and halve trial parallelism
  /// for later batches.
  void recalibrate_after_storm(std::size_t pool) override;

  /// Fault-free run: returns (digest, wall time). Used by profile() and
  /// by watchdog-storm recalibration.
  std::pair<std::uint64_t, std::chrono::milliseconds> run_golden(
      std::chrono::milliseconds watchdog_budget);

  /// Shared implementation of measure / measure_many at a given pool size.
  std::vector<PointResult> measure_impl(
      std::span<const InjectionPoint> points, std::uint32_t trials,
      std::size_t pool);
};

}  // namespace fastfit::core

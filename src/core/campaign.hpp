#pragma once

// Campaign execution: golden run, per-trial fault injection, and the
// per-point statistics the evaluation section reports.

#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <span>
#include <vector>

#include "apps/workload.hpp"
#include "core/enumerate.hpp"
#include "core/points.hpp"
#include "inject/fault_spec.hpp"
#include "inject/outcome.hpp"
#include "profile/profiler.hpp"

namespace fastfit::core {

struct CampaignOptions {
  int nranks = 16;
  std::uint64_t seed = 0x5eedfa57f17ULL;
  /// Fault injection tests per injection point (Table II: NUM_INJ). The
  /// paper uses 100; smaller values trade statistical resolution for
  /// wall-clock time.
  std::uint32_t trials_per_point = 30;
  /// Watchdog for injected runs; if unset, calibrated from the golden run
  /// (a multiple of the fault-free wall time).
  std::optional<std::chrono::milliseconds> watchdog;
  /// Fault manifestation; the paper's model is the single bit flip, the
  /// alternatives exist for the fault-model ablation.
  inject::FaultModel fault_model = inject::FaultModel::SingleBitFlip;
  /// Collective algorithm selection for every run of this campaign.
  mpi::CollectiveAlgorithms algorithms;
  /// Upper bound on concurrently executing trials in measure_many. 0 means
  /// "auto": hardware_concurrency() / nranks (min 1), since every trial
  /// already runs nranks rank threads and the outer pool must not
  /// oversubscribe the machine. 1 forces the serial path. Results are
  /// identical at every setting; only wall-clock time changes.
  std::size_t max_parallel_trials = 0;
};

/// Statistics of one injection point over its trials.
struct PointResult {
  InjectionPoint point;
  std::array<std::uint32_t, inject::kNumOutcomes> counts{};
  std::uint32_t trials = 0;

  void record(inject::Outcome outcome) {
    ++counts[static_cast<std::size_t>(outcome)];
    ++trials;
  }
  /// Fraction of trials with any of the five error responses.
  double error_rate() const;
  /// Fraction of trials with a given response.
  double fraction(inject::Outcome outcome) const;
  /// Most frequent response (ties to the lower enum value).
  inject::Outcome dominant() const;
};

/// One fault-injection campaign over one workload: owns the profiling
/// phase, the golden digest, and trial execution. The heavy lifting of
/// deciding *which* points to run lives above (ml_loop / fastfit).
class Campaign {
 public:
  Campaign(const apps::Workload& workload, CampaignOptions options);

  /// Phase 1 (paper Fig 5): profiling run + golden digest + watchdog
  /// calibration + point enumeration. Must be called before trials.
  void profile();

  const Enumeration& enumeration() const;
  const PruningStats& stats() const { return enumeration().stats; }
  const profile::Profiler& profiler() const;

  /// Runs `trials` injected executions of one point and aggregates the
  /// responses. Deterministic in (campaign seed, point, trial index): the
  /// per-trial RNG identity is derived from the point coordinates and the
  /// trial ordinal (FaultSpec::stream_index), so the result does not
  /// depend on what was measured before — or concurrently.
  PointResult measure(const InjectionPoint& point, std::uint32_t trials);

  /// Convenience: measure with the configured trials_per_point.
  PointResult measure(const InjectionPoint& point);

  /// Measures a batch of points, running up to max_parallel_trials
  /// (point, trial) jobs concurrently on a TrialExecutor. Returns results
  /// in input order, bit-identical to calling measure() on each point:
  /// per-trial RNG identity is execution-order-free, and any trial that
  /// hits the watchdog under contention is confirmed by an uncontended
  /// serial re-run before being classified INF_LOOP.
  std::vector<PointResult> measure_many(std::span<const InjectionPoint> points,
                                        std::uint32_t trials);

  /// Convenience: batch measure with the configured trials_per_point.
  std::vector<PointResult> measure_many(
      std::span<const InjectionPoint> points);

  /// Resolved trial concurrency (the "auto" default made concrete).
  std::size_t parallel_trials() const noexcept;

  /// Adjusts the trial concurrency of later measure_many calls; results
  /// are unaffected. Not safe to call while a measure_many is running.
  void set_max_parallel_trials(std::size_t max_parallel) noexcept {
    options_.max_parallel_trials = max_parallel;
  }

  /// Total injected executions so far (a statistic, not an RNG input).
  std::uint64_t trials_run() const noexcept {
    return trials_run_.load(std::memory_order_relaxed);
  }

  std::uint64_t golden_digest() const;
  std::chrono::milliseconds watchdog() const { return watchdog_; }
  const CampaignOptions& options() const noexcept { return options_; }
  const apps::Workload& workload() const noexcept { return *workload_; }

 private:
  const apps::Workload* workload_;
  CampaignOptions options_;
  bool profiled_ = false;
  std::uint64_t golden_digest_ = 0;
  std::chrono::milliseconds watchdog_{0};
  std::unique_ptr<trace::ContextRegistry> contexts_;
  std::unique_ptr<profile::Profiler> profiler_;
  Enumeration enumeration_;
  std::atomic<std::uint64_t> trials_run_{0};

  /// One injected execution: fresh Injector + World + ContextRegistry.
  /// Thread-safe after profile(): touches only immutable campaign state.
  inject::Outcome run_trial(const InjectionPoint& point, std::uint64_t trial);
};

}  // namespace fastfit::core

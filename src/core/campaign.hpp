#pragma once

// Campaign execution: golden run, per-trial fault injection, and the
// per-point statistics the evaluation section reports.

#include <array>
#include <chrono>
#include <optional>
#include <vector>

#include "apps/workload.hpp"
#include "core/enumerate.hpp"
#include "core/points.hpp"
#include "inject/fault_spec.hpp"
#include "inject/outcome.hpp"
#include "profile/profiler.hpp"

namespace fastfit::core {

struct CampaignOptions {
  int nranks = 16;
  std::uint64_t seed = 0x5eedfa57f17ULL;
  /// Fault injection tests per injection point (Table II: NUM_INJ). The
  /// paper uses 100; smaller values trade statistical resolution for
  /// wall-clock time.
  std::uint32_t trials_per_point = 30;
  /// Watchdog for injected runs; if unset, calibrated from the golden run
  /// (a multiple of the fault-free wall time).
  std::optional<std::chrono::milliseconds> watchdog;
  /// Fault manifestation; the paper's model is the single bit flip, the
  /// alternatives exist for the fault-model ablation.
  inject::FaultModel fault_model = inject::FaultModel::SingleBitFlip;
  /// Collective algorithm selection for every run of this campaign.
  mpi::CollectiveAlgorithms algorithms;
};

/// Statistics of one injection point over its trials.
struct PointResult {
  InjectionPoint point;
  std::array<std::uint32_t, inject::kNumOutcomes> counts{};
  std::uint32_t trials = 0;

  void record(inject::Outcome outcome) {
    ++counts[static_cast<std::size_t>(outcome)];
    ++trials;
  }
  /// Fraction of trials with any of the five error responses.
  double error_rate() const;
  /// Fraction of trials with a given response.
  double fraction(inject::Outcome outcome) const;
  /// Most frequent response (ties to the lower enum value).
  inject::Outcome dominant() const;
};

/// One fault-injection campaign over one workload: owns the profiling
/// phase, the golden digest, and trial execution. The heavy lifting of
/// deciding *which* points to run lives above (ml_loop / fastfit).
class Campaign {
 public:
  Campaign(const apps::Workload& workload, CampaignOptions options);

  /// Phase 1 (paper Fig 5): profiling run + golden digest + watchdog
  /// calibration + point enumeration. Must be called before trials.
  void profile();

  const Enumeration& enumeration() const;
  const PruningStats& stats() const { return enumeration().stats; }
  const profile::Profiler& profiler() const;

  /// Runs `trials` injected executions of one point and aggregates the
  /// responses. Deterministic in (campaign seed, point, trial index).
  PointResult measure(const InjectionPoint& point, std::uint32_t trials);

  /// Convenience: measure with the configured trials_per_point.
  PointResult measure(const InjectionPoint& point);

  /// Total injected executions so far.
  std::uint64_t trials_run() const noexcept { return trials_run_; }

  std::uint64_t golden_digest() const;
  std::chrono::milliseconds watchdog() const { return watchdog_; }
  const CampaignOptions& options() const noexcept { return options_; }
  const apps::Workload& workload() const noexcept { return *workload_; }

 private:
  const apps::Workload* workload_;
  CampaignOptions options_;
  bool profiled_ = false;
  std::uint64_t golden_digest_ = 0;
  std::chrono::milliseconds watchdog_{0};
  std::unique_ptr<trace::ContextRegistry> contexts_;
  std::unique_ptr<profile::Profiler> profiler_;
  Enumeration enumeration_;
  std::uint64_t trials_run_ = 0;
  std::uint64_t trial_counter_ = 0;
};

}  // namespace fastfit::core

#include "core/points.hpp"

#include "support/error.hpp"

namespace fastfit::core {

ml::FeatureVec InjectionPoint::features() const {
  ml::FeatureVec x{};
  x[static_cast<std::size_t>(ml::Feature::Type)] =
      static_cast<double>(static_cast<int>(kind));
  x[static_cast<std::size_t>(ml::Feature::Phase)] =
      static_cast<double>(static_cast<int>(phase));
  x[static_cast<std::size_t>(ml::Feature::ErrHal)] = errhal ? 1.0 : 0.0;
  x[static_cast<std::size_t>(ml::Feature::NInv)] =
      static_cast<double>(n_inv);
  x[static_cast<std::size_t>(ml::Feature::StackDep)] = stack_depth;
  x[static_cast<std::size_t>(ml::Feature::NDiffStack)] =
      static_cast<double>(n_diff_stack);
  return x;
}

double PruningStats::semantic_reduction() const {
  if (total_points == 0) return 0.0;
  return 1.0 - static_cast<double>(after_semantic) /
                   static_cast<double>(total_points);
}

double PruningStats::context_reduction() const {
  if (after_semantic == 0) return 0.0;
  return 1.0 - static_cast<double>(after_context) /
                   static_cast<double>(after_semantic);
}

double PruningStats::structural_reduction() const {
  if (total_points == 0) return 0.0;
  return 1.0 - static_cast<double>(after_context) /
                   static_cast<double>(total_points);
}

double PointResult::error_rate() const {
  if (trials == 0) return 0.0;
  const auto successes =
      counts[static_cast<std::size_t>(inject::Outcome::Success)];
  return 1.0 - static_cast<double>(successes) / static_cast<double>(trials);
}

double PointResult::fraction(inject::Outcome outcome) const {
  if (trials == 0) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(outcome)]) /
         static_cast<double>(trials);
}

inject::Outcome PointResult::dominant() const {
  std::size_t best = 0;
  for (std::size_t o = 1; o < inject::kNumOutcomes; ++o) {
    if (counts[o] > counts[best]) best = o;
  }
  return static_cast<inject::Outcome>(best);
}

}  // namespace fastfit::core

// Alternative collective algorithms (selected via
// WorldOptions::algorithms): chain-pipeline MPI_Bcast and
// reduce-then-bcast MPI_Allreduce. Functionally equivalent to the
// defaults in fault-free runs; their *fault* behaviour differs — a
// divergent root stalls a chain at the break point, and the composed
// allreduce funnels every corruption through rank 0 — which is what the
// algorithm ablation measures.

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

using detail::combine_payload;
using detail::require_fits;

void Mpi::run_bcast_chain(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const int relative = (me - call.root + n) % n;

  if (relative != 0) {
    const int prev = (me - 1 + n) % n;
    auto payload = recv_internal(call.comm, prev, coll_tag(call.comm, seq, 0));
    require_fits(payload.size(), bytes, "bcast(chain)");
    store(call.recvbuf, payload, "bcast receive buffer");
  }
  if (relative + 1 < n) {
    const int next = (me + 1) % n;
    send_internal(call.comm, next, coll_tag(call.comm, seq, 0),
                  pack(call.sendbuf, bytes, "bcast buffer"));
  }
}

void Mpi::run_allreduce_reduce_bcast(const CollectiveCall& call,
                                     std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);

  // Binomial reduce to rank 0 (phase 0)...
  auto accum = pack(call.sendbuf, bytes, "allreduce send buffer");
  int mask = 1;
  while (mask < n) {
    if ((me & mask) == 0) {
      const int src = me | mask;
      if (src < n) {
        auto payload =
            recv_internal(call.comm, src, coll_tag(call.comm, seq, 0));
        combine_payload(call.op, call.datatype, payload, accum);
      }
    } else {
      send_internal(call.comm, me & ~mask, coll_tag(call.comm, seq, 0),
                    std::move(accum));
      accum.clear();
      break;
    }
    mask <<= 1;
  }

  // ...then binomial bcast of the result from rank 0 (phase 1).
  if (me != 0) {
    int bit = 1;
    while (bit < n) {
      if (me & bit) {
        accum = recv_internal(call.comm, me - bit,
                              coll_tag(call.comm, seq, 1));
        require_fits(accum.size(), bytes, "allreduce(reduce+bcast)");
        break;
      }
      bit <<= 1;
    }
    bit >>= 1;
    while (bit > 0) {
      if (me + bit < n) {
        send_internal(call.comm, me + bit, coll_tag(call.comm, seq, 1),
                      accum);
      }
      bit >>= 1;
    }
  } else {
    int bit = 1;
    while (bit < n) bit <<= 1;
    bit >>= 1;
    while (bit > 0) {
      if (bit < n) {
        send_internal(call.comm, bit, coll_tag(call.comm, seq, 1), accum);
      }
      bit >>= 1;
    }
  }
  store(call.recvbuf, accum, "allreduce receive buffer");
}

}  // namespace fastfit::mpi

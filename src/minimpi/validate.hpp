#pragma once

// Parameter validation for collective calls, mirroring the checks a
// production MPI performs on entry. This is the layer that turns most
// corrupted handles and counts into MPI_ERR responses (paper Table I),
// while deliberately *not* catching what real MPIs cannot catch — a
// plausible-but-wrong root, a different valid op, an oversized count whose
// buffer access only faults later.

#include "minimpi/hooks.hpp"
#include "minimpi/world.hpp"

namespace fastfit::mpi {

/// Validates `call` as the given world rank would on entry. Throws
/// MpiError on the first violation. Significance rules follow MPI: e.g.
/// gather's recvcount/recvtype are validated only at the root, so a flip
/// in a parameter this rank never reads is (correctly) harmless.
void validate_collective(const CollectiveCall& call, WorldState& world,
                         int world_rank);

}  // namespace fastfit::mpi

#include "minimpi/progress.hpp"

#include <set>
#include <sstream>

#include "support/error.hpp"

namespace fastfit::mpi {

const char* to_string(RankPhase phase) noexcept {
  switch (phase) {
    case RankPhase::Computing: return "computing";
    case RankPhase::Blocked: return "blocked";
    case RankPhase::Exited: return "exited";
    case RankPhase::Dead: return "dead";
  }
  return "unknown";
}

std::string PendingSig::describe() const {
  std::ostringstream out;
  out << (op[0] != '\0' ? op : "transport") << "(comm=0x" << std::hex << comm
      << std::dec << ", seq=" << seq;
  if (root >= 0) out << ", root=" << root;
  out << ')';
  if (wait_source_world >= 0) {
    out << " awaiting world rank " << wait_source_world << " (tag 0x"
        << std::hex << wait_tag << std::dec << ')';
  }
  if (!frame.empty()) out << " in " << frame;
  return out.str();
}

ProgressTable::ProgressTable(int nranks) {
  slots_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) slots_.push_back(std::make_unique<Slot>());
}

void ProgressTable::bump(int rank) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
}

void ProgressTable::publish_op(int rank, const PendingSig& sig) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
  slot.phase = RankPhase::Computing;
  slot.has_op = true;
  slot.sig = sig;
}

void ProgressTable::publish_wait(int rank, int wait_source,
                                 int wait_source_world,
                                 std::uint64_t wait_tag) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
  slot.phase = RankPhase::Blocked;
  slot.has_op = true;
  slot.sig.wait_source = wait_source;
  slot.sig.wait_source_world = wait_source_world;
  slot.sig.wait_tag = wait_tag;
}

void ProgressTable::publish_resume(int rank) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
  slot.phase = RankPhase::Computing;
}

void ProgressTable::publish_exited(int rank) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
  if (slot.phase != RankPhase::Dead) slot.phase = RankPhase::Exited;
}

void ProgressTable::publish_dead(int rank) {
  auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  ++slot.heartbeat;
  slot.phase = RankPhase::Dead;
}

RankSnapshot ProgressTable::snapshot(int rank) const {
  const auto& slot = *slots_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(slot.mutex);
  RankSnapshot snap;
  snap.phase = slot.phase;
  snap.heartbeat = slot.heartbeat;
  snap.has_op = slot.has_op;
  snap.sig = slot.sig;
  return snap;
}

std::vector<RankSnapshot> ProgressTable::snapshot_all() const {
  std::vector<RankSnapshot> snaps;
  snaps.reserve(slots_.size());
  for (int r = 0; r < size(); ++r) snaps.push_back(snapshot(r));
  return snaps;
}

WorldAutopsy build_autopsy(const ProgressTable& table, bool deterministic,
                           std::string verdict) {
  WorldAutopsy autopsy;
  autopsy.deterministic = deterministic;
  autopsy.verdict = std::move(verdict);
  autopsy.ranks.reserve(static_cast<std::size_t>(table.size()));
  for (int r = 0; r < table.size(); ++r) {
    const auto snap = table.snapshot(r);
    RankAutopsy entry;
    entry.rank = r;
    entry.phase = snap.phase;
    entry.heartbeat = snap.heartbeat;
    entry.has_op = snap.has_op;
    entry.sig = snap.sig;
    autopsy.ranks.push_back(std::move(entry));
  }
  return autopsy;
}

std::string WorldAutopsy::summary() const {
  std::ostringstream out;
  out << (deterministic ? "deterministic deadlock" : "autopsy") << ": "
      << verdict;
  int blocked = 0;
  int exited = 0;
  int dead = 0;
  for (const auto& r : ranks) {
    if (r.phase == RankPhase::Blocked) ++blocked;
    if (r.phase == RankPhase::Exited) ++exited;
    if (r.phase == RankPhase::Dead) ++dead;
  }
  out << " [" << blocked << " blocked, " << exited << " exited, ";
  if (dead > 0) out << dead << " dead, ";
  out << (ranks.size() - static_cast<std::size_t>(blocked) -
          static_cast<std::size_t>(exited) - static_cast<std::size_t>(dead))
      << " computing of " << ranks.size() << " ranks]";
  return out.str();
}

std::string WorldAutopsy::render() const {
  std::ostringstream out;
  out << summary() << '\n';
  for (const auto& r : ranks) {
    out << "  rank " << r.rank << ": " << to_string(r.phase) << " (heartbeat "
        << r.heartbeat << ')';
    if (r.has_op) out << ' ' << r.sig.describe();
    out << '\n';
  }
  return out.str();
}

std::string analyze_deadlock(const std::vector<RankSnapshot>& snaps) {
  // Collect the blocked ranks' signatures; the analysis compares them for
  // the classic divergence patterns a corrupted collective parameter
  // produces. Ties are reported most-specific-first.
  std::vector<int> blocked;
  for (int r = 0; r < static_cast<int>(snaps.size()); ++r) {
    if (snaps[static_cast<std::size_t>(r)].phase == RankPhase::Blocked) {
      blocked.push_back(r);
    }
  }
  if (blocked.empty()) return "no blocked ranks (analysis bug)";

  std::set<std::string> ops;
  std::set<std::uint64_t> comms;
  std::set<std::uint32_t> seqs;
  std::set<int> roots;
  std::vector<int> awaiting_exited;
  std::vector<int> awaiting_dead;
  for (int r : blocked) {
    const auto& s = snaps[static_cast<std::size_t>(r)];
    if (!s.has_op) continue;
    ops.insert(s.sig.op);
    comms.insert(s.sig.comm);
    seqs.insert(s.sig.seq);
    if (s.sig.root >= 0) roots.insert(s.sig.root);
    const int peer = s.sig.wait_source_world;
    if (peer >= 0 && peer < static_cast<int>(snaps.size())) {
      const auto peer_phase = snaps[static_cast<std::size_t>(peer)].phase;
      if (peer_phase == RankPhase::Exited) awaiting_exited.push_back(r);
      if (peer_phase == RankPhase::Dead) awaiting_dead.push_back(r);
    }
  }

  std::ostringstream out;
  if (!awaiting_dead.empty()) {
    out << "rank";
    if (awaiting_dead.size() > 1) out << 's';
    for (std::size_t i = 0; i < awaiting_dead.size(); ++i) {
      out << (i ? "," : "") << ' ' << awaiting_dead[i];
    }
    out << " blocked on dead peer";
    if (awaiting_dead.size() > 1) out << 's';
    return out.str();
  }
  if (!awaiting_exited.empty()) {
    out << "rank";
    if (awaiting_exited.size() > 1) out << 's';
    for (std::size_t i = 0; i < awaiting_exited.size(); ++i) {
      out << (i ? "," : "") << ' ' << awaiting_exited[i];
    }
    out << " blocked on already-exited peer";
    if (awaiting_exited.size() > 1) out << 's';
    return out.str();
  }
  if (comms.size() > 1) {
    out << "divergent communicators across blocked ranks (" << comms.size()
        << " distinct)";
    return out.str();
  }
  if (seqs.size() > 1) {
    out << "mismatched collective sequence numbers (seq "
        << *seqs.begin() << ".." << *seqs.rbegin() << ')';
    return out.str();
  }
  if (roots.size() > 1) {
    out << "divergent roots (";
    bool first = true;
    for (int root : roots) {
      out << (first ? "" : ", ") << root;
      first = false;
    }
    out << ')';
    if (ops.size() == 1) out << " in " << *ops.begin();
    return out.str();
  }
  if (ops.size() > 1) {
    out << "mismatched operations (";
    bool first = true;
    for (const auto& op : ops) {
      out << (first ? "" : " vs ") << op;
      first = false;
    }
    out << ')';
    return out.str();
  }
  out << "unmatched rendezvous";
  if (ops.size() == 1) out << " in " << *ops.begin();
  out << " (no awaited message can ever arrive)";
  return out.str();
}

}  // namespace fastfit::mpi

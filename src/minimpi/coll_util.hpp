#pragma once

// Internal helpers shared by the collective algorithm translation units.
// Not part of the public MiniMPI API.

#include <cstddef>
#include <span>
#include <vector>

#include "minimpi/datatype.hpp"
#include "minimpi/op.hpp"
#include "support/error.hpp"

namespace fastfit::mpi::detail {

inline std::byte* byte_ptr(void* p) noexcept { return static_cast<std::byte*>(p); }
inline const std::byte* byte_ptr(const void* p) noexcept {
  return static_cast<const std::byte*>(p);
}

/// Raises the truncation error a production MPI reports when an incoming
/// message exceeds the posted receive size.
inline void require_fits(std::size_t payload_bytes, std::size_t posted_bytes,
                         const char* what) {
  if (payload_bytes > posted_bytes) {
    throw MpiError(MpiErrc::Truncate,
                   std::string(what) + ": message of " +
                       std::to_string(payload_bytes) + " bytes for a " +
                       std::to_string(posted_bytes) + "-byte receive");
  }
}

/// accum = accum OP payload over as many whole elements as both sides
/// hold. A payload longer than the accumulator is a truncation error; a
/// shorter one (peer with a corrupted smaller count) contributes partially
/// — the silent data-shear a real reduction tree exhibits.
inline void combine_payload(Op op, Datatype dtype,
                            std::span<const std::byte> payload,
                            std::vector<std::byte>& accum) {
  require_fits(payload.size(), accum.size(), "reduction");
  const std::size_t esize = datatype_size(dtype);
  const std::size_t elems = payload.size() / esize;
  if (elems == 0) return;
  apply(op, dtype, payload.first(elems * esize),
        std::span<std::byte>(accum.data(), elems * esize), elems);
}

/// Largest power of two not exceeding n (n >= 1).
inline int floor_pow2(int n) noexcept {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace fastfit::mpi::detail

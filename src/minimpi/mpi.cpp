#include "minimpi/mpi.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "minimpi/validate.hpp"
#include "support/rng.hpp"

namespace fastfit::mpi {
namespace {

// Transport tag layout (64 bits):
//   [63]     space: 0 = collective phase traffic, 1 = user point-to-point
//   [62:43]  communicator index (20 bits)
//   [42:11]  collective sequence number (32 bits)   } collective space
//   [10:3]   algorithm phase (8 bits)               }
//   [31:0]   user tag                               } p2p space
constexpr std::uint64_t kP2pSpace = 1ULL << 63;

std::uint64_t p2p_tag(Comm comm, std::int32_t user_tag) {
  return kP2pSpace |
         (static_cast<std::uint64_t>(handle_index(raw(comm))) << 43) |
         static_cast<std::uint32_t>(user_tag);
}

std::uint32_t site_hash(const std::source_location& loc,
                        CollectiveKind kind) {
  std::ostringstream key;
  key << loc.file_name() << ':' << loc.line() << ':'
      << static_cast<int>(kind);
  return static_cast<std::uint32_t>(fnv1a(key.str()));
}

// Restores a rank's progress phase to Computing when a mailbox wait ends,
// however it ends (matched, timed out, aborted, truncated).
class WaitScope {
 public:
  WaitScope(ProgressTable& table, int rank) : table_(&table), rank_(rank) {}
  ~WaitScope() { table_->publish_resume(rank_); }
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  ProgressTable* table_;
  int rank_;
};

}  // namespace

Mpi::Mpi(std::shared_ptr<WorldState> state, int world_rank)
    : world_(std::move(state)), world_rank_(world_rank) {
  const WorldOptions& options = world_->options();
  recorder_ = options.recorder.get();
  if (options.replay) {
    replay_ops_ =
        &options.replay->recording->ops[static_cast<std::size_t>(world_rank_)];
    replay_cut_ = options.replay->cut[static_cast<std::size_t>(world_rank_)];
  }
}

Mpi::~Mpi() { flush_held(); }

void Mpi::check_doom() const {
  if (world_->rank_doomed(world_rank_)) {
    throw RankKilled(world_rank_, "rank " + std::to_string(world_rank_) +
                                      ": fail-stop fault (rank death)");
  }
}

void Mpi::flush_held() {
  if (held_.empty()) return;
  auto held = std::move(held_);
  held_.clear();
  for (auto& [dest_world, message] : held) {
    // Same bump-before-deliver discipline as a live send: the late
    // delivery must invalidate any deadlock snapshot it races with.
    world_->progress().bump(world_rank_);
    world_->mailbox(dest_world).deliver(std::move(message));
  }
}

Comm Mpi::shrink_and_continue() {
  if (!world_->options().repair) {
    throw InternalError("shrink_and_continue: repair mode is off");
  }
  check_doom();
  const auto alive = world_->alive_members();
  if (std::find(alive.begin(), alive.end(), world_rank_) == alive.end()) {
    throw RankKilled(world_rank_, "rank " + std::to_string(world_rank_) +
                                      ": dead rank cannot repair");
  }
  // Keyed by how many ranks died so far: every survivor of the same
  // failure derives the same key and member list, with no rendezvous.
  const auto ndead = world_->size() - static_cast<int>(alive.size());
  return world_->register_comm("shrink:" + std::to_string(ndead), alive);
}

void Mpi::mark_repaired() { world_->mark_repaired(); }

// --- snapshot replay --------------------------------------------------------

void Mpi::replay_poison_check() const {
  if (world_->poison().flag.load(std::memory_order_acquire)) {
    throw WorldAborted("rank " + std::to_string(world_rank_) +
                       ": prefix replay interrupted by world teardown");
  }
}

const RecordedOp& Mpi::replay_expect(RecordedOp::Kind kind,
                                     std::uint32_t site_id,
                                     std::uint64_t invocation,
                                     const char* what) {
  const RecordedOp& op = (*replay_ops_)[replay_next_];
  if (op.kind != kind || op.site_id != site_id ||
      op.invocation != invocation) {
    std::ostringstream msg;
    msg << "rank " << world_rank_ << " op " << replay_next_ << ": live "
        << what << " site=" << site_id << " inv=" << invocation
        << " does not match recorded kind=" << static_cast<int>(op.kind)
        << " site=" << op.site_id << " inv=" << op.invocation << " (line "
        << op.site_line << ")";
    throw ReplayError(msg.str());
  }
  return op;
}

void Mpi::replay_collective(CollectiveCall& call) {
  replay_poison_check();
  const RecordedOp& op = replay_expect(RecordedOp::Kind::Collective,
                                       call.site_id, call.invocation,
                                       to_string(call.kind));
  if (op.coll != call.kind || op.comm != raw(call.comm) ||
      op.self_comm != call.rank) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": collective shape diverged from the recording at " +
                      std::string(to_string(call.kind)));
  }
  // The sequence counter advances exactly as live execution would, so the
  // op at the cut produces bit-identical transport tags.
  coll_seq_[raw(call.comm)]++;
  const int comm_size = static_cast<int>(world_->group_of(call.comm).size());
  const auto spans = collect_write_spans(call, comm_size);
  if (spans.size() != op.writes.size()) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": write-span shape diverged from the recording");
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& chunk = op.writes[i];
    if (!chunk || chunk->size() != spans[i].bytes) {
      throw ReplayError("rank " + std::to_string(world_rank_) +
                        ": write-span size diverged from the recording");
    }
    try {
      store(spans[i].ptr, *chunk, "collective output (replay)");
    } catch (const FaultEvent& event) {
      // A bounds failure here means the replayed application allocated
      // differently than the recording run — a divergence, not a trial
      // outcome.
      throw ReplayError(std::string("store failed during replay: ") +
                        event.what());
    }
  }
  ++replay_next_;
}

void Mpi::replay_send(const P2pCall& call) {
  replay_poison_check();
  const RecordedOp& op =
      replay_expect(RecordedOp::Kind::Send, call.site_id, call.invocation,
                    "send");
  if (op.self_comm != call.rank || op.peer != call.peer ||
      op.transport_tag != p2p_tag(call.comm, call.tag)) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": send envelope diverged from the recording");
  }
  // The message itself is dropped: its receipt (prefix) was recorded, or
  // it is pre-seeded into the destination mailbox (in flight across the
  // cut). Verify the payload so silent divergence cannot propagate.
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const auto& chunk = op.writes.empty() ? nullptr : op.writes.front();
  if (!chunk || chunk->size() != bytes) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": send payload size diverged from the recording");
  }
  try {
    registry().check(call.buffer, bytes, "send (replay)");
  } catch (const FaultEvent& event) {
    throw ReplayError(std::string("pack failed during replay: ") +
                      event.what());
  }
  if (bytes > 0 &&
      std::memcmp(call.buffer, chunk->data(), bytes) != 0) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": send payload bytes diverged from the recording");
  }
  ++replay_next_;
}

void Mpi::replay_recv(const P2pCall& call) {
  replay_poison_check();
  const RecordedOp& op =
      replay_expect(RecordedOp::Kind::Recv, call.site_id, call.invocation,
                    "recv");
  if (op.self_comm != call.rank || op.peer != call.peer ||
      op.transport_tag != p2p_tag(call.comm, call.tag)) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": recv envelope diverged from the recording");
  }
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const auto& chunk = op.writes.empty() ? nullptr : op.writes.front();
  if (!chunk || chunk->size() > bytes) {
    throw ReplayError("rank " + std::to_string(world_rank_) +
                      ": recv payload size diverged from the recording");
  }
  try {
    store(call.buffer, *chunk, "recv (replay)");
  } catch (const FaultEvent& event) {
    throw ReplayError(std::string("store failed during replay: ") +
                      event.what());
  }
  ++replay_next_;
}

int Mpi::rank(Comm comm) const {
  const int r = world_->comm_rank_of(comm, world_rank_);
  if (r < 0) {
    throw MpiError(MpiErrc::InvalidComm, "caller is not in the communicator");
  }
  return r;
}

int Mpi::size(Comm comm) const {
  return static_cast<int>(world_->group_of(comm).size());
}

void Mpi::check_deadline() {
  // The heartbeat tells the hang monitor this rank is alive in a compute
  // loop: genuine livelock therefore never triggers a deterministic
  // verdict and falls through to the watchdog below.
  world_->progress().bump(world_rank_);
  check_doom();
  if (world_->poisoned()) {
    throw WorldAborted("rank " + std::to_string(world_rank_) +
                       ": compute loop interrupted by world teardown");
  }
  if (std::chrono::steady_clock::now() > world_->deadline()) {
    throw SimTimeout("rank " + std::to_string(world_rank_) +
                     ": compute loop exceeded the watchdog (job hang)");
  }
}

void Mpi::publish_op(const char* op, Comm comm, std::uint32_t seq, int root) {
  PendingSig sig;
  sig.op = op;
  sig.comm = raw(comm);
  sig.seq = seq;
  sig.root = root;
  if (stack_probe_) {
    StackProbe probe = stack_probe_();
    sig.stack_id = probe.stack_id;
    sig.frame = std::move(probe.frame);
  }
  world_->progress().publish_op(world_rank_, sig);
}

std::uint64_t Mpi::coll_tag(Comm comm, std::uint32_t seq,
                            std::uint8_t phase) const {
  return (static_cast<std::uint64_t>(handle_index(raw(comm))) << 43) |
         (static_cast<std::uint64_t>(seq) << 11) |
         (static_cast<std::uint64_t>(phase) << 3);
}

void Mpi::send_internal(Comm comm, int dest, std::uint64_t tag,
                        std::vector<std::byte> payload) {
  if (world_->poisoned()) {
    throw WorldAborted("send interrupted by world teardown");
  }
  check_doom();
  if (world_->comm_revoked(comm)) {
    throw RankRevoked("rank " + std::to_string(world_rank_) +
                      ": send on revoked communicator");
  }
  const auto& members = world_->group_of(comm);
  if (dest < 0 || dest >= static_cast<int>(members.size())) {
    throw MpiError(MpiErrc::InvalidRank,
                   "destination rank " + std::to_string(dest) +
                       " outside communicator of size " +
                       std::to_string(members.size()));
  }
  const int dest_world = members[static_cast<std::size_t>(dest)];
  Message message;
  message.source = world_->comm_rank_of(comm, world_rank_);
  message.tag = tag;
  message.payload = std::move(payload);
  // Transport interposition: message-fault models corrupt the payload in
  // place, drop the message, or hold it back for late delivery.
  if (ToolHooks* tools = world_->tools()) {
    switch (tools->on_transport_send(world_rank_, dest_world, tag,
                                     message.payload)) {
      case SendAction::Deliver:
        break;
      case SendAction::Drop:
        // The send "happened" from this rank's point of view; the bump
        // keeps the heartbeat discipline even though nothing lands.
        world_->progress().bump(world_rank_);
        flush_held();
        return;
      case SendAction::Hold:
        world_->progress().bump(world_rank_);
        held_.emplace_back(dest_world, std::move(message));
        return;
    }
  }
  // Heartbeat strictly before the deliver: the hang monitor may only
  // declare a deadlock on two identical snapshots, so a send that is
  // about to land always invalidates the snapshot it raced with.
  world_->progress().bump(world_rank_);
  world_->mailbox(dest_world).deliver(std::move(message));
  // A message held by an earlier MessageDelay fault is released one send
  // later in this rank's program order — deterministic by construction.
  flush_held();
}

std::vector<std::byte> Mpi::recv_internal(Comm comm, int source,
                                          std::uint64_t tag) {
  check_doom();
  if (world_->comm_revoked(comm)) {
    throw RankRevoked("rank " + std::to_string(world_rank_) +
                      ": receive on revoked communicator");
  }
  const auto& members = world_->group_of(comm);
  if (source < 0 || source >= static_cast<int>(members.size())) {
    throw MpiError(MpiErrc::InvalidRank,
                   "source rank " + std::to_string(source) +
                       " outside communicator of size " +
                       std::to_string(members.size()));
  }
  // A wait on a pre-revocation communicator must wake with RankRevoked
  // when a fail-stop revokes the world; waits on the post-repair
  // (shrunken) communicator are exempt and keep waiting.
  const bool revocable =
      !world_->poison().revoked_flag.load(std::memory_order_acquire) ||
      world_->comm_revoked(comm);
  // Publish the wait so the monitor can check whether the awaited
  // (source, tag) can still arrive; restore Computing however we leave.
  world_->progress().publish_wait(
      world_rank_, source, members[static_cast<std::size_t>(source)], tag);
  WaitScope scope(world_->progress(), world_rank_);
  try {
    Message message = world_->mailbox(world_rank_).receive(
        source, tag, world_->deadline(), revocable);
    return std::move(message.payload);
  } catch (const SimTimeout& timeout) {
    throw SimTimeout("rank " + std::to_string(world_rank_) + " blocked in " +
                     world_->progress().snapshot(world_rank_).sig.describe() +
                     ": " + timeout.what());
  } catch (const WorldAborted& aborted) {
    throw WorldAborted("rank " + std::to_string(world_rank_) + " blocked in " +
                       world_->progress().snapshot(world_rank_).sig.describe() +
                       ": " + aborted.what());
  }
}

std::vector<std::byte> Mpi::pack(const void* ptr, std::size_t bytes,
                                 const char* what) {
  registry().check(ptr, bytes, what);
  std::vector<std::byte> out(bytes);
  if (bytes > 0) std::memcpy(out.data(), ptr, bytes);
  return out;
}

void Mpi::store(void* ptr, std::span<const std::byte> data, const char* what) {
  registry().check(ptr, data.size(), what);
  if (!data.empty()) std::memcpy(ptr, data.data(), data.size());
}

// --- point-to-point ---------------------------------------------------------

void Mpi::fill_p2p_site(P2pCall& call, const std::source_location& loc) {
  call.site_file = loc.file_name();
  call.site_line = static_cast<int>(loc.line());
  {
    std::ostringstream key;
    key << loc.file_name() << ':' << loc.line() << ":p2p:"
        << static_cast<int>(call.kind);
    call.site_id = static_cast<std::uint32_t>(fnv1a(key.str()));
  }
  call.invocation = invocations_[call.site_id]++;
  call.rank = world_->comm_rank_of(call.comm, world_rank_);
}

void Mpi::dispatch_p2p(P2pCall& call, std::source_location loc) {
  if (world_->poisoned()) {
    throw WorldAborted("point-to-point interrupted by world teardown");
  }
  fill_p2p_site(call, loc);
  publish_op(to_string(call.kind), call.comm,
             static_cast<std::uint32_t>(call.invocation), -1);
  if (ToolHooks* tools = world_->tools()) {
    tools->on_p2p(call, *this);
  }
}

void Mpi::send(const void* buf, std::int32_t count, Datatype dtype, int dest,
               std::int32_t tag, Comm comm, std::source_location loc) {
  P2pCall call;
  call.kind = P2pKind::Send;
  call.buffer = const_cast<void*>(buf);  // fault model mutates app data
  call.count = count;
  call.datatype = dtype;
  call.peer = dest;
  call.tag = tag;
  call.comm = comm;
  if (replay_active()) {
    fill_p2p_site(call, loc);
    replay_send(call);
    return;
  }
  dispatch_p2p(call, loc);

  if (call.count < 0) {
    throw MpiError(MpiErrc::InvalidCount, std::to_string(call.count));
  }
  if (!is_valid(call.datatype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(call.datatype)));
  }
  if (call.tag < 0) {
    throw MpiError(MpiErrc::InvalidTag, std::to_string(call.tag));
  }
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const std::uint64_t transport_tag = p2p_tag(call.comm, call.tag);
  std::vector<std::byte> payload = pack(call.buffer, bytes, "send");
  if (recorder_ != nullptr) {
    const auto& members = world_->group_of(call.comm);
    if (call.peer >= 0 && call.peer < static_cast<int>(members.size())) {
      recorder_->record_send(world_rank_, call,
                             members[static_cast<std::size_t>(call.peer)],
                             transport_tag, payload);
    }
  }
  send_internal(call.comm, call.peer, transport_tag, std::move(payload));
}

void Mpi::recv(void* buf, std::int32_t count, Datatype dtype, int source,
               std::int32_t tag, Comm comm, std::source_location loc) {
  P2pCall call;
  call.kind = P2pKind::Recv;
  call.buffer = buf;
  call.count = count;
  call.datatype = dtype;
  call.peer = source;
  call.tag = tag;
  call.comm = comm;
  if (replay_active()) {
    fill_p2p_site(call, loc);
    replay_recv(call);
    return;
  }
  dispatch_p2p(call, loc);

  if (call.count < 0) {
    throw MpiError(MpiErrc::InvalidCount, std::to_string(call.count));
  }
  if (!is_valid(call.datatype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(call.datatype)));
  }
  if (call.tag < 0) {
    throw MpiError(MpiErrc::InvalidTag, std::to_string(call.tag));
  }
  const std::size_t bytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const std::uint64_t transport_tag = p2p_tag(call.comm, call.tag);
  std::vector<std::byte> payload =
      recv_internal(call.comm, call.peer, transport_tag);
  if (payload.size() > bytes) {
    throw MpiError(MpiErrc::Truncate,
                   "message of " + std::to_string(payload.size()) +
                       " bytes for a " + std::to_string(bytes) +
                       "-byte receive");
  }
  store(call.buffer, payload, "recv");
  if (recorder_ != nullptr) {
    recorder_->record_recv(world_rank_, call, transport_tag, payload);
  }
}

Mpi::Request Mpi::isend(const void* buf, std::int32_t count, Datatype dtype,
                        int dest, std::int32_t tag, Comm comm,
                        std::source_location loc) {
  // Eager/buffered: identical to a blocking send on this transport.
  send(buf, count, dtype, dest, tag, comm, loc);
  return Request{};
}

Mpi::Request Mpi::irecv(void* buf, std::int32_t count, Datatype dtype,
                        int source, std::int32_t tag, Comm comm,
                        std::source_location loc) {
  // Nonblocking receives decouple posting from matching, which the
  // prefix recording does not model; recording runs fall back, replay
  // runs cannot legally get here (their recording would have fallen
  // back first, so this is a divergence).
  if (replay_active()) {
    throw ReplayError("irecv posted during prefix replay");
  }
  if (recorder_ != nullptr) {
    recorder_->mark_unsupported("nonblocking receive (irecv)");
  }
  // Interpose and validate at post time (the parameters as passed);
  // matching happens at wait().
  P2pCall call;
  call.kind = P2pKind::Recv;
  call.buffer = buf;
  call.count = count;
  call.datatype = dtype;
  call.peer = source;
  call.tag = tag;
  call.comm = comm;
  dispatch_p2p(call, loc);

  if (call.count < 0) {
    throw MpiError(MpiErrc::InvalidCount, std::to_string(call.count));
  }
  if (!is_valid(call.datatype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(call.datatype)));
  }
  if (call.tag < 0) {
    throw MpiError(MpiErrc::InvalidTag, std::to_string(call.tag));
  }
  Request request;
  request.pending_ = Request::PendingRecv{call.buffer, call.count,
                                          call.datatype, call.peer,
                                          call.tag,     call.comm};
  return request;
}

void Mpi::wait(Request& request) {
  if (!request.pending_) return;
  const auto pending = *request.pending_;
  request.pending_.reset();
  const std::size_t bytes =
      static_cast<std::size_t>(pending.count) * datatype_size(pending.dtype);
  std::vector<std::byte> payload =
      recv_internal(pending.comm, pending.source,
                    p2p_tag(pending.comm, pending.tag));
  if (payload.size() > bytes) {
    throw MpiError(MpiErrc::Truncate,
                   "message of " + std::to_string(payload.size()) +
                       " bytes for a " + std::to_string(bytes) +
                       "-byte receive");
  }
  store(pending.buf, payload, "irecv");
}

void Mpi::waitall(std::span<Request> requests) {
  for (auto& request : requests) wait(request);
}

// --- dispatch ----------------------------------------------------------------

void Mpi::dispatch(CollectiveCall& call, std::source_location loc) {
  if (replay_active()) {
    // Site identification through the normal counters (so the rank
    // arrives at the cut with live-identical state), then the recorded
    // outputs instead of the algorithm — zero rendezvous.
    call.site_file = loc.file_name();
    call.site_line = static_cast<int>(loc.line());
    call.site_id = site_hash(loc, call.kind);
    call.invocation = invocations_[call.site_id]++;
    call.rank = world_->comm_rank_of(call.comm, world_rank_);
    replay_collective(call);
    return;
  }
  if (world_->poisoned()) {
    throw WorldAborted("collective interrupted by world teardown");
  }
  check_doom();
  if (world_->comm_revoked(call.comm)) {
    throw RankRevoked("rank " + std::to_string(world_rank_) + ": " +
                      std::string(to_string(call.kind)) +
                      " on revoked communicator");
  }
  call.site_file = loc.file_name();
  call.site_line = static_cast<int>(loc.line());
  call.site_id = site_hash(loc, call.kind);
  call.invocation = invocations_[call.site_id]++;
  call.rank = world_->comm_rank_of(call.comm, world_rank_);

  // Reserve the sequence number against the *pre-corruption* communicator:
  // the rank entered this collective on that communicator, and peers will
  // look for its traffic there.
  const RawHandle pre_comm = raw(call.comm);

  if (ToolHooks* tools = world_->tools()) {
    tools->on_enter(call, *this);
  }

  validate_collective(call, *world_, world_rank_);

  // A corrupted comm handle that still validates (another live
  // communicator) diverts this rank's traffic there — sequence numbers are
  // tracked per communicator actually used, so the confusion is real.
  const RawHandle used_comm = raw(call.comm);
  std::uint32_t seq = coll_seq_[used_comm]++;
  if (used_comm != pre_comm) {
    // Keep the original communicator's stream moving too, as the rank has
    // conceptually consumed its slot there.
    coll_seq_[pre_comm]++;
  }

  publish_op(to_string(call.kind), call.comm, seq,
             is_rooted(call.kind) ? static_cast<int>(call.root) : -1);

  run_algorithm(call, seq);

  if (recorder_ != nullptr) {
    const auto spans = collect_write_spans(
        call, static_cast<int>(world_->group_of(call.comm).size()));
    recorder_->record_collective(world_rank_, call, spans);
  }

  if (ToolHooks* tools = world_->tools()) {
    tools->on_exit(call, *this);
  }
}

void Mpi::run_algorithm(const CollectiveCall& call, std::uint32_t seq) {
  const auto& algorithms = world_->options().algorithms;
  switch (call.kind) {
    case CollectiveKind::Barrier: return run_barrier(call, seq);
    case CollectiveKind::Bcast:
      return algorithms.bcast == CollectiveAlgorithms::Bcast::Chain
                 ? run_bcast_chain(call, seq)
                 : run_bcast(call, seq);
    case CollectiveKind::Reduce: return run_reduce(call, seq);
    case CollectiveKind::Allreduce:
      return algorithms.allreduce ==
                     CollectiveAlgorithms::Allreduce::ReduceBcast
                 ? run_allreduce_reduce_bcast(call, seq)
                 : run_allreduce(call, seq);
    case CollectiveKind::Scatter: return run_scatter(call, seq);
    case CollectiveKind::Scatterv: return run_scatterv(call, seq);
    case CollectiveKind::Gather: return run_gather(call, seq);
    case CollectiveKind::Gatherv: return run_gatherv(call, seq);
    case CollectiveKind::Allgather: return run_allgather(call, seq);
    case CollectiveKind::Allgatherv: return run_allgatherv(call, seq);
    case CollectiveKind::Alltoall: return run_alltoall(call, seq);
    case CollectiveKind::Alltoallv: return run_alltoallv(call, seq);
    case CollectiveKind::ReduceScatterBlock:
      return run_reduce_scatter_block(call, seq);
    case CollectiveKind::Scan: return run_scan(call, seq);
  }
  throw InternalError("run_algorithm: unknown collective kind");
}

// --- collective entry points ---------------------------------------------------

void Mpi::barrier(Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Barrier;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::bcast(void* buf, std::int32_t count, Datatype dtype,
                std::int32_t root, Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Bcast;
  call.sendbuf = buf;
  call.recvbuf = buf;
  call.count = count;
  call.datatype = dtype;
  call.root = root;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::reduce(const void* sendbuf, void* recvbuf, std::int32_t count,
                 Datatype dtype, Op op, std::int32_t root, Comm comm,
                 std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Reduce;
  call.sendbuf = const_cast<void*>(sendbuf);  // fault model mutates app data
  call.recvbuf = recvbuf;
  call.count = count;
  call.datatype = dtype;
  call.op = op;
  call.root = root;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::allreduce(const void* sendbuf, void* recvbuf, std::int32_t count,
                    Datatype dtype, Op op, Comm comm,
                    std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Allreduce;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = count;
  call.datatype = dtype;
  call.op = op;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::scatter(const void* sendbuf, std::int32_t sendcount,
                  Datatype sendtype, void* recvbuf, std::int32_t recvcount,
                  Datatype recvtype, std::int32_t root, Comm comm,
                  std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Scatter;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.recvcount = recvcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.root = root;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::gather(const void* sendbuf, std::int32_t sendcount,
                 Datatype sendtype, void* recvbuf, std::int32_t recvcount,
                 Datatype recvtype, std::int32_t root, Comm comm,
                 std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Gather;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.recvcount = recvcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.root = root;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::allgather(const void* sendbuf, std::int32_t sendcount,
                    Datatype sendtype, void* recvbuf, std::int32_t recvcount,
                    Datatype recvtype, Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Allgather;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.recvcount = recvcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::scatterv(const void* sendbuf,
                   const std::vector<std::int32_t>& sendcounts,
                   const std::vector<std::int32_t>& sdispls, Datatype sendtype,
                   void* recvbuf, std::int32_t recvcount, Datatype recvtype,
                   std::int32_t root, Comm comm, std::source_location loc) {
  std::vector<std::int32_t> sc = sendcounts;
  std::vector<std::int32_t> sd = sdispls;
  CollectiveCall call;
  call.kind = CollectiveKind::Scatterv;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.recvcount = recvcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.root = root;
  call.comm = comm;
  call.sendcounts = &sc;
  call.sdispls = &sd;
  dispatch(call, loc);
}

void Mpi::gatherv(const void* sendbuf, std::int32_t sendcount,
                  Datatype sendtype, void* recvbuf,
                  const std::vector<std::int32_t>& recvcounts,
                  const std::vector<std::int32_t>& rdispls, Datatype recvtype,
                  std::int32_t root, Comm comm, std::source_location loc) {
  std::vector<std::int32_t> rc = recvcounts;
  std::vector<std::int32_t> rd = rdispls;
  CollectiveCall call;
  call.kind = CollectiveKind::Gatherv;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.root = root;
  call.comm = comm;
  call.recvcounts = &rc;
  call.rdispls = &rd;
  dispatch(call, loc);
}

void Mpi::allgatherv(const void* sendbuf, std::int32_t sendcount,
                     Datatype sendtype, void* recvbuf,
                     const std::vector<std::int32_t>& recvcounts,
                     const std::vector<std::int32_t>& rdispls,
                     Datatype recvtype, Comm comm, std::source_location loc) {
  std::vector<std::int32_t> rc = recvcounts;
  std::vector<std::int32_t> rd = rdispls;
  CollectiveCall call;
  call.kind = CollectiveKind::Allgatherv;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.comm = comm;
  call.recvcounts = &rc;
  call.rdispls = &rd;
  dispatch(call, loc);
}

void Mpi::alltoall(const void* sendbuf, std::int32_t sendcount,
                   Datatype sendtype, void* recvbuf, std::int32_t recvcount,
                   Datatype recvtype, Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Alltoall;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = sendcount;
  call.recvcount = recvcount;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::alltoallv(const void* sendbuf,
                    const std::vector<std::int32_t>& sendcounts,
                    const std::vector<std::int32_t>& sdispls,
                    Datatype sendtype, void* recvbuf,
                    const std::vector<std::int32_t>& recvcounts,
                    const std::vector<std::int32_t>& rdispls,
                    Datatype recvtype, Comm comm, std::source_location loc) {
  // Local copies form the call's view of the arrays: tools corrupt the
  // view (the "parameter" as passed), never the application's own arrays.
  std::vector<std::int32_t> sc = sendcounts;
  std::vector<std::int32_t> sd = sdispls;
  std::vector<std::int32_t> rc = recvcounts;
  std::vector<std::int32_t> rd = rdispls;
  CollectiveCall call;
  call.kind = CollectiveKind::Alltoallv;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.datatype = sendtype;
  call.recvdatatype = recvtype;
  call.comm = comm;
  call.sendcounts = &sc;
  call.sdispls = &sd;
  call.recvcounts = &rc;
  call.rdispls = &rd;
  dispatch(call, loc);
}

void Mpi::reduce_scatter_block(const void* sendbuf, void* recvbuf,
                               std::int32_t recvcount, Datatype dtype, Op op,
                               Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::ReduceScatterBlock;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = recvcount;
  call.datatype = dtype;
  call.op = op;
  call.comm = comm;
  dispatch(call, loc);
}

void Mpi::scan(const void* sendbuf, void* recvbuf, std::int32_t count,
               Datatype dtype, Op op, Comm comm, std::source_location loc) {
  CollectiveCall call;
  call.kind = CollectiveKind::Scan;
  call.sendbuf = const_cast<void*>(sendbuf);
  call.recvbuf = recvbuf;
  call.count = count;
  call.datatype = dtype;
  call.op = op;
  call.comm = comm;
  dispatch(call, loc);
}

// --- communicator management ---------------------------------------------------

Comm Mpi::comm_split(Comm parent, int color, int key) {
  if (replay_active()) {
    throw ReplayError("comm_split during prefix replay");
  }
  if (recorder_ != nullptr) {
    recorder_->mark_unsupported("communicator construction (comm_split)");
  }
  const int n = size(parent);
  const int me = rank(parent);
  const std::uint32_t split_id = split_seq_[raw(parent)]++;

  // Share (color, key, world_rank) over the parent with an internal ring
  // allgather. Communicator construction is infrastructure, not one of the
  // paper's injected collectives, so it bypasses the tool chain — but it
  // still uses the real transport.
  struct Entry {
    std::int64_t color;
    std::int64_t key;
    std::int64_t world_rank;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(n));
  entries[static_cast<std::size_t>(me)] = {color, key, world_rank_};
  const std::uint32_t seq = coll_seq_[raw(parent)]++;
  publish_op("MPI_Comm_split", parent, seq, -1);
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int have = me;
  for (int step = 1; step < n; ++step) {
    std::vector<std::byte> out(sizeof(Entry));
    std::memcpy(out.data(), &entries[static_cast<std::size_t>(have)],
                sizeof(Entry));
    send_internal(parent, right,
                  coll_tag(parent, seq, static_cast<std::uint8_t>(step)),
                  std::move(out));
    auto in = recv_internal(
        parent, left, coll_tag(parent, seq, static_cast<std::uint8_t>(step)));
    if (in.size() != sizeof(Entry)) {
      throw MpiError(MpiErrc::Internal, "comm_split exchange corrupted");
    }
    have = (me - step + n) % n;
    std::memcpy(&entries[static_cast<std::size_t>(have)], in.data(),
                sizeof(Entry));
  }

  // My group: every member with my color, ordered by (key, parent rank).
  std::vector<std::pair<std::int64_t, int>> mine;  // (key, parent rank)
  for (int r = 0; r < n; ++r) {
    if (entries[static_cast<std::size_t>(r)].color == color) {
      mine.emplace_back(entries[static_cast<std::size_t>(r)].key, r);
    }
  }
  std::sort(mine.begin(), mine.end());
  std::vector<int> members;
  members.reserve(mine.size());
  for (const auto& [k, parent_rank] : mine) {
    members.push_back(static_cast<int>(
        entries[static_cast<std::size_t>(parent_rank)].world_rank));
  }

  std::ostringstream comm_key;
  comm_key << "split:" << raw(parent) << ':' << split_id << ':' << color;
  return world_->register_comm(comm_key.str(), std::move(members));
}

Comm Mpi::comm_dup(Comm parent) { return comm_split(parent, 0, rank(parent)); }

}  // namespace fastfit::mpi

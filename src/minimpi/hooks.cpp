#include "minimpi/hooks.hpp"

#include "support/error.hpp"

namespace fastfit::mpi {

const char* to_string(P2pKind kind) noexcept {
  switch (kind) {
    case P2pKind::Send: return "MPI_Send";
    case P2pKind::Recv: return "MPI_Recv";
  }
  return "unknown";
}

const char* to_string(P2pParam param) noexcept {
  switch (param) {
    case P2pParam::Buffer: return "buffer";
    case P2pParam::Count: return "count";
    case P2pParam::Datatype: return "datatype";
    case P2pParam::Peer: return "peer";
    case P2pParam::Tag: return "tag";
  }
  return "unknown";
}

const char* to_string(Param param) noexcept {
  switch (param) {
    case Param::SendBuf: return "sendbuf";
    case Param::RecvBuf: return "recvbuf";
    case Param::Count: return "count";
    case Param::Datatype: return "datatype";
    case Param::Op: return "op";
    case Param::Comm: return "comm";
    case Param::Root: return "root";
    case Param::RecvCount: return "recvcount";
    case Param::RecvDatatype: return "recvtype";
  }
  return "unknown";
}

std::vector<Param> injectable_params(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::Barrier:
      return {Param::Comm};
    case CollectiveKind::Bcast:
      return {Param::SendBuf, Param::Count, Param::Datatype, Param::Root,
              Param::Comm};
    case CollectiveKind::Reduce:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::Op, Param::Root, Param::Comm};
    case CollectiveKind::Allreduce:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::Op, Param::Comm};
    case CollectiveKind::Scatter:
    case CollectiveKind::Gather:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::RecvCount, Param::RecvDatatype, Param::Root, Param::Comm};
    case CollectiveKind::Scatterv:
    case CollectiveKind::Gatherv:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::RecvCount, Param::RecvDatatype, Param::Root, Param::Comm};
    case CollectiveKind::Allgather:
    case CollectiveKind::Allgatherv:
    case CollectiveKind::Alltoall:
    case CollectiveKind::Alltoallv:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::RecvCount, Param::RecvDatatype, Param::Comm};
    case CollectiveKind::ReduceScatterBlock:
    case CollectiveKind::Scan:
      return {Param::SendBuf, Param::RecvBuf, Param::Count, Param::Datatype,
              Param::Op, Param::Comm};
  }
  throw InternalError("injectable_params: unknown collective kind");
}

}  // namespace fastfit::mpi

#pragma once

// MiniMPI datatype registry.
//
// A fixed table of basic datatypes, addressed by validated handles. The
// fault injector flips bits of these handles; `is_valid` is the gate that
// turns most flips into MPI_ERR_TYPE, while low-bit flips that land on
// another table entry silently change the element size — which downstream
// manifests as truncation errors, partial transfers, or simulated
// segfaults, exactly the spectrum the paper reports for `datatype` faults.

#include <cstddef>
#include <string_view>

#include "minimpi/types.hpp"

namespace fastfit::mpi {

inline constexpr Datatype kChar = make_datatype(0);
inline constexpr Datatype kByte = make_datatype(1);
inline constexpr Datatype kInt32 = make_datatype(2);
inline constexpr Datatype kUint32 = make_datatype(3);
inline constexpr Datatype kInt64 = make_datatype(4);
inline constexpr Datatype kUint64 = make_datatype(5);
inline constexpr Datatype kFloat = make_datatype(6);
inline constexpr Datatype kDouble = make_datatype(7);

inline constexpr std::size_t kNumDatatypes = 8;

/// True iff the handle denotes an entry of the datatype table.
bool is_valid(Datatype dtype) noexcept;

/// Element size in bytes. Requires a valid handle.
std::size_t datatype_size(Datatype dtype);

/// MPI-style name, e.g. "MPI_DOUBLE". Requires a valid handle.
std::string_view datatype_name(Datatype dtype);

/// Maps a C++ arithmetic type onto its MiniMPI datatype handle.
template <typename T>
constexpr Datatype datatype_of() noexcept;

template <> constexpr Datatype datatype_of<char>() noexcept { return kChar; }
template <> constexpr Datatype datatype_of<std::int32_t>() noexcept { return kInt32; }
template <> constexpr Datatype datatype_of<std::uint32_t>() noexcept { return kUint32; }
template <> constexpr Datatype datatype_of<std::int64_t>() noexcept { return kInt64; }
template <> constexpr Datatype datatype_of<std::uint64_t>() noexcept { return kUint64; }
template <> constexpr Datatype datatype_of<float>() noexcept { return kFloat; }
template <> constexpr Datatype datatype_of<double>() noexcept { return kDouble; }

}  // namespace fastfit::mpi

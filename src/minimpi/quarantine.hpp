#pragma once

// Quarantine for rank threads that outlive their world's teardown.
//
// World::run joins its rank threads with a bounded deadline. A thread
// that is still running after the escalated teardown (second poison +
// mailbox wake storm) is *quarantined*: ownership of the std::thread and
// a keepalive of everything the thread can still touch move here, and
// World::run returns with the leak recorded in WorldResult instead of
// blocking the whole campaign behind one wedged rank. The campaign layer
// counts quarantined threads (CampaignHealth::leaked_rank_threads) and
// fails the run once they accumulate past CampaignOptions::
// max_leaked_threads — a leak is contained, never ignored.
//
// reap() opportunistically joins quarantined threads that have since
// finished, so a transiently-stuck rank costs nothing durable.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fastfit::mpi {

class ThreadQuarantine {
 public:
  /// Process-wide instance (worlds from every concurrent trial share it).
  static ThreadQuarantine& instance();

  /// Takes ownership of a straggler. `keepalive` must own every object
  /// the thread can still reference; `done` must point into keepalive-
  /// owned storage and become true when the thread is about to return.
  void adopt(std::thread thread, std::shared_ptr<void> keepalive,
             const std::atomic<bool>* done);

  /// Joins every quarantined thread that has finished; returns how many
  /// remain leaked (still running).
  std::size_t reap();

  /// Currently-leaked count (reaps first).
  std::size_t leaked() { return reap(); }

  /// Total threads ever adopted (monotonic; for reports and tests).
  std::uint64_t adopted_total() const noexcept {
    return adopted_.load(std::memory_order_relaxed);
  }

  ThreadQuarantine(const ThreadQuarantine&) = delete;
  ThreadQuarantine& operator=(const ThreadQuarantine&) = delete;

 private:
  ThreadQuarantine() = default;
  ~ThreadQuarantine();

  struct Entry {
    std::thread thread;
    std::shared_ptr<void> keepalive;
    const std::atomic<bool>* done = nullptr;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::atomic<std::uint64_t> adopted_{0};
};

}  // namespace fastfit::mpi

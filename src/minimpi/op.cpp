#include "minimpi/op.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "minimpi/datatype.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

constexpr std::array<std::string_view, kNumOps> kNames{
    "MPI_SUM",  "MPI_PROD", "MPI_MIN",  "MPI_MAX", "MPI_BAND",
    "MPI_BOR",  "MPI_BXOR", "MPI_LAND", "MPI_LOR",
};

bool is_integer_type(Datatype dtype) {
  return dtype == kChar || dtype == kByte || dtype == kInt32 ||
         dtype == kUint32 || dtype == kInt64 || dtype == kUint64;
}

template <typename T>
void apply_typed(Op op, std::span<const std::byte> incoming,
                 std::span<std::byte> accum, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    T a;
    T b;
    std::memcpy(&a, incoming.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, accum.data() + i * sizeof(T), sizeof(T));
    T r;
    if (op == kSum) {
      r = static_cast<T>(b + a);
    } else if (op == kProd) {
      r = static_cast<T>(b * a);
    } else if (op == kMin) {
      r = std::min(a, b);
    } else if (op == kMax) {
      r = std::max(a, b);
    } else if constexpr (std::is_integral_v<T>) {
      using U = std::make_unsigned_t<T>;
      const U ua = static_cast<U>(a);
      const U ub = static_cast<U>(b);
      if (op == kBand) {
        r = static_cast<T>(ub & ua);
      } else if (op == kBor) {
        r = static_cast<T>(ub | ua);
      } else if (op == kBxor) {
        r = static_cast<T>(ub ^ ua);
      } else if (op == kLand) {
        r = static_cast<T>((b != 0) && (a != 0));
      } else {  // kLor
        r = static_cast<T>((b != 0) || (a != 0));
      }
    } else {
      throw InternalError("op dispatch: unsupported op reached apply_typed");
    }
    std::memcpy(accum.data() + i * sizeof(T), &r, sizeof(T));
  }
}

}  // namespace

bool is_valid(Op op) noexcept {
  const RawHandle h = raw(op);
  return has_magic(h, kOpMagic) && handle_index(h) < kNumOps;
}

std::string_view op_name(Op op) {
  if (!is_valid(op)) {
    throw MpiError(MpiErrc::InvalidOp, "handle 0x" + std::to_string(raw(op)));
  }
  return kNames[handle_index(raw(op))];
}

bool op_supports(Op op, Datatype dtype) {
  if (!is_valid(op)) {
    throw MpiError(MpiErrc::InvalidOp, "handle 0x" + std::to_string(raw(op)));
  }
  if (!is_valid(dtype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(dtype)));
  }
  if (op == kBand || op == kBor || op == kBxor || op == kLand || op == kLor) {
    return is_integer_type(dtype);
  }
  return true;
}

void apply(Op op, Datatype dtype, std::span<const std::byte> incoming,
           std::span<std::byte> accum, std::size_t count) {
  if (!op_supports(op, dtype)) {
    throw MpiError(MpiErrc::InvalidOp,
                   std::string(op_name(op)) + " undefined for " +
                       std::string(datatype_name(dtype)));
  }
  const std::size_t bytes = count * datatype_size(dtype);
  if (incoming.size() != bytes || accum.size() != bytes) {
    throw InternalError("op::apply: span size mismatch");
  }
  if (dtype == kChar) {
    apply_typed<char>(op, incoming, accum, count);
  } else if (dtype == kByte) {
    apply_typed<unsigned char>(op, incoming, accum, count);
  } else if (dtype == kInt32) {
    apply_typed<std::int32_t>(op, incoming, accum, count);
  } else if (dtype == kUint32) {
    apply_typed<std::uint32_t>(op, incoming, accum, count);
  } else if (dtype == kInt64) {
    apply_typed<std::int64_t>(op, incoming, accum, count);
  } else if (dtype == kUint64) {
    apply_typed<std::uint64_t>(op, incoming, accum, count);
  } else if (dtype == kFloat) {
    apply_typed<float>(op, incoming, accum, count);
  } else if (dtype == kDouble) {
    apply_typed<double>(op, incoming, accum, count);
  } else {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(dtype)));
  }
}

}  // namespace fastfit::mpi

#include "minimpi/snapshot.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "minimpi/datatype.hpp"

namespace fastfit::mpi {

namespace {

std::size_t elem_size(Datatype dtype) { return datatype_size(dtype); }

void add_span(std::vector<WriteSpan>& spans, void* base, std::size_t offset,
              std::size_t bytes) {
  if (bytes == 0) return;
  spans.push_back({static_cast<std::byte*>(base) + offset, bytes});
}

// Per-displacement blocks of a v-collective's receive side. Blocks are
// recorded individually because the gaps between displacements need not
// be registered memory.
void add_blocks(std::vector<WriteSpan>& spans, void* recvbuf,
                const std::vector<std::int32_t>* counts,
                const std::vector<std::int32_t>* displs, std::size_t esize) {
  if (counts == nullptr || displs == nullptr) return;
  const std::size_t n = std::min(counts->size(), displs->size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto count = (*counts)[i];
    const auto displ = (*displs)[i];
    if (count <= 0 || displ < 0) continue;
    add_span(spans, recvbuf, static_cast<std::size_t>(displ) * esize,
             static_cast<std::size_t>(count) * esize);
  }
}

}  // namespace

std::vector<WriteSpan> collect_write_spans(const CollectiveCall& call,
                                           int comm_size) {
  std::vector<WriteSpan> spans;
  const bool is_root = call.rank == static_cast<int>(call.root);
  const std::size_t n = static_cast<std::size_t>(comm_size);
  switch (call.kind) {
    case CollectiveKind::Barrier:
      break;
    case CollectiveKind::Bcast:
      // Root's buffer is the source; recording it back is a no-op copy of
      // identical bytes, and keeping every rank symmetric is simpler.
      add_span(spans, call.recvbuf, 0,
               static_cast<std::size_t>(call.count) * elem_size(call.datatype));
      break;
    case CollectiveKind::Reduce:
      if (is_root) {
        add_span(spans, call.recvbuf, 0,
                 static_cast<std::size_t>(call.count) *
                     elem_size(call.datatype));
      }
      break;
    case CollectiveKind::Allreduce:
    case CollectiveKind::Scan:
      add_span(spans, call.recvbuf, 0,
               static_cast<std::size_t>(call.count) * elem_size(call.datatype));
      break;
    case CollectiveKind::ReduceScatterBlock:
      // `count` carries the per-rank recvcount for this kind.
      add_span(spans, call.recvbuf, 0,
               static_cast<std::size_t>(call.count) * elem_size(call.datatype));
      break;
    case CollectiveKind::Scatter:
    case CollectiveKind::Scatterv:
      add_span(spans, call.recvbuf, 0,
               static_cast<std::size_t>(call.recvcount) *
                   elem_size(call.recvdatatype));
      break;
    case CollectiveKind::Gather:
      if (is_root) {
        add_span(spans, call.recvbuf, 0,
                 n * static_cast<std::size_t>(call.recvcount) *
                     elem_size(call.recvdatatype));
      }
      break;
    case CollectiveKind::Gatherv:
      if (is_root) {
        add_blocks(spans, call.recvbuf, call.recvcounts, call.rdispls,
                   elem_size(call.recvdatatype));
      }
      break;
    case CollectiveKind::Allgather:
    case CollectiveKind::Alltoall:
      add_span(spans, call.recvbuf, 0,
               n * static_cast<std::size_t>(call.recvcount) *
                   elem_size(call.recvdatatype));
      break;
    case CollectiveKind::Allgatherv:
    case CollectiveKind::Alltoallv:
      add_blocks(spans, call.recvbuf, call.recvcounts, call.rdispls,
                 elem_size(call.recvdatatype));
      break;
  }
  return spans;
}

// --- PrefixRecorder ---------------------------------------------------------

PrefixRecorder::PrefixRecorder(int nranks)
    : ops_(static_cast<std::size_t>(nranks)) {
  if (nranks < 1) throw InternalError("PrefixRecorder: nranks must be >= 1");
}

void PrefixRecorder::record_collective(int world_rank,
                                       const CollectiveCall& call,
                                       std::span<const WriteSpan> spans) {
  RecordedOp op;
  op.kind = RecordedOp::Kind::Collective;
  op.coll = call.kind;
  op.site_id = call.site_id;
  op.site_line = call.site_line;
  op.invocation = call.invocation;
  op.comm = raw(call.comm);
  op.self_comm = call.rank;
  op.writes.reserve(spans.size());
  for (const auto& span : spans) {
    op.writes.push_back(chunks_.intern(span.ptr, span.bytes));
  }
  ops_[static_cast<std::size_t>(world_rank)].push_back(std::move(op));
}

void PrefixRecorder::record_send(int world_rank, const P2pCall& call,
                                 int dest_world, std::uint64_t transport_tag,
                                 std::span<const std::byte> payload) {
  RecordedOp op;
  op.kind = RecordedOp::Kind::Send;
  op.site_id = call.site_id;
  op.site_line = call.site_line;
  op.invocation = call.invocation;
  op.comm = raw(call.comm);
  op.self_comm = call.rank;
  op.peer = call.peer;
  op.peer_world = dest_world;
  op.transport_tag = transport_tag;
  op.writes.push_back(chunks_.intern(payload.data(), payload.size()));
  ops_[static_cast<std::size_t>(world_rank)].push_back(std::move(op));
}

void PrefixRecorder::record_recv(int world_rank, const P2pCall& call,
                                 std::uint64_t transport_tag,
                                 std::span<const std::byte> payload) {
  RecordedOp op;
  op.kind = RecordedOp::Kind::Recv;
  op.site_id = call.site_id;
  op.site_line = call.site_line;
  op.invocation = call.invocation;
  op.comm = raw(call.comm);
  op.self_comm = call.rank;
  op.peer = call.peer;
  op.transport_tag = transport_tag;
  op.writes.push_back(chunks_.intern(payload.data(), payload.size()));
  ops_[static_cast<std::size_t>(world_rank)].push_back(std::move(op));
}

void PrefixRecorder::mark_unsupported(const std::string& why) {
  std::lock_guard lock(unsupported_mutex_);
  if (!unsupported_) {
    unsupported_ = true;
    why_ = why;
  }
}

std::shared_ptr<const WorldRecording> PrefixRecorder::finish() {
  auto recording = std::make_shared<WorldRecording>();
  recording->nranks = static_cast<int>(ops_.size());
  recording->ops = std::move(ops_);
  ops_.assign(recording->ops.size(), {});
  {
    std::lock_guard lock(unsupported_mutex_);
    recording->replayable = !unsupported_;
    recording->unsupported_reason = why_;
  }
  recording->payload_bytes = chunks_.unique_bytes();
  for (const auto& stream : recording->ops) {
    recording->total_ops += stream.size();
  }
  return recording;
}

// --- WorldSnapshot ----------------------------------------------------------

std::shared_ptr<const WorldSnapshot> WorldSnapshot::build(
    std::shared_ptr<const WorldRecording> recording, std::uint32_t site_id,
    std::uint64_t invocation) {
  if (!recording || !recording->replayable) return nullptr;

  auto snapshot = std::make_shared<WorldSnapshot>();
  snapshot->cut.resize(static_cast<std::size_t>(recording->nranks));
  for (int r = 0; r < recording->nranks; ++r) {
    const auto& stream = recording->ops[static_cast<std::size_t>(r)];
    std::size_t cut = stream.size();
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto& op = stream[i];
      if (op.kind == RecordedOp::Kind::Collective &&
          op.site_id == site_id && op.invocation == invocation) {
        cut = i;
        break;
      }
    }
    // The injected collective must exist in every rank's log: all ranks
    // switch to live execution at the same rendezvous. A collective over
    // a sub-communicator would leave some rank without a cut.
    if (cut == stream.size()) return nullptr;
    snapshot->cut[static_cast<std::size_t>(r)] = cut;
  }

  // In-flight derivation. Mailbox matching is exact on (source comm rank,
  // transport tag) with FIFO order per key, and within one communicator a
  // key identifies a unique sender — so the k-th prefix receive for a key
  // consumes the k-th prefix send. A prefix receive beyond the sender's
  // prefix sends would need a message from the live suffix: the cut is
  // not replayable. Prefix sends beyond the receiver's prefix receives
  // are in flight across the cut and get pre-seeded.
  using Key = std::pair<int, std::uint64_t>;  // (source comm rank, tag)
  std::vector<std::map<Key, std::size_t>> needed(
      static_cast<std::size_t>(recording->nranks));
  for (int r = 0; r < recording->nranks; ++r) {
    const auto& stream = recording->ops[static_cast<std::size_t>(r)];
    const std::size_t cut = snapshot->cut[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < cut; ++i) {
      const auto& op = stream[i];
      if (op.kind != RecordedOp::Kind::Recv) continue;
      ++needed[static_cast<std::size_t>(r)][{op.peer, op.transport_tag}];
    }
  }
  for (int s = 0; s < recording->nranks; ++s) {
    const auto& stream = recording->ops[static_cast<std::size_t>(s)];
    const std::size_t cut = snapshot->cut[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < cut; ++i) {
      const auto& op = stream[i];
      if (op.kind != RecordedOp::Kind::Send) continue;
      if (op.peer_world < 0 || op.peer_world >= recording->nranks) {
        return nullptr;
      }
      auto& want = needed[static_cast<std::size_t>(op.peer_world)];
      const Key key{op.self_comm, op.transport_tag};
      if (auto it = want.find(key); it != want.end() && it->second > 0) {
        --it->second;  // consumed within the prefix on both sides
        continue;
      }
      PreseedMessage pre;
      pre.dest_world = op.peer_world;
      pre.source_comm = op.self_comm;
      pre.transport_tag = op.transport_tag;
      pre.payload = op.writes.empty() ? nullptr : op.writes.front();
      snapshot->preseed.push_back(std::move(pre));
    }
  }
  // Any receive still needed draws on a suffix send: invalid cut.
  for (const auto& want : needed) {
    for (const auto& [key, count] : want) {
      if (count > 0) return nullptr;
    }
  }

  snapshot->approx_bytes =
      snapshot->cut.size() * sizeof(std::size_t) +
      snapshot->preseed.size() * sizeof(PreseedMessage);
  for (const auto& pre : snapshot->preseed) {
    if (pre.payload) snapshot->approx_bytes += pre.payload->size();
  }
  snapshot->recording = std::move(recording);
  return snapshot;
}

}  // namespace fastfit::mpi

#include "minimpi/mailbox.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fastfit::mpi {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, std::uint64_t tag,
                         std::chrono::steady_clock::time_point deadline,
                         bool revocable) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    // Check poison/doom before and after the wait so a rank that arrives
    // late never sleeps through the teardown (or its own death).
    if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
      throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                       " killed while waiting for rank " +
                                       std::to_string(source));
    }
    {
      std::lock_guard plock(poison_->mutex);
      if (poison_->poisoned) {
        throw WorldAborted("mailbox wait interrupted by world teardown");
      }
      if (revocable && poison_->revoked) {
        throw RankRevoked("communicator revoked while waiting for rank " +
                          std::to_string(source));
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
        throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                         " killed while waiting for rank " +
                                         std::to_string(source));
      }
      {
        std::lock_guard plock(poison_->mutex);
        if (poison_->poisoned) {
          throw WorldAborted("mailbox wait interrupted by world teardown");
        }
        if (revocable && poison_->revoked) {
          throw RankRevoked("communicator revoked while waiting for rank " +
                            std::to_string(source));
        }
      }
      throw SimTimeout("receive from rank " + std::to_string(source) +
                       " tag " + std::to_string(tag) +
                       " never matched (job hang)");
    }
  }
}

void Mailbox::wake() {
  // Serialize with receive(): holding mutex_ here means a waiter is either
  // before its poison check (it will see the flag) or already parked in
  // wait_until (it will get this notification). A bare notify could fire
  // in the gap between the two and be lost.
  std::lock_guard lock(mutex_);
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool Mailbox::has_match(int source, std::uint64_t tag) const {
  std::lock_guard lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.source == source && m.tag == tag;
  });
}

}  // namespace fastfit::mpi

#include "minimpi/mailbox.hpp"

#include <algorithm>

#include "minimpi/fiber.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {

void Mailbox::deliver(Message message) {
  bool fiber_owner;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
    // Fiber engine: a delivery is the wake — mark the owning fiber ready
    // while holding the mailbox mutex (same discipline as wake(): the
    // scheduler pointer is cleared under this mutex at teardown, so the
    // call can never dangle).
    fiber_owner = fiber_sched_ != nullptr;
    if (fiber_owner) fiber_sched_->make_ready(fiber_rank_);
  }
  // A fiber owner never sleeps on the mailbox cv (it parks in the
  // scheduler), so the notify — a futex syscall on the per-message hot
  // path — is pure waste there.
  if (!fiber_owner) cv_.notify_all();
}

void Mailbox::set_fiber_waker(FiberScheduler* sched, int owner_rank) {
  std::lock_guard lock(mutex_);
  fiber_sched_ = sched;
  fiber_rank_ = owner_rank;
}

Message Mailbox::receive(int source, std::uint64_t tag,
                         std::chrono::steady_clock::time_point deadline,
                         bool revocable) {
  if (FiberScheduler* sched = FiberScheduler::active();
      sched != nullptr && sched->in_fiber()) {
    return receive_fiber(source, tag, deadline, revocable, *sched);
  }
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    // Check poison/doom before and after the wait so a rank that arrives
    // late never sleeps through the teardown (or its own death).
    if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
      throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                       " killed while waiting for rank " +
                                       std::to_string(source));
    }
    {
      std::lock_guard plock(poison_->mutex);
      if (poison_->poisoned) {
        throw WorldAborted("mailbox wait interrupted by world teardown");
      }
      if (revocable && poison_->revoked) {
        throw RankRevoked("communicator revoked while waiting for rank " +
                          std::to_string(source));
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
        throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                         " killed while waiting for rank " +
                                         std::to_string(source));
      }
      {
        std::lock_guard plock(poison_->mutex);
        if (poison_->poisoned) {
          throw WorldAborted("mailbox wait interrupted by world teardown");
        }
        if (revocable && poison_->revoked) {
          throw RankRevoked("communicator revoked while waiting for rank " +
                            std::to_string(source));
        }
      }
      throw SimTimeout("receive from rank " + std::to_string(source) +
                       " tag " + std::to_string(tag) +
                       " never matched (job hang)");
    }
  }
}

Message Mailbox::receive_fiber(int source, std::uint64_t tag,
                               std::chrono::steady_clock::time_point deadline,
                               bool revocable, FiberScheduler& sched) {
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      auto it = std::find_if(queue_.begin(), queue_.end(),
                             [&](const Message& m) {
                               return m.source == source && m.tag == tag;
                             });
      if (it != queue_.end()) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    // Same check order as the thread path: doom, poison, revocation.
    if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
      throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                       " killed while waiting for rank " +
                                       std::to_string(source));
    }
    {
      std::lock_guard plock(poison_->mutex);
      if (poison_->poisoned) {
        throw WorldAborted("mailbox wait interrupted by world teardown");
      }
      if (revocable && poison_->revoked) {
        throw RankRevoked("communicator revoked while waiting for rank " +
                          std::to_string(source));
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // The thread path's timed-out branch: one last doom/poison/revoke
      // look before the hang verdict, with identical message text.
      if (doom_ != nullptr && doom_->load(std::memory_order_acquire)) {
        throw RankKilled(doom_rank_, "rank " + std::to_string(doom_rank_) +
                                         " killed while waiting for rank " +
                                         std::to_string(source));
      }
      {
        std::lock_guard plock(poison_->mutex);
        if (poison_->poisoned) {
          throw WorldAborted("mailbox wait interrupted by world teardown");
        }
        if (revocable && poison_->revoked) {
          throw RankRevoked("communicator revoked while waiting for rank " +
                            std::to_string(source));
        }
      }
      throw SimTimeout("receive from rank " + std::to_string(source) +
                       " tag " + std::to_string(tag) +
                       " never matched (job hang)");
    }
    // The rendezvous is the yield point: park this fiber until a
    // delivery, wake, or the idle handler's deadline sweep resumes it.
    sched.block_current();
  }
}

void Mailbox::wake() {
  // Serialize with receive(): holding mutex_ here means a waiter is either
  // before its poison check (it will see the flag) or already parked in
  // wait_until (it will get this notification). A bare notify could fire
  // in the gap between the two and be lost. (A fiber waiter is covered by
  // make_ready's pending-wake latch instead, and never sleeps on cv_.)
  bool fiber_owner;
  {
    std::lock_guard lock(mutex_);
    fiber_owner = fiber_sched_ != nullptr;
    if (fiber_owner) fiber_sched_->make_ready(fiber_rank_);
  }
  if (!fiber_owner) cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool Mailbox::has_match(int source, std::uint64_t tag) const {
  std::lock_guard lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return m.source == source && m.tag == tag;
  });
}

}  // namespace fastfit::mpi

#pragma once

// Per-rank progress table: the evidence base for deterministic hang
// detection and world autopsies.
//
// Every rank publishes (a) a heartbeat that advances on any forward step
// (collective entry, message send, compute-loop deadline check, wait
// exit) and (b) a pending-operation signature — op name, communicator,
// sequence number, root, awaited peer and transport tag, shadow-stack id
// — whenever it enters a mailbox rendezvous. A monitor thread can then
// decide *structurally* that a world is deadlocked: all live ranks
// blocked, no blocked rank's awaited message queued, and two snapshots a
// poll apart identical. Because a rank bumps its heartbeat before every
// deliver, a stable all-blocked snapshot proves no message can ever
// arrive — the verdict is deterministic, not a timeout heuristic.
//
// The same table is snapshotted into a WorldAutopsy at first-event time,
// so every non-SUCCESS trial carries per-rank forensics (phase, last
// heartbeat, pending signature, innermost shadow frame) into campaign
// reports and the journal.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fastfit::mpi {

/// What a rank is doing, as last published by the rank itself.
enum class RankPhase : std::uint8_t {
  Computing,  ///< running application or algorithm code
  Blocked,    ///< parked in a mailbox wait for a specific (source, tag)
  Exited,     ///< rank main returned or unwound
  Dead,       ///< fail-stop fault killed the rank (it will never publish
              ///< again); peers and the monitor treat it like Exited but
              ///< the autopsy distinguishes death from clean exit
};

const char* to_string(RankPhase phase) noexcept;

/// Pending-operation signature published at rendezvous entry.
struct PendingSig {
  const char* op = "";            ///< static op name ("MPI_Bcast", ...)
  std::uint64_t comm = 0;         ///< raw communicator handle in use
  std::uint32_t seq = 0;          ///< per-communicator collective sequence
  int root = -1;                  ///< root parameter (-1 for unrooted)
  int wait_source = -1;           ///< awaited sender, comm-relative
  int wait_source_world = -1;     ///< awaited sender as a world rank
  std::uint64_t wait_tag = 0;     ///< exact transport tag awaited
  std::uint64_t stack_id = 0;     ///< shadow-stack identity at op entry
  std::string frame;              ///< innermost shadow frame at op entry

  /// One-line human form, e.g.
  /// "MPI_Bcast(comm=0x…, seq=3, root=2) awaiting world rank 5".
  std::string describe() const;
};

/// Monitor-side view of one rank.
struct RankSnapshot {
  RankPhase phase = RankPhase::Computing;
  std::uint64_t heartbeat = 0;
  bool has_op = false;  ///< sig fields valid (at least one op published)
  PendingSig sig;
};

/// The table itself: one slot per rank, each guarded by its own mutex so
/// publishes are rank-local and the monitor reads a consistent slot.
class ProgressTable {
 public:
  explicit ProgressTable(int nranks);

  int size() const noexcept { return static_cast<int>(slots_.size()); }

  /// Heartbeat-only advance (compute progress, message sends). Publishers
  /// bump *before* delivering so quiescence implies no in-flight sends.
  void bump(int rank);

  /// Entering an operation: signature replaced, phase Computing.
  void publish_op(int rank, const PendingSig& sig);

  /// Entering a mailbox wait inside the current operation.
  void publish_wait(int rank, int wait_source, int wait_source_world,
                    std::uint64_t wait_tag);

  /// The wait ended (matched, timed out, or aborted): back to Computing.
  void publish_resume(int rank);

  /// Rank main returned or unwound. Never downgrades a Dead slot: the
  /// thread of a killed rank still unwinds through the normal exit path,
  /// and the death verdict must survive it.
  void publish_exited(int rank);

  /// Fail-stop death: terminal, peer-visible via snapshot().
  void publish_dead(int rank);

  RankSnapshot snapshot(int rank) const;
  std::vector<RankSnapshot> snapshot_all() const;

 private:
  struct Slot {
    mutable std::mutex mutex;
    std::uint64_t heartbeat = 0;
    RankPhase phase = RankPhase::Computing;
    bool has_op = false;
    PendingSig sig;
  };
  // unique_ptr: stable addresses, Slot holds a mutex and cannot move.
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Per-rank entry of a world autopsy.
struct RankAutopsy {
  int rank = -1;
  RankPhase phase = RankPhase::Computing;
  std::uint64_t heartbeat = 0;
  bool has_op = false;
  PendingSig sig;
};

/// Forensic snapshot of the whole world, captured when the initiating
/// event is recorded (poison time). `deterministic` marks a hang that was
/// proven structurally by the monitor rather than inferred from the
/// watchdog deadline.
struct WorldAutopsy {
  bool deterministic = false;
  std::string verdict;  ///< detector conclusion / event description
  std::vector<RankAutopsy> ranks;

  /// Compact one-line form for journals and messages.
  std::string summary() const;

  /// Multi-line per-rank listing for reports and debugging.
  std::string render() const;
};

/// Snapshots every rank of `table` into an autopsy.
WorldAutopsy build_autopsy(const ProgressTable& table, bool deterministic,
                           std::string verdict);

/// Explains a stable all-blocked snapshot: divergent roots, divergent
/// communicators, mismatched sequence numbers, mismatched operations,
/// peers that already exited, or a plain unmatched rendezvous.
std::string analyze_deadlock(const std::vector<RankSnapshot>& snaps);

}  // namespace fastfit::mpi

// Rooted collectives: MPI_Bcast and MPI_Reduce (binomial trees),
// MPI_Scatter and MPI_Gather (linear, as production MPIs use at small
// scale).
//
// The trees are computed from each rank's own view of `root`: a corrupted
// root that stays inside [0, n) makes this rank build a *different* tree,
// producing genuinely unmatched sends/receives — the mechanism behind the
// INF_LOOP responses the paper observes for root faults.

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

using detail::byte_ptr;
using detail::combine_payload;
using detail::require_fits;

void Mpi::run_bcast(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esize = datatype_size(call.datatype);
  const std::size_t bytes = static_cast<std::size_t>(call.count) * esize;
  const int relative = (me - call.root + n) % n;

  // Receive phase: find the parent bit.
  if (relative != 0) {
    int mask = 1;
    while (mask < n) {
      if (relative & mask) {
        int src = me - mask;
        if (src < 0) src += n;
        auto payload =
            recv_internal(call.comm, src, coll_tag(call.comm, seq, 0));
        require_fits(payload.size(), bytes, "bcast");
        store(call.recvbuf, payload, "bcast receive buffer");
        break;
      }
      mask <<= 1;
    }
  }

  // Forward phase: children are the bits below the parent bit. Each rank
  // forwards from its own buffer under its own count — a corrupted count
  // here shears the payload for the whole subtree.
  auto data = pack(call.sendbuf, bytes, "bcast buffer");
  int mask = 1;
  while (mask < n && (relative & mask) == 0) mask <<= 1;
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      int dst = me + mask;
      if (dst >= n) dst -= n;
      send_internal(call.comm, dst, coll_tag(call.comm, seq, 0), data);
    }
    mask >>= 1;
  }
}

void Mpi::run_reduce(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esize = datatype_size(call.datatype);
  const std::size_t bytes = static_cast<std::size_t>(call.count) * esize;
  const int relative = (me - call.root + n) % n;

  auto accum = pack(call.sendbuf, bytes, "reduce send buffer");
  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int src_rel = relative | mask;
      if (src_rel < n) {
        const int src = (src_rel + call.root) % n;
        auto payload =
            recv_internal(call.comm, src, coll_tag(call.comm, seq, 0));
        combine_payload(call.op, call.datatype, payload, accum);
      }
    } else {
      const int dst = ((relative & ~mask) + call.root) % n;
      send_internal(call.comm, dst, coll_tag(call.comm, seq, 0),
                    std::move(accum));
      return;
    }
    mask <<= 1;
  }
  // relative == 0: this rank is the root of the (possibly divergent) tree.
  store(call.recvbuf, accum, "reduce receive buffer");
}

void Mpi::run_scatter(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t rbytes =
      static_cast<std::size_t>(call.recvcount) *
      datatype_size(call.recvdatatype);

  if (me == call.root) {
    const std::size_t sbytes =
        static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
    std::vector<std::byte> own;
    for (int r = 0; r < n; ++r) {
      auto chunk = pack(byte_ptr(call.sendbuf) +
                            static_cast<std::size_t>(r) * sbytes,
                        sbytes, "scatter send buffer");
      if (r == me) {
        own = std::move(chunk);
      } else {
        send_internal(call.comm, r, coll_tag(call.comm, seq, 0),
                      std::move(chunk));
      }
    }
    require_fits(own.size(), rbytes, "scatter");
    store(call.recvbuf, own, "scatter receive buffer");
  } else {
    auto payload =
        recv_internal(call.comm, call.root, coll_tag(call.comm, seq, 0));
    require_fits(payload.size(), rbytes, "scatter");
    store(call.recvbuf, payload, "scatter receive buffer");
  }
}

void Mpi::run_gather(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t sbytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);

  if (me == call.root) {
    const std::size_t rbytes =
        static_cast<std::size_t>(call.recvcount) *
        datatype_size(call.recvdatatype);
    for (int r = 0; r < n; ++r) {
      std::vector<std::byte> payload;
      if (r == me) {
        payload = pack(call.sendbuf, sbytes, "gather send buffer");
      } else {
        payload = recv_internal(call.comm, r, coll_tag(call.comm, seq, 0));
      }
      require_fits(payload.size(), rbytes, "gather");
      store(byte_ptr(call.recvbuf) + static_cast<std::size_t>(r) * rbytes,
            payload, "gather receive buffer");
    }
  } else {
    send_internal(call.comm, call.root, coll_tag(call.comm, seq, 0),
                  pack(call.sendbuf, sbytes, "gather send buffer"));
  }
}

}  // namespace fastfit::mpi

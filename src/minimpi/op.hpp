#pragma once

// MiniMPI reduction operations.
//
// `apply` combines an incoming contribution into an accumulator,
// element-wise, for every (op, datatype) pair that MPI defines — bitwise
// ops reject floating-point types with MPI_ERR_OP, as a production MPI
// does. A corrupted op handle that lands on a *different valid* op silently
// computes the wrong reduction (-> WRONG_ANS); an invalid handle raises
// MPI_ERR_OP at validation time. Both paths matter for Fig 9.

#include <cstddef>
#include <span>
#include <string_view>

#include "minimpi/types.hpp"

namespace fastfit::mpi {

inline constexpr Op kSum = make_op(0);
inline constexpr Op kProd = make_op(1);
inline constexpr Op kMin = make_op(2);
inline constexpr Op kMax = make_op(3);
inline constexpr Op kBand = make_op(4);
inline constexpr Op kBor = make_op(5);
inline constexpr Op kBxor = make_op(6);
inline constexpr Op kLand = make_op(7);
inline constexpr Op kLor = make_op(8);

inline constexpr std::size_t kNumOps = 9;

/// True iff the handle denotes an entry of the op table.
bool is_valid(Op op) noexcept;

/// MPI-style name, e.g. "MPI_SUM". Requires a valid handle.
std::string_view op_name(Op op);

/// True iff `op` is defined for `dtype` (bitwise/logical ops are not
/// defined for floating-point types).
bool op_supports(Op op, Datatype dtype);

/// accum[i] = accum[i] OP incoming[i], element-wise over `count` elements
/// of `dtype`. Both spans must hold exactly count * datatype_size(dtype)
/// bytes. Throws MpiError for invalid handles or unsupported pairs.
void apply(Op op, Datatype dtype, std::span<const std::byte> incoming,
           std::span<std::byte> accum, std::size_t count);

}  // namespace fastfit::mpi

#pragma once

// Tool-interposition interface (MiniMPI's equivalent of PMPI).
//
// Every collective call flows through a CollectiveCall record and a chain
// of ToolHooks before reaching the algorithm. Profilers read the record;
// the fault injector mutates it (flips a bit of a scalar parameter or of
// the data buffer) — without the application or the collective
// implementation knowing a tool exists, exactly like a PMPI shim.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "minimpi/types.hpp"

namespace fastfit::mpi {

class Mpi;

/// Injectable parameters of a collective call (paper Fig 9 uses the first
/// six for MPI_Allreduce; rooted and vector collectives add the rest).
enum class Param : std::uint8_t {
  SendBuf = 0,   ///< one random bit of the send-buffer *contents*
  RecvBuf = 1,   ///< one random bit of the receive-buffer *contents*
  Count = 2,
  Datatype = 3,
  Op = 4,
  Comm = 5,
  Root = 6,
  RecvCount = 7,
  RecvDatatype = 8,
};

inline constexpr std::uint8_t kNumParams = 9;

/// Name used in reports, e.g. "sendbuf".
const char* to_string(Param param) noexcept;

/// The parameters that exist (and are injectable) for a collective kind.
std::vector<Param> injectable_params(CollectiveKind kind);

/// The mutable record of one collective invocation, as seen by tools.
///
/// Vector-collective count arrays are referenced, not copied; hooks may
/// mutate them in place. `sendbuf` is non-const here although the MPI-level
/// API takes it const: the fault model deliberately corrupts application
/// data, which is the entire point of the tool.
struct CollectiveCall {
  CollectiveKind kind{};
  int rank = -1;                      ///< caller's rank in `comm`, pre-corruption
  void* sendbuf = nullptr;
  void* recvbuf = nullptr;
  std::int32_t count = 0;             ///< send count / the single count
  std::int32_t recvcount = 0;         ///< recv count where the kind has one
  Datatype datatype{};
  Datatype recvdatatype{};
  Op op{};
  std::int32_t root = 0;
  Comm comm{};
  std::vector<std::int32_t>* sendcounts = nullptr;   ///< alltoallv/scatterv
  std::vector<std::int32_t>* sdispls = nullptr;
  std::vector<std::int32_t>* recvcounts = nullptr;   ///< alltoallv/gatherv
  std::vector<std::int32_t>* rdispls = nullptr;

  // --- identification (filled by the interposition layer) ---
  std::uint32_t site_id = 0;     ///< stable hash of (file, line, kind)
  std::uint64_t invocation = 0;  ///< per-(rank, site) invocation number
  const char* site_file = "";
  int site_line = 0;
};

// --- point-to-point interposition (the paper's future-work extension to
// "other programming elements of an HPC application") -----------------------

enum class P2pKind : std::uint8_t { Send = 0, Recv = 1 };

const char* to_string(P2pKind kind) noexcept;

/// Injectable parameters of a point-to-point call.
enum class P2pParam : std::uint8_t {
  Buffer = 0,   ///< one random bit of the message buffer contents
  Count = 1,
  Datatype = 2,
  Peer = 3,     ///< destination (send) or source (recv) rank
  Tag = 4,
};

inline constexpr std::uint8_t kNumP2pParams = 5;

const char* to_string(P2pParam param) noexcept;

/// The mutable record of one point-to-point call, as seen by tools.
struct P2pCall {
  P2pKind kind{};
  int rank = -1;            ///< caller's rank in `comm`
  void* buffer = nullptr;
  std::int32_t count = 0;
  Datatype datatype{};
  int peer = -1;            ///< dest (send) / source (recv)
  std::int32_t tag = 0;
  Comm comm{};

  std::uint32_t site_id = 0;
  std::uint64_t invocation = 0;
  const char* site_file = "";
  int site_line = 0;
};

/// What a transport-layer tool decides about one outgoing message.
enum class SendAction : std::uint8_t {
  Deliver = 0,  ///< hand the message to the destination mailbox (default)
  Drop = 1,     ///< silently discard it (the receiver hangs or adapts)
  Hold = 2,     ///< park it; the transport re-offers it for late delivery
};

/// A tool attached to the interposition layer. Hooks run on the calling
/// rank's thread; implementations must be thread-safe across ranks.
class ToolHooks {
 public:
  virtual ~ToolHooks() = default;

  /// Runs before validation and the algorithm; may mutate `call`.
  virtual void on_enter(CollectiveCall& call, Mpi& mpi) = 0;

  /// Runs after the algorithm completes without a fault event.
  virtual void on_exit(const CollectiveCall& call, Mpi& mpi) = 0;

  /// Runs before a point-to-point send/recv; may mutate `call`. Default
  /// no-op keeps collective-only tools source-compatible.
  virtual void on_p2p(P2pCall& call, Mpi& mpi) {
    (void)call;
    (void)mpi;
  }

  /// Runs on the sender's thread for every transport-level message —
  /// collective phase traffic and p2p alike — just before mailbox
  /// delivery. Message-fault models corrupt `payload` in place, drop the
  /// message, or hold it for delayed delivery. Default passes through.
  virtual SendAction on_transport_send(int source_world, int dest_world,
                                       std::uint64_t tag,
                                       std::vector<std::byte>& payload) {
    (void)source_world;
    (void)dest_world;
    (void)tag;
    (void)payload;
    return SendAction::Deliver;
  }
};

}  // namespace fastfit::mpi

#pragma once

// Fundamental MiniMPI types: handle encodings and the collective taxonomy.
//
// Datatypes, reduction ops, and communicators are opaque 32-bit handles, as
// in a production MPI. The encoding matters for fault injection: the high
// 20 bits carry a per-class magic tag, so a random single-bit flip usually
// destroys the magic and yields an *invalid* handle (-> MPI_ERR, as real
// MPIs report for corrupted handles), while a flip in the low index bits
// can land on a *different valid* handle (-> silent type/op confusion, the
// nastier real-world case). Both behaviours are reachable, mirroring what
// the paper observed when flipping bits of `datatype`, `op`, and `comm`.

#include <cstdint>

namespace fastfit::mpi {

using RawHandle = std::uint32_t;

inline constexpr RawHandle kDatatypeMagic = 0x7D100000u;
inline constexpr RawHandle kOpMagic = 0x0F200000u;
inline constexpr RawHandle kCommMagic = 0xC0300000u;
inline constexpr RawHandle kMagicMask = 0xFFF00000u;
inline constexpr RawHandle kIndexMask = 0x000FFFFFu;

/// Opaque datatype handle (see datatype.hpp for the registry).
enum class Datatype : RawHandle {};
/// Opaque reduction-operation handle (see op.hpp).
enum class Op : RawHandle {};
/// Opaque communicator handle (see world.hpp for the registry).
enum class Comm : RawHandle {};

constexpr RawHandle raw(Datatype d) noexcept { return static_cast<RawHandle>(d); }
constexpr RawHandle raw(Op o) noexcept { return static_cast<RawHandle>(o); }
constexpr RawHandle raw(Comm c) noexcept { return static_cast<RawHandle>(c); }

constexpr bool has_magic(RawHandle h, RawHandle magic) noexcept {
  return (h & kMagicMask) == magic;
}
constexpr RawHandle handle_index(RawHandle h) noexcept { return h & kIndexMask; }

constexpr Datatype make_datatype(RawHandle index) noexcept {
  return static_cast<Datatype>(kDatatypeMagic | index);
}
constexpr Op make_op(RawHandle index) noexcept {
  return static_cast<Op>(kOpMagic | index);
}
constexpr Comm make_comm(RawHandle index) noexcept {
  return static_cast<Comm>(kCommMagic | index);
}

/// The world communicator always has index 0.
inline constexpr Comm kCommWorld = make_comm(0);

/// The collective operations MiniMPI implements — the set the paper injects
/// into, plus Scan/Reduce_scatter for completeness.
enum class CollectiveKind : std::uint8_t {
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Scatter,
  Scatterv,
  Gather,
  Gatherv,
  Allgather,
  Allgatherv,
  Alltoall,
  Alltoallv,
  ReduceScatterBlock,
  Scan,
};

inline constexpr std::uint8_t kNumCollectiveKinds = 14;

/// MPI-style name, e.g. "MPI_Allreduce".
const char* to_string(CollectiveKind kind) noexcept;

/// Rooted collectives have an asymmetric communication pattern (the basis
/// of semantic-driven pruning, paper Section III-A).
constexpr bool is_rooted(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::Bcast:
    case CollectiveKind::Reduce:
    case CollectiveKind::Scatter:
    case CollectiveKind::Scatterv:
    case CollectiveKind::Gather:
    case CollectiveKind::Gatherv:
      return true;
    default:
      return false;
  }
}

/// Collectives that apply a reduction operation (have an `op` parameter).
constexpr bool has_op(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::Reduce:
    case CollectiveKind::Allreduce:
    case CollectiveKind::ReduceScatterBlock:
    case CollectiveKind::Scan:
      return true;
    default:
      return false;
  }
}

/// Collectives that carry a data payload (Barrier does not).
constexpr bool has_data(CollectiveKind kind) noexcept {
  return kind != CollectiveKind::Barrier;
}

}  // namespace fastfit::mpi

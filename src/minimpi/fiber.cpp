#include "minimpi/fiber.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "support/error.hpp"

#if defined(FASTFIT_FAST_SWITCH)

// The syscall-free context switch. SysV x86-64: everything not on this
// list is caller-saved and already spilled by the compiler around the
// call, so saving the six callee-saved GPRs plus the FP control words
// (mxcsr, x87 cw — callee-saved per the psABI) is a complete context.
// The saved frame layout (from the parked sp upward) is:
//   sp+2  x87 control word        sp+4  mxcsr
//   sp+8  r15 .. sp+40 rbx       sp+48 rbp      sp+56 return address
// init_fast_stack() fabricates exactly this frame so the first switch
// into a fresh fiber "returns" into fastfit_fiber_entry.
extern "C" void fastfit_ctx_swap(void** save_sp, void* target_sp) noexcept;
extern "C" void fastfit_fiber_entry();

asm(R"(
    .text
    .globl fastfit_ctx_swap
    .type fastfit_ctx_swap, @function
fastfit_ctx_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr 4(%rsp)
    fnstcw  2(%rsp)
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    fldcw   2(%rsp)
    ldmxcsr 4(%rsp)
    addq  $8, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
    .size fastfit_ctx_swap, .-fastfit_ctx_swap
)");

extern "C" void fastfit_fiber_entry() {
  // Runs body and dies into the scheduler; a Done fiber is never
  // resumed, so this call cannot return.
  fastfit::mpi::FiberScheduler::trampoline();
  std::abort();
}

#endif  // FASTFIT_FAST_SWITCH

#if defined(FASTFIT_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if defined(FASTFIT_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace fastfit::mpi {
namespace {

// The scheduler driving the calling thread. One level only: worlds do
// not nest, and a fiber never runs another scheduler.
thread_local FiberScheduler* t_active = nullptr;

// Per-thread fiber stack cache. A campaign runs thousands of worlds on
// the same few executor threads; recycling stacks keeps their pages
// faulted-in and resident instead of paying a fresh 256 KiB allocation
// plus first-touch faults per rank per trial. Stacks are handed out
// uninitialized — a context's stack needs no clearing.
class StackPool {
 public:
  std::unique_ptr<std::byte[]> acquire(std::size_t bytes) {
    if (bytes != bytes_) {
      free_.clear();  // size changed (tests tune it): drop the cache
      bytes_ = bytes;
    } else if (!free_.empty()) {
      auto stack = std::move(free_.back());
      free_.pop_back();
      return stack;
    }
    return std::unique_ptr<std::byte[]>(new std::byte[bytes]);
  }

  void release(std::unique_ptr<std::byte[]> stack) {
    if (free_.size() < kMaxCached) free_.push_back(std::move(stack));
  }

 private:
  // Bounds the cache at one full-size world per thread (512 fibers of
  // 256 KiB = 128 MiB); larger worlds simply reallocate the excess.
  static constexpr std::size_t kMaxCached = 512;
  std::size_t bytes_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> free_;
};

thread_local StackPool t_stack_pool;

#if defined(FASTFIT_FAST_SWITCH)
// Writes the bootstrap frame fastfit_ctx_swap restores from (layout
// documented at its definition) and returns the initial parked sp.
// Alignment: sp is chosen so the entry thunk starts with rsp % 16 == 8,
// exactly as if it had been `call`ed.
void* init_fast_stack(std::byte* base, std::size_t bytes) {
  const auto top =
      reinterpret_cast<std::uintptr_t>(base + bytes) & ~std::uintptr_t{15};
  std::byte* sp = reinterpret_cast<std::byte*>(top) - 72;
  std::memset(sp, 0, 64);
  std::uint32_t mxcsr;
  std::uint16_t fpcw;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fpcw));
  std::memcpy(sp + 2, &fpcw, sizeof fpcw);
  std::memcpy(sp + 4, &mxcsr, sizeof mxcsr);
  const auto entry = reinterpret_cast<std::uintptr_t>(&fastfit_fiber_entry);
  std::memcpy(sp + 56, &entry, sizeof entry);
  return sp;
}
#endif  // FASTFIT_FAST_SWITCH

#if defined(FASTFIT_ASAN_FIBERS)
// The OS thread's real stack, learned from the first switch away from
// it; needed to annotate every fiber -> scheduler switch.
thread_local const void* t_sched_stack_bottom = nullptr;
thread_local std::size_t t_sched_stack_size = 0;
#endif

}  // namespace

FiberScheduler* FiberScheduler::active() noexcept { return t_active; }

FiberScheduler::FiberScheduler(int nfibers, std::size_t stack_bytes)
    : nfibers_(nfibers), stack_bytes_(stack_bytes) {
  if (nfibers_ < 1) {
    throw InternalError("FiberScheduler: need at least one fiber");
  }
  fibers_.resize(static_cast<std::size_t>(nfibers_));
}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::trampoline() {
  FiberScheduler* self = t_active;
  const int i = self->current_;
#if defined(FASTFIT_ASAN_FIBERS)
  // First arrival on this fiber's stack: record where we came from (the
  // scheduler's real thread stack) for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &t_sched_stack_bottom,
                                  &t_sched_stack_size);
#endif
  try {
    (*self->body_)(i);
  } catch (...) {
    // The world's rank wrapper catches everything; anything landing here
    // is a scheduler-user bug. First error wins, mirroring the executor.
    if (!self->error_) self->error_ = std::current_exception();
  }
  {
    std::lock_guard lock(self->mutex_);
    self->fibers_[static_cast<std::size_t>(i)].state = State::Done;
    ++self->finished_;
  }
  self->switch_to_scheduler(/*dying=*/true);
  // Unreachable: a dying fiber is never resumed (on the ucontext path
  // uc_link backstops it; on the fast path the entry thunk aborts).
}

void FiberScheduler::resume(int fiber) {
  Fiber& f = fibers_[static_cast<std::size_t>(fiber)];
  {
    std::lock_guard lock(mutex_);
    f.state = State::Running;
  }
  current_ = fiber;
#if defined(FASTFIT_TSAN_FIBERS)
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
#if defined(FASTFIT_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&asan_fake_stack_, f.stack.get(),
                                 stack_bytes_);
#endif
#if defined(FASTFIT_FAST_SWITCH)
  fastfit_ctx_swap(&sched_sp_, f.saved_sp);
#else
  swapcontext(&sched_context_, &f.context);
#endif
#if defined(FASTFIT_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, nullptr, nullptr);
#endif
  current_ = -1;
}

void FiberScheduler::switch_to_scheduler(bool dying) {
  Fiber& f = fibers_[static_cast<std::size_t>(current_)];
#if defined(FASTFIT_TSAN_FIBERS)
  __tsan_switch_to_fiber(tsan_sched_fiber_, 0);
#endif
#if defined(FASTFIT_ASAN_FIBERS)
  // A dying fiber passes nullptr so ASan releases its fake stack.
  void* asan_save = nullptr;
  __sanitizer_start_switch_fiber(dying ? nullptr : &asan_save,
                                 t_sched_stack_bottom, t_sched_stack_size);
#endif
#if defined(FASTFIT_FAST_SWITCH)
  fastfit_ctx_swap(&f.saved_sp, sched_sp_);
#else
  swapcontext(&f.context, &sched_context_);
#endif
  // Only a blocked (not dying) fiber ever gets here, freshly resumed.
#if defined(FASTFIT_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(asan_save, nullptr, nullptr);
#else
  (void)dying;
#endif
}

void FiberScheduler::block_current() {
  if (current_ < 0) {
    throw InternalError("FiberScheduler::block_current: not inside a fiber");
  }
  {
    std::lock_guard lock(mutex_);
    Fiber& f = fibers_[static_cast<std::size_t>(current_)];
    if (f.wake_pending) {
      // A wake raced our entry (kill_rank from another thread between the
      // caller's queue scan and this park): consume it and keep running.
      f.wake_pending = false;
      return;
    }
    f.state = State::Blocked;
  }
  switch_to_scheduler(/*dying=*/false);
}

void FiberScheduler::make_ready(int fiber) {
  bool notify = false;
  {
    std::lock_guard lock(mutex_);
    Fiber& f = fibers_[static_cast<std::size_t>(fiber)];
    switch (f.state) {
      case State::Blocked:
        f.state = State::Ready;
        f.wake_pending = false;
        ready_.push_back(fiber);
        // Most wakes happen while the scheduler thread is running another
        // fiber (sender delivering to a parked receiver); it will see the
        // non-empty deque on its next dispatch without a futex. Only a
        // thread actually parked in wait_for_ready needs the notify — its
        // predicate re-checks ready_ under this same mutex, so gating on
        // cv_waiting_ cannot lose a wake.
        notify = cv_waiting_;
        break;
      case State::Running:
        f.wake_pending = true;  // latched; block_current() consumes it
        break;
      case State::Ready:
      case State::Done:
        break;
    }
  }
  if (notify) ready_cv_.notify_all();
}

std::vector<int> FiberScheduler::blocked() const {
  std::vector<int> out;
  std::lock_guard lock(mutex_);
  for (int i = 0; i < nfibers_; ++i) {
    if (fibers_[static_cast<std::size_t>(i)].state == State::Blocked) {
      out.push_back(i);
    }
  }
  return out;
}

bool FiberScheduler::wait_for_ready(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mutex_);
  cv_waiting_ = true;
  const bool ready = ready_cv_.wait_until(lock, deadline,
                                          [&] { return !ready_.empty(); });
  cv_waiting_ = false;
  return ready;
}

void FiberScheduler::run(const std::function<void(int)>& body,
                         const std::function<void()>& on_idle) {
  if (t_active != nullptr) {
    throw InternalError("FiberScheduler::run: schedulers do not nest");
  }
  t_active = this;
  body_ = &body;
#if defined(FASTFIT_TSAN_FIBERS)
  tsan_sched_fiber_ = __tsan_get_current_fiber();
#endif

  for (int i = 0; i < nfibers_; ++i) {
    Fiber& f = fibers_[static_cast<std::size_t>(i)];
    f.stack = t_stack_pool.acquire(stack_bytes_);
#if defined(FASTFIT_FAST_SWITCH)
    f.saved_sp = init_fast_stack(f.stack.get(), stack_bytes_);
#else
    if (getcontext(&f.context) != 0) {
      t_active = nullptr;
      throw InternalError("FiberScheduler: getcontext failed");
    }
    f.context.uc_stack.ss_sp = f.stack.get();
    f.context.uc_stack.ss_size = stack_bytes_;
    f.context.uc_link = &sched_context_;
    makecontext(&f.context, &FiberScheduler::trampoline, 0);
#endif
#if defined(FASTFIT_TSAN_FIBERS)
    f.tsan_fiber = __tsan_create_fiber(0);
#endif
    f.state = State::Ready;
    ready_.push_back(i);
  }

  while (finished_ < nfibers_) {
    int next = -1;
    {
      std::lock_guard lock(mutex_);
      if (!ready_.empty()) {
        next = ready_.front();
        ready_.pop_front();
      }
    }
    if (next >= 0) {
      resume(next);
      continue;
    }
    // No runnable fiber. The idle handler owns the verdict: wake a
    // satisfiable wait, prove a deadlock, or wait out the watchdog.
    on_idle();
  }

#if defined(FASTFIT_TSAN_FIBERS)
  for (auto& f : fibers_) {
    if (f.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(f.tsan_fiber);
      f.tsan_fiber = nullptr;
    }
  }
#endif
  for (auto& f : fibers_) {
    if (f.stack != nullptr) t_stack_pool.release(std::move(f.stack));
  }
  body_ = nullptr;
  t_active = nullptr;
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
}

}  // namespace fastfit::mpi

// All-to-all-family collectives: MPI_Allgather (ring), MPI_Alltoall and
// MPI_Alltoallv (pairwise exchange rounds, as production MPIs use for
// medium message sizes).

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

using detail::byte_ptr;
using detail::require_fits;

void Mpi::run_allgather(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t sbytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const std::size_t rbytes =
      static_cast<std::size_t>(call.recvcount) *
      datatype_size(call.recvdatatype);

  // Place the local contribution, then circulate blocks around the ring:
  // in step s, forward the block received in step s-1.
  auto own = pack(call.sendbuf, sbytes, "allgather send buffer");
  require_fits(own.size(), rbytes, "allgather");
  store(byte_ptr(call.recvbuf) + static_cast<std::size_t>(me) * rbytes, own,
        "allgather receive buffer");

  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int held = me;
  for (int step = 1; step < n; ++step) {
    const auto phase = static_cast<std::uint8_t>(step & 0xff);
    auto block = pack(byte_ptr(call.recvbuf) +
                          static_cast<std::size_t>(held) * rbytes,
                      rbytes, "allgather receive buffer");
    send_internal(call.comm, right, coll_tag(call.comm, seq, phase),
                  std::move(block));
    auto payload =
        recv_internal(call.comm, left, coll_tag(call.comm, seq, phase));
    held = (me - step + n) % n;
    require_fits(payload.size(), rbytes, "allgather");
    store(byte_ptr(call.recvbuf) + static_cast<std::size_t>(held) * rbytes,
          payload, "allgather receive buffer");
  }
}

void Mpi::run_alltoall(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t sbytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  const std::size_t rbytes =
      static_cast<std::size_t>(call.recvcount) *
      datatype_size(call.recvdatatype);

  // Local block.
  auto mine = pack(byte_ptr(call.sendbuf) +
                       static_cast<std::size_t>(me) * sbytes,
                   sbytes, "alltoall send buffer");
  require_fits(mine.size(), rbytes, "alltoall");
  store(byte_ptr(call.recvbuf) + static_cast<std::size_t>(me) * rbytes, mine,
        "alltoall receive buffer");

  for (int step = 1; step < n; ++step) {
    const auto phase = static_cast<std::uint8_t>(step & 0xff);
    const int dst = (me + step) % n;
    const int src = (me - step + n) % n;
    send_internal(call.comm, dst, coll_tag(call.comm, seq, phase),
                  pack(byte_ptr(call.sendbuf) +
                           static_cast<std::size_t>(dst) * sbytes,
                       sbytes, "alltoall send buffer"));
    auto payload =
        recv_internal(call.comm, src, coll_tag(call.comm, seq, phase));
    require_fits(payload.size(), rbytes, "alltoall");
    store(byte_ptr(call.recvbuf) + static_cast<std::size_t>(src) * rbytes,
          payload, "alltoall receive buffer");
  }
}

void Mpi::run_alltoallv(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esend = datatype_size(call.datatype);
  const std::size_t erecv = datatype_size(call.recvdatatype);
  const auto& scounts = *call.sendcounts;
  const auto& sdispls = *call.sdispls;
  const auto& rcounts = *call.recvcounts;
  const auto& rdispls = *call.rdispls;

  const auto send_block = [&](int r) {
    const std::size_t bytes =
        static_cast<std::size_t>(scounts[static_cast<std::size_t>(r)]) * esend;
    const std::size_t offset =
        static_cast<std::size_t>(sdispls[static_cast<std::size_t>(r)]) * esend;
    return pack(byte_ptr(call.sendbuf) + offset, bytes,
                "alltoallv send buffer");
  };
  const auto store_block = [&](int r, std::span<const std::byte> payload) {
    const std::size_t bytes =
        static_cast<std::size_t>(rcounts[static_cast<std::size_t>(r)]) * erecv;
    const std::size_t offset =
        static_cast<std::size_t>(rdispls[static_cast<std::size_t>(r)]) * erecv;
    require_fits(payload.size(), bytes, "alltoallv");
    store(byte_ptr(call.recvbuf) + offset, payload,
          "alltoallv receive buffer");
  };

  store_block(me, send_block(me));
  for (int step = 1; step < n; ++step) {
    const auto phase = static_cast<std::uint8_t>(step & 0xff);
    const int dst = (me + step) % n;
    const int src = (me - step + n) % n;
    send_internal(call.comm, dst, coll_tag(call.comm, seq, phase),
                  send_block(dst));
    store_block(src,
                recv_internal(call.comm, src, coll_tag(call.comm, seq, phase)));
  }
}

}  // namespace fastfit::mpi

#pragma once

// Point-to-point transport: one mailbox per rank.
//
// Collectives in MiniMPI are built from real message exchanges over these
// mailboxes (binomial trees, recursive doubling, pairwise exchange), so a
// corrupted parameter that makes ranks disagree about the communication
// schedule — e.g. a flipped `root` — produces a genuine unmatched
// send/recv. The receive path waits with a deadline; when the deadline
// passes the rank raises SimTimeout (the job "hangs", paper: INF_LOOP),
// and when another rank has already failed, the world poison wakes every
// waiter with WorldAborted so trials finish promptly.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace fastfit::mpi {

class FiberScheduler;

/// A delivered message. `tag` encodes (communicator, collective sequence,
/// phase) for collective traffic; plain p2p uses user tags.
struct Message {
  int source = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;
};

/// Shared flag that tears down a world once any rank fails.
struct PoisonState {
  std::mutex mutex;
  std::condition_variable cv;
  bool poisoned = false;
  /// Lock-free mirror of `poisoned` for hot paths (snapshot replay polls
  /// it per op) that must not contend on the teardown mutex.
  std::atomic<bool> flag{false};
  /// ULFM-style revocation: set (instead of poison) when a rank fail-stops
  /// with repair enabled. Waiters on pre-death communicators observe it
  /// and raise RankRevoked; post-repair communicators are exempt.
  bool revoked = false;
  std::atomic<bool> revoked_flag{false};

  void poison() {
    {
      std::lock_guard lock(mutex);
      poisoned = true;
    }
    flag.store(true, std::memory_order_release);
    cv.notify_all();
  }

  void revoke() {
    {
      std::lock_guard lock(mutex);
      revoked = true;
    }
    revoked_flag.store(true, std::memory_order_release);
    cv.notify_all();
  }
};

/// Unbounded MPSC mailbox with (source, tag) matching and deadline waits.
class Mailbox {
 public:
  explicit Mailbox(PoisonState& poison) : poison_(&poison) {}

  /// Enqueues a message (called by the sending rank's thread).
  void deliver(Message message);

  /// Blocks until a message matching (source, tag) is available, the
  /// deadline passes (throws SimTimeout), or the world is poisoned (throws
  /// WorldAborted). Matching is exact; out-of-order arrivals with other
  /// tags stay queued. When `revocable` is set, a world revocation wakes
  /// the wait with RankRevoked (receives on post-repair communicators pass
  /// revocable=false and keep waiting). A doomed owner (World::kill_rank
  /// or a fail-stop fault on this rank) raises RankKilled instead.
  ///
  /// On a thread driven by a FiberScheduler the wait is a cooperative
  /// yield instead of a condition-variable park: the rendezvous is the
  /// fiber engine's yield point. Exception ordering and messages are
  /// identical on both paths — the engine parity suite depends on it.
  Message receive(int source, std::uint64_t tag,
                  std::chrono::steady_clock::time_point deadline,
                  bool revocable = true);

  /// Arms the fail-stop kill signal for this mailbox's owning rank:
  /// receive() polls `doomed` and raises RankKilled once it latches.
  void set_doom(int owner_rank, const std::atomic<bool>* doomed) {
    doom_rank_ = owner_rank;
    doom_ = doomed;
  }

  /// Number of queued (unmatched) messages; used by tests and the
  /// post-trial transport audit.
  std::size_t pending() const;

  /// Whether a message matching (source, tag) is queued right now. Used
  /// by the hang monitor: a blocked rank whose awaited message is already
  /// here is about to make progress, so the world is not deadlocked.
  bool has_match(int source, std::uint64_t tag) const;

  /// Wakes any waiter so it can observe the poison flag. Called by the
  /// world during teardown. Takes the mailbox mutex before notifying so
  /// the wake cannot slip between a waiter's poison check and its entry
  /// into the timed wait (that window would otherwise swallow the only
  /// notification and leave the waiter parked for the full watchdog).
  /// Under the fiber engine the same call marks the owning fiber ready.
  void wake();

  /// Fiber-engine wake routing: deliveries and wakes mark `owner_rank`'s
  /// fiber ready on `sched` instead of (only) notifying the condition
  /// variable. Installed by the world before the scheduler starts and
  /// cleared after it drains; guarded by the mailbox mutex so a late
  /// cross-thread wake (a test's kill_rank racing world teardown) can
  /// never observe a dangling scheduler.
  void set_fiber_waker(FiberScheduler* sched, int owner_rank);

 private:
  /// The cooperative twin of the condition-variable wait loop in
  /// receive(): identical match/doom/poison/revoke/deadline ordering and
  /// exception text, but parks by yielding the calling fiber.
  Message receive_fiber(int source, std::uint64_t tag,
                        std::chrono::steady_clock::time_point deadline,
                        bool revocable, FiberScheduler& sched);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  PoisonState* poison_;
  int doom_rank_ = -1;
  const std::atomic<bool>* doom_ = nullptr;
  FiberScheduler* fiber_sched_ = nullptr;  // guarded by mutex_
  int fiber_rank_ = -1;
};

}  // namespace fastfit::mpi

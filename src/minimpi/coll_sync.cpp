// MPI_Barrier: dissemination algorithm (Hensgen/Finkel/Manber).
//
// ceil(log2(n)) rounds; in round k every rank signals (rank + 2^k) mod n
// and waits for (rank - 2^k) mod n. A rank that never arrives (because it
// faulted or diverged) starves its successors, which is precisely how a
// damaged barrier hangs a real job.

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

void Mpi::run_barrier(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  std::uint8_t phase = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++phase) {
    const int dst = (me + mask) % n;
    const int src = (me - mask + n) % n;
    send_internal(call.comm, dst, coll_tag(call.comm, seq, phase), {});
    recv_internal(call.comm, src, coll_tag(call.comm, seq, phase));
  }
}

}  // namespace fastfit::mpi

// Vector variants of the rooted/gathering collectives: MPI_Scatterv,
// MPI_Gatherv, MPI_Allgatherv. Linear/ring algorithms with per-rank
// counts and displacements (in elements). The count arrays are part of
// the injectable parameter surface: a flipped entry shears exactly one
// rank's block.

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

using detail::byte_ptr;
using detail::require_fits;

void Mpi::run_scatterv(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t rbytes =
      static_cast<std::size_t>(call.recvcount) *
      datatype_size(call.recvdatatype);

  if (me == call.root) {
    const std::size_t esend = datatype_size(call.datatype);
    const auto& counts = *call.sendcounts;
    const auto& displs = *call.sdispls;
    std::vector<std::byte> own;
    for (int r = 0; r < n; ++r) {
      const std::size_t bytes =
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]) *
          esend;
      const std::size_t offset =
          static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) *
          esend;
      auto chunk = pack(byte_ptr(call.sendbuf) + offset, bytes,
                        "scatterv send buffer");
      if (r == me) {
        own = std::move(chunk);
      } else {
        send_internal(call.comm, r, coll_tag(call.comm, seq, 0),
                      std::move(chunk));
      }
    }
    require_fits(own.size(), rbytes, "scatterv");
    store(call.recvbuf, own, "scatterv receive buffer");
  } else {
    auto payload =
        recv_internal(call.comm, call.root, coll_tag(call.comm, seq, 0));
    require_fits(payload.size(), rbytes, "scatterv");
    store(call.recvbuf, payload, "scatterv receive buffer");
  }
}

void Mpi::run_gatherv(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t sbytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);

  if (me == call.root) {
    const std::size_t erecv = datatype_size(call.recvdatatype);
    const auto& counts = *call.recvcounts;
    const auto& displs = *call.rdispls;
    for (int r = 0; r < n; ++r) {
      std::vector<std::byte> payload;
      if (r == me) {
        payload = pack(call.sendbuf, sbytes, "gatherv send buffer");
      } else {
        payload = recv_internal(call.comm, r, coll_tag(call.comm, seq, 0));
      }
      const std::size_t bytes =
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]) *
          erecv;
      const std::size_t offset =
          static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) *
          erecv;
      require_fits(payload.size(), bytes, "gatherv");
      store(byte_ptr(call.recvbuf) + offset, payload,
            "gatherv receive buffer");
    }
  } else {
    send_internal(call.comm, call.root, coll_tag(call.comm, seq, 0),
                  pack(call.sendbuf, sbytes, "gatherv send buffer"));
  }
}

void Mpi::run_allgatherv(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t erecv = datatype_size(call.recvdatatype);
  const auto& counts = *call.recvcounts;
  const auto& displs = *call.rdispls;

  const auto block_bytes = [&](int r) {
    return static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]) *
           erecv;
  };
  const auto block_base = [&](int r) {
    return byte_ptr(call.recvbuf) +
           static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) *
               erecv;
  };

  const std::size_t sbytes =
      static_cast<std::size_t>(call.count) * datatype_size(call.datatype);
  auto own = pack(call.sendbuf, sbytes, "allgatherv send buffer");
  require_fits(own.size(), block_bytes(me), "allgatherv");
  store(block_base(me), own, "allgatherv receive buffer");

  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int held = me;
  for (int step = 1; step < n; ++step) {
    const auto phase = static_cast<std::uint8_t>(step & 0xff);
    send_internal(call.comm, right, coll_tag(call.comm, seq, phase),
                  pack(block_base(held), block_bytes(held),
                       "allgatherv receive buffer"));
    auto payload =
        recv_internal(call.comm, left, coll_tag(call.comm, seq, phase));
    held = (me - step + n) % n;
    require_fits(payload.size(), block_bytes(held), "allgatherv");
    store(block_base(held), payload, "allgatherv receive buffer");
  }
}

}  // namespace fastfit::mpi

#include "minimpi/types.hpp"

namespace fastfit::mpi {

const char* to_string(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::Barrier: return "MPI_Barrier";
    case CollectiveKind::Bcast: return "MPI_Bcast";
    case CollectiveKind::Reduce: return "MPI_Reduce";
    case CollectiveKind::Allreduce: return "MPI_Allreduce";
    case CollectiveKind::Scatter: return "MPI_Scatter";
    case CollectiveKind::Scatterv: return "MPI_Scatterv";
    case CollectiveKind::Gather: return "MPI_Gather";
    case CollectiveKind::Gatherv: return "MPI_Gatherv";
    case CollectiveKind::Allgather: return "MPI_Allgather";
    case CollectiveKind::Allgatherv: return "MPI_Allgatherv";
    case CollectiveKind::Alltoall: return "MPI_Alltoall";
    case CollectiveKind::Alltoallv: return "MPI_Alltoallv";
    case CollectiveKind::ReduceScatterBlock: return "MPI_Reduce_scatter_block";
    case CollectiveKind::Scan: return "MPI_Scan";
  }
  return "MPI_Unknown";
}

}  // namespace fastfit::mpi

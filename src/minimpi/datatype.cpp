#include "minimpi/datatype.hpp"

#include <array>

#include "support/error.hpp"

namespace fastfit::mpi {
namespace {

struct DatatypeInfo {
  std::string_view name;
  std::size_t size;
};

constexpr std::array<DatatypeInfo, kNumDatatypes> kTable{{
    {"MPI_CHAR", sizeof(char)},
    {"MPI_BYTE", 1},
    {"MPI_INT", sizeof(std::int32_t)},
    {"MPI_UNSIGNED", sizeof(std::uint32_t)},
    {"MPI_LONG_LONG", sizeof(std::int64_t)},
    {"MPI_UNSIGNED_LONG_LONG", sizeof(std::uint64_t)},
    {"MPI_FLOAT", sizeof(float)},
    {"MPI_DOUBLE", sizeof(double)},
}};

const DatatypeInfo& info(Datatype dtype) {
  if (!is_valid(dtype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(dtype)));
  }
  return kTable[handle_index(raw(dtype))];
}

}  // namespace

bool is_valid(Datatype dtype) noexcept {
  const RawHandle h = raw(dtype);
  return has_magic(h, kDatatypeMagic) && handle_index(h) < kNumDatatypes;
}

std::size_t datatype_size(Datatype dtype) { return info(dtype).size; }

std::string_view datatype_name(Datatype dtype) { return info(dtype).name; }

}  // namespace fastfit::mpi

#pragma once

// Bounds-checked memory registry: the simulated address space of one rank.
//
// Every buffer an application hands to MiniMPI must be registered here
// (apps use the RegisteredBuffer RAII wrapper). All MiniMPI data movement
// validates (pointer, byte count) against the registry before touching
// memory; an access that leaves every registered region raises SimSegFault
// — the in-process, restartable stand-in for the SIGSEGV a corrupted count
// or datatype provokes on real hardware. This is the substitution that
// lets a campaign run millions of "segfaulting" trials without dying.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace fastfit::mpi {

/// Per-rank registry of valid buffer regions.
///
/// Thread-safety: registration/removal and checking lock a mutex; the
/// owning rank thread and the trial teardown path may race.
class MemoryRegistry {
 public:
  /// Registers [ptr, ptr+bytes). Overlapping registrations are rejected.
  void add(const void* ptr, std::size_t bytes);

  /// Removes a previously registered region (by exact base pointer).
  void remove(const void* ptr);

  /// Verifies that [ptr, ptr+bytes) lies wholly inside one registered
  /// region. Throws SimSegFault otherwise. A zero-byte access from a null
  /// pointer is permitted (MPI allows empty transfers).
  void check(const void* ptr, std::size_t bytes,
             const char* what = "access") const;

  /// True iff the range is fully covered (non-throwing form of check()).
  bool covers(const void* ptr, std::size_t bytes) const noexcept;

  std::size_t region_count() const;

 private:
  mutable std::mutex mutex_;
  // base address -> byte length
  std::map<std::uintptr_t, std::size_t> regions_;
};

/// Content-addressed store of immutable, ref-counted byte chunks — the
/// memory substrate of world snapshots (minimpi/snapshot.hpp). Interning
/// the same bytes twice returns the same chunk, so a recording whose
/// collective outputs repeat across ranks or iterations is stored once;
/// `unique_bytes` is what the snapshot cache charges against its budget.
/// Chunks are shared_ptrs: a "clone" of a snapshot copies nothing, and
/// dirty data never exists — replay copies a chunk into the trial's own
/// application buffer and every later write lands there.
class ChunkStore {
 public:
  using Chunk = std::shared_ptr<const std::vector<std::byte>>;

  /// Returns a chunk holding exactly `bytes` (deduplicated by content).
  Chunk intern(const void* data, std::size_t bytes);

  std::size_t unique_bytes() const;
  std::size_t unique_chunks() const;

 private:
  mutable std::mutex mutex_;
  // content hash -> chunks with that hash (collisions compared by value)
  std::map<std::uint64_t, std::vector<Chunk>> buckets_;
  std::size_t bytes_ = 0;
  std::size_t chunks_ = 0;
};

/// RAII typed buffer registered with a rank's MemoryRegistry for its whole
/// lifetime. This is how workloads allocate every buffer that can be named
/// in a collective call.
template <typename T>
class RegisteredBuffer {
 public:
  RegisteredBuffer(MemoryRegistry& registry, std::size_t count, T fill = T{})
      : registry_(&registry), data_(count, fill) {
    registry_->add(data_.data(), data_.size() * sizeof(T));
  }

  RegisteredBuffer(const RegisteredBuffer&) = delete;
  RegisteredBuffer& operator=(const RegisteredBuffer&) = delete;
  RegisteredBuffer(RegisteredBuffer&&) = delete;
  RegisteredBuffer& operator=(RegisteredBuffer&&) = delete;

  ~RegisteredBuffer() {
    if (!data_.empty()) registry_->remove(data_.data());
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  std::size_t size() const noexcept { return data_.size(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

 private:
  MemoryRegistry* registry_;
  std::vector<T> data_;
};

}  // namespace fastfit::mpi

#pragma once

// The per-rank MPI facade: MiniMPI's public API.
//
// One Mpi object is handed to each rank's main function by World::run. Its
// collective methods mirror the MPI-3 C bindings (buffer, count, datatype,
// op, root, comm) and every call:
//
//   1. is wrapped in a CollectiveCall record,
//   2. flows through the installed ToolHooks chain (profiler, injector),
//   3. is validated like a production MPI validates its arguments,
//   4. executes a real message-passing algorithm (binomial trees,
//      recursive doubling, ring, pairwise exchange) over the mailbox
//      transport, with every application-buffer access bounds-checked
//      against the rank's MemoryRegistry.
//
// Call sites are identified by std::source_location so the profiling and
// pruning layers can reason about "the MPI_Allreduce at lu.cpp:123",
// matching the paper's call-site granularity.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <source_location>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/datatype.hpp"
#include "minimpi/hooks.hpp"
#include "minimpi/memory.hpp"
#include "minimpi/op.hpp"
#include "minimpi/snapshot.hpp"
#include "minimpi/types.hpp"
#include "minimpi/world.hpp"

namespace fastfit::mpi {

/// Temporarily registers a stack or member object with a MemoryRegistry;
/// used by the typed convenience wrappers below.
class ScopedRegistration {
 public:
  ScopedRegistration(MemoryRegistry& registry, const void* ptr,
                     std::size_t bytes)
      : registry_(&registry), ptr_(ptr), bytes_(bytes) {
    registry_->add(ptr, bytes);
  }
  // Zero-byte registrations are no-ops on both ends (the registry keeps
  // no record for them).
  ~ScopedRegistration() {
    if (bytes_ > 0) registry_->remove(ptr_);
  }
  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

 private:
  MemoryRegistry* registry_;
  const void* ptr_;
  std::size_t bytes_;
};

class Mpi {
 public:
  /// A facade binds to the shared WorldState (not the World handle) so a
  /// quarantined rank thread keeps a valid view of its world even after
  /// World::run returned.
  Mpi(std::shared_ptr<WorldState> state, int world_rank);

  /// Flushes any messages a transport fault held for delayed delivery (the
  /// rank's end is the last point "later" can mean).
  ~Mpi();

  Mpi(const Mpi&) = delete;
  Mpi& operator=(const Mpi&) = delete;

  int world_rank() const noexcept { return world_rank_; }

  /// Rank of this process in `comm` (-1 never escapes: non-membership
  /// throws MpiError(InvalidComm), as using a foreign communicator would).
  int rank(Comm comm = kCommWorld) const;
  int size(Comm comm = kCommWorld) const;

  MemoryRegistry& registry() { return world_->registry(world_rank_); }

  /// Cooperative watchdog check for application compute loops; throws
  /// SimTimeout past the deadline and WorldAborted once the world is
  /// poisoned. Workloads call this once per outer iteration. Also bumps
  /// this rank's heartbeat, so a compute loop reads as live progress to
  /// the hang monitor (livelock keeps the timeout path).
  void check_deadline();

  /// Shadow-stack probe: where this rank is in application terms. The
  /// trial runner installs one per rank (backed by the rank's trace
  /// context); its result is folded into the pending-op signature that
  /// hang verdicts and autopsies report. Must only be called from this
  /// rank's own thread.
  struct StackProbe {
    std::uint64_t stack_id = 0;
    std::string frame;  ///< innermost shadow frame name
  };
  void set_stack_probe(std::function<StackProbe()> probe) {
    stack_probe_ = std::move(probe);
  }

  // --- point-to-point ----------------------------------------------------

  void send(const void* buf, std::int32_t count, Datatype dtype, int dest,
            std::int32_t tag, Comm comm = kCommWorld,
            std::source_location loc = std::source_location::current());
  void recv(void* buf, std::int32_t count, Datatype dtype, int source,
            std::int32_t tag, Comm comm = kCommWorld,
            std::source_location loc = std::source_location::current());

  /// Nonblocking handle. MiniMPI sends eagerly (buffered), so an isend
  /// request completes immediately; an irecv request defers matching to
  /// wait(). Destroying an incomplete request is an error surfaced by
  /// waitall/wait left undone — tests assert via pending().
  class Request {
   public:
    Request() = default;
    bool pending() const noexcept { return pending_.has_value(); }

   private:
    friend class Mpi;
    struct PendingRecv {
      void* buf;
      std::int32_t count;
      Datatype dtype;
      int source;
      std::int32_t tag;
      Comm comm;
    };
    std::optional<PendingRecv> pending_;
  };

  /// Buffered nonblocking send: the message is injected eagerly; the
  /// returned request is already complete (kept for symmetry/waitall).
  Request isend(const void* buf, std::int32_t count, Datatype dtype, int dest,
                std::int32_t tag, Comm comm = kCommWorld,
                std::source_location loc = std::source_location::current());

  /// Nonblocking receive: parameters are captured (and interposed) now;
  /// matching happens at wait().
  Request irecv(void* buf, std::int32_t count, Datatype dtype, int source,
                std::int32_t tag, Comm comm = kCommWorld,
                std::source_location loc = std::source_location::current());

  /// Completes a request (blocking for pending receives). Idempotent.
  void wait(Request& request);

  /// Completes every request in the span.
  void waitall(std::span<Request> requests);

  // --- collectives (MPI-3 shapes) -----------------------------------------

  void barrier(Comm comm = kCommWorld,
               std::source_location loc = std::source_location::current());

  void bcast(void* buf, std::int32_t count, Datatype dtype, std::int32_t root,
             Comm comm = kCommWorld,
             std::source_location loc = std::source_location::current());

  void reduce(const void* sendbuf, void* recvbuf, std::int32_t count,
              Datatype dtype, Op op, std::int32_t root,
              Comm comm = kCommWorld,
              std::source_location loc = std::source_location::current());

  void allreduce(const void* sendbuf, void* recvbuf, std::int32_t count,
                 Datatype dtype, Op op, Comm comm = kCommWorld,
                 std::source_location loc = std::source_location::current());

  void scatter(const void* sendbuf, std::int32_t sendcount, Datatype sendtype,
               void* recvbuf, std::int32_t recvcount, Datatype recvtype,
               std::int32_t root, Comm comm = kCommWorld,
               std::source_location loc = std::source_location::current());

  void gather(const void* sendbuf, std::int32_t sendcount, Datatype sendtype,
              void* recvbuf, std::int32_t recvcount, Datatype recvtype,
              std::int32_t root, Comm comm = kCommWorld,
              std::source_location loc = std::source_location::current());

  void allgather(const void* sendbuf, std::int32_t sendcount,
                 Datatype sendtype, void* recvbuf, std::int32_t recvcount,
                 Datatype recvtype, Comm comm = kCommWorld,
                 std::source_location loc = std::source_location::current());

  void scatterv(const void* sendbuf,
                const std::vector<std::int32_t>& sendcounts,
                const std::vector<std::int32_t>& sdispls, Datatype sendtype,
                void* recvbuf, std::int32_t recvcount, Datatype recvtype,
                std::int32_t root, Comm comm = kCommWorld,
                std::source_location loc = std::source_location::current());

  void gatherv(const void* sendbuf, std::int32_t sendcount, Datatype sendtype,
               void* recvbuf, const std::vector<std::int32_t>& recvcounts,
               const std::vector<std::int32_t>& rdispls, Datatype recvtype,
               std::int32_t root, Comm comm = kCommWorld,
               std::source_location loc = std::source_location::current());

  void allgatherv(const void* sendbuf, std::int32_t sendcount,
                  Datatype sendtype, void* recvbuf,
                  const std::vector<std::int32_t>& recvcounts,
                  const std::vector<std::int32_t>& rdispls, Datatype recvtype,
                  Comm comm = kCommWorld,
                  std::source_location loc = std::source_location::current());

  void alltoall(const void* sendbuf, std::int32_t sendcount, Datatype sendtype,
                void* recvbuf, std::int32_t recvcount, Datatype recvtype,
                Comm comm = kCommWorld,
                std::source_location loc = std::source_location::current());

  void alltoallv(const void* sendbuf,
                 const std::vector<std::int32_t>& sendcounts,
                 const std::vector<std::int32_t>& sdispls, Datatype sendtype,
                 void* recvbuf, const std::vector<std::int32_t>& recvcounts,
                 const std::vector<std::int32_t>& rdispls, Datatype recvtype,
                 Comm comm = kCommWorld,
                 std::source_location loc = std::source_location::current());

  void reduce_scatter_block(
      const void* sendbuf, void* recvbuf, std::int32_t recvcount,
      Datatype dtype, Op op, Comm comm = kCommWorld,
      std::source_location loc = std::source_location::current());

  void scan(const void* sendbuf, void* recvbuf, std::int32_t count,
            Datatype dtype, Op op, Comm comm = kCommWorld,
            std::source_location loc = std::source_location::current());

  // --- communicator management --------------------------------------------

  /// Collective over `parent`: partitions ranks by `color`, orders each
  /// group by (key, parent rank). Returns the caller's new communicator.
  Comm comm_split(Comm parent, int color, int key);

  /// Collective over `parent`: duplicate with identical membership.
  Comm comm_dup(Comm parent);

  // --- ULFM-style repair ----------------------------------------------------

  /// After catching RankRevoked (a peer fail-stopped under repair mode):
  /// builds the communicator of surviving ranks. No rendezvous — every
  /// survivor derives the same member list from the world's stable dead
  /// set, so each obtains the same handle independently (the registration
  /// is idempotent on its key). The new communicator postdates the
  /// revocation and is exempt from it.
  Comm shrink_and_continue();

  /// Reports this survivor's repair hook as complete; when every survivor
  /// has called it the trial classifies as REPAIRED instead of RANK_DEAD.
  void mark_repaired();

  // --- typed conveniences ---------------------------------------------------

  /// Allreduce of a single value; registers the temporaries for the call.
  template <typename T>
  T allreduce_value(T value, Op op, Comm comm = kCommWorld,
                    std::source_location loc =
                        std::source_location::current()) {
    T in = value;
    T out{};
    ScopedRegistration keep_in(registry(), &in, sizeof(T));
    ScopedRegistration keep_out(registry(), &out, sizeof(T));
    allreduce(&in, &out, 1, datatype_of<T>(), op, comm, loc);
    return out;
  }

  /// Bcast of a single value from `root`.
  template <typename T>
  T bcast_value(T value, std::int32_t root, Comm comm = kCommWorld,
                std::source_location loc = std::source_location::current()) {
    T slot = value;
    ScopedRegistration keep(registry(), &slot, sizeof(T));
    bcast(&slot, 1, datatype_of<T>(), root, comm, loc);
    return slot;
  }

  // --- internals shared with the collective algorithms ---------------------
  // (public for the free-standing algorithm translation units; applications
  // have no reason to call these.)

  struct Detail;

  /// Sends raw bytes to `dest` (rank within `comm`) under a fully formed
  /// transport tag.
  void send_internal(Comm comm, int dest, std::uint64_t tag,
                     std::vector<std::byte> payload);

  /// Receives raw bytes from `source` (rank within `comm`); blocks until
  /// matched, the watchdog deadline, or world poisoning.
  std::vector<std::byte> recv_internal(Comm comm, int source,
                                       std::uint64_t tag);

  /// Reads `bytes` from an application buffer through the bounds registry.
  std::vector<std::byte> pack(const void* ptr, std::size_t bytes,
                              const char* what);

  /// Writes bytes into an application buffer through the bounds registry.
  void store(void* ptr, std::span<const std::byte> data, const char* what);

  /// Transport tag for collective phase traffic.
  std::uint64_t coll_tag(Comm comm, std::uint32_t seq,
                         std::uint8_t phase) const;

 private:
  void dispatch(CollectiveCall& call, std::source_location loc);
  void dispatch_p2p(P2pCall& call, std::source_location loc);
  /// Site identification shared by the live and the replay p2p paths:
  /// fills site_id/invocation/rank, advancing the invocation counter.
  void fill_p2p_site(P2pCall& call, const std::source_location& loc);
  void run_algorithm(const CollectiveCall& call, std::uint32_t seq);

  // --- snapshot replay (minimpi/snapshot.hpp) ----------------------------
  // While replay_active(), API calls are served from the recording with
  // zero rendezvous; the op at the cut (and everything after) runs live.
  bool replay_active() const noexcept { return replay_next_ < replay_cut_; }
  void replay_collective(CollectiveCall& call);
  void replay_send(const P2pCall& call);
  void replay_recv(const P2pCall& call);
  /// Lock-free poison poll so a mid-replay rank notices teardown promptly.
  void replay_poison_check() const;
  /// The next recorded op, verified to be of `kind` at this site; any
  /// mismatch is a divergence (ReplayError).
  const RecordedOp& replay_expect(RecordedOp::Kind kind, std::uint32_t site_id,
                                  std::uint64_t invocation, const char* what);

  // one implementation per collective family (coll_*.cpp)
  void run_barrier(const CollectiveCall& call, std::uint32_t seq);
  void run_bcast(const CollectiveCall& call, std::uint32_t seq);
  void run_bcast_chain(const CollectiveCall& call, std::uint32_t seq);
  void run_allreduce_reduce_bcast(const CollectiveCall& call,
                                  std::uint32_t seq);
  void run_reduce(const CollectiveCall& call, std::uint32_t seq);
  void run_allreduce(const CollectiveCall& call, std::uint32_t seq);
  void run_scatter(const CollectiveCall& call, std::uint32_t seq);
  void run_gather(const CollectiveCall& call, std::uint32_t seq);
  void run_scatterv(const CollectiveCall& call, std::uint32_t seq);
  void run_gatherv(const CollectiveCall& call, std::uint32_t seq);
  void run_allgather(const CollectiveCall& call, std::uint32_t seq);
  void run_allgatherv(const CollectiveCall& call, std::uint32_t seq);
  void run_alltoall(const CollectiveCall& call, std::uint32_t seq);
  void run_alltoallv(const CollectiveCall& call, std::uint32_t seq);
  void run_reduce_scatter_block(const CollectiveCall& call, std::uint32_t seq);
  void run_scan(const CollectiveCall& call, std::uint32_t seq);

  /// Publishes the pending-op signature for the operation this rank is
  /// entering (op name, comm, seq, root, shadow frame) to the progress
  /// table.
  void publish_op(const char* op, Comm comm, std::uint32_t seq, int root);

  /// Fail-stop / revocation checks shared by every cancellation point:
  /// raises RankKilled when this rank is doomed.
  void check_doom() const;

  /// Delivers messages held back by a MessageDelay fault, in the order
  /// they were held. Runs after each subsequent send and at rank end, so
  /// the delay is bounded by the rank's own program order (deterministic).
  void flush_held();

  std::shared_ptr<WorldState> world_;
  int world_rank_;
  std::function<StackProbe()> stack_probe_;
  /// Per-communicator collective sequence numbers (lockstep across ranks
  /// in fault-free execution; divergence surfaces as unmatched traffic).
  std::map<RawHandle, std::uint32_t> coll_seq_;
  /// Per-(site) invocation counters for call identification.
  std::map<std::uint32_t, std::uint64_t> invocations_;
  /// Per-parent-communicator split counters (comm_split determinism).
  std::map<RawHandle, std::uint32_t> split_seq_;
  /// Recording hook (nullptr outside recording runs). Raw pointer: the
  /// shared_ptr in the state's WorldOptions copy owns it, and that state
  /// outlives every rank thread, quarantined ones included.
  PrefixRecorder* recorder_ = nullptr;
  /// This rank's recorded op stream and cut (replay runs only).
  const std::vector<RecordedOp>* replay_ops_ = nullptr;
  std::size_t replay_cut_ = 0;
  std::size_t replay_next_ = 0;
  /// Messages a transport fault held for delayed delivery: (destination
  /// world rank, message). Rank-local; flushed by flush_held().
  std::vector<std::pair<int, Message>> held_;
};

}  // namespace fastfit::mpi

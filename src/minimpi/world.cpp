#include "minimpi/world.hpp"

#include <algorithm>
#include <exception>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "minimpi/fiber.hpp"
#include "minimpi/mpi.hpp"
#include "minimpi/quarantine.hpp"
#include "telemetry/recorder.hpp"

namespace fastfit::mpi {
namespace {

// Monitor poll period. Two identical consecutive snapshots this far apart
// (with no satisfiable wait) prove the deadlock; total time-to-verdict is
// therefore a couple of milliseconds regardless of the watchdog budget.
constexpr std::chrono::milliseconds kMonitorPoll{1};

// Extra join budget past the watchdog deadline before teardown escalates,
// and again before a straggler is quarantined. Generous relative to the
// cost of unwinding a poisoned rank, tiny relative to a wedged campaign.
constexpr std::chrono::milliseconds kJoinGrace{1000};

}  // namespace

const char* to_string(WorldEngine engine) noexcept {
  switch (engine) {
    case WorldEngine::Fibers: return "fibers";
    case WorldEngine::Threads: return "threads";
  }
  return "unknown";
}

WorldEngine parse_world_engine(const std::string& text) {
  if (text == "fibers") return WorldEngine::Fibers;
  if (text == "threads") return WorldEngine::Threads;
  throw ConfigError("world engine must be one of fibers|threads, got '" +
                    text + "'");
}

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::AppDetected: return "APP_DETECTED";
    case EventType::MpiErr: return "MPI_ERR";
    case EventType::SegFault: return "SEG_FAULT";
    case EventType::Timeout: return "INF_LOOP";
    case EventType::RankDead: return "RANK_DEAD";
  }
  return "UNKNOWN";
}

WorldState::WorldState(const WorldOptions& options)
    : options_(options),
      progress_(options.nranks >= 1 ? options.nranks : 1) {
  if (options_.nranks < 1) {
    throw ConfigError("World: nranks must be at least 1");
  }
  mailboxes_.reserve(static_cast<std::size_t>(options_.nranks));
  registries_.reserve(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(poison_));
    registries_.push_back(std::make_unique<MemoryRegistry>());
  }
  done_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(options_.nranks));
  doomed_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(options_.nranks));
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    done_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
    doomed_[static_cast<std::size_t>(r)].store(false,
                                               std::memory_order_relaxed);
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
    mailboxes_[static_cast<std::size_t>(r)]->set_doom(
        r, &doomed_[static_cast<std::size_t>(r)]);
  }
  std::vector<int> everyone(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    everyone[static_cast<std::size_t>(r)] = r;
  }
  comms_.push_back(CommEntry{std::move(everyone)});
  comm_keys_.emplace("world", 0);
}

Mailbox& WorldState::mailbox(int world_rank) {
  return *mailboxes_.at(static_cast<std::size_t>(world_rank));
}

MemoryRegistry& WorldState::registry(int world_rank) {
  return *registries_.at(static_cast<std::size_t>(world_rank));
}

bool WorldState::poisoned() {
  std::lock_guard lock(poison_.mutex);
  return poison_.poisoned;
}

void WorldState::poison_and_wake() {
  poison_.poison();
  for (auto& mailbox : mailboxes_) mailbox->wake();
}

void WorldState::report_event(int rank, const FaultEvent& event) {
  capture_event(rank, event, std::nullopt);
}

void WorldState::kill_rank(int world_rank) {
  doomed_[static_cast<std::size_t>(world_rank)].store(
      true, std::memory_order_release);
  // Wake the victim if it is parked in a mailbox wait; receive() rechecks
  // the doom flag on wake and raises RankKilled on the victim's thread.
  mailbox(world_rank).wake();
}

std::vector<int> WorldState::alive_members() const {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    if (!rank_dead(r)) alive.push_back(r);
  }
  return alive;
}

bool WorldState::comm_revoked(Comm comm) const noexcept {
  if (!poison_.revoked_flag.load(std::memory_order_acquire)) return false;
  return handle_index(raw(comm)) <
         revoked_comm_limit_.load(std::memory_order_acquire);
}

void WorldState::report_rank_death(int rank, const RankKilled& event) {
  // Publish the death before capturing so the autopsy and any peer
  // analysis ("blocked on dead peer") see the Dead phase.
  progress_.publish_dead(rank);
  const bool first =
      !dead_[static_cast<std::size_t>(rank)].exchange(
          true, std::memory_order_acq_rel);
  if (first) dead_count_.fetch_add(1, std::memory_order_acq_rel);

  if (!options_.repair) {
    capture_event(rank, event, std::nullopt);
    return;
  }
  // Repair mode: record the initiating death without poisoning, then
  // revoke every communicator that existed before this instant. The
  // shrunken communicator survivors build afterwards gets a larger table
  // index and is exempt.
  capture_event(rank, event, std::nullopt, /*poison=*/false);
  {
    std::lock_guard lock(comm_mutex_);
    revoked_comm_limit_.store(comms_.size(), std::memory_order_release);
  }
  poison_.revoke();
  for (auto& mailbox : mailboxes_) mailbox->wake();
}

void WorldState::capture_event(int rank, const FaultEvent& event,
                               std::optional<WorldAutopsy> autopsy,
                               bool poison) {
  {
    std::lock_guard lock(event_mutex_);
    if (!event_) {
      CapturedEvent captured;
      captured.rank = rank;
      captured.message = event.what();
      if (const auto* mpi_error = dynamic_cast<const MpiError*>(&event)) {
        captured.type = EventType::MpiErr;
        captured.mpi_code = mpi_error->code();
      } else if (dynamic_cast<const SimSegFault*>(&event) != nullptr) {
        captured.type = EventType::SegFault;
      } else if (dynamic_cast<const AppError*>(&event) != nullptr) {
        captured.type = EventType::AppDetected;
      } else if (dynamic_cast<const SimTimeout*>(&event) != nullptr) {
        captured.type = EventType::Timeout;
      } else if (dynamic_cast<const RankKilled*>(&event) != nullptr) {
        captured.type = EventType::RankDead;
      } else {
        // WorldAborted never initiates; anything else is a library bug.
        throw InternalError(std::string("report_event: unexpected event: ") +
                            event.what());
      }
      if (auto& rec = telemetry::Recorder::instance();
          rec.enabled() && captured.type == EventType::Timeout) {
        // A monitor-proven deadlock and a watchdog expiry are different
        // verdicts: the first is structural, the second wall-clock.
        if (autopsy && autopsy->deterministic) {
          rec.instant("deadlock-proven", telemetry::Track::Monitor, 0,
                      "rank=" + std::to_string(rank));
          static auto& proven =
              rec.counter("fastfit_deadlocks_proven_total",
                          "Monitor-proven structural deadlocks");
          proven.add();
        } else {
          rec.instant("watchdog-fire", telemetry::Track::Monitor, 0,
                      "rank=" + std::to_string(rank));
          static auto& fires = rec.counter("fastfit_watchdog_fires_total",
                                           "Wall-clock watchdog expiries");
          fires.add();
        }
      }
      event_ = std::move(captured);
      // Attach forensics at poison time: either the monitor's verdicted
      // snapshot, or a live snapshot of the progress table as-is.
      autopsy_ = autopsy ? std::move(autopsy)
                         : build_autopsy(progress_, false, event.what());
    }
  }
  if (poison) poison_and_wake();
}

Comm WorldState::register_comm(const std::string& key,
                               std::vector<int> members) {
  if (members.empty()) {
    throw InternalError("register_comm: empty member list");
  }
  std::lock_guard lock(comm_mutex_);
  if (auto it = comm_keys_.find(key); it != comm_keys_.end()) {
    const auto& existing = comms_[it->second].members;
    if (existing != members) {
      // Two ranks derived the same key for different groups: under a fault
      // this is a communicator-construction inconsistency a real MPI would
      // surface as a communicator error.
      throw MpiError(MpiErrc::InvalidComm,
                     "inconsistent group for communicator key '" + key + "'");
    }
    return make_comm(it->second);
  }
  const auto index = static_cast<RawHandle>(comms_.size());
  if (index > kIndexMask) {
    throw InternalError("register_comm: communicator table exhausted");
  }
  comms_.push_back(CommEntry{std::move(members)});
  comm_keys_.emplace(key, index);
  return make_comm(index);
}

const std::vector<int>& WorldState::group_of(Comm comm) const {
  const RawHandle h = raw(comm);
  std::lock_guard lock(comm_mutex_);
  if (!has_magic(h, kCommMagic) || handle_index(h) >= comms_.size()) {
    throw MpiError(MpiErrc::InvalidComm, "handle 0x" + std::to_string(h));
  }
  return comms_[handle_index(h)].members;
}

int WorldState::comm_rank_of(Comm comm, int world_rank) const {
  const auto& members = group_of(comm);
  const auto it = std::find(members.begin(), members.end(), world_rank);
  if (it == members.end()) return -1;
  return static_cast<int>(it - members.begin());
}

void WorldState::mark_done(int rank) {
  done_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
  {
    std::lock_guard lock(join_mutex_);
    ++finished_;
  }
  join_cv_.notify_all();
}

bool WorldState::wait_all_done_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(join_mutex_);
  return join_cv_.wait_until(lock, deadline,
                             [&] { return finished_ == options_.nranks; });
}

void WorldState::stop_monitor() {
  {
    std::lock_guard lock(monitor_mutex_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
}

void WorldState::monitor_loop() {
  std::vector<RankSnapshot> prev;
  bool have_prev = false;
  for (;;) {
    {
      std::unique_lock lock(monitor_mutex_);
      monitor_cv_.wait_for(lock, kMonitorPoll, [&] { return monitor_stop_; });
      if (monitor_stop_) return;
    }
    if (poisoned()) return;  // an event beat us to it; nothing left to prove
    if (scan_for_deadlock(prev, have_prev)) return;
  }
}

bool WorldState::scan_for_deadlock(std::vector<RankSnapshot>& prev,
                                   bool& have_prev) {
  // Under an in-progress revocation (fail-stop + repair) every blocked
  // survivor is about to wake with RankRevoked; declaring a deadlock here
  // would race the repair and poison it spuriously. A repair that truly
  // wedges still hits the watchdog deadline on its own.
  if (poison_.revoked_flag.load(std::memory_order_acquire)) {
    have_prev = false;
    return false;
  }
  auto snaps = progress_.snapshot_all();

  // Any rank still computing can deliver a message or reach the watchdog
  // on its own: not a deadlock (this is exactly the livelock case that
  // must keep the timeout fallback).
  bool any_blocked = false;
  for (const auto& snap : snaps) {
    if (snap.phase == RankPhase::Computing) {
      have_prev = false;
      return false;
    }
    if (snap.phase == RankPhase::Blocked) any_blocked = true;
  }
  if (!any_blocked) {  // everyone exited; run() will wrap up
    have_prev = false;
    return false;
  }

  // A blocked rank whose awaited (source, tag) is already queued is about
  // to wake up and make progress.
  for (int r = 0; r < static_cast<int>(snaps.size()); ++r) {
    const auto& snap = snaps[static_cast<std::size_t>(r)];
    if (snap.phase != RankPhase::Blocked) continue;
    if (!snap.has_op || snap.sig.wait_source < 0) {
      have_prev = false;  // wait not yet fully published; come back later
      return false;
    }
    if (mailbox(r).has_match(snap.sig.wait_source, snap.sig.wait_tag)) {
      have_prev = false;
      return false;
    }
  }

  // Require two identical snapshots one poll apart. Heartbeats advance
  // before every deliver and on every phase change, so a stable snapshot
  // rules out an in-flight send that the phase check raced past.
  if (have_prev && prev.size() == snaps.size()) {
    bool stable = true;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      if (snaps[i].phase != prev[i].phase ||
          snaps[i].heartbeat != prev[i].heartbeat) {
        stable = false;
        break;
      }
    }
    if (stable) {
      declare_deadlock(snaps);
      return true;
    }
  }
  prev = std::move(snaps);
  have_prev = true;
  return false;
}

void WorldState::declare_deadlock(const std::vector<RankSnapshot>& snaps) {
  const std::string verdict = analyze_deadlock(snaps);

  WorldAutopsy autopsy;
  autopsy.deterministic = true;
  autopsy.verdict = verdict;
  autopsy.ranks.reserve(snaps.size());
  int reporter = -1;
  for (int r = 0; r < static_cast<int>(snaps.size()); ++r) {
    const auto& snap = snaps[static_cast<std::size_t>(r)];
    RankAutopsy entry;
    entry.rank = r;
    entry.phase = snap.phase;
    entry.heartbeat = snap.heartbeat;
    entry.has_op = snap.has_op;
    entry.sig = snap.sig;
    autopsy.ranks.push_back(std::move(entry));
    if (reporter < 0 && snap.phase == RankPhase::Blocked) reporter = r;
  }

  std::string message = "deterministic deadlock: " + verdict;
  if (reporter >= 0) {
    const auto& snap = snaps[static_cast<std::size_t>(reporter)];
    if (snap.has_op) {
      message += "; rank " + std::to_string(reporter) + " blocked in " +
                 snap.sig.describe();
    }
  }
  capture_event(reporter >= 0 ? reporter : 0, SimTimeout(message),
                std::move(autopsy));
}

World::World(WorldOptions options)
    : state_(std::make_shared<WorldState>(options)) {}

World::~World() = default;

void World::set_tools(ToolHooks* tools) noexcept { state_->tools_ = tools; }

void World::add_keepalive(std::shared_ptr<void> keepalive) {
  state_->keepalives_.push_back(std::move(keepalive));
}

WorldResult World::run(const std::function<void(Mpi&)>& rank_main) {
  if (ran_) throw InternalError("World::run: a World is single-use");
  ran_ = true;

  const auto state = state_;
  const int nranks = state->options_.nranks;
  state->deadline_ = std::chrono::steady_clock::now() + state->options_.watchdog;

  if (const auto& replay = state->options_.replay) {
    if (static_cast<int>(replay->cut.size()) != nranks) {
      throw ConfigError("World::run: snapshot rank count mismatch");
    }
    // Messages in flight across the snapshot cut (sent in the prefix,
    // received in the suffix) are seeded before any rank launches, so the
    // suffix finds them already queued, exactly as at the cut.
    for (const auto& pre : replay->preseed) {
      Message message;
      message.source = pre.source_comm;
      message.tag = pre.transport_tag;
      if (pre.payload) {
        message.payload.assign(pre.payload->begin(), pre.payload->end());
      }
      state->mailbox(pre.dest_world).deliver(std::move(message));
    }
  }

  return state->options_.engine == WorldEngine::Threads
             ? run_threads(rank_main)
             : run_fibers(rank_main);
}

WorldResult World::run_threads(const std::function<void(Mpi&)>& rank_main) {
  const auto state = state_;
  const int nranks = state->options_.nranks;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    // Each thread copies the rank function and shares ownership of the
    // state: a quarantined straggler must never reach back into the
    // caller's stack frame.
    threads.emplace_back([state, r, fn = rank_main] {
      {
        // One span per rank lifetime, on the rank's own trace lane; the
        // bind gives the lane its Perfetto thread name.
        if (telemetry::Recorder::instance().enabled()) {
          telemetry::Recorder::bind_thread(telemetry::Track::Rank, r,
                                           "rank-" + std::to_string(r));
        }
        telemetry::ScopedSpan rank_span("rank-main", telemetry::Track::Rank,
                                        r);
        Mpi mpi(state, r);
        try {
          fn(mpi);
        } catch (const WorldAborted&) {
          // Subordinate teardown; the initiating rank already reported.
        } catch (const RankKilled& event) {
          // Fail-stop: this rank dies here. Repair-off poisons the world;
          // repair-on revokes the old communicators and lets survivors
          // shrink and continue.
          state->report_rank_death(r, event);
        } catch (const RankRevoked&) {
          // A survivor that could not (or chose not to) repair after a
          // peer's death: subordinate to the already-captured RankDead
          // event, exactly like WorldAborted.
        } catch (const FaultEvent& event) {
          state->report_event(r, event);
        } catch (const std::bad_alloc&) {
          // A corrupted size that slipped past application checks exhausted
          // memory: on a real cluster the OOM killer takes the job down,
          // the same observable as a crash.
          state->report_event(
              r, SimSegFault(0, 0, "allocation failure (OOM kill)"));
        } catch (const std::length_error&) {
          state->report_event(r, SimSegFault(0, 0, "absurd allocation request"));
        } catch (...) {
          {
            std::lock_guard lock(state->internal_mutex_);
            if (!state->internal_error_) {
              state->internal_error_ = std::current_exception();
            }
          }
          state->poison_and_wake();
        }
      }
      // Once any rank exits its main early (fault path), messages it would
      // have sent never arrive; poisoning handles the fault paths, and a
      // clean early exit simply stops participating — which the monitor
      // then proves out as a blocked-on-exited-peer deadlock.
      state->progress_.publish_exited(r);
      state->mark_done(r);
    });
  }

  std::thread monitor;
  if (state->options_.hang_detection && nranks > 1) {
    monitor = std::thread([state] {
      if (telemetry::Recorder::instance().enabled()) {
        telemetry::Recorder::bind_thread(telemetry::Track::Monitor, 0,
                                         "hang-monitor");
      }
      state->monitor_loop();
    });
  }

  WorldResult result;

  // Bounded join: watchdog deadline plus grace. Every rank past its
  // deadline raises SimTimeout on its own, so tripping this means a rank
  // is wedged outside MiniMPI's control (e.g. an application spin that
  // never calls check_deadline).
  const auto join_deadline =
      state->deadline_ + std::max<std::chrono::milliseconds>(
                             state->options_.watchdog, kJoinGrace);
  if (!state->wait_all_done_until(join_deadline)) {
    // Escalate. If nothing was captured yet, force a timeout event first:
    // without it the world would look clean with digests missing and the
    // trial would misclassify as WRONG_ANS instead of INF_LOOP.
    int straggler = 0;
    for (int r = 0; r < nranks; ++r) {
      if (!state->done_[static_cast<std::size_t>(r)].load(
              std::memory_order_acquire)) {
        straggler = r;
        break;
      }
    }
    telemetry::Recorder::instance().instant(
        "teardown-escalated", telemetry::Track::Monitor, 0,
        "straggler=" + std::to_string(straggler));
    state->capture_event(
        straggler,
        SimTimeout("world teardown forced: rank " +
                   std::to_string(straggler) +
                   " still running past the join deadline"),
        std::nullopt);
    // Second poison + wake storm (capture_event above poisons once; the
    // storm repeats in case a waiter re-entered a wait since), then one
    // more grace period before quarantining.
    state->poison_and_wake();
    state->wait_all_done_until(std::chrono::steady_clock::now() + kJoinGrace);
  }

  for (int r = 0; r < nranks; ++r) {
    if (state->done_[static_cast<std::size_t>(r)].load(
            std::memory_order_acquire)) {
      threads[static_cast<std::size_t>(r)].join();
    } else {
      ThreadQuarantine::instance().adopt(
          std::move(threads[static_cast<std::size_t>(r)]), state,
          &state->done_[static_cast<std::size_t>(r)]);
      ++result.leaked_threads;
      if (auto& rec = telemetry::Recorder::instance(); rec.enabled()) {
        rec.instant("thread-quarantined", telemetry::Track::Monitor, 0,
                    "rank=" + std::to_string(r));
        static auto& quarantined =
            rec.counter("fastfit_quarantined_threads_total",
                        "Rank threads adopted by the quarantine");
        quarantined.add();
      }
    }
  }

  if (monitor.joinable()) {
    state->stop_monitor();
    monitor.join();
  }

  if (result.leaked_threads == 0) {
    if (state->internal_error_) std::rethrow_exception(state->internal_error_);
    // Post-trial audit: with every rank joined, all RAII registrations
    // must have unwound and (on a clean run) all sends been consumed.
    for (const auto& registry : state->registries_) {
      result.leaked_regions += registry->region_count();
    }
    for (const auto& mailbox : state->mailboxes_) {
      result.undelivered_messages += mailbox->pending();
    }
  }

  const int dead = state->dead_count_.load(std::memory_order_acquire);
  result.rank_died = dead > 0;
  // Repaired means every survivor ran its repair hook to completion; a
  // survivor that aborted mid-repair leaves the count short and the trial
  // classifies as RANK_DEAD.
  result.repaired =
      state->options_.repair && dead > 0 &&
      state->repaired_count_.load(std::memory_order_acquire) == nranks - dead;

  {
    std::lock_guard lock(state->event_mutex_);
    result.event = state->event_;
    result.autopsy = state->autopsy_;
  }
  return result;
}

void WorldState::fiber_idle(FiberScheduler& sched) {
  // Pass 1: wake anything that can still make progress. A doomed or
  // poisoned rank must observe its fate at the next cancellation point,
  // and a blocked rank whose awaited (source, tag) is already queued is
  // about to match (deliveries wake the owner eagerly; this scan is the
  // idle-time backstop).
  bool woke = false;
  const auto blocked = sched.blocked();
  for (int r : blocked) {
    bool wake =
        rank_doomed(r) || poison_.flag.load(std::memory_order_acquire);
    if (!wake) {
      const auto snap = progress_.snapshot(r);
      wake = snap.has_op && snap.sig.wait_source >= 0 &&
             mailbox(r).has_match(snap.sig.wait_source, snap.sig.wait_tag);
    }
    if (wake) {
      sched.make_ready(r);
      woke = true;
    }
  }
  if (woke || blocked.empty()) return;

  // Quiescence: no runnable fiber and no queued message any blocked
  // fiber awaits — and, unlike the thread engine's monitor, provably no
  // send in flight (sends are synchronous on this very thread), so no
  // two-snapshot stability dance is needed. This IS the structural
  // deadlock; route it through the same verdict/autopsy path as the
  // monitor so both engines report byte-identical events.
  if (options_.hang_detection && options_.nranks > 1 &&
      !poison_.revoked_flag.load(std::memory_order_acquire)) {
    declare_deadlock(progress_.snapshot_all());
    return;  // capture_event poisoned; its wake storm marked fibers ready
  }

  // Watchdog fallback (detection off, a single-rank world, or an
  // in-progress revocation, mirroring the monitor's skip): wait for an
  // external wake — kill_rank or a poison from another thread — or the
  // deadline, then resume every blocked fiber in rank order so the first
  // raises SimTimeout exactly like a parked thread whose timed wait
  // expired.
  if (sched.wait_for_ready(deadline_)) return;
  for (int r : sched.blocked()) sched.make_ready(r);
}

WorldResult World::run_fibers(const std::function<void(Mpi&)>& rank_main) {
  const auto state = state_;
  const int nranks = state->options_.nranks;

  // The scheduler lives on this stack frame: unlike a rank thread, a
  // fiber can never outlive run() — every MiniMPI wait is a cancellation
  // point, so a resumed fiber always unwinds, and the scheduler does not
  // return until all of them have. No monitor thread, no bounded join,
  // no quarantine: this world adds ZERO OS threads.
  FiberScheduler sched(nranks);
  for (int r = 0; r < nranks; ++r) {
    state->mailbox(r).set_fiber_waker(&sched, r);
  }

  const auto body = [&state, &rank_main](int r) {
    // One span per rank lifetime on the rank's trace lane. No per-rank
    // bind_thread here: all fibers share the scheduler's thread, and the
    // track/id pair on the span already attributes it.
    telemetry::ScopedSpan rank_span("rank-main", telemetry::Track::Rank, r);
    Mpi mpi(state, r);
    try {
      rank_main(mpi);
    } catch (const WorldAborted&) {
      // Subordinate teardown; the initiating rank already reported.
    } catch (const RankKilled& event) {
      state->report_rank_death(r, event);
    } catch (const RankRevoked&) {
      // A survivor that could not (or chose not to) repair: subordinate
      // to the already-captured RankDead event, like WorldAborted.
    } catch (const FaultEvent& event) {
      state->report_event(r, event);
    } catch (const std::bad_alloc&) {
      state->report_event(
          r, SimSegFault(0, 0, "allocation failure (OOM kill)"));
    } catch (const std::length_error&) {
      state->report_event(r, SimSegFault(0, 0, "absurd allocation request"));
    } catch (...) {
      {
        std::lock_guard lock(state->internal_mutex_);
        if (!state->internal_error_) {
          state->internal_error_ = std::current_exception();
        }
      }
      state->poison_and_wake();
    }
    state->progress_.publish_exited(r);
    state->mark_done(r);
  };

  sched.run(body, [&state, &sched] { state->fiber_idle(sched); });

  // Detach the wake routing under each mailbox's mutex before the
  // scheduler leaves this frame: a late cross-thread kill_rank can then
  // only ever see a null hook, never a dangling one.
  for (int r = 0; r < nranks; ++r) {
    state->mailbox(r).set_fiber_waker(nullptr, -1);
  }

  WorldResult result;  // leaked_threads stays 0: fibers always unwind

  if (state->internal_error_) std::rethrow_exception(state->internal_error_);
  for (const auto& registry : state->registries_) {
    result.leaked_regions += registry->region_count();
  }
  for (const auto& mailbox : state->mailboxes_) {
    result.undelivered_messages += mailbox->pending();
  }

  const int dead = state->dead_count_.load(std::memory_order_acquire);
  result.rank_died = dead > 0;
  result.repaired =
      state->options_.repair && dead > 0 &&
      state->repaired_count_.load(std::memory_order_acquire) == nranks - dead;

  {
    std::lock_guard lock(state->event_mutex_);
    result.event = state->event_;
    result.autopsy = state->autopsy_;
  }
  return result;
}

}  // namespace fastfit::mpi

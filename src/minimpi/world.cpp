#include "minimpi/world.hpp"

#include <algorithm>
#include <exception>
#include <new>
#include <stdexcept>
#include <thread>

#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::AppDetected: return "APP_DETECTED";
    case EventType::MpiErr: return "MPI_ERR";
    case EventType::SegFault: return "SEG_FAULT";
    case EventType::Timeout: return "INF_LOOP";
  }
  return "UNKNOWN";
}

World::World(WorldOptions options) : options_(options) {
  if (options_.nranks < 1) {
    throw ConfigError("World: nranks must be at least 1");
  }
  mailboxes_.reserve(static_cast<std::size_t>(options_.nranks));
  registries_.reserve(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(poison_));
    registries_.push_back(std::make_unique<MemoryRegistry>());
  }
  std::vector<int> everyone(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    everyone[static_cast<std::size_t>(r)] = r;
  }
  comms_.push_back(CommEntry{std::move(everyone)});
  comm_keys_.emplace("world", 0);
}

World::~World() = default;

Mailbox& World::mailbox(int world_rank) {
  return *mailboxes_.at(static_cast<std::size_t>(world_rank));
}

MemoryRegistry& World::registry(int world_rank) {
  return *registries_.at(static_cast<std::size_t>(world_rank));
}

bool World::poisoned() {
  std::lock_guard lock(poison_.mutex);
  return poison_.poisoned;
}

void World::report_event(int rank, const FaultEvent& event) {
  {
    std::lock_guard lock(event_mutex_);
    if (!event_) {
      CapturedEvent captured;
      captured.rank = rank;
      captured.message = event.what();
      if (const auto* mpi_error = dynamic_cast<const MpiError*>(&event)) {
        captured.type = EventType::MpiErr;
        captured.mpi_code = mpi_error->code();
      } else if (dynamic_cast<const SimSegFault*>(&event) != nullptr) {
        captured.type = EventType::SegFault;
      } else if (dynamic_cast<const AppError*>(&event) != nullptr) {
        captured.type = EventType::AppDetected;
      } else if (dynamic_cast<const SimTimeout*>(&event) != nullptr) {
        captured.type = EventType::Timeout;
      } else {
        // WorldAborted never initiates; anything else is a library bug.
        throw InternalError(std::string("report_event: unexpected event: ") +
                            event.what());
      }
      event_ = std::move(captured);
    }
  }
  poison_.poison();
  for (auto& mailbox : mailboxes_) mailbox->wake();
}

Comm World::register_comm(const std::string& key, std::vector<int> members) {
  if (members.empty()) {
    throw InternalError("register_comm: empty member list");
  }
  std::lock_guard lock(comm_mutex_);
  if (auto it = comm_keys_.find(key); it != comm_keys_.end()) {
    const auto& existing = comms_[it->second].members;
    if (existing != members) {
      // Two ranks derived the same key for different groups: under a fault
      // this is a communicator-construction inconsistency a real MPI would
      // surface as a communicator error.
      throw MpiError(MpiErrc::InvalidComm,
                     "inconsistent group for communicator key '" + key + "'");
    }
    return make_comm(it->second);
  }
  const auto index = static_cast<RawHandle>(comms_.size());
  if (index > kIndexMask) {
    throw InternalError("register_comm: communicator table exhausted");
  }
  comms_.push_back(CommEntry{std::move(members)});
  comm_keys_.emplace(key, index);
  return make_comm(index);
}

const std::vector<int>& World::group_of(Comm comm) const {
  const RawHandle h = raw(comm);
  std::lock_guard lock(comm_mutex_);
  if (!has_magic(h, kCommMagic) || handle_index(h) >= comms_.size()) {
    throw MpiError(MpiErrc::InvalidComm, "handle 0x" + std::to_string(h));
  }
  return comms_[handle_index(h)].members;
}

int World::comm_rank_of(Comm comm, int world_rank) const {
  const auto& members = group_of(comm);
  const auto it = std::find(members.begin(), members.end(), world_rank);
  if (it == members.end()) return -1;
  return static_cast<int>(it - members.begin());
}

WorldResult World::run(const std::function<void(Mpi&)>& rank_main) {
  if (ran_) throw InternalError("World::run: a World is single-use");
  ran_ = true;
  deadline_ = std::chrono::steady_clock::now() + options_.watchdog;

  std::mutex internal_mutex;
  std::exception_ptr internal_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options_.nranks));
  for (int r = 0; r < options_.nranks; ++r) {
    threads.emplace_back([this, r, &rank_main, &internal_mutex,
                          &internal_error] {
      Mpi mpi(*this, r);
      try {
        rank_main(mpi);
      } catch (const WorldAborted&) {
        // Subordinate teardown; the initiating rank already reported.
      } catch (const FaultEvent& event) {
        report_event(r, event);
      } catch (const std::bad_alloc&) {
        // A corrupted size that slipped past application checks exhausted
        // memory: on a real cluster the OOM killer takes the job down, the
        // same observable as a crash.
        report_event(r, SimSegFault(0, 0, "allocation failure (OOM kill)"));
      } catch (const std::length_error&) {
        report_event(r, SimSegFault(0, 0, "absurd allocation request"));
      } catch (...) {
        {
          std::lock_guard lock(internal_mutex);
          if (!internal_error) internal_error = std::current_exception();
        }
        poison_.poison();
        for (auto& mailbox : mailboxes_) mailbox->wake();
      }
      // Wake peers that might be blocked on this rank's silence: once any
      // rank exits its main early (fault path), messages it would have sent
      // never arrive; poisoning handles the fault paths, and a clean early
      // exit simply stops participating (peers time out, as on a real job).
    });
  }
  for (auto& thread : threads) thread.join();

  if (internal_error) std::rethrow_exception(internal_error);

  WorldResult result;
  {
    std::lock_guard lock(event_mutex_);
    result.event = event_;
  }
  return result;
}

}  // namespace fastfit::mpi

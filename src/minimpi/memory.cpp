#include "minimpi/memory.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace fastfit::mpi {

void MemoryRegistry::add(const void* ptr, std::size_t bytes) {
  if (ptr == nullptr && bytes > 0) {
    throw InternalError("MemoryRegistry::add: null region");
  }
  if (bytes == 0) return;  // nothing to protect
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  std::lock_guard lock(mutex_);
  // Reject overlap with the predecessor and successor regions.
  auto next = regions_.lower_bound(base);
  if (next != regions_.end() && base + bytes > next->first) {
    throw InternalError("MemoryRegistry::add: overlapping region");
  }
  if (next != regions_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > base) {
      throw InternalError("MemoryRegistry::add: overlapping region");
    }
  }
  regions_.emplace(base, bytes);
}

void MemoryRegistry::remove(const void* ptr) {
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  std::lock_guard lock(mutex_);
  if (regions_.erase(base) == 0) {
    throw InternalError("MemoryRegistry::remove: unknown region");
  }
}

bool MemoryRegistry::covers(const void* ptr, std::size_t bytes) const noexcept {
  if (bytes == 0) return true;
  if (ptr == nullptr) return false;
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  std::lock_guard lock(mutex_);
  auto next = regions_.upper_bound(base);
  if (next == regions_.begin()) return false;
  const auto& [region_base, region_len] = *std::prev(next);
  return base >= region_base && base + bytes <= region_base + region_len;
}

void MemoryRegistry::check(const void* ptr, std::size_t bytes,
                           const char* what) const {
  if (!covers(ptr, bytes)) {
    std::ostringstream msg;
    msg << what << " of " << bytes << " bytes at "
        << reinterpret_cast<std::uintptr_t>(ptr)
        << " leaves every registered region";
    throw SimSegFault(reinterpret_cast<std::uintptr_t>(ptr), bytes, msg.str());
  }
}

std::size_t MemoryRegistry::region_count() const {
  std::lock_guard lock(mutex_);
  return regions_.size();
}

namespace {

std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

ChunkStore::Chunk ChunkStore::intern(const void* data, std::size_t bytes) {
  const std::uint64_t hash = fnv1a_bytes(data, bytes);
  std::lock_guard lock(mutex_);
  auto& bucket = buckets_[hash];
  const auto* p = static_cast<const std::byte*>(data);
  for (const auto& chunk : bucket) {
    if (chunk->size() == bytes &&
        std::equal(chunk->begin(), chunk->end(), p)) {
      return chunk;
    }
  }
  auto chunk = std::make_shared<const std::vector<std::byte>>(p, p + bytes);
  bucket.push_back(chunk);
  bytes_ += bytes;
  ++chunks_;
  return chunk;
}

std::size_t ChunkStore::unique_bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::size_t ChunkStore::unique_chunks() const {
  std::lock_guard lock(mutex_);
  return chunks_;
}

}  // namespace fastfit::mpi

#pragma once

// Copy-on-write world snapshots: record once, replay the prefix.
//
// A World of OS threads cannot be checkpointed by copying pages, so the
// snapshot subsystem captures the *observable* state instead: one
// fault-free recording run logs, per rank, the ordered sequence of MPI
// operations together with every byte the transport wrote into
// application buffers (collective outputs and received messages), as
// ref-counted deduplicated chunks. A WorldSnapshot for an injection
// point (site, invocation) is then just a per-rank cut index into that
// log plus the set of messages that were in flight across the cut.
//
// A trial "clones" the snapshot by sharing the chunks (nothing is
// copied — that is the copy-on-write: replaying ranks memcpy shared
// immutable chunks into their own freshly allocated buffers and all
// subsequent writes land in trial-private memory). Each rank replays
// its prefix with zero rendezvous: collective outputs and received
// payloads are served from the recording, sends are dropped (their
// receipts are part of the same recording), and the per-site invocation
// and per-communicator sequence counters advance through the normal
// code paths, so the rank arrives at the cut in a state bit-identical
// to live execution. The op at the cut — the injected collective — and
// everything after it run live through the unmodified transport.
//
// Replay is verified op-by-op against the recording; any divergence
// raises ReplayError, which the campaign layer catches to fall back to
// a from-scratch run. Workloads that use nonblocking receives or
// communicator construction mark the recording non-replayable (none of
// the bundled workloads do), which makes the whole subsystem fall back
// campaign-wide under `--snapshots auto`.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "minimpi/hooks.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/memory.hpp"
#include "minimpi/types.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {

/// Replay observed the application diverging from the recording (or the
/// recording ran out). Not a FaultEvent: it must never be classified as
/// a trial outcome — World::run re-throws it to the caller, which falls
/// back to from-scratch execution.
class ReplayError : public FastFitError {
 public:
  explicit ReplayError(const std::string& what)
      : FastFitError("snapshot replay diverged: " + what) {}
};

/// One byte range a collective writes into an application buffer on one
/// rank. Recomputed from the live call's arguments on both the record
/// and the replay side, so the two are symmetric by construction.
struct WriteSpan {
  void* ptr = nullptr;
  std::size_t bytes = 0;
};

/// The buffer regions `call` writes on the calling rank (a superset is
/// unsafe: unregistered gaps would trip the bounds registry; a subset is
/// unsafe: replay would miss output). Root-only collectives report
/// nothing on non-roots; vector collectives report one span per
/// displacement block.
std::vector<WriteSpan> collect_write_spans(const CollectiveCall& call,
                                           int comm_size);

/// One operation of a rank's recorded op stream.
struct RecordedOp {
  enum class Kind : std::uint8_t { Collective, Send, Recv };
  Kind kind = Kind::Collective;
  CollectiveKind coll{};          ///< valid for Kind::Collective
  std::uint32_t site_id = 0;
  int site_line = 0;
  std::uint64_t invocation = 0;   ///< per-(rank, site) invocation number
  RawHandle comm = 0;
  int self_comm = -1;             ///< caller's rank in `comm` (p2p)
  int peer = -1;                  ///< p2p: dest (send) / source (recv), comm-relative
  int peer_world = -1;            ///< send: destination world rank
  std::uint64_t transport_tag = 0;  ///< p2p: fully formed mailbox tag
  /// Collective: one chunk per write span, in collect_write_spans order.
  /// Recv: the payload. Send: the payload (for in-flight pre-seeding).
  std::vector<ChunkStore::Chunk> writes;
};

/// The complete op log of one fault-free run: per-rank op streams over a
/// shared chunk store. Immutable once built; shared by every snapshot
/// and every replaying world of the campaign.
struct WorldRecording {
  int nranks = 0;
  std::vector<std::vector<RecordedOp>> ops;  ///< [world rank] -> op stream
  bool replayable = true;
  std::string unsupported_reason;
  std::size_t payload_bytes = 0;  ///< unique chunk bytes (post-dedup)
  std::size_t total_ops = 0;
};

/// Attached to a recording run via WorldOptions::recorder: each rank
/// thread appends to its own op vector (no cross-rank synchronization
/// beyond the chunk store's intern lock).
class PrefixRecorder {
 public:
  explicit PrefixRecorder(int nranks);

  void record_collective(int world_rank, const CollectiveCall& call,
                         std::span<const WriteSpan> spans);
  void record_send(int world_rank, const P2pCall& call, int dest_world,
                   std::uint64_t transport_tag,
                   std::span<const std::byte> payload);
  void record_recv(int world_rank, const P2pCall& call,
                   std::uint64_t transport_tag,
                   std::span<const std::byte> payload);

  /// Marks the run non-replayable (nonblocking receive, comm_split, ...).
  /// The recording still completes; snapshots built from it are refused.
  void mark_unsupported(const std::string& why);

  /// Freezes the recording. Call once, after the world fully joined.
  std::shared_ptr<const WorldRecording> finish();

 private:
  std::vector<std::vector<RecordedOp>> ops_;
  ChunkStore chunks_;
  std::mutex unsupported_mutex_;
  bool unsupported_ = false;
  std::string why_;
};

/// A message that was in flight across the cut: sent during the prefix,
/// received during the suffix. Delivered into the destination mailbox
/// before the rank threads launch.
struct PreseedMessage {
  int dest_world = -1;
  int source_comm = -1;           ///< sender's rank in the message's comm
  std::uint64_t transport_tag = 0;
  ChunkStore::Chunk payload;
};

/// One (site, invocation) snapshot: the recording, the per-rank cut
/// indices, and the in-flight message set. Cheap to share — cloning a
/// snapshot into a trial world copies nothing.
struct WorldSnapshot {
  std::shared_ptr<const WorldRecording> recording;
  std::vector<std::size_t> cut;  ///< [world rank] -> ops to replay
  std::vector<PreseedMessage> preseed;
  std::size_t approx_bytes = 0;  ///< snapshot-private bytes (cut + preseed)

  /// Derives the snapshot for the collective at (site_id, invocation).
  /// Returns nullptr when the cut is invalid: the op is missing from some
  /// rank's log (e.g. a sub-communicator collective), the recording is
  /// non-replayable, or a prefix receive matches a suffix send (the
  /// message does not exist yet at the cut, so the prefix cannot replay).
  static std::shared_ptr<const WorldSnapshot> build(
      std::shared_ptr<const WorldRecording> recording, std::uint32_t site_id,
      std::uint64_t invocation);
};

}  // namespace fastfit::mpi

#include "minimpi/validate.hpp"

#include "minimpi/datatype.hpp"
#include "minimpi/op.hpp"

namespace fastfit::mpi {
namespace {

void require_count(std::int32_t count) {
  if (count < 0) {
    throw MpiError(MpiErrc::InvalidCount, std::to_string(count));
  }
}

void require_datatype(Datatype dtype) {
  if (!is_valid(dtype)) {
    throw MpiError(MpiErrc::InvalidDatatype,
                   "handle 0x" + std::to_string(raw(dtype)));
  }
}

void require_op(Op op, Datatype dtype) {
  if (!is_valid(op)) {
    throw MpiError(MpiErrc::InvalidOp, "handle 0x" + std::to_string(raw(op)));
  }
  if (!op_supports(op, dtype)) {
    throw MpiError(MpiErrc::InvalidOp,
                   std::string(op_name(op)) + " undefined for " +
                       std::string(datatype_name(dtype)));
  }
}

void require_counts_array(const std::vector<std::int32_t>* counts,
                          const std::vector<std::int32_t>* displs, int n) {
  if (counts == nullptr || displs == nullptr) {
    throw MpiError(MpiErrc::InvalidCount, "missing counts/displs array");
  }
  if (static_cast<int>(counts->size()) != n ||
      static_cast<int>(displs->size()) != n) {
    throw MpiError(MpiErrc::InvalidCount,
                   "counts/displs array length does not match group size");
  }
  for (std::int32_t c : *counts) require_count(c);
  for (std::int32_t d : *displs) {
    if (d < 0) throw MpiError(MpiErrc::InvalidCount, "negative displacement");
  }
}

}  // namespace

void validate_collective(const CollectiveCall& call, WorldState& world,
                         int world_rank) {
  // Communicator first: nothing else can be interpreted without it.
  const auto& members = world.group_of(call.comm);  // throws InvalidComm
  const int me = world.comm_rank_of(call.comm, world_rank);
  if (me < 0) {
    throw MpiError(MpiErrc::InvalidComm, "caller is not in the communicator");
  }
  const int n = static_cast<int>(members.size());

  if (is_rooted(call.kind)) {
    if (call.root < 0 || call.root >= n) {
      throw MpiError(MpiErrc::InvalidRoot, std::to_string(call.root));
    }
  }
  const bool is_root = is_rooted(call.kind) && me == call.root;

  switch (call.kind) {
    case CollectiveKind::Barrier:
      break;

    case CollectiveKind::Bcast:
      require_count(call.count);
      require_datatype(call.datatype);
      break;

    case CollectiveKind::Reduce:
      require_count(call.count);
      require_datatype(call.datatype);
      require_op(call.op, call.datatype);
      break;

    case CollectiveKind::Allreduce:
    case CollectiveKind::ReduceScatterBlock:
    case CollectiveKind::Scan:
      require_count(call.count);
      require_datatype(call.datatype);
      require_op(call.op, call.datatype);
      break;

    case CollectiveKind::Scatter:
      // sendcount/sendtype significant only at the root.
      if (is_root) {
        require_count(call.count);
        require_datatype(call.datatype);
      }
      require_count(call.recvcount);
      require_datatype(call.recvdatatype);
      break;

    case CollectiveKind::Gather:
      require_count(call.count);
      require_datatype(call.datatype);
      // recvcount/recvtype significant only at the root.
      if (is_root) {
        require_count(call.recvcount);
        require_datatype(call.recvdatatype);
      }
      break;

    case CollectiveKind::Allgather:
    case CollectiveKind::Alltoall:
      require_count(call.count);
      require_datatype(call.datatype);
      require_count(call.recvcount);
      require_datatype(call.recvdatatype);
      break;

    case CollectiveKind::Allgatherv:
      require_count(call.count);
      require_datatype(call.datatype);
      require_datatype(call.recvdatatype);
      require_counts_array(call.recvcounts, call.rdispls, n);
      break;

    case CollectiveKind::Alltoallv:
      require_datatype(call.datatype);
      require_datatype(call.recvdatatype);
      require_counts_array(call.sendcounts, call.sdispls, n);
      require_counts_array(call.recvcounts, call.rdispls, n);
      break;

    case CollectiveKind::Scatterv:
      if (is_root) {
        require_datatype(call.datatype);
        require_counts_array(call.sendcounts, call.sdispls, n);
      }
      require_count(call.recvcount);
      require_datatype(call.recvdatatype);
      break;

    case CollectiveKind::Gatherv:
      require_count(call.count);
      require_datatype(call.datatype);
      if (is_root) {
        require_datatype(call.recvdatatype);
        require_counts_array(call.recvcounts, call.rdispls, n);
      }
      break;
  }
}

}  // namespace fastfit::mpi

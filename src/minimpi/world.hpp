#pragma once

// The World: a simulated MPI job.
//
// A World runs an SPMD rank function on N threads, one per rank, each with
// its own mailbox (transport endpoint) and memory registry (simulated
// address space). It is the failure-containment boundary of a fault-
// injection trial: the first FaultEvent any rank raises is captured,
// the world is poisoned so every other rank unwinds promptly with
// WorldAborted, and run() returns a WorldResult describing the initiating
// event — never letting a "segfault" or "hang" escape the process.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/hooks.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/memory.hpp"
#include "minimpi/types.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {

class Mpi;

/// Algorithm selection per collective family, mirroring how production
/// MPIs pick among several implementations. Fault *behaviour* differs by
/// algorithm (e.g. a divergent root stalls a chain pipeline differently
/// from a binomial tree), which bench/ablation_algorithms measures.
struct CollectiveAlgorithms {
  enum class Allreduce : std::uint8_t {
    RecursiveDoubling,  ///< MPICH short-vector algorithm (default)
    ReduceBcast,        ///< binomial reduce to rank 0 + binomial bcast
  };
  enum class Bcast : std::uint8_t {
    Binomial,  ///< binomial tree (default)
    Chain,     ///< pipeline through consecutive ranks
  };
  Allreduce allreduce = Allreduce::RecursiveDoubling;
  Bcast bcast = Bcast::Binomial;
};

struct WorldOptions {
  int nranks = 32;
  /// Rendezvous watchdog: a collective that has not completed after this
  /// long is declared hung (paper Table I: INF_LOOP). Must comfortably
  /// exceed the fault-free runtime of the workload.
  std::chrono::milliseconds watchdog{500};
  std::uint64_t seed = 0x5eedULL;
  CollectiveAlgorithms algorithms;
};

/// How a rank failed, for outcome classification (maps onto Table I).
enum class EventType : std::uint8_t {
  AppDetected,  ///< application's own error handling aborted
  MpiErr,       ///< MiniMPI validation rejected a parameter
  SegFault,     ///< memory-registry bounds violation
  Timeout,      ///< watchdog fired: the job hung
};

const char* to_string(EventType type) noexcept;

/// The first (initiating) failure observed in a world.
struct CapturedEvent {
  EventType type{};
  int rank = -1;
  std::string message;
  std::optional<MpiErrc> mpi_code;
};

/// Result of one world execution. `clean()` does not imply SUCCESS — the
/// trial runner still compares the application's answer against a golden
/// run to distinguish SUCCESS from WRONG_ANS.
struct WorldResult {
  std::optional<CapturedEvent> event;
  bool clean() const noexcept { return !event.has_value(); }
};

class World {
 public:
  explicit World(WorldOptions options);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `rank_main` on every rank. Callable once per World. Exceptions
  /// that are not FaultEvents (library bugs) are re-thrown to the caller.
  WorldResult run(const std::function<void(Mpi&)>& rank_main);

  const WorldOptions& options() const noexcept { return options_; }
  int size() const noexcept { return options_.nranks; }

  /// Installs the tool chain every collective dispatches through.
  void set_tools(ToolHooks* tools) noexcept { tools_ = tools; }
  ToolHooks* tools() const noexcept { return tools_; }

  // --- internals used by the Mpi facade ---------------------------------

  Mailbox& mailbox(int world_rank);
  MemoryRegistry& registry(int world_rank);
  PoisonState& poison() noexcept { return poison_; }
  bool poisoned();
  std::chrono::steady_clock::time_point deadline() const noexcept {
    return deadline_;
  }

  /// Records the initiating failure (first wins; WorldAborted never
  /// initiates) and poisons the world.
  void report_event(int rank, const FaultEvent& event);

  /// Communicator registry. A communicator is a list of world ranks.
  /// `register_comm` is idempotent on `key`: all members of a new
  /// communicator derive the same creation key (parent handle, per-parent
  /// split sequence, color), so each obtains the same handle without any
  /// global ordering.
  Comm register_comm(const std::string& key, std::vector<int> members);

  /// Group of a communicator; throws MpiError(InvalidComm) for a handle
  /// that does not name a live communicator of this world.
  const std::vector<int>& group_of(Comm comm) const;

  /// Rank of `world_rank` within `comm`, or -1 if not a member.
  int comm_rank_of(Comm comm, int world_rank) const;

 private:
  WorldOptions options_;
  PoisonState poison_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<MemoryRegistry>> registries_;
  std::chrono::steady_clock::time_point deadline_;

  std::mutex event_mutex_;
  std::optional<CapturedEvent> event_;

  mutable std::mutex comm_mutex_;
  struct CommEntry {
    std::vector<int> members;
  };
  std::vector<CommEntry> comms_;
  std::map<std::string, RawHandle> comm_keys_;

  ToolHooks* tools_ = nullptr;
  bool ran_ = false;
};

}  // namespace fastfit::mpi

#pragma once

// The World: a simulated MPI job.
//
// A World runs an SPMD rank function on N threads, one per rank, each with
// its own mailbox (transport endpoint) and memory registry (simulated
// address space). It is the failure-containment boundary of a fault-
// injection trial: the first FaultEvent any rank raises is captured,
// the world is poisoned so every other rank unwinds promptly with
// WorldAborted, and run() returns a WorldResult describing the initiating
// event — never letting a "segfault" or "hang" escape the process.
//
// Two mechanisms make the containment fast and leak-proof:
//
//  * A progress monitor (minimpi/progress.hpp) watches every rank's
//    heartbeat and pending-operation signature and declares a
//    *deterministic* deadlock the moment all live ranks are provably
//    stuck in unsatisfiable waits — classifying INF_LOOP in milliseconds
//    instead of burning the watchdog budget. Genuine livelock (a compute
//    loop that never reaches a wait) still falls back to the timeout.
//
//  * Teardown is a bounded join with escalation: past the join deadline
//    the world is poisoned a second time with a mailbox wake storm, and
//    a rank thread that still refuses to exit is moved to the process-
//    wide ThreadQuarantine (minimpi/quarantine.hpp) instead of wedging
//    the campaign. WorldResult reports the leak plus a post-trial audit
//    of the memory registries and mailbox queues.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/hooks.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/memory.hpp"
#include "minimpi/progress.hpp"
#include "minimpi/snapshot.hpp"
#include "minimpi/types.hpp"
#include "support/error.hpp"

namespace fastfit::mpi {

class Mpi;
class FiberScheduler;

/// How a world executes its ranks (FASTFIT_WORLD_ENGINE /
/// --world-engine).
///
///  * Fibers (default): every rank is a resumable ucontext fiber
///    multiplexed on the ONE thread that calls World::run — a world
///    never creates an OS thread, rendezvous are cooperative yield
///    points, and "no runnable fiber and no queued message" IS the
///    deadlock verdict (no monitor thread, no poll interval).
///  * Threads: the original thread-per-rank substrate (one OS thread
///    per rank plus a monitor), kept byte-identical for workloads whose
///    rank functions are non-cooperative (spin without check_deadline)
///    and as the parity baseline for the fiber engine.
///
/// Both engines produce byte-identical results for every cooperative
/// workload: message matching is exact on (source, tag), so the
/// schedule cannot change what any rank observes.
enum class WorldEngine : std::uint8_t {
  Fibers,
  Threads,
};

const char* to_string(WorldEngine engine) noexcept;

/// Parses "fibers" | "threads" (the FASTFIT_WORLD_ENGINE values);
/// throws ConfigError on anything else.
WorldEngine parse_world_engine(const std::string& text);

/// Algorithm selection per collective family, mirroring how production
/// MPIs pick among several implementations. Fault *behaviour* differs by
/// algorithm (e.g. a divergent root stalls a chain pipeline differently
/// from a binomial tree), which bench/ablation_algorithms measures.
struct CollectiveAlgorithms {
  enum class Allreduce : std::uint8_t {
    RecursiveDoubling,  ///< MPICH short-vector algorithm (default)
    ReduceBcast,        ///< binomial reduce to rank 0 + binomial bcast
  };
  enum class Bcast : std::uint8_t {
    Binomial,  ///< binomial tree (default)
    Chain,     ///< pipeline through consecutive ranks
  };
  Allreduce allreduce = Allreduce::RecursiveDoubling;
  Bcast bcast = Bcast::Binomial;
};

struct WorldOptions {
  int nranks = 32;
  /// Rank execution engine: resumable fibers on the calling thread
  /// (default) or the legacy thread-per-rank substrate.
  WorldEngine engine = WorldEngine::Fibers;
  /// Rendezvous watchdog: a collective that has not completed after this
  /// long is declared hung (paper Table I: INF_LOOP). Must comfortably
  /// exceed the fault-free runtime of the workload. With hang_detection
  /// on this is the *fallback* budget: structural deadlocks are declared
  /// long before it expires.
  std::chrono::milliseconds watchdog{500};
  std::uint64_t seed = 0x5eedULL;
  CollectiveAlgorithms algorithms;
  /// Deterministic hang detection: run a progress monitor that declares
  /// a deadlock structurally (all live ranks provably stuck) instead of
  /// waiting for the watchdog. Livelock still uses the timeout path.
  bool hang_detection = true;
  /// When set, every rank logs its MPI ops and transport payloads here —
  /// the campaign's one fault-free recording run (minimpi/snapshot.hpp).
  std::shared_ptr<PrefixRecorder> recorder;
  /// When set, each rank replays its recorded prefix with zero rendezvous
  /// up to the snapshot's cut, then switches to live execution. In-flight
  /// messages across the cut are pre-seeded before the threads launch.
  std::shared_ptr<const WorldSnapshot> replay;
  /// ULFM-style shrink-and-continue: when a rank fail-stops, survivors see
  /// RankRevoked (instead of a world poison) and may rebuild a shrunken
  /// communicator via Mpi::shrink_and_continue(). Off = a rank death tears
  /// the world down (outcome RANK_DEAD).
  bool repair = false;
};

/// How a rank failed, for outcome classification (maps onto Table I).
enum class EventType : std::uint8_t {
  AppDetected,  ///< application's own error handling aborted
  MpiErr,       ///< MiniMPI validation rejected a parameter
  SegFault,     ///< memory-registry bounds violation
  Timeout,      ///< watchdog fired or deadlock proven: the job hung
  RankDead,     ///< fail-stop fault killed a rank mid-run
};

const char* to_string(EventType type) noexcept;

/// The first (initiating) failure observed in a world.
struct CapturedEvent {
  EventType type{};
  int rank = -1;
  std::string message;
  std::optional<MpiErrc> mpi_code;
};

/// Result of one world execution. `clean()` does not imply SUCCESS — the
/// trial runner still compares the application's answer against a golden
/// run to distinguish SUCCESS from WRONG_ANS.
struct WorldResult {
  std::optional<CapturedEvent> event;
  /// Forensic snapshot taken when the event was recorded (absent for a
  /// clean run): per-rank phase, heartbeat, pending-op signature.
  std::optional<WorldAutopsy> autopsy;
  /// Rank threads that survived the escalated teardown and were moved to
  /// the ThreadQuarantine (0 on every healthy run).
  int leaked_threads = 0;
  /// Post-trial audit: memory-registry regions left registered after all
  /// ranks unwound (0 unless a thread leaked or a registration escaped
  /// its scope).
  std::size_t leaked_regions = 0;
  /// Post-trial audit: messages still queued in mailboxes. Nonzero is
  /// normal for faulted runs (poison aborts in-flight exchanges) but a
  /// transport leak on a clean run.
  std::size_t undelivered_messages = 0;
  /// At least one rank fail-stopped (the event, if initiating, is
  /// EventType::RankDead).
  bool rank_died = false;
  /// Repair mode was on, a rank died, and *every* survivor completed its
  /// repair hook on the shrunken communicator (outcome REPAIRED).
  bool repaired = false;

  bool clean() const noexcept { return !event.has_value(); }
};

/// All state shared between the rank threads, the monitor, and the
/// controlling World — owned by shared_ptr so a quarantined straggler can
/// never dangle. The Mpi facade talks to this class, not to World.
class WorldState {
 public:
  explicit WorldState(const WorldOptions& options);

  const WorldOptions& options() const noexcept { return options_; }
  int size() const noexcept { return options_.nranks; }

  Mailbox& mailbox(int world_rank);
  MemoryRegistry& registry(int world_rank);
  ProgressTable& progress() noexcept { return progress_; }
  PoisonState& poison() noexcept { return poison_; }
  bool poisoned();
  std::chrono::steady_clock::time_point deadline() const noexcept {
    return deadline_;
  }
  ToolHooks* tools() const noexcept { return tools_; }

  /// Records the initiating failure (first wins; WorldAborted never
  /// initiates), snapshots the progress table into the autopsy, and
  /// poisons the world.
  void report_event(int rank, const FaultEvent& event);

  /// Fail-stop path: records the death (EventType::RankDead, first-wins),
  /// marks the rank Dead in the progress table, and either poisons the
  /// world (repair off) or revokes every pre-death communicator and wakes
  /// all waiters so survivors observe RankRevoked (repair on).
  void report_rank_death(int rank, const RankKilled& event);

  /// Marks `world_rank` doomed: its next transport wait, deadline check,
  /// or collective dispatch raises RankKilled on its own thread. The
  /// injector's rank-death manifestation and tests use this primitive.
  void kill_rank(int world_rank);

  /// Whether kill_rank / a fail-stop fault has doomed this rank (polled on
  /// the rank's own thread at cancellation points).
  bool rank_doomed(int world_rank) const noexcept {
    return doomed_[static_cast<std::size_t>(world_rank)].load(
        std::memory_order_acquire);
  }

  /// Whether this rank's death has been reported.
  bool rank_dead(int world_rank) const noexcept {
    return dead_[static_cast<std::size_t>(world_rank)].load(
        std::memory_order_acquire);
  }

  /// World ranks whose death has not been reported, in rank order: the
  /// membership of a shrink_and_continue communicator.
  std::vector<int> alive_members() const;

  /// Whether `comm` was revoked by a fail-stop under repair mode.
  /// Communicators registered after the revocation (the shrunken one) are
  /// exempt; everything older raises RankRevoked at its next operation.
  bool comm_revoked(Comm comm) const noexcept;

  /// A survivor completed its repair hook; when every survivor has, the
  /// world result reports repaired=true (outcome REPAIRED).
  void mark_repaired() noexcept {
    repaired_count_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Communicator registry. A communicator is a list of world ranks.
  /// `register_comm` is idempotent on `key`: all members of a new
  /// communicator derive the same creation key (parent handle, per-parent
  /// split sequence, color), so each obtains the same handle without any
  /// global ordering.
  Comm register_comm(const std::string& key, std::vector<int> members);

  /// Group of a communicator; throws MpiError(InvalidComm) for a handle
  /// that does not name a live communicator of this world.
  const std::vector<int>& group_of(Comm comm) const;

  /// Rank of `world_rank` within `comm`, or -1 if not a member.
  int comm_rank_of(Comm comm, int world_rank) const;

 private:
  friend class World;

  /// First-wins event capture with an explicit autopsy (the monitor's
  /// deterministic verdict); nullopt snapshots the live table instead.
  /// `poison` = false records the event without tearing the world down
  /// (the repair path: survivors must keep running).
  void capture_event(int rank, const FaultEvent& event,
                     std::optional<WorldAutopsy> autopsy, bool poison = true);

  /// Poison + mailbox wake storm (idempotent).
  void poison_and_wake();

  /// Rank-thread completion bookkeeping for the bounded join.
  void mark_done(int rank);
  bool wait_all_done_until(std::chrono::steady_clock::time_point deadline);

  /// Monitor body: polls the progress table and declares a deterministic
  /// deadlock on a stable, unsatisfiable, all-blocked snapshot.
  void monitor_loop();
  void stop_monitor();
  bool scan_for_deadlock(std::vector<RankSnapshot>& prev, bool& have_prev);
  void declare_deadlock(const std::vector<RankSnapshot>& snaps);

  /// Fiber engine's idle handler: invoked by the scheduler when no fiber
  /// is runnable. Wakes satisfiable or doomed waits; with nothing to
  /// wake, quiescence ("no runnable fiber, no queued message") IS the
  /// structural deadlock, declared through the same verdict path as the
  /// thread engine's monitor. The watchdog fallback (detection off,
  /// single rank, or an in-progress revocation) waits out the deadline
  /// and then wakes every blocked fiber in rank order.
  void fiber_idle(FiberScheduler& sched);

  WorldOptions options_;
  PoisonState poison_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<MemoryRegistry>> registries_;
  ProgressTable progress_;
  std::chrono::steady_clock::time_point deadline_{};

  std::mutex event_mutex_;
  std::optional<CapturedEvent> event_;
  std::optional<WorldAutopsy> autopsy_;

  mutable std::mutex comm_mutex_;
  struct CommEntry {
    std::vector<int> members;
  };
  std::vector<CommEntry> comms_;
  std::map<std::string, RawHandle> comm_keys_;

  ToolHooks* tools_ = nullptr;

  // Fail-stop bookkeeping: doomed_ is the kill signal a rank polls on its
  // own thread; dead_ records reported deaths; revoked_comm_limit_ is the
  // size of the communicator table at revocation time (older handles are
  // revoked, newer — the shrunken comm — are exempt).
  std::unique_ptr<std::atomic<bool>[]> doomed_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<int> dead_count_{0};
  std::atomic<int> repaired_count_{0};
  std::atomic<std::size_t> revoked_comm_limit_{0};

  // Internal (non-fault) exception escaping a rank thread.
  std::mutex internal_mutex_;
  std::exception_ptr internal_error_;

  // Bounded-join bookkeeping: per-rank done flags + completion counter.
  std::unique_ptr<std::atomic<bool>[]> done_;
  std::mutex join_mutex_;
  std::condition_variable join_cv_;
  int finished_ = 0;

  // Monitor lifecycle.
  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;

  // Objects the caller asked to keep alive as long as any rank thread can
  // run (see World::add_keepalive).
  std::vector<std::shared_ptr<void>> keepalives_;
};

/// Thin single-use handle over a shared WorldState. Stack-allocatable (as
/// every test does); the state itself survives a quarantined straggler.
class World {
 public:
  explicit World(WorldOptions options);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `rank_main` on every rank. Callable once per World. Exceptions
  /// that are not FaultEvents (library bugs) are re-thrown to the caller
  /// — unless a thread leaked, in which case the result reports the leak
  /// (a quarantined trial is already lost to the guard layer).
  WorldResult run(const std::function<void(Mpi&)>& rank_main);

  const WorldOptions& options() const noexcept { return state_->options(); }
  int size() const noexcept { return state_->size(); }

  /// Installs the tool chain every collective dispatches through.
  void set_tools(ToolHooks* tools) noexcept;
  ToolHooks* tools() const noexcept { return state_->tools(); }

  /// Registers an object that must outlive every rank thread, including a
  /// quarantined one (the rank_main closure's captured state). Call
  /// before run().
  void add_keepalive(std::shared_ptr<void> keepalive);

  /// The shared state (used by the Mpi facade and by tests that poke at
  /// mailboxes/registries directly).
  const std::shared_ptr<WorldState>& state() noexcept { return state_; }

  // --- forwarded accessors (source compatibility) ------------------------

  Mailbox& mailbox(int world_rank) { return state_->mailbox(world_rank); }
  MemoryRegistry& registry(int world_rank) {
    return state_->registry(world_rank);
  }
  PoisonState& poison() noexcept { return state_->poison(); }
  bool poisoned() { return state_->poisoned(); }
  std::chrono::steady_clock::time_point deadline() const noexcept {
    return state_->deadline();
  }
  void report_event(int rank, const FaultEvent& event) {
    state_->report_event(rank, event);
  }
  /// Fail-stop test primitive: dooms one rank; it dies at its next
  /// cancellation point (transport wait, deadline check, dispatch).
  void kill_rank(int world_rank) { state_->kill_rank(world_rank); }
  Comm register_comm(const std::string& key, std::vector<int> members) {
    return state_->register_comm(key, std::move(members));
  }
  const std::vector<int>& group_of(Comm comm) const {
    return state_->group_of(comm);
  }
  int comm_rank_of(Comm comm, int world_rank) const {
    return state_->comm_rank_of(comm, world_rank);
  }

 private:
  /// The legacy thread-per-rank engine: one OS thread per rank, a monitor
  /// thread, bounded join with quarantine escalation.
  WorldResult run_threads(const std::function<void(Mpi&)>& rank_main);

  /// The event-driven engine: rank fibers multiplexed on the calling
  /// thread; zero threads created, structural deadlock at quiescence,
  /// teardown by resuming every blocked fiber to its cancellation point.
  WorldResult run_fibers(const std::function<void(Mpi&)>& rank_main);

  std::shared_ptr<WorldState> state_;
  bool ran_ = false;
};

}  // namespace fastfit::mpi

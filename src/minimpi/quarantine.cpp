#include "minimpi/quarantine.hpp"

#include <utility>

namespace fastfit::mpi {

ThreadQuarantine& ThreadQuarantine::instance() {
  static ThreadQuarantine quarantine;
  return quarantine;
}

void ThreadQuarantine::adopt(std::thread thread,
                             std::shared_ptr<void> keepalive,
                             const std::atomic<bool>* done) {
  std::lock_guard lock(mutex_);
  entries_.push_back(Entry{std::move(thread), std::move(keepalive), done});
  adopted_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ThreadQuarantine::reap() {
  std::lock_guard lock(mutex_);
  std::vector<Entry> still_leaked;
  for (auto& entry : entries_) {
    if (entry.done != nullptr &&
        entry.done->load(std::memory_order_acquire)) {
      entry.thread.join();
    } else {
      still_leaked.push_back(std::move(entry));
    }
  }
  entries_ = std::move(still_leaked);
  return entries_.size();
}

ThreadQuarantine::~ThreadQuarantine() {
  // Process exit with threads still wedged: detach them and deliberately
  // leak their keepalives — tearing down state under a running thread
  // would be a use-after-free, and the process is going away regardless.
  std::lock_guard lock(mutex_);
  for (auto& entry : entries_) {
    if (entry.done != nullptr &&
        entry.done->load(std::memory_order_acquire)) {
      entry.thread.join();
      continue;
    }
    entry.thread.detach();
    new std::shared_ptr<void>(std::move(entry.keepalive));  // intentional leak
  }
  entries_.clear();
}

}  // namespace fastfit::mpi

// Reduction-family collectives without a root: MPI_Allreduce (recursive
// doubling with non-power-of-two folding, the MPICH short-vector
// algorithm), MPI_Reduce_scatter_block (reduce + scatter), and MPI_Scan
// (linear prefix chain).

#include "minimpi/coll_util.hpp"
#include "minimpi/mpi.hpp"

namespace fastfit::mpi {

using detail::byte_ptr;
using detail::combine_payload;
using detail::floor_pow2;
using detail::require_fits;

void Mpi::run_allreduce(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esize = datatype_size(call.datatype);
  const std::size_t bytes = static_cast<std::size_t>(call.count) * esize;
  const int pof2 = floor_pow2(n);
  const int rem = n - pof2;

  auto accum = pack(call.sendbuf, bytes, "allreduce send buffer");

  // Fold the ranks beyond the largest power of two into their neighbours.
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      send_internal(call.comm, me + 1, coll_tag(call.comm, seq, 0), accum);
      newrank = -1;  // idle during the exchange rounds
    } else {
      auto payload =
          recv_internal(call.comm, me - 1, coll_tag(call.comm, seq, 0));
      combine_payload(call.op, call.datatype, payload, accum);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  // Recursive-doubling exchange over the power-of-two subgroup.
  if (newrank != -1) {
    std::uint8_t phase = 1;
    for (int mask = 1; mask < pof2; mask <<= 1, ++phase) {
      const int newdst = newrank ^ mask;
      const int dst = (newdst < rem) ? newdst * 2 + 1 : newdst + rem;
      send_internal(call.comm, dst, coll_tag(call.comm, seq, phase), accum);
      auto payload =
          recv_internal(call.comm, dst, coll_tag(call.comm, seq, phase));
      combine_payload(call.op, call.datatype, payload, accum);
    }
  }

  // Unfold: deliver the result back to the idle even ranks.
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      send_internal(call.comm, me - 1, coll_tag(call.comm, seq, 255), accum);
    } else {
      accum = recv_internal(call.comm, me + 1, coll_tag(call.comm, seq, 255));
      require_fits(accum.size(), bytes, "allreduce");
    }
  }

  store(call.recvbuf, accum, "allreduce receive buffer");
}

void Mpi::run_reduce_scatter_block(const CollectiveCall& call,
                                   std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esize = datatype_size(call.datatype);
  const std::size_t block_bytes =
      static_cast<std::size_t>(call.count) * esize;
  const std::size_t total_bytes = block_bytes * static_cast<std::size_t>(n);

  // Binomial reduce to rank 0 over the full n-block vector...
  auto accum =
      pack(call.sendbuf, total_bytes, "reduce_scatter_block send buffer");
  int mask = 1;
  bool sent = false;
  while (mask < n) {
    if ((me & mask) == 0) {
      const int src = me | mask;
      if (src < n) {
        auto payload =
            recv_internal(call.comm, src, coll_tag(call.comm, seq, 0));
        combine_payload(call.op, call.datatype, payload, accum);
      }
    } else {
      send_internal(call.comm, me & ~mask, coll_tag(call.comm, seq, 0),
                    std::move(accum));
      sent = true;
      break;
    }
    mask <<= 1;
  }

  // ...then rank 0 scatters the blocks.
  std::vector<std::byte> mine;
  if (me == 0) {
    for (int r = n - 1; r >= 1; --r) {
      const std::size_t offset = static_cast<std::size_t>(r) * block_bytes;
      std::vector<std::byte> block;
      if (offset < accum.size()) {
        const std::size_t len = std::min(block_bytes, accum.size() - offset);
        block.assign(accum.begin() + static_cast<std::ptrdiff_t>(offset),
                     accum.begin() + static_cast<std::ptrdiff_t>(offset + len));
      }
      send_internal(call.comm, r, coll_tag(call.comm, seq, 1),
                    std::move(block));
    }
    accum.resize(std::min(accum.size(), block_bytes));
    mine = std::move(accum);
  } else {
    (void)sent;
    mine = recv_internal(call.comm, 0, coll_tag(call.comm, seq, 1));
    require_fits(mine.size(), block_bytes, "reduce_scatter_block");
  }
  store(call.recvbuf, mine, "reduce_scatter_block receive buffer");
}

void Mpi::run_scan(const CollectiveCall& call, std::uint32_t seq) {
  const int n = size(call.comm);
  const int me = world_->comm_rank_of(call.comm, world_rank_);
  const std::size_t esize = datatype_size(call.datatype);
  const std::size_t bytes = static_cast<std::size_t>(call.count) * esize;

  auto accum = pack(call.sendbuf, bytes, "scan send buffer");
  if (me > 0) {
    auto prefix =
        recv_internal(call.comm, me - 1, coll_tag(call.comm, seq, 0));
    combine_payload(call.op, call.datatype, prefix, accum);
  }
  if (me < n - 1) {
    send_internal(call.comm, me + 1, coll_tag(call.comm, seq, 0), accum);
  }
  store(call.recvbuf, accum, "scan receive buffer");
}

}  // namespace fastfit::mpi

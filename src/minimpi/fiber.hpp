#pragma once

// Stackful rank fibers: the event-driven world engine's execution
// contexts.
//
// A FiberScheduler multiplexes N resumable rank contexts onto the ONE
// OS thread that calls run() — a World under the fiber engine therefore
// never creates a thread of its own, and a campaign's total thread count
// is bounded by the executor's worker-pool width no matter how many
// ranks each trial simulates. Fibers are resumable contexts on
// heap-allocated stacks; a context switch is a user-space register swap
// with no kernel involvement (fastfit_ctx_swap on x86-64, ucontext
// elsewhere), which is what retires the thread-per-rank substrate's
// spawn/join and scheduling overhead (ISSUE: negative lane scaling at
// pool 2-4).
//
// Scheduling is cooperative and deterministic: the ready queue is FIFO,
// seeded in rank order, and every yield point is a mailbox rendezvous
// (minimpi/mailbox.cpp) — rank code never observes preemption. Because
// MiniMPI matching is exact on (source, tag), the schedule cannot change
// any rank's observable execution, which is why the fiber and thread
// engines produce byte-identical trial results (enforced by the engine
// parity suite).
//
// Wakes (message delivery, poison, revocation, kill_rank) may arrive
// from other OS threads (tests, the process-wide teardown paths), so
// make_ready() is thread-safe and a wake that races a fiber's entry
// into block_current() is latched in a per-fiber pending flag rather
// than lost — the cooperative analogue of Mailbox::wake()'s
// lock-before-notify discipline.
//
// Sanitizer support: under TSan and ASan every switch is annotated with
// the fiber APIs (__tsan_switch_to_fiber / __sanitizer_start_switch_
// fiber), so the fiber suites run under the sanitizer CI jobs like any
// other code.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <ucontext.h>
#include <vector>

// Sanitizer fiber-API detection: GCC defines __SANITIZE_THREAD__ /
// __SANITIZE_ADDRESS__; Clang exposes __has_feature. Raw swapcontext
// without these annotations makes TSan report false races (it keeps
// analyzing the old stack) and breaks ASan's fake-stack bookkeeping.
#if defined(__SANITIZE_THREAD__)
#define FASTFIT_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FASTFIT_TSAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define FASTFIT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FASTFIT_ASAN_FIBERS 1
#endif
#endif

// Hot-path switch selection: glibc's swapcontext makes a rt_sigprocmask
// syscall per switch — two kernel round trips per mailbox rendezvous,
// the single largest cost left on the fiber fast path. On x86-64 Linux
// plain builds the scheduler switches with fastfit_ctx_swap (fiber.cpp),
// a ~20-instruction callee-saved register swap with no kernel
// involvement. Sanitizer builds keep ucontext so the fiber annotations
// stay on the well-trodden path, as do other architectures.
#if defined(__x86_64__) && defined(__linux__) &&  \
    !defined(FASTFIT_TSAN_FIBERS) && !defined(FASTFIT_ASAN_FIBERS)
#define FASTFIT_FAST_SWITCH 1
#endif

namespace fastfit::mpi {

class FiberScheduler {
 public:
  /// Default fiber stack: generous for the bundled mini-apps (their rank
  /// functions keep bulk data on the heap), small enough that a 256-rank
  /// world costs tens of MiB, not gigabytes of kernel thread stacks.
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit FiberScheduler(int nfibers,
                          std::size_t stack_bytes = kDefaultStackBytes);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Runs body(i) for every fiber i to completion, multiplexed on the
  /// calling thread. Whenever no fiber is ready and not all have
  /// finished, on_idle() is invoked; it must eventually make a fiber
  /// ready (wake a satisfiable wait, declare a deadlock and poison, or
  /// wake all blocked fibers at the watchdog deadline) — with every
  /// MiniMPI wait a cancellation point, a blocked fiber always unwinds
  /// once resumed, so run() terminates for every cooperative workload.
  void run(const std::function<void(int)>& body,
           const std::function<void()>& on_idle);

  /// The scheduler driving the calling thread, or nullptr when the
  /// caller is a plain thread (the thread engine / tests poking at
  /// mailboxes directly). Mailbox::receive uses this to pick the yield
  /// path over the condition-variable path.
  static FiberScheduler* active() noexcept;

  /// Index of the fiber running on this scheduler, -1 between fibers.
  int current() const noexcept { return current_; }

  /// True while the calling thread is executing inside a fiber body.
  bool in_fiber() const noexcept { return current_ >= 0; }

  /// Parks the current fiber and switches to the scheduler. Returns when
  /// some make_ready(current) resumes it. A wake that arrived since the
  /// caller last held the fiber (the pending latch) returns immediately.
  void block_current();

  /// Marks a blocked fiber ready (FIFO). Thread-safe: callable from the
  /// scheduler thread (a sender fiber delivering to a parked receiver)
  /// or from any other thread (kill_rank, poison storms from tests).
  /// Waking a running fiber latches the wake instead of losing it;
  /// waking a ready or finished fiber is a no-op.
  void make_ready(int fiber);

  /// Blocked fibers in rank order — the idle handler's scan set.
  std::vector<int> blocked() const;

  /// Idle wait: blocks until a fiber becomes ready or `deadline` passes.
  /// Returns true when a fiber is ready. Only meaningful from on_idle().
  bool wait_for_ready(std::chrono::steady_clock::time_point deadline);

  /// Fibers whose body has returned.
  int finished() const noexcept { return finished_; }

  /// First frame of every fiber: runs body_(current_) and reports back.
  /// Public only because the fast-switch entry thunk (an extern "C"
  /// symbol the bootstrap stack frame returns into) must call it.
  static void trampoline();

 private:
  enum class State : std::uint8_t { Ready, Running, Blocked, Done };

  struct Fiber {
    ucontext_t context{};
    void* saved_sp = nullptr;  // fast-switch path: parked stack pointer
    std::unique_ptr<std::byte[]> stack;
    State state = State::Ready;
    bool wake_pending = false;
#if defined(FASTFIT_TSAN_FIBERS)
    void* tsan_fiber = nullptr;
#endif
  };

  void resume(int fiber);
  void switch_to_scheduler(bool dying);

  const int nfibers_;
  const std::size_t stack_bytes_;
  std::vector<Fiber> fibers_;
  ucontext_t sched_context_{};
  void* sched_sp_ = nullptr;  // fast-switch path: scheduler's parked sp

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<int> ready_;
  bool cv_waiting_ = false;  // a thread is parked in wait_for_ready
  int finished_ = 0;

  int current_ = -1;
  const std::function<void(int)>* body_ = nullptr;
  std::exception_ptr error_;

#if defined(FASTFIT_TSAN_FIBERS)
  void* tsan_sched_fiber_ = nullptr;
#endif
#if defined(FASTFIT_ASAN_FIBERS)
  void* asan_fake_stack_ = nullptr;  // scheduler context's saved fake stack
#endif
};

}  // namespace fastfit::mpi

#include "pmpi/chain.hpp"

#include "support/error.hpp"

namespace fastfit::pmpi {

void HookChain::add(mpi::ToolHooks* tool) {
  if (tool == nullptr) throw InternalError("HookChain::add: null tool");
  tools_.push_back(tool);
}

void HookChain::on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  for (auto* tool : tools_) tool->on_enter(call, mpi);
}

void HookChain::on_exit(const mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  for (auto it = tools_.rbegin(); it != tools_.rend(); ++it) {
    (*it)->on_exit(call, mpi);
  }
}

void HookChain::on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) {
  for (auto* tool : tools_) tool->on_p2p(call, mpi);
}

}  // namespace fastfit::pmpi

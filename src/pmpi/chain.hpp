#pragma once

// Tool-hook chaining, mirroring how PMPI shims stack: the profiler and the
// fault injector both attach to the same interposition point without
// knowing about each other. on_enter runs in attachment order (profile the
// pristine call, then corrupt it — matching the paper, which profiles
// fault-free runs); on_exit runs in reverse.

#include <vector>

#include "minimpi/hooks.hpp"

namespace fastfit::pmpi {

class HookChain final : public mpi::ToolHooks {
 public:
  HookChain() = default;

  /// Attaches a tool. Tools are not owned; their lifetime must cover the
  /// world execution.
  void add(mpi::ToolHooks* tool);

  std::size_t size() const noexcept { return tools_.size(); }

  void on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_exit(const mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) override;

 private:
  std::vector<mpi::ToolHooks*> tools_;
};

}  // namespace fastfit::pmpi

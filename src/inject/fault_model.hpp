#pragma once

// Fault models.
//
// The paper's model is a single random bit flip. Real upsets also appear
// as multi-bit flips (adjacent cells), stuck-at faults, and whole-byte
// corruption (bus/latch errors); these ship as ablation variants so the
// sensitivity of the paper's conclusions to the fault model itself can be
// measured (bench/ablation_fault_models).
//
// v2 makes the model two-axis (docs/fault_models.md): a *manifestation*
// (what the fault does — parameter mutation, in-flight message corruption,
// delay, drop, or fail-stop rank death) crossed with a *trigger* (when it
// fires — the paper's exact (site,rank,invocation) point, probabilistic
// per-call, crash-on-Nth-call, or uniform-over-run). A FaultModelSpec names
// one (manifestation, trigger) pair with a canonical string form
// "model[@trigger[=param]]" used by --fault-models, describe(), and the
// trial journal.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/rng.hpp"

namespace fastfit::inject {

enum class FaultModel : std::uint8_t {
  SingleBitFlip = 0,   ///< the paper's model
  DoubleBitFlip = 1,   ///< two distinct random bits
  StuckAtZero = 2,     ///< a random bit forced to 0 (no-op on a clear bit)
  RandomByte = 3,      ///< one byte replaced with a random value
  StuckAtOne = 4,      ///< a random bit forced to 1 (no-op on a set bit)
  MessageCorrupt = 5,  ///< one bit flipped in an in-flight message payload
  MessageDelay = 6,    ///< one outgoing message held back, delivered late
  MessageDrop = 7,     ///< one outgoing message silently discarded
  RankDeath = 8,       ///< fail-stop: the rank dies at the trigger point
  // Real-signal manifestations: the injected rank raises a genuine POSIX
  // signal at the trigger point, killing the whole trial process. Only
  // valid under --isolation process (Campaign rejects them otherwise);
  // the fork-server supervisor classifies the worker's death SEG_FAULT
  // with the signal number and rusage as forensics.
  SigSegv = 9,   ///< raise(SIGSEGV)
  SigBus = 10,   ///< raise(SIGBUS)
  SigFpe = 11,   ///< raise(SIGFPE)
  SigAbrt = 12,  ///< raise(SIGABRT)
};

inline constexpr std::size_t kNumFaultModels = 13;

/// Manifestations that mutate a call parameter in place (the bit/byte
/// mutators). Only these flow through corrupt_parameter/mutate_bytes.
constexpr bool is_parameter_model(FaultModel model) noexcept {
  return model == FaultModel::SingleBitFlip ||
         model == FaultModel::DoubleBitFlip ||
         model == FaultModel::StuckAtZero ||
         model == FaultModel::RandomByte || model == FaultModel::StuckAtOne;
}

/// Manifestations that act on the transport layer (in-flight messages).
constexpr bool is_message_model(FaultModel model) noexcept {
  return model == FaultModel::MessageCorrupt ||
         model == FaultModel::MessageDelay || model == FaultModel::MessageDrop;
}

/// Manifestations that raise a genuine POSIX signal, killing the trial
/// process. Require process isolation; the campaign refuses them under
/// the in-process thread backend.
constexpr bool is_signal_model(FaultModel model) noexcept {
  return model == FaultModel::SigSegv || model == FaultModel::SigBus ||
         model == FaultModel::SigFpe || model == FaultModel::SigAbrt;
}

/// The POSIX signal number a signal manifestation raises. Throws
/// InternalError for non-signal models.
int signal_number(FaultModel model);

const char* to_string(FaultModel model) noexcept;

// ---------------------------------------------------------------------------
// Trigger axis
// ---------------------------------------------------------------------------

enum class FaultTrigger : std::uint8_t {
  ExactPoint = 0,      ///< the paper's (site, rank, invocation) point
  Probabilistic = 1,   ///< independent Bernoulli(p) draw per matching call
  NthCall = 2,         ///< fires on the rank's Nth matching call (1-based)
  UniformOverRun = 3,  ///< one call chosen uniformly from a window of W calls
  /// Intermittent duty cycle: fires on the first k of every n collective
  /// calls the injected rank makes ("@duty=k/n"), modelling a marginal
  /// cell that manifests periodically — e.g. "stuck-at-one@duty=1/4" is a
  /// bit stuck high a quarter of the time. Unlike the one-shot triggers
  /// the fault fires on *every* matching call, with the same
  /// manifestation stream each time (the same bit sticks). Parameter
  /// manifestations only.
  DutyCycle = 4,
};

inline constexpr std::size_t kNumFaultTriggers = 5;

const char* to_string(FaultTrigger trigger) noexcept;

/// One point in the manifestation × trigger plane. The default-constructed
/// spec is exactly the paper's model (single bit flip at the enumerated
/// point), so pre-v2 behaviour is the zero configuration.
struct FaultModelSpec {
  FaultModel model = FaultModel::SingleBitFlip;
  FaultTrigger trigger = FaultTrigger::ExactPoint;
  double probability = 0.0;   ///< Probabilistic: per-call fire probability
  std::uint64_t window = 0;   ///< NthCall: N; UniformOverRun: W; DutyCycle: n
  std::uint64_t duty_k = 0;   ///< DutyCycle: fires on the first k of n calls

  bool operator==(const FaultModelSpec&) const = default;

  bool is_default() const noexcept {
    return *this == FaultModelSpec{};
  }

  /// Canonical text form: "single-bit-flip", "rank-death@nth=3",
  /// "message-drop@prob=0.001", "random-byte@uniform=16",
  /// "stuck-at-one@duty=1/4". The default trigger (exact point) is
  /// omitted so the default spec round-trips to the pre-v2 model name.
  std::string canonical() const;

  /// Parses the canonical form; throws ConfigError on unknown names,
  /// malformed parameters, or out-of-range values.
  static FaultModelSpec parse(const std::string& text);
};

/// Parses a comma-separated list of canonical specs ("single-bit-flip,
/// rank-death"). An empty string yields the default single-spec list.
/// Throws ConfigError on any malformed entry or duplicate spec.
std::vector<FaultModelSpec> parse_fault_models(const std::string& list);

/// Comma-joined canonical forms, the inverse of parse_fault_models.
std::string canonical_fault_models(const std::vector<FaultModelSpec>& specs);

/// Comma-joined names of the parameter-mutation family ("single-bit-flip,
/// double-bit-flip, ..."), for error messages that must list what a
/// parameter-only surface (e.g. the p2p study) supports.
std::string parameter_fault_model_names();

/// True when a trial under this spec may take the snapshot fast path.
/// Message-level and fail-stop manifestations perturb transport state the
/// prefix recording does not capture, and non-exact triggers can fire
/// inside the replayed prefix — both classes must execute from scratch.
constexpr bool is_replayable(const FaultModelSpec& spec) noexcept {
  return spec.trigger == FaultTrigger::ExactPoint &&
         is_parameter_model(spec.model);
}

/// Applies `model` to the byte range. Returns false when the mutation is
/// provably a no-op (e.g. stuck-at-zero on an already-clear bit) — the
/// fault landed but changed nothing, which callers may count as a
/// non-manifested fault. Empty ranges return false. Only parameter models
/// are valid here; message/fail-stop manifestations have no byte-range
/// semantics and throw InternalError.
bool mutate_bytes(std::span<std::byte> bytes, FaultModel model,
                  RngStream& rng);

/// Applies `model` to a trivially-copyable value, returning the mutated
/// copy. `changed` (optional) reports whether the value differs.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T mutate_value(T value, FaultModel model, RngStream& rng,
               bool* changed = nullptr) {
  std::byte raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  const bool mutated =
      mutate_bytes(std::span<std::byte>(raw, sizeof(T)), model, rng);
  T out;
  std::memcpy(&out, raw, sizeof(T));
  if (changed != nullptr) *changed = mutated && std::memcmp(&out, &value, sizeof(T)) != 0;
  return out;
}

}  // namespace fastfit::inject

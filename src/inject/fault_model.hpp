#pragma once

// Fault models.
//
// The paper's model is a single random bit flip. Real upsets also appear
// as multi-bit flips (adjacent cells), stuck-at faults, and whole-byte
// corruption (bus/latch errors); these ship as ablation variants so the
// sensitivity of the paper's conclusions to the fault model itself can be
// measured (bench/ablation_fault_models).

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "support/rng.hpp"

namespace fastfit::inject {

enum class FaultModel : std::uint8_t {
  SingleBitFlip = 0,  ///< the paper's model
  DoubleBitFlip = 1,  ///< two distinct random bits
  StuckAtZero = 2,    ///< a random bit forced to 0 (no-op on a clear bit)
  RandomByte = 3,     ///< one byte replaced with a random value
};

inline constexpr std::size_t kNumFaultModels = 4;

const char* to_string(FaultModel model) noexcept;

/// Applies `model` to the byte range. Returns false when the mutation is
/// provably a no-op (e.g. stuck-at-zero on an already-clear bit) — the
/// fault landed but changed nothing, which callers may count as a
/// non-manifested fault. Empty ranges return false.
bool mutate_bytes(std::span<std::byte> bytes, FaultModel model,
                  RngStream& rng);

/// Applies `model` to a trivially-copyable value, returning the mutated
/// copy. `changed` (optional) reports whether the value differs.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T mutate_value(T value, FaultModel model, RngStream& rng,
               bool* changed = nullptr) {
  std::byte raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  const bool mutated =
      mutate_bytes(std::span<std::byte>(raw, sizeof(T)), model, rng);
  T out;
  std::memcpy(&out, raw, sizeof(T));
  if (changed != nullptr) *changed = mutated && std::memcmp(&out, &value, sizeof(T)) != 0;
  return out;
}

}  // namespace fastfit::inject

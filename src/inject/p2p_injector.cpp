#include "inject/p2p_injector.hpp"

#include <sstream>

#include "inject/fault_spec.hpp"
#include "minimpi/datatype.hpp"
#include "minimpi/mpi.hpp"
#include "support/error.hpp"

namespace fastfit::inject {

std::uint64_t P2pFaultSpec::stream_index() const noexcept {
  return mix_stream_index(site_id, static_cast<std::uint64_t>(rank),
                          invocation, static_cast<std::uint64_t>(param),
                          trial);
}

std::string P2pFaultSpec::describe() const {
  std::ostringstream out;
  out << "p2p-fault{site=0x" << std::hex << site_id << std::dec
      << " rank=" << rank << " inv=" << invocation
      << " param=" << mpi::to_string(param) << " trial=" << trial
      << " model=" << to_string(model) << '}';
  return out.str();
}

bool corrupt_p2p_parameter(mpi::P2pCall& call, mpi::P2pParam param,
                           FaultModel model, RngStream& rng, mpi::Mpi& mpi) {
  bool changed = false;
  switch (param) {
    case mpi::P2pParam::Buffer: {
      if (call.buffer == nullptr || call.count < 0 ||
          !mpi::is_valid(call.datatype)) {
        return false;
      }
      const std::size_t bytes =
          static_cast<std::size_t>(call.count) *
          mpi::datatype_size(call.datatype);
      if (bytes == 0 || !mpi.registry().covers(call.buffer, bytes)) {
        return false;
      }
      return mutate_bytes(
          std::span<std::byte>(static_cast<std::byte*>(call.buffer), bytes),
          model, rng);
    }
    case mpi::P2pParam::Count:
      call.count = mutate_value(call.count, model, rng, &changed);
      return changed;
    case mpi::P2pParam::Datatype:
      call.datatype = static_cast<mpi::Datatype>(
          mutate_value(mpi::raw(call.datatype), model, rng, &changed));
      return changed;
    case mpi::P2pParam::Peer: {
      const auto mutated = mutate_value(
          static_cast<std::int32_t>(call.peer), model, rng, &changed);
      call.peer = static_cast<int>(mutated);
      return changed;
    }
    case mpi::P2pParam::Tag:
      call.tag = mutate_value(call.tag, model, rng, &changed);
      return changed;
  }
  throw InternalError("corrupt_p2p_parameter: unknown parameter");
}

P2pInjector::P2pInjector(P2pFaultSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {}

void P2pInjector::on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) {
  if (fired_.load(std::memory_order_relaxed)) return;
  if (mpi.world_rank() != spec_.rank) return;
  if (call.site_id != spec_.site_id) return;
  if (call.invocation != spec_.invocation) return;

  fired_.store(true);
  RngStream rng(seed_, "p2p-bitflip", spec_.stream_index());
  if (!corrupt_p2p_parameter(call, spec_.param, spec_.model, rng, mpi)) {
    fizzled_.store(true);
  }
}

}  // namespace fastfit::inject

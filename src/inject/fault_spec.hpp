#pragma once

// Fault specification: one planned fault.
//
// A FaultSpec pins the paper's Table II coordinates — which rank
// (RANK_ID), which collective call site (CALL_ID), which invocation
// (INV_ID), which parameter (PARAM_ID) — plus the trial index that seeds
// the random choices, plus the two-axis fault model (manifestation ×
// trigger, inject/fault_model.hpp). The default model is exactly the
// paper's: a single random bit flip in one input parameter (or one random
// bit of the data buffer) of one collective invocation.

#include <cstdint>
#include <string>

#include "inject/fault_model.hpp"
#include "minimpi/hooks.hpp"

namespace fastfit::inject {

struct FaultSpec {
  std::uint32_t site_id = 0;      ///< collective call site (CALL_ID analogue)
  int rank = 0;                   ///< injected world rank (RANK_ID)
  std::uint64_t invocation = 0;   ///< injected invocation ordinal (INV_ID)
  mpi::Param param{};             ///< injected parameter (PARAM_ID)
  std::uint64_t trial = 0;        ///< per-point trial ordinal
  FaultModelSpec fault{};         ///< manifestation × trigger

  bool operator==(const FaultSpec&) const = default;

  /// RNG stream index for this trial, mixed from *all* the injection
  /// coordinates — (site, rank, invocation, param, trial) — rather than
  /// the trial ordinal alone. Together with the campaign master seed this
  /// makes the flipped bit a pure function of (seed, point, trial index):
  /// trial t of a point draws the same bits no matter what other points
  /// were measured before it or on which thread it runs.
  std::uint64_t stream_index() const noexcept;

  /// Human-readable one-liner for logs and reports.
  std::string describe() const;
};

/// Shared coordinate-mixing helper behind FaultSpec::stream_index and its
/// p2p counterpart: FNV-style folding plus a SplitMix finalizer.
std::uint64_t mix_stream_index(std::uint64_t site, std::uint64_t rank,
                               std::uint64_t invocation, std::uint64_t param,
                               std::uint64_t trial) noexcept;

/// Stable identity hash of one injection point — the trial-free sibling of
/// mix_stream_index, used to partition a point set across study shards.
/// Every process that enumerates the same campaign computes the same hash
/// for the same point, so `hash % shard_count` is a deterministic,
/// order-free partition. The all-ones trial sentinel keeps the identity
/// domain disjoint from every real trial's stream index.
std::uint64_t point_identity_hash(std::uint64_t site, std::uint64_t rank,
                                  std::uint64_t invocation,
                                  std::uint64_t param) noexcept;

}  // namespace fastfit::inject

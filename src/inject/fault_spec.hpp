#pragma once

// Fault specification: one planned bit flip.
//
// A FaultSpec pins the paper's Table II coordinates — which rank
// (RANK_ID), which collective call site (CALL_ID), which invocation
// (INV_ID), which parameter (PARAM_ID) — plus the trial index that seeds
// the random bit choice. The fault model is exactly the paper's: a single
// random bit flip in one input parameter (or one random bit of the data
// buffer) of one collective invocation.

#include <cstdint>
#include <string>

#include "inject/fault_model.hpp"
#include "minimpi/hooks.hpp"

namespace fastfit::inject {

struct FaultSpec {
  std::uint32_t site_id = 0;      ///< collective call site (CALL_ID analogue)
  int rank = 0;                   ///< injected world rank (RANK_ID)
  std::uint64_t invocation = 0;   ///< injected invocation ordinal (INV_ID)
  mpi::Param param{};             ///< injected parameter (PARAM_ID)
  std::uint64_t trial = 0;        ///< trial index; selects the flipped bit
  FaultModel model = FaultModel::SingleBitFlip;  ///< fault manifestation

  bool operator==(const FaultSpec&) const = default;

  /// Human-readable one-liner for logs and reports.
  std::string describe() const;
};

}  // namespace fastfit::inject

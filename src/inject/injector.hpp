#pragma once

// The fault-injection tool: a ToolHooks implementation armed with one
// FaultSpec per trial. The spec's *trigger* decides when the fault fires —
// the paper's exact (rank, site, invocation) point, a Bernoulli draw per
// call, the Nth call, or a uniformly chosen call from a window — and its
// *manifestation* decides what happens: a parameter mutation at the call
// record (the PMPI-shim deployment of the paper's Fig 5), an in-flight
// message corruption / delay / drop at the transport layer, or fail-stop
// rank death. Every untargeted call passes through untouched.

#include <atomic>
#include <cstdint>

#include "inject/fault_spec.hpp"
#include "minimpi/hooks.hpp"
#include "support/rng.hpp"

namespace fastfit::inject {

class Injector final : public mpi::ToolHooks {
 public:
  /// `seed` is the campaign master seed. Manifestation randomness (which
  /// bit, which byte) is drawn from the ("bitflip", spec.stream_index())
  /// stream and trigger randomness (Bernoulli draws, the uniform call
  /// choice) from the disjoint ("trigger", spec.stream_index()) stream, so
  /// trial t of a point is reproducible in isolation, independent of
  /// campaign execution order, and byte-identical to pre-v2 behaviour for
  /// the default exact-point trigger.
  Injector(FaultSpec spec, std::uint64_t seed);

  void on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_exit(const mpi::CollectiveCall& call, mpi::Mpi& mpi) override;

  /// Transport interception for the message-fault manifestations: once the
  /// trigger has armed the fault, the injected rank's next outgoing
  /// message is corrupted, held, or dropped.
  mpi::SendAction on_transport_send(int source_world, int dest_world,
                                    std::uint64_t tag,
                                    std::vector<std::byte>& payload) override;

  /// True once the trigger fired and the manifestation was applied.
  bool fired() const noexcept { return fired_.load(); }

  /// True if the fault fired but had no corruptible substance (e.g.
  /// zero-length buffer, stuck-at bit already at its stuck value): the
  /// trial ran effectively fault-free.
  bool fizzled() const noexcept { return fizzled_.load(); }

  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  /// Trigger axis: does this call (on the injected rank) fire the fault?
  /// Only called on the injected rank's own thread; the per-call counters
  /// and trigger RNG are therefore single-threaded.
  bool trigger_fires(const mpi::CollectiveCall& call);

  /// Manifestation axis, applied to the firing call.
  void manifest(mpi::CollectiveCall& call, mpi::Mpi& mpi);

  FaultSpec spec_;
  std::uint64_t seed_;
  std::atomic<bool> fired_{false};
  std::atomic<bool> fizzled_{false};
  /// A message-fault manifestation armed by the trigger; consumed by the
  /// first subsequent on_transport_send from the injected rank.
  std::atomic<bool> transport_armed_{false};
  RngStream trigger_rng_;
  std::uint64_t calls_seen_ = 0;  ///< injected rank's collective calls
  std::uint64_t fire_at_ = 0;     ///< UniformOverRun: chosen call ordinal
  /// A repeating (duty-cycle) fault is fizzled only while *every* fire so
  /// far was a no-op; the first effective mutation latches this true.
  /// Rank-thread-only, like the counters above.
  bool manifested_ = false;
};

}  // namespace fastfit::inject

#pragma once

// The fault-injection tool: a ToolHooks implementation armed with one
// FaultSpec per trial. It waits for the targeted (rank, site, invocation)
// to come through the interposition layer and applies the bit flip there;
// every other call passes through untouched — the PMPI-shim deployment the
// paper describes (Fig 5's Fault Injection module).

#include <atomic>

#include "inject/fault_spec.hpp"
#include "minimpi/hooks.hpp"

namespace fastfit::inject {

class Injector final : public mpi::ToolHooks {
 public:
  /// `seed` is the campaign master seed; the flipped bit is drawn from the
  /// ("bitflip", spec.stream_index()) stream, so trial t of a point is
  /// reproducible in isolation and independent of campaign execution order.
  Injector(FaultSpec spec, std::uint64_t seed);

  void on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_exit(const mpi::CollectiveCall& call, mpi::Mpi& mpi) override;

  /// True once the targeted invocation was reached and the flip applied.
  bool fired() const noexcept { return fired_.load(); }

  /// True if the target was reached but the parameter had no corruptible
  /// substance (e.g. zero-length buffer): the trial ran effectively
  /// fault-free.
  bool fizzled() const noexcept { return fizzled_.load(); }

  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
  std::atomic<bool> fired_{false};
  std::atomic<bool> fizzled_{false};
};

}  // namespace fastfit::inject

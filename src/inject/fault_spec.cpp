#include "inject/fault_spec.hpp"

#include <sstream>

#include "support/rng.hpp"

namespace fastfit::inject {

std::uint64_t mix_stream_index(std::uint64_t site, std::uint64_t rank,
                               std::uint64_t invocation, std::uint64_t param,
                               std::uint64_t trial) noexcept {
  std::uint64_t key = 0xcbf29ce484222325ULL ^ site;
  key = key * 0x100000001b3ULL ^ rank;
  key = key * 0x100000001b3ULL ^ invocation;
  key = key * 0x100000001b3ULL ^ param;
  key = key * 0x100000001b3ULL ^ trial;
  return splitmix64(key);
}

std::uint64_t point_identity_hash(std::uint64_t site, std::uint64_t rank,
                                  std::uint64_t invocation,
                                  std::uint64_t param) noexcept {
  return mix_stream_index(site, rank, invocation, param,
                          ~std::uint64_t{0});
}

std::uint64_t FaultSpec::stream_index() const noexcept {
  return mix_stream_index(site_id, static_cast<std::uint64_t>(rank),
                          invocation, static_cast<std::uint64_t>(param),
                          trial);
}

std::string FaultSpec::describe() const {
  std::ostringstream out;
  out << "fault{site=0x" << std::hex << site_id << std::dec
      << " rank=" << rank << " inv=" << invocation
      << " param=" << mpi::to_string(param) << " trial=" << trial
      << " model=" << fault.canonical() << '}';
  return out.str();
}

}  // namespace fastfit::inject

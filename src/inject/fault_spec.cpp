#include "inject/fault_spec.hpp"

#include <sstream>

namespace fastfit::inject {

std::string FaultSpec::describe() const {
  std::ostringstream out;
  out << "fault{site=0x" << std::hex << site_id << std::dec
      << " rank=" << rank << " inv=" << invocation
      << " param=" << mpi::to_string(param) << " trial=" << trial << '}';
  return out.str();
}

}  // namespace fastfit::inject

#include "inject/injector.hpp"

#include <csignal>

#include "inject/corrupt.hpp"
#include "minimpi/mpi.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::inject {

Injector::Injector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec),
      seed_(seed),
      trigger_rng_(seed, "trigger", spec.stream_index()) {
  if (spec_.fault.trigger == FaultTrigger::UniformOverRun) {
    // One uniform draw over the window, made up front so the choice is a
    // pure function of (seed, point, trial) and not of run length. Runs
    // shorter than the window simply never fire (the fault fizzles).
    fire_at_ = spec_.fault.window > 0
                   ? trigger_rng_.uniform_u64(0, spec_.fault.window - 1)
                   : 0;
  }
}

bool Injector::trigger_fires(const mpi::CollectiveCall& call) {
  switch (spec_.fault.trigger) {
    case FaultTrigger::ExactPoint:
      return call.site_id == spec_.site_id &&
             call.invocation == spec_.invocation;
    case FaultTrigger::Probabilistic:
      ++calls_seen_;
      return trigger_rng_.bernoulli(spec_.fault.probability);
    case FaultTrigger::NthCall:
      // window is 1-based: nth=1 fires on the rank's first collective.
      return ++calls_seen_ == spec_.fault.window;
    case FaultTrigger::UniformOverRun:
      return calls_seen_++ == fire_at_;
    case FaultTrigger::DutyCycle:
      // First k of every n calls: an intermittent fault with period n.
      return (calls_seen_++ % spec_.fault.window) < spec_.fault.duty_k;
  }
  throw InternalError("Injector: unknown fault trigger");
}

void Injector::manifest(mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  const FaultModel model = spec_.fault.model;
  if (is_parameter_model(model)) {
    // The stream is re-derived per fire, so a repeating trigger (duty
    // cycle) corrupts the *same* bit every time — a genuine intermittent
    // stuck-at, not a fresh random upset per call.
    RngStream rng(seed_, "bitflip", spec_.stream_index());
    if (corrupt_parameter(call, spec_.param, model, rng, mpi)) {
      manifested_ = true;
      fizzled_.store(false);
    } else if (!manifested_) {
      // Fizzled only counts while *no* fire has ever bitten: a repeating
      // fault is effective as soon as any one of its fires changes state.
      fizzled_.store(true);
    }
    return;
  }
  if (is_message_model(model)) {
    // Arm the transport layer: the injected rank's next outgoing message
    // (normally the first phase message of this very collective) takes
    // the fault.
    transport_armed_.store(true, std::memory_order_release);
    return;
  }
  if (is_signal_model(model)) {
    // Genuine signal on the injected rank's thread: the default
    // disposition kills the entire trial process, which is the point —
    // the fork-server supervisor classifies the death SEG_FAULT. Only
    // reachable under process isolation (Campaign rejects signal models
    // for the in-process backend at construction).
    std::raise(signal_number(model));
    // raise() returning means something intercepted the signal; that is
    // a harness condition, not a trial outcome.
    throw InternalError(std::string("Injector: ") + to_string(model) +
                        " survived raise(); signal intercepted?");
  }
  // Fail-stop: this rank dies here, mid-collective, on its own thread.
  throw RankKilled(spec_.rank, "rank " + std::to_string(spec_.rank) +
                                   " fail-stop at " + spec_.describe());
}

void Injector::on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  // One-shot triggers latch on the first fire; a duty cycle keeps firing
  // for the life of the run (that is what makes it intermittent).
  const bool repeating = spec_.fault.trigger == FaultTrigger::DutyCycle;
  if (!repeating && fired_.load(std::memory_order_relaxed)) return;
  if (mpi.world_rank() != spec_.rank) return;
  if (!trigger_fires(call)) return;

  fired_.store(true);
  manifest(call, mpi);
}

void Injector::on_exit(const mpi::CollectiveCall&, mpi::Mpi&) {}

mpi::SendAction Injector::on_transport_send(int source_world, int /*dest*/,
                                            std::uint64_t /*tag*/,
                                            std::vector<std::byte>& payload) {
  if (!transport_armed_.load(std::memory_order_acquire)) {
    return mpi::SendAction::Deliver;
  }
  if (source_world != spec_.rank) return mpi::SendAction::Deliver;
  transport_armed_.store(false, std::memory_order_release);
  switch (spec_.fault.model) {
    case FaultModel::MessageCorrupt: {
      if (payload.empty()) {
        // Nothing to corrupt (e.g. a barrier token): the fault fizzles
        // and the pristine message is delivered.
        fizzled_.store(true);
        return mpi::SendAction::Deliver;
      }
      RngStream rng(seed_, "bitflip", spec_.stream_index());
      mutate_bytes(std::span<std::byte>(payload.data(), payload.size()),
                   FaultModel::SingleBitFlip, rng);
      return mpi::SendAction::Deliver;
    }
    case FaultModel::MessageDelay:
      return mpi::SendAction::Hold;
    case FaultModel::MessageDrop:
      return mpi::SendAction::Drop;
    default:
      throw InternalError("Injector: transport armed for non-message model");
  }
}

}  // namespace fastfit::inject

#include "inject/injector.hpp"

#include "inject/corrupt.hpp"
#include "minimpi/mpi.hpp"
#include "support/rng.hpp"

namespace fastfit::inject {

Injector::Injector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {}

void Injector::on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  if (fired_.load(std::memory_order_relaxed)) return;
  if (mpi.world_rank() != spec_.rank) return;
  if (call.site_id != spec_.site_id) return;
  if (call.invocation != spec_.invocation) return;

  fired_.store(true);
  RngStream rng(seed_, "bitflip", spec_.stream_index());
  if (!corrupt_parameter(call, spec_.param, spec_.model, rng, mpi)) {
    fizzled_.store(true);
  }
}

void Injector::on_exit(const mpi::CollectiveCall&, mpi::Mpi&) {}

}  // namespace fastfit::inject

#pragma once

// Parameter corruption: applies the single-bit-flip fault model to one
// parameter of a CollectiveCall.
//
// Scalar parameters (count, datatype, op, comm, root) flip one of their 32
// bits. Buffer parameters flip one random bit of the buffer *contents*
// (never the address — the paper excludes address faults as trivially
// catastrophic). For vector collectives, the count fault lands in a random
// entry of the count array, matching how the corresponding parameter is
// actually passed.

#include "inject/fault_model.hpp"
#include "inject/fault_spec.hpp"
#include "minimpi/hooks.hpp"
#include "support/rng.hpp"

namespace fastfit::mpi {
class Mpi;
}

namespace fastfit::inject {

/// Corrupts `param` of `call` in place under `model`. Returns false when
/// the parameter has no corruptible substance at this rank (zero-length
/// buffer, buffer not mapped in the rank's registry) or the mutation is a
/// provable no-op — the fault then lands in dead state and the trial
/// proceeds un-faulted, as on real hardware.
bool corrupt_parameter(mpi::CollectiveCall& call, mpi::Param param,
                       FaultModel model, RngStream& rng, mpi::Mpi& mpi);

/// Paper-default model (single bit flip).
inline bool corrupt_parameter(mpi::CollectiveCall& call, mpi::Param param,
                              RngStream& rng, mpi::Mpi& mpi) {
  return corrupt_parameter(call, param, FaultModel::SingleBitFlip, rng, mpi);
}

}  // namespace fastfit::inject

#include "inject/outcome.hpp"

#include "support/error.hpp"

namespace fastfit::inject {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Success: return "SUCCESS";
    case Outcome::AppDetected: return "APP_DETECTED";
    case Outcome::MpiErr: return "MPI_ERR";
    case Outcome::SegFault: return "SEG_FAULT";
    case Outcome::WrongAns: return "WRONG_ANS";
    case Outcome::InfLoop: return "INF_LOOP";
    case Outcome::RankDead: return "RANK_DEAD";
    case Outcome::Repaired: return "REPAIRED";
  }
  return "UNKNOWN";
}

const std::vector<std::string>& outcome_names() {
  static const std::vector<std::string> names{
      "SUCCESS", "APP_DETECTED", "MPI_ERR", "SEG_FAULT", "WRONG_ANS",
      "INF_LOOP", "RANK_DEAD", "REPAIRED"};
  return names;
}

Outcome classify(const mpi::WorldResult& result, std::uint64_t trial_digest,
                 std::uint64_t golden_digest) noexcept {
  if (result.event) {
    switch (result.event->type) {
      case mpi::EventType::AppDetected: return Outcome::AppDetected;
      case mpi::EventType::MpiErr: return Outcome::MpiErr;
      case mpi::EventType::SegFault: return Outcome::SegFault;
      case mpi::EventType::Timeout: return Outcome::InfLoop;
      case mpi::EventType::RankDead:
        return result.repaired ? Outcome::Repaired : Outcome::RankDead;
    }
  }
  return trial_digest == golden_digest ? Outcome::Success : Outcome::WrongAns;
}

TrialForensics classify_with_forensics(const mpi::WorldResult& result,
                                       std::uint64_t trial_digest,
                                       std::uint64_t golden_digest) {
  TrialForensics forensics;
  forensics.outcome = classify(result, trial_digest, golden_digest);
  if (forensics.outcome == Outcome::Success) return forensics;
  if (result.autopsy) {
    forensics.autopsy = result.autopsy->summary();
    forensics.deterministic_hang = result.autopsy->deterministic &&
                                   forensics.outcome == Outcome::InfLoop;
  } else if (result.event) {
    forensics.autopsy = result.event->message;
  } else {
    forensics.autopsy = "clean run, digest mismatch vs golden";
  }
  return forensics;
}

}  // namespace fastfit::inject

#pragma once

// Point-to-point fault injection: the paper's future-work extension of
// FastFIT to "other programming elements of an HPC application". The
// fault model, targeting, and outcome taxonomy are identical to the
// collective injector; only the interposition point differs.

#include <atomic>
#include <string>

#include "inject/fault_model.hpp"
#include "minimpi/hooks.hpp"
#include "support/rng.hpp"

namespace fastfit::inject {

struct P2pFaultSpec {
  std::uint32_t site_id = 0;
  int rank = 0;
  std::uint64_t invocation = 0;
  mpi::P2pParam param{};
  std::uint64_t trial = 0;
  FaultModel model = FaultModel::SingleBitFlip;

  bool operator==(const P2pFaultSpec&) const = default;

  /// RNG stream index mixed from all the coordinates; see
  /// FaultSpec::stream_index for the determinism contract.
  std::uint64_t stream_index() const noexcept;

  std::string describe() const;
};

/// Corrupts `param` of a point-to-point call in place. Returns false for
/// provable no-ops (empty/unmapped buffer, unchanged value).
bool corrupt_p2p_parameter(mpi::P2pCall& call, mpi::P2pParam param,
                           FaultModel model, RngStream& rng, mpi::Mpi& mpi);

class P2pInjector final : public mpi::ToolHooks {
 public:
  P2pInjector(P2pFaultSpec spec, std::uint64_t seed);

  void on_enter(mpi::CollectiveCall&, mpi::Mpi&) override {}
  void on_exit(const mpi::CollectiveCall&, mpi::Mpi&) override {}
  void on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) override;

  bool fired() const noexcept { return fired_.load(); }
  bool fizzled() const noexcept { return fizzled_.load(); }
  const P2pFaultSpec& spec() const noexcept { return spec_; }

 private:
  P2pFaultSpec spec_;
  std::uint64_t seed_;
  std::atomic<bool> fired_{false};
  std::atomic<bool> fizzled_{false};
};

}  // namespace fastfit::inject

#include "inject/fault_model.hpp"

#include <charconv>
#include <csignal>
#include <sstream>

#include "support/bitops.hpp"
#include "support/error.hpp"

namespace fastfit::inject {

const char* to_string(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::SingleBitFlip: return "single-bit-flip";
    case FaultModel::DoubleBitFlip: return "double-bit-flip";
    case FaultModel::StuckAtZero: return "stuck-at-zero";
    case FaultModel::RandomByte: return "random-byte";
    case FaultModel::StuckAtOne: return "stuck-at-one";
    case FaultModel::MessageCorrupt: return "message-corrupt";
    case FaultModel::MessageDelay: return "message-delay";
    case FaultModel::MessageDrop: return "message-drop";
    case FaultModel::RankDeath: return "rank-death";
    case FaultModel::SigSegv: return "sigsegv";
    case FaultModel::SigBus: return "sigbus";
    case FaultModel::SigFpe: return "sigfpe";
    case FaultModel::SigAbrt: return "sigabrt";
  }
  return "unknown";
}

int signal_number(FaultModel model) {
  switch (model) {
    case FaultModel::SigSegv: return SIGSEGV;
    case FaultModel::SigBus: return SIGBUS;
    case FaultModel::SigFpe: return SIGFPE;
    case FaultModel::SigAbrt: return SIGABRT;
    default:
      throw InternalError(std::string("signal_number: ") + to_string(model) +
                          " is not a signal manifestation");
  }
}

std::string parameter_fault_model_names() {
  std::string joined;
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    const auto model = static_cast<FaultModel>(m);
    if (!is_parameter_model(model)) continue;
    if (!joined.empty()) joined += ", ";
    joined += to_string(model);
  }
  return joined;
}

const char* to_string(FaultTrigger trigger) noexcept {
  switch (trigger) {
    case FaultTrigger::ExactPoint: return "exact";
    case FaultTrigger::Probabilistic: return "prob";
    case FaultTrigger::NthCall: return "nth";
    case FaultTrigger::UniformOverRun: return "uniform";
    case FaultTrigger::DutyCycle: return "duty";
  }
  return "unknown";
}

std::string FaultModelSpec::canonical() const {
  std::ostringstream out;
  out << to_string(model);
  switch (trigger) {
    case FaultTrigger::ExactPoint:
      break;
    case FaultTrigger::Probabilistic:
      out << "@prob=" << probability;
      break;
    case FaultTrigger::NthCall:
      out << "@nth=" << window;
      break;
    case FaultTrigger::UniformOverRun:
      out << "@uniform=" << window;
      break;
    case FaultTrigger::DutyCycle:
      out << "@duty=" << duty_k << '/' << window;
      break;
  }
  return out.str();
}

namespace {

FaultModel parse_model_name(const std::string& name) {
  for (std::size_t m = 0; m < kNumFaultModels; ++m) {
    const auto model = static_cast<FaultModel>(m);
    if (name == to_string(model)) return model;
  }
  throw ConfigError("unknown fault model '" + name + "'");
}

std::uint64_t parse_trigger_u64(const std::string& text,
                                const std::string& spec) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0) {
    throw ConfigError("fault model '" + spec +
                      "': trigger parameter must be a positive integer");
  }
  return value;
}

}  // namespace

FaultModelSpec FaultModelSpec::parse(const std::string& text) {
  FaultModelSpec spec;
  const auto at = text.find('@');
  spec.model = parse_model_name(text.substr(0, at));
  if (at == std::string::npos) return spec;

  const std::string trig = text.substr(at + 1);
  const auto eq = trig.find('=');
  const std::string name = trig.substr(0, eq);
  const std::string param =
      eq == std::string::npos ? std::string{} : trig.substr(eq + 1);

  if (name == "exact") {
    if (!param.empty())
      throw ConfigError("fault model '" + text + "': exact takes no parameter");
    spec.trigger = FaultTrigger::ExactPoint;
  } else if (name == "prob") {
    spec.trigger = FaultTrigger::Probabilistic;
    try {
      std::size_t used = 0;
      spec.probability = std::stod(param, &used);
      if (used != param.size()) throw std::invalid_argument(param);
    } catch (const std::exception&) {
      throw ConfigError("fault model '" + text +
                        "': prob needs a numeric probability");
    }
    if (!(spec.probability > 0.0) || spec.probability > 1.0) {
      throw ConfigError("fault model '" + text +
                        "': probability must be in (0, 1]");
    }
  } else if (name == "nth") {
    spec.trigger = FaultTrigger::NthCall;
    spec.window = parse_trigger_u64(param, text);
  } else if (name == "uniform") {
    spec.trigger = FaultTrigger::UniformOverRun;
    spec.window = parse_trigger_u64(param, text);
  } else if (name == "duty") {
    spec.trigger = FaultTrigger::DutyCycle;
    const auto slash = param.find('/');
    if (slash == std::string::npos) {
      throw ConfigError("fault model '" + text +
                        "': duty needs a k/n duty cycle (e.g. @duty=1/4)");
    }
    spec.duty_k = parse_trigger_u64(param.substr(0, slash), text);
    spec.window = parse_trigger_u64(param.substr(slash + 1), text);
    if (spec.duty_k >= spec.window) {
      throw ConfigError("fault model '" + text +
                        "': duty cycle must satisfy 1 <= k < n");
    }
    // An intermittent fault that fires over and over only has repeatable
    // semantics for the in-place parameter mutators (the same stream
    // re-sticks the same bit). Message and fail-stop manifestations are
    // one-shot by nature; reject the combination instead of guessing.
    if (!is_parameter_model(spec.model)) {
      throw ConfigError("fault model '" + text +
                        "': duty requires a parameter manifestation (" +
                        parameter_fault_model_names() + ")");
    }
  } else {
    throw ConfigError("fault model '" + text + "': unknown trigger '" + name +
                      "' (expected exact, prob, nth, uniform, or duty)");
  }
  return spec;
}

std::vector<FaultModelSpec> parse_fault_models(const std::string& list) {
  std::vector<FaultModelSpec> specs;
  std::string entry;
  std::istringstream in(list);
  while (std::getline(in, entry, ',')) {
    const auto first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = entry.find_last_not_of(" \t");
    const auto spec = FaultModelSpec::parse(entry.substr(first, last - first + 1));
    for (const auto& seen : specs) {
      if (seen == spec) {
        throw ConfigError("duplicate fault model '" + spec.canonical() + "'");
      }
    }
    specs.push_back(spec);
  }
  if (specs.empty()) specs.push_back(FaultModelSpec{});
  return specs;
}

std::string canonical_fault_models(const std::vector<FaultModelSpec>& specs) {
  std::string joined;
  for (const auto& spec : specs) {
    if (!joined.empty()) joined += ',';
    joined += spec.canonical();
  }
  return joined;
}

bool mutate_bytes(std::span<std::byte> bytes, FaultModel model,
                  RngStream& rng) {
  if (bytes.empty()) return false;
  const std::size_t nbits = bytes.size() * 8;
  switch (model) {
    case FaultModel::SingleBitFlip: {
      flip_bit(bytes, rng.index(nbits));
      return true;
    }
    case FaultModel::DoubleBitFlip: {
      const std::size_t first = rng.index(nbits);
      std::size_t second = rng.index(nbits);
      if (nbits > 1) {
        while (second == first) second = rng.index(nbits);
      }
      flip_bit(bytes, first);
      if (second != first) flip_bit(bytes, second);
      return true;
    }
    case FaultModel::StuckAtZero: {
      const std::size_t bit = rng.index(nbits);
      auto& target = bytes[bit / 8];
      const auto mask = static_cast<std::byte>(1u << (bit % 8));
      const bool was_set = (target & mask) != std::byte{0};
      target &= ~mask;
      return was_set;
    }
    case FaultModel::RandomByte: {
      const std::size_t index = rng.index(bytes.size());
      const auto fresh =
          static_cast<std::byte>(rng.uniform_u64(0, 255));
      const bool changed = fresh != bytes[index];
      bytes[index] = fresh;
      return changed;
    }
    case FaultModel::StuckAtOne: {
      const std::size_t bit = rng.index(nbits);
      auto& target = bytes[bit / 8];
      const auto mask = static_cast<std::byte>(1u << (bit % 8));
      const bool was_clear = (target & mask) == std::byte{0};
      target |= mask;
      return was_clear;
    }
    case FaultModel::MessageCorrupt:
    case FaultModel::MessageDelay:
    case FaultModel::MessageDrop:
    case FaultModel::RankDeath:
    case FaultModel::SigSegv:
    case FaultModel::SigBus:
    case FaultModel::SigFpe:
    case FaultModel::SigAbrt:
      throw InternalError(
          std::string("mutate_bytes: ") + to_string(model) +
          " has no byte-range manifestation");
  }
  throw InternalError("mutate_bytes: unknown fault model");
}

}  // namespace fastfit::inject

#include "inject/fault_model.hpp"

#include "support/bitops.hpp"
#include "support/error.hpp"

namespace fastfit::inject {

const char* to_string(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::SingleBitFlip: return "single-bit-flip";
    case FaultModel::DoubleBitFlip: return "double-bit-flip";
    case FaultModel::StuckAtZero: return "stuck-at-zero";
    case FaultModel::RandomByte: return "random-byte";
  }
  return "unknown";
}

bool mutate_bytes(std::span<std::byte> bytes, FaultModel model,
                  RngStream& rng) {
  if (bytes.empty()) return false;
  const std::size_t nbits = bytes.size() * 8;
  switch (model) {
    case FaultModel::SingleBitFlip: {
      flip_bit(bytes, rng.index(nbits));
      return true;
    }
    case FaultModel::DoubleBitFlip: {
      const std::size_t first = rng.index(nbits);
      std::size_t second = rng.index(nbits);
      if (nbits > 1) {
        while (second == first) second = rng.index(nbits);
      }
      flip_bit(bytes, first);
      if (second != first) flip_bit(bytes, second);
      return true;
    }
    case FaultModel::StuckAtZero: {
      const std::size_t bit = rng.index(nbits);
      auto& target = bytes[bit / 8];
      const auto mask = static_cast<std::byte>(1u << (bit % 8));
      const bool was_set = (target & mask) != std::byte{0};
      target &= ~mask;
      return was_set;
    }
    case FaultModel::RandomByte: {
      const std::size_t index = rng.index(bytes.size());
      const auto fresh =
          static_cast<std::byte>(rng.uniform_u64(0, 255));
      const bool changed = fresh != bytes[index];
      bytes[index] = fresh;
      return changed;
    }
  }
  throw InternalError("mutate_bytes: unknown fault model");
}

}  // namespace fastfit::inject

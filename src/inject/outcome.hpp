#pragma once

// Application-response taxonomy (paper Table I) and the classification of
// a completed trial into it.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/world.hpp"

namespace fastfit::inject {

/// Paper Table I. All types except Success count as an *error* when the
/// paper speaks of "error rate".
enum class Outcome : std::uint8_t {
  Success = 0,      ///< clean exit, answer matches the fault-free run
  AppDetected = 1,  ///< the program's own error handling reported the fault
  MpiErr = 2,       ///< the MPI environment reported an error
  SegFault = 3,     ///< segmentation fault: simulated via the bounds
                    ///< registry, or — under --isolation process — a
                    ///< genuine signal death of the trial worker
  WrongAns = 4,     ///< clean exit, answer differs from the fault-free run
  InfLoop = 5,      ///< the job hung and was killed by the watchdog
  RankDead = 6,     ///< fail-stop rank death tore the job down
  Repaired = 7,     ///< fail-stop death, but survivors shrank and continued
};

inline constexpr std::size_t kNumOutcomes = 8;

/// The paper's original six-way taxonomy. Serialized surfaces (report
/// JSON/CSV, shard fragments, trial-counter metrics) emit only these
/// unless the campaign opted into the extended fault-model library —
/// a default-configuration study stays byte-identical to pre-v2 output.
inline constexpr std::size_t kNumBaseOutcomes = 6;

/// How many outcome columns a serialized surface carries.
constexpr std::size_t active_outcomes(bool extended) noexcept {
  return extended ? kNumOutcomes : kNumBaseOutcomes;
}

const char* to_string(Outcome outcome) noexcept;

/// All outcome names in enum order (for tables and confusion axes).
const std::vector<std::string>& outcome_names();

/// True for every outcome the paper counts in the error rate. A Repaired
/// trial still experienced a fault-induced deviation from the fault-free
/// run, so it stays on the error side of the ledger.
constexpr bool is_error(Outcome outcome) noexcept {
  return outcome != Outcome::Success;
}

/// Classifies a finished trial: an initiating fault event decides
/// directly; a clean world is Success or WrongAns by digest comparison
/// against the golden (fault-free) run.
Outcome classify(const mpi::WorldResult& result, std::uint64_t trial_digest,
                 std::uint64_t golden_digest) noexcept;

/// A trial's outcome plus the forensic context that travels with every
/// non-SUCCESS classification into campaign reports and the journal.
struct TrialForensics {
  Outcome outcome = Outcome::Success;
  /// True when the INF_LOOP was *proven* by the hang monitor (structural
  /// deadlock) rather than inferred from the watchdog deadline — the
  /// campaign layer skips escalated re-confirmation for these.
  bool deterministic_hang = false;
  /// One-line world autopsy (per-rank phase counts + verdict); empty for
  /// SUCCESS.
  std::string autopsy;
};

/// classify() plus autopsy extraction from the world result.
TrialForensics classify_with_forensics(const mpi::WorldResult& result,
                                       std::uint64_t trial_digest,
                                       std::uint64_t golden_digest);

}  // namespace fastfit::inject

#include "inject/corrupt.hpp"

#include <span>

#include "minimpi/datatype.hpp"
#include "minimpi/mpi.hpp"
#include "support/bitops.hpp"
#include "support/error.hpp"

namespace fastfit::inject {
namespace {

using mpi::CollectiveKind;
using mpi::Param;

std::size_t esize_or_zero(mpi::Datatype dtype) {
  return mpi::is_valid(dtype) ? mpi::datatype_size(dtype) : 0;
}

/// Byte extent of the send-buffer region as this rank passed it.
std::size_t send_region_bytes(const mpi::CollectiveCall& call, int comm_size) {
  const std::size_t esize = esize_or_zero(call.datatype);
  if (call.count < 0) return 0;
  const auto count = static_cast<std::size_t>(call.count);
  switch (call.kind) {
    case CollectiveKind::Barrier:
      return 0;
    case CollectiveKind::Bcast:
    case CollectiveKind::Reduce:
    case CollectiveKind::Allreduce:
    case CollectiveKind::Scan:
    case CollectiveKind::Gather:
    case CollectiveKind::Gatherv:
    case CollectiveKind::Allgather:
    case CollectiveKind::Allgatherv:
      return count * esize;
    case CollectiveKind::Scatter:
    case CollectiveKind::Alltoall:
      return count * esize * static_cast<std::size_t>(comm_size);
    case CollectiveKind::ReduceScatterBlock:
      return count * esize * static_cast<std::size_t>(comm_size);
    case CollectiveKind::Scatterv:
    case CollectiveKind::Alltoallv:
      return 0;  // ragged: handled via the count arrays below
  }
  return 0;
}

/// Byte extent of the receive-buffer region as this rank passed it.
std::size_t recv_region_bytes(const mpi::CollectiveCall& call, int comm_size) {
  const std::size_t esize = esize_or_zero(call.recvdatatype);
  switch (call.kind) {
    case CollectiveKind::Barrier:
      return 0;
    case CollectiveKind::Bcast:
      return call.count < 0
                 ? 0
                 : static_cast<std::size_t>(call.count) *
                       esize_or_zero(call.datatype);
    case CollectiveKind::Reduce:
    case CollectiveKind::Allreduce:
    case CollectiveKind::Scan:
    case CollectiveKind::ReduceScatterBlock:
      return call.count < 0
                 ? 0
                 : static_cast<std::size_t>(call.count) *
                       esize_or_zero(call.datatype);
    case CollectiveKind::Scatter:
    case CollectiveKind::Scatterv:
      return call.recvcount < 0
                 ? 0
                 : static_cast<std::size_t>(call.recvcount) * esize;
    case CollectiveKind::Gather:
    case CollectiveKind::Allgather:
    case CollectiveKind::Alltoall:
      return call.recvcount < 0
                 ? 0
                 : static_cast<std::size_t>(call.recvcount) * esize *
                       static_cast<std::size_t>(comm_size);
    case CollectiveKind::Gatherv:
    case CollectiveKind::Allgatherv:
    case CollectiveKind::Alltoallv:
      return 0;  // ragged: handled via the count arrays below
  }
  return 0;
}

/// Total byte extent of a ragged (counts, displs) buffer region: the span
/// from offset 0 through the end of the furthest block.
std::size_t ragged_extent_bytes(const std::vector<std::int32_t>* counts,
                                const std::vector<std::int32_t>* displs,
                                std::size_t esize) {
  if (counts == nullptr || displs == nullptr) return 0;
  std::size_t extent = 0;
  for (std::size_t i = 0; i < counts->size() && i < displs->size(); ++i) {
    if ((*counts)[i] < 0 || (*displs)[i] < 0) continue;
    const std::size_t end =
        (static_cast<std::size_t>((*displs)[i]) +
         static_cast<std::size_t>((*counts)[i])) *
        esize;
    extent = std::max(extent, end);
  }
  return extent;
}

bool mutate_buffer(void* buffer, std::size_t bytes, FaultModel model,
                   RngStream& rng, mpi::Mpi& mpi) {
  if (buffer == nullptr || bytes == 0) return false;
  // The mutation must land in memory the application actually owns; a
  // tool writing elsewhere would be a tool bug, not an injected fault.
  if (!mpi.registry().covers(buffer, bytes)) return false;
  return mutate_bytes(
      std::span<std::byte>(static_cast<std::byte*>(buffer), bytes), model,
      rng);
}

bool mutate_count_array(std::vector<std::int32_t>* counts, FaultModel model,
                        RngStream& rng) {
  if (counts == nullptr || counts->empty()) return false;
  const std::size_t entry = rng.index(counts->size());
  bool changed = false;
  (*counts)[entry] = mutate_value((*counts)[entry], model, rng, &changed);
  return changed;
}

template <typename Handle>
Handle mutate_handle(Handle handle, FaultModel model, RngStream& rng,
                     bool* changed) {
  return static_cast<Handle>(
      mutate_value(mpi::raw(handle), model, rng, changed));
}

}  // namespace

bool corrupt_parameter(mpi::CollectiveCall& call, mpi::Param param,
                       FaultModel model, RngStream& rng, mpi::Mpi& mpi) {
  // Pre-corruption communicator size; the call is still pristine here.
  const int comm_size = mpi.size(call.comm);
  bool changed = false;

  switch (param) {
    case Param::SendBuf: {
      std::size_t bytes = send_region_bytes(call, comm_size);
      if (bytes == 0 &&
          (call.kind == CollectiveKind::Scatterv ||
           call.kind == CollectiveKind::Alltoallv)) {
        bytes = ragged_extent_bytes(call.sendcounts, call.sdispls,
                                    esize_or_zero(call.datatype));
      }
      return mutate_buffer(call.sendbuf, bytes, model, rng, mpi);
    }
    case Param::RecvBuf: {
      std::size_t bytes = recv_region_bytes(call, comm_size);
      if (bytes == 0 &&
          (call.kind == CollectiveKind::Gatherv ||
           call.kind == CollectiveKind::Allgatherv ||
           call.kind == CollectiveKind::Alltoallv)) {
        bytes = ragged_extent_bytes(call.recvcounts, call.rdispls,
                                    esize_or_zero(call.recvdatatype));
      }
      return mutate_buffer(call.recvbuf, bytes, model, rng, mpi);
    }
    case Param::Count:
      if (call.kind == CollectiveKind::Alltoallv ||
          call.kind == CollectiveKind::Scatterv) {
        return mutate_count_array(call.sendcounts, model, rng);
      }
      call.count = mutate_value(call.count, model, rng, &changed);
      return changed;
    case Param::RecvCount:
      if (call.kind == CollectiveKind::Alltoallv ||
          call.kind == CollectiveKind::Gatherv ||
          call.kind == CollectiveKind::Allgatherv) {
        return mutate_count_array(call.recvcounts, model, rng);
      }
      call.recvcount = mutate_value(call.recvcount, model, rng, &changed);
      return changed;
    case Param::Datatype:
      call.datatype = mutate_handle(call.datatype, model, rng, &changed);
      return changed;
    case Param::RecvDatatype:
      call.recvdatatype =
          mutate_handle(call.recvdatatype, model, rng, &changed);
      return changed;
    case Param::Op:
      call.op = mutate_handle(call.op, model, rng, &changed);
      return changed;
    case Param::Comm:
      call.comm = mutate_handle(call.comm, model, rng, &changed);
      return changed;
    case Param::Root:
      call.root = mutate_value(call.root, model, rng, &changed);
      return changed;
  }
  throw InternalError("corrupt_parameter: unknown parameter");
}

}  // namespace fastfit::inject

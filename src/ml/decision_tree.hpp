#pragma once

// CART decision tree (Gini impurity, axis-aligned numeric splits).
//
// This is the constituent learner of the random forest, and also the
// artifact behind the paper's Fig 4 — render() prints a learned tree with
// feature names on interior nodes and sensitivity labels on leaves.

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {

struct TreeConfig {
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 1;
  /// Features considered per split; 0 = all (single tree), forests pass
  /// floor(sqrt(kNumFeatures)).
  std::size_t mtry = 0;
  std::uint64_t seed = 1;
  std::uint64_t tree_index = 0;  ///< stream index for feature subsampling
};

class DecisionTree {
 public:
  /// Fits a tree on (a view of) `data` restricted to `indices`; an empty
  /// index list means "all samples". The dataset must be non-empty.
  static DecisionTree fit(const Dataset& data,
                          const std::vector<std::size_t>& indices,
                          const TreeConfig& config);

  std::size_t predict(const FeatureVec& x) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

  /// Total Gini impurity decrease attributed to each feature during
  /// training (the classic random-forest importance measure).
  const std::array<double, kNumFeatures>& impurity_decrease() const noexcept {
    return importance_;
  }

  /// Fig 4-style rendering: indented interior nodes "feature <= thr" with
  /// class names on leaves.
  std::string render(const std::vector<std::string>& class_names) const;

 private:
  struct Node {
    bool leaf = true;
    std::size_t label = 0;           // leaf payload
    Feature feature{};               // split feature
    double threshold = 0.0;          // goes left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end, std::size_t depth,
                    const TreeConfig& config, RngStream& rng);

  void render_node(std::size_t node, std::size_t indent,
                   const std::vector<std::string>& class_names,
                   std::string& out) const;

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  std::size_t num_classes_ = 0;
  std::array<double, kNumFeatures> importance_{};
};

}  // namespace fastfit::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct BestSplit {
  bool found = false;
  Feature feature{};
  double threshold = 0.0;
  double gain = 0.0;
};

std::size_t majority(const std::vector<std::size_t>& counts) {
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

DecisionTree DecisionTree::fit(const Dataset& data,
                               const std::vector<std::size_t>& indices,
                               const TreeConfig& config) {
  if (data.empty()) throw InternalError("DecisionTree::fit: empty dataset");
  DecisionTree tree;
  tree.num_classes_ = data.num_classes();
  std::vector<std::size_t> work = indices;
  if (work.empty()) {
    work.resize(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) work[i] = i;
  }
  RngStream rng(config.seed, "tree-features", config.tree_index);
  tree.build(data, work, 0, work.size(), 0, config, rng);
  return tree;
}

std::size_t DecisionTree::build(const Dataset& data,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                std::size_t depth, const TreeConfig& config,
                                RngStream& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[data[indices[i]].label];
  const double parent_gini = gini(counts, n);

  const auto make_leaf = [&] {
    Node node;
    node.leaf = true;
    node.label = majority(counts);
    nodes_.push_back(node);
    return nodes_.size() - 1;
  };

  if (parent_gini == 0.0 || depth >= config.max_depth ||
      n < 2 * config.min_samples_leaf || n < 2) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset of mtry for forests.
  std::vector<Feature> features;
  if (config.mtry == 0 || config.mtry >= kNumFeatures) {
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      features.push_back(static_cast<Feature>(f));
    }
  } else {
    for (std::size_t f : rng.sample_without_replacement(kNumFeatures,
                                                        config.mtry)) {
      features.push_back(static_cast<Feature>(f));
    }
  }

  BestSplit best;
  std::vector<std::pair<double, std::size_t>> values;  // (feature value, label)
  for (Feature feature : features) {
    values.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const auto& s = data[indices[i]];
      values.emplace_back(s.x[static_cast<std::size_t>(feature)], s.label);
    }
    std::sort(values.begin(), values.end());

    std::vector<std::size_t> left(num_classes_, 0);
    std::vector<std::size_t> right = counts;
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      ++left[values[i].second];
      --right[values[i].second];
      if (values[i].first == values[i + 1].first) continue;
      const std::size_t ln = i + 1;
      const std::size_t rn = n - ln;
      if (ln < config.min_samples_leaf || rn < config.min_samples_leaf) {
        continue;
      }
      const double child_gini =
          (static_cast<double>(ln) * gini(left, ln) +
           static_cast<double>(rn) * gini(right, rn)) /
          static_cast<double>(n);
      const double gain = parent_gini - child_gini;
      if (gain > best.gain + 1e-12) {
        best.found = true;
        best.feature = feature;
        best.threshold = (values[i].first + values[i + 1].first) / 2.0;
        best.gain = gain;
      }
    }
  }

  if (!best.found) return make_leaf();

  importance_[static_cast<std::size_t>(best.feature)] +=
      best.gain * static_cast<double>(n);

  // Partition the index range on the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return data[idx].x[static_cast<std::size_t>(best.feature)] <=
               best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  Node node;
  node.leaf = false;
  node.feature = best.feature;
  node.threshold = best.threshold;
  nodes_.push_back(node);
  const std::size_t self = nodes_.size() - 1;

  const std::size_t left_child =
      build(data, indices, begin, mid, depth + 1, config, rng);
  const std::size_t right_child =
      build(data, indices, mid, end, depth + 1, config, rng);
  nodes_[self].left = static_cast<std::int32_t>(left_child);
  nodes_[self].right = static_cast<std::int32_t>(right_child);
  return self;
}

std::size_t DecisionTree::predict(const FeatureVec& x) const {
  if (nodes_.empty()) throw InternalError("DecisionTree::predict: unfitted");
  // The top-level build() pushes its own node before any child, so the
  // root always lives at index 0.
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.leaf) return n.label;
    const double v = x[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
}

void DecisionTree::render_node(std::size_t node, std::size_t indent,
                               const std::vector<std::string>& class_names,
                               std::string& out) const {
  const Node& n = nodes_[node];
  const std::string pad(indent * 2, ' ');
  if (n.leaf) {
    out += pad + "-> " +
           (n.label < class_names.size() ? class_names[n.label]
                                         : std::to_string(n.label)) +
           "\n";
    return;
  }
  std::ostringstream line;
  line << pad << to_string(n.feature) << " <= " << n.threshold << " ?\n";
  out += line.str();
  render_node(static_cast<std::size_t>(n.left), indent + 1, class_names, out);
  out += pad + "else\n";
  render_node(static_cast<std::size_t>(n.right), indent + 1, class_names, out);
}

std::string DecisionTree::render(
    const std::vector<std::string>& class_names) const {
  if (nodes_.empty()) return "<unfitted>\n";
  std::string out;
  render_node(0, 0, class_names, out);
  return out;
}

}  // namespace fastfit::ml

#pragma once

// Gaussian naive Bayes: per-class per-feature normal likelihoods with
// Laplace-smoothed priors. A cheap, training-free-at-predict baseline to
// contrast the forest against.

#include "ml/classifier.hpp"

namespace fastfit::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  void train(const Dataset& data) override;
  std::size_t predict(const FeatureVec& x) const override;
  std::string name() const override { return "naive-bayes"; }

 private:
  struct ClassModel {
    double log_prior = 0.0;
    FeatureVec mean{};
    FeatureVec variance{};  // floored to avoid singular likelihoods
    bool present = false;
  };
  std::vector<ClassModel> classes_;
};

}  // namespace fastfit::ml

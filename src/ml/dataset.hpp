#pragma once

// Feature encoding and training data for the sensitivity predictor.
//
// The paper trains on six application features (Sec III-C): the collective
// Type, the execution Phase, the ErrHal flag, the invocation count nInv,
// the average call-stack depth StackDep, and the number of distinct call
// stacks nDiffStack. Categorical features are assigned numeric codes, as
// the paper describes ("the application feature must be represented by
// numerical values to facilitate the tree construction").

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace fastfit::ml {

enum class Feature : std::uint8_t {
  Type = 0,        ///< collective kind code
  Phase = 1,       ///< execution phase code (init/input/compute/end)
  ErrHal = 2,      ///< 1 inside error-handling code, else 0
  NInv = 3,        ///< invocations of the call site
  StackDep = 4,    ///< mean call-stack depth at the site
  NDiffStack = 5,  ///< distinct call stacks at the site
};

inline constexpr std::size_t kNumFeatures = 6;

const char* to_string(Feature feature) noexcept;

using FeatureVec = std::array<double, kNumFeatures>;

struct Sample {
  FeatureVec x{};
  std::size_t label = 0;
};

/// A labelled dataset with a fixed class count.
class Dataset {
 public:
  explicit Dataset(std::size_t num_classes);

  void add(const FeatureVec& x, std::size_t label);
  void add(const Sample& sample) { add(sample.x, sample.label); }

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  std::size_t num_classes() const noexcept { return num_classes_; }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// Most frequent label (ties to the lowest); the trivial baseline.
  std::size_t majority_label() const;

  /// Random split into (train, test) with `train_fraction` of samples in
  /// train. Used for the paper's repeated random-division evaluation.
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    std::uint64_t seed,
                                    std::uint64_t round) const;

 private:
  std::size_t num_classes_;
  std::vector<Sample> samples_;
};

}  // namespace fastfit::ml

#pragma once

// k-nearest-neighbours classifier over the six application features.
//
// Features live on wildly different scales (ErrHal is 0/1, nInv can be
// hundreds), so distances are computed after per-feature min-max
// normalization learned from the training data. Votes are weighted by
// inverse distance; ties resolve to the lowest label.

#include "ml/classifier.hpp"

namespace fastfit::ml {

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k) : k_(k) {}

  void train(const Dataset& data) override;
  std::size_t predict(const FeatureVec& x) const override;
  std::string name() const override { return "knn"; }

 private:
  FeatureVec normalize(const FeatureVec& x) const;

  std::size_t k_;
  std::size_t num_classes_ = 0;
  std::vector<Sample> training_;        // normalized
  FeatureVec feature_min_{};
  FeatureVec feature_scale_{};          // 1 / (max - min), 0 for constant
};

}  // namespace fastfit::ml

#include "ml/dataset.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {

const char* to_string(Feature feature) noexcept {
  switch (feature) {
    case Feature::Type: return "Type";
    case Feature::Phase: return "Phase";
    case Feature::ErrHal: return "ErrHal";
    case Feature::NInv: return "nInv";
    case Feature::StackDep: return "StackDep";
    case Feature::NDiffStack: return "nDiffStack";
  }
  return "unknown";
}

Dataset::Dataset(std::size_t num_classes) : num_classes_(num_classes) {
  if (num_classes == 0) throw InternalError("Dataset: zero classes");
}

void Dataset::add(const FeatureVec& x, std::size_t label) {
  if (label >= num_classes_) {
    throw InternalError("Dataset::add: label out of range");
  }
  samples_.push_back(Sample{x, label});
}

std::size_t Dataset::majority_label() const {
  if (samples_.empty()) throw InternalError("majority_label: empty dataset");
  std::vector<std::size_t> counts(num_classes_, 0);
  for (const auto& s : samples_) ++counts[s.label];
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           std::uint64_t seed,
                                           std::uint64_t round) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw InternalError("Dataset::split: fraction must be in (0, 1)");
  }
  std::vector<std::size_t> order(samples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  RngStream rng(seed, "dataset-split", round);
  rng.shuffle(order);
  const auto train_n = static_cast<std::size_t>(
      train_fraction * static_cast<double>(samples_.size()));
  Dataset train(num_classes_);
  Dataset test(num_classes_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < train_n ? train : test).add(samples_[order[i]]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace fastfit::ml

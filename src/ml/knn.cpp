#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fastfit::ml {

void KnnClassifier::train(const Dataset& data) {
  if (data.empty()) throw InternalError("KnnClassifier::train: empty dataset");
  if (k_ == 0) throw InternalError("KnnClassifier: k must be positive");
  num_classes_ = data.num_classes();

  FeatureVec lo{};
  FeatureVec hi{};
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    lo[f] = data[0].x[f];
    hi[f] = data[0].x[f];
  }
  for (const auto& s : data.samples()) {
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      lo[f] = std::min(lo[f], s.x[f]);
      hi[f] = std::max(hi[f], s.x[f]);
    }
  }
  feature_min_ = lo;
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    feature_scale_[f] = hi[f] > lo[f] ? 1.0 / (hi[f] - lo[f]) : 0.0;
  }

  training_.clear();
  training_.reserve(data.size());
  for (const auto& s : data.samples()) {
    training_.push_back(Sample{normalize(s.x), s.label});
  }
}

FeatureVec KnnClassifier::normalize(const FeatureVec& x) const {
  FeatureVec out{};
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    out[f] = (x[f] - feature_min_[f]) * feature_scale_[f];
  }
  return out;
}

std::size_t KnnClassifier::predict(const FeatureVec& x) const {
  if (training_.empty()) throw InternalError("KnnClassifier: untrained");
  const FeatureVec q = normalize(x);

  // Distances to every training point; partial sort for the k nearest.
  std::vector<std::pair<double, std::size_t>> by_distance;  // (d2, label)
  by_distance.reserve(training_.size());
  for (const auto& s : training_) {
    double d2 = 0.0;
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      const double d = q[f] - s.x[f];
      d2 += d * d;
    }
    by_distance.emplace_back(d2, s.label);
  }
  const std::size_t k = std::min(k_, by_distance.size());
  std::partial_sort(by_distance.begin(),
                    by_distance.begin() + static_cast<std::ptrdiff_t>(k),
                    by_distance.end());

  std::vector<double> votes(num_classes_, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    votes[by_distance[i].second] += 1.0 / (1e-9 + by_distance[i].first);
  }
  return static_cast<std::size_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace fastfit::ml

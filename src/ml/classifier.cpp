#include "ml/classifier.hpp"

#include <optional>

#include "ml/knn.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"
#include "support/error.hpp"

namespace fastfit::ml {
namespace {

/// Adapter exposing RandomForest through the Classifier interface.
class ForestClassifier final : public Classifier {
 public:
  explicit ForestClassifier(const ClassifierConfig& config) {
    forest_config_.n_trees = config.n_trees;
    forest_config_.max_depth = config.max_depth;
    forest_config_.seed = config.seed;
  }
  void train(const Dataset& data) override {
    forest_ = RandomForest::train(data, forest_config_);
  }
  std::size_t predict(const FeatureVec& x) const override {
    if (!forest_) throw InternalError("ForestClassifier: untrained");
    return forest_->predict(x);
  }
  std::string name() const override { return "random-forest"; }

 private:
  ForestConfig forest_config_;
  std::optional<RandomForest> forest_;
};

/// Always predicts the training majority: the floor every model must beat.
class MajorityClassifier final : public Classifier {
 public:
  void train(const Dataset& data) override { label_ = data.majority_label(); }
  std::size_t predict(const FeatureVec&) const override { return label_; }
  std::string name() const override { return "majority"; }

 private:
  std::size_t label_ = 0;
};

}  // namespace

std::unique_ptr<Classifier> make_classifier(const std::string& name,
                                            const ClassifierConfig& config) {
  if (name == "random-forest") {
    return std::make_unique<ForestClassifier>(config);
  }
  if (name == "knn") return std::make_unique<KnnClassifier>(config.k);
  if (name == "naive-bayes") return std::make_unique<GaussianNaiveBayes>();
  if (name == "majority") return std::make_unique<MajorityClassifier>();
  throw ConfigError("unknown classifier: " + name);
}

std::vector<std::string> classifier_names() {
  return {"random-forest", "knn", "naive-bayes", "majority"};
}

stats::ConfusionMatrix evaluate(const Classifier& model, const Dataset& data) {
  stats::ConfusionMatrix matrix(data.num_classes());
  for (const auto& sample : data.samples()) {
    matrix.add(sample.label, model.predict(sample.x));
  }
  return matrix;
}

std::vector<stats::ConfusionMatrix> repeated_random_split_eval(
    const std::string& model_name, const ClassifierConfig& config,
    const Dataset& data, std::size_t rounds, double train_fraction) {
  std::vector<stats::ConfusionMatrix> out;
  out.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto [train, test] = data.split(train_fraction, config.seed, round);
    if (train.empty() || test.empty()) {
      throw InternalError("repeated_random_split_eval: degenerate split");
    }
    ClassifierConfig round_config = config;
    round_config.seed = config.seed ^ (0x9e3779b97f4a7c15ULL * (round + 1));
    auto model = make_classifier(model_name, round_config);
    model->train(train);
    out.push_back(evaluate(*model, test));
  }
  return out;
}

}  // namespace fastfit::ml

#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace fastfit::ml {

void GaussianNaiveBayes::train(const Dataset& data) {
  if (data.empty()) {
    throw InternalError("GaussianNaiveBayes::train: empty dataset");
  }
  classes_.assign(data.num_classes(), ClassModel{});
  std::vector<std::size_t> counts(data.num_classes(), 0);

  for (const auto& s : data.samples()) ++counts[s.label];
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    // Laplace-smoothed prior keeps absent classes representable.
    classes_[c].log_prior = std::log(
        (static_cast<double>(counts[c]) + 1.0) /
        (static_cast<double>(data.size()) +
         static_cast<double>(classes_.size())));
    classes_[c].present = counts[c] > 0;
  }

  for (const auto& s : data.samples()) {
    auto& model = classes_[s.label];
    for (std::size_t f = 0; f < kNumFeatures; ++f) model.mean[f] += s.x[f];
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      classes_[c].mean[f] /= static_cast<double>(counts[c]);
    }
  }
  for (const auto& s : data.samples()) {
    auto& model = classes_[s.label];
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      const double d = s.x[f] - model.mean[f];
      model.variance[f] += d * d;
    }
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      classes_[c].variance[f] =
          std::max(classes_[c].variance[f] / static_cast<double>(counts[c]),
                   1e-6);
    }
  }
}

std::size_t GaussianNaiveBayes::predict(const FeatureVec& x) const {
  if (classes_.empty()) throw InternalError("GaussianNaiveBayes: untrained");
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best_class = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto& model = classes_[c];
    if (!model.present) continue;
    double score = model.log_prior;
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      const double d = x[f] - model.mean[f];
      score += -0.5 * std::log(2.0 * std::numbers::pi * model.variance[f]) -
               0.5 * d * d / model.variance[f];
    }
    if (score > best_score) {
      best_score = score;
      best_class = c;
    }
  }
  return best_class;
}

}  // namespace fastfit::ml

#pragma once

// Pluggable classification models.
//
// The paper (Sec IV-D): "FastFIT is not tied to the random forest
// algorithm. It can be replaced by other machine learning algorithms, if
// required." This interface is that replacement point: the learning loop
// and the accuracy evaluation work against Classifier, and a factory
// builds any registered model by name. Besides the random forest, two
// classic baselines ship: k-nearest-neighbours (distance-weighted, with
// per-feature normalization) and Gaussian naive Bayes.

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "stats/confusion.hpp"

namespace fastfit::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model. May be called again to re-fit on new data.
  virtual void train(const Dataset& data) = 0;

  /// Predicts a class label; requires a prior train().
  virtual std::size_t predict(const FeatureVec& x) const = 0;

  /// Model name for reports ("random-forest", "knn", "naive-bayes").
  virtual std::string name() const = 0;
};

struct ClassifierConfig {
  /// Forest parameters (used by "random-forest").
  std::size_t n_trees = 48;
  std::size_t max_depth = 10;
  /// Neighbour count (used by "knn").
  std::size_t k = 5;
  std::uint64_t seed = 1;
};

/// Builds a classifier by name: "random-forest", "knn", "naive-bayes",
/// or "majority" (the trivial baseline). Throws ConfigError for unknown
/// names.
std::unique_ptr<Classifier> make_classifier(const std::string& name,
                                            const ClassifierConfig& config);

/// Names of all registered models.
std::vector<std::string> classifier_names();

/// Confusion matrix of any classifier on a dataset.
stats::ConfusionMatrix evaluate(const Classifier& model, const Dataset& data);

/// The paper's repeated random-division protocol, generalized over
/// classifiers: returns the per-round held-out confusion matrices.
std::vector<stats::ConfusionMatrix> repeated_random_split_eval(
    const std::string& model_name, const ClassifierConfig& config,
    const Dataset& data, std::size_t rounds, double train_fraction = 0.5);

}  // namespace fastfit::ml

#pragma once

// Random forest: bootstrap-aggregated CART trees with per-split feature
// subsampling and majority voting — the paper's prediction model
// (Sec III-C: "the decision of a random forest is a majority decision
// based on its decision trees' decisions").

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "stats/confusion.hpp"

namespace fastfit::ml {

struct ForestConfig {
  std::size_t n_trees = 48;
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 selects floor(sqrt(kNumFeatures)) = 2.
  std::size_t mtry = 0;
  std::uint64_t seed = 1;
};

class RandomForest {
 public:
  static RandomForest train(const Dataset& data, const ForestConfig& config);

  /// Majority vote over the trees (ties resolve to the lowest label).
  std::size_t predict(const FeatureVec& x) const;

  std::size_t tree_count() const noexcept { return trees_.size(); }
  std::size_t num_classes() const noexcept { return num_classes_; }
  const DecisionTree& tree(std::size_t i) const { return trees_.at(i); }

  /// Mean impurity decrease per feature across trees, normalized to sum
  /// to 1 (all-zero if no split ever fired).
  std::array<double, kNumFeatures> feature_importance() const;

  /// Renders one member tree (Fig 4's "example of a decision tree").
  std::string render_tree(std::size_t i,
                          const std::vector<std::string>& class_names) const;

 private:
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

/// Confusion matrix of `forest` on `data` (actual = sample label,
/// predicted = forest vote).
stats::ConfusionMatrix evaluate(const RandomForest& forest,
                                const Dataset& data);

/// The paper's accuracy protocol (Sec V-D): repeat `rounds` random
/// train/test divisions of `data`, train a forest on each train half, and
/// return the per-round confusion matrices on the held-out half.
std::vector<stats::ConfusionMatrix> repeated_random_split_eval(
    const Dataset& data, const ForestConfig& config, std::size_t rounds,
    double train_fraction = 0.5);

}  // namespace fastfit::ml

#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::ml {

RandomForest RandomForest::train(const Dataset& data,
                                 const ForestConfig& config) {
  if (data.empty()) throw InternalError("RandomForest::train: empty dataset");
  if (config.n_trees == 0) {
    throw InternalError("RandomForest::train: need at least one tree");
  }
  RandomForest forest;
  forest.num_classes_ = data.num_classes();
  forest.trees_.reserve(config.n_trees);

  const std::size_t mtry =
      config.mtry != 0
          ? config.mtry
          : static_cast<std::size_t>(std::floor(std::sqrt(
                static_cast<double>(kNumFeatures))));

  for (std::size_t t = 0; t < config.n_trees; ++t) {
    // Bootstrap sample (with replacement, same size as the dataset).
    RngStream rng(config.seed, "bootstrap", t);
    std::vector<std::size_t> indices(data.size());
    for (auto& idx : indices) idx = rng.index(data.size());

    TreeConfig tree_config;
    tree_config.max_depth = config.max_depth;
    tree_config.min_samples_leaf = config.min_samples_leaf;
    tree_config.mtry = mtry;
    tree_config.seed = config.seed;
    tree_config.tree_index = t;
    forest.trees_.push_back(DecisionTree::fit(data, indices, tree_config));
  }
  return forest;
}

std::size_t RandomForest::predict(const FeatureVec& x) const {
  if (trees_.empty()) throw InternalError("RandomForest::predict: untrained");
  std::vector<std::size_t> votes(num_classes_, 0);
  for (const auto& tree : trees_) ++votes[tree.predict(x)];
  return static_cast<std::size_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::array<double, kNumFeatures> RandomForest::feature_importance() const {
  std::array<double, kNumFeatures> total{};
  for (const auto& tree : trees_) {
    const auto& dec = tree.impurity_decrease();
    for (std::size_t f = 0; f < kNumFeatures; ++f) total[f] += dec[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

std::string RandomForest::render_tree(
    std::size_t i, const std::vector<std::string>& class_names) const {
  return trees_.at(i).render(class_names);
}

stats::ConfusionMatrix evaluate(const RandomForest& forest,
                                const Dataset& data) {
  stats::ConfusionMatrix matrix(forest.num_classes());
  for (const auto& sample : data.samples()) {
    matrix.add(sample.label, forest.predict(sample.x));
  }
  return matrix;
}

std::vector<stats::ConfusionMatrix> repeated_random_split_eval(
    const Dataset& data, const ForestConfig& config, std::size_t rounds,
    double train_fraction) {
  std::vector<stats::ConfusionMatrix> out;
  out.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    auto [train, test] = data.split(train_fraction, config.seed, round);
    if (train.empty() || test.empty()) {
      throw InternalError("repeated_random_split_eval: degenerate split");
    }
    ForestConfig round_config = config;
    round_config.seed = config.seed ^ (0x9e3779b97f4a7c15ULL * (round + 1));
    const RandomForest forest = RandomForest::train(train, round_config);
    out.push_back(evaluate(forest, test));
  }
  return out;
}

}  // namespace fastfit::ml

#pragma once

// Per-rank application context: the state FastFIT's features are read
// from. Workloads annotate their structure through this object — function
// scopes feed the shadow stack and call graph, phases mark the paper's
// Phase feature (init / input / compute / end), and ErrorHandlingScope
// marks the paper's ErrHal feature (LAMMPS uses >40% of its allreduces in
// error-handling code).

#include <memory>
#include <string_view>
#include <vector>

#include "trace/call_graph.hpp"
#include "trace/comm_trace.hpp"
#include "trace/shadow_stack.hpp"

namespace fastfit::trace {

/// The paper's execution-phase feature.
enum class ExecPhase : std::uint8_t { Init = 0, Input = 1, Compute = 2, End = 3 };

inline constexpr std::size_t kNumPhases = 4;

const char* to_string(ExecPhase phase) noexcept;

class RankContext {
 public:
  /// Enters an application function: records the call-graph edge and
  /// pushes the shadow frame. Prefer FunctionScope.
  void enter_function(std::string_view name) {
    graph_.add_call(std::string(stack_.innermost()), std::string(name));
    stack_.enter(name);
  }
  void leave_function() { stack_.leave(); }

  const ShadowStack& stack() const noexcept { return stack_; }
  CallGraph& graph() noexcept { return graph_; }
  const CallGraph& graph() const noexcept { return graph_; }
  CommTrace& comm_trace() noexcept { return comm_trace_; }
  const CommTrace& comm_trace() const noexcept { return comm_trace_; }

  void set_phase(ExecPhase phase) noexcept { phase_ = phase; }
  ExecPhase phase() const noexcept { return phase_; }

  void push_error_handler() noexcept { ++errhal_depth_; }
  void pop_error_handler() noexcept { --errhal_depth_; }
  bool in_error_handler() const noexcept { return errhal_depth_ > 0; }

 private:
  ShadowStack stack_;
  CallGraph graph_;
  CommTrace comm_trace_;
  ExecPhase phase_ = ExecPhase::Init;
  int errhal_depth_ = 0;
};

/// RAII function frame that maintains both the shadow stack and the call
/// graph.
class FunctionScope {
 public:
  FunctionScope(RankContext& ctx, std::string_view name) : ctx_(&ctx) {
    ctx_->enter_function(name);
  }
  ~FunctionScope() { ctx_->leave_function(); }
  FunctionScope(const FunctionScope&) = delete;
  FunctionScope& operator=(const FunctionScope&) = delete;

 private:
  RankContext* ctx_;
};

/// RAII marker for error-handling code regions (the ErrHal feature).
class ErrorHandlingScope {
 public:
  explicit ErrorHandlingScope(RankContext& ctx) : ctx_(&ctx) {
    ctx_->push_error_handler();
  }
  ~ErrorHandlingScope() { ctx_->pop_error_handler(); }
  ErrorHandlingScope(const ErrorHandlingScope&) = delete;
  ErrorHandlingScope& operator=(const ErrorHandlingScope&) = delete;

 private:
  RankContext* ctx_;
};

/// One RankContext per world rank, shared between the workload (writer)
/// and the tool hooks (readers). Indexing is wait-free; each rank thread
/// touches only its own slot.
class ContextRegistry {
 public:
  explicit ContextRegistry(int nranks)
      : contexts_(static_cast<std::size_t>(nranks)) {
    for (auto& c : contexts_) c = std::make_unique<RankContext>();
  }

  RankContext& of(int rank) {
    return *contexts_.at(static_cast<std::size_t>(rank));
  }
  const RankContext& of(int rank) const {
    return *contexts_.at(static_cast<std::size_t>(rank));
  }
  int size() const noexcept { return static_cast<int>(contexts_.size()); }

 private:
  std::vector<std::unique_ptr<RankContext>> contexts_;
};

}  // namespace fastfit::trace

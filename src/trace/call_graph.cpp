#include "trace/call_graph.hpp"

#include <sstream>

#include "support/rng.hpp"

namespace fastfit::trace {

void CallGraph::add_call(const std::string& caller, const std::string& callee) {
  ++edges_[{caller, callee}];
}

std::uint64_t CallGraph::calls(const std::string& caller,
                               const std::string& callee) const {
  const auto it = edges_.find({caller, callee});
  return it == edges_.end() ? 0 : it->second;
}

std::uint64_t CallGraph::fingerprint() const {
  // edges_ is an ordered map, so iteration order is canonical.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [edge, count] : edges_) {
    h ^= fnv1a(edge.first);
    h *= 0x100000001b3ULL;
    h ^= fnv1a(edge.second);
    h *= 0x100000001b3ULL;
    h ^= count;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string CallGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph callgraph {\n";
  for (const auto& [edge, count] : edges_) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second << "\" [label=\""
        << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace fastfit::trace

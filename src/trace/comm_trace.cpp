#include "trace/comm_trace.hpp"

#include <sstream>

namespace fastfit::trace {

std::uint64_t CommTrace::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& e : events_) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.site_id);
    // Payload sizes are deliberately excluded: the paper's equivalence is
    // "same communication pattern", and per-rank byte counts legitimately
    // differ for vector collectives (e.g. IS's ragged gatherv) without
    // changing the pattern or the role.
    mix(e.is_root ? 1 : 0);
  }
  return h;
}

std::string CommTrace::render() const {
  std::ostringstream out;
  for (const auto& e : events_) {
    out << mpi::to_string(e.kind) << " site=" << e.site_id
        << " bytes=" << e.bytes << (e.is_root ? " (root)" : "") << '\n';
  }
  return out.str();
}

}  // namespace fastfit::trace

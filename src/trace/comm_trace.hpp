#pragma once

// Per-rank communication trace: the ordered sequence of collective events
// a rank participated in. Together with the call graph it decides process
// equivalence for semantic pruning (paper Sec III-A: "if two MPI processes
// have the same call graphs and traces, then they are empirically treated
// as equivalent").

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/types.hpp"

namespace fastfit::trace {

struct CommEvent {
  mpi::CollectiveKind kind{};
  std::uint32_t site_id = 0;
  std::uint64_t bytes = 0;    ///< payload this rank contributes
  bool is_root = false;       ///< role in a rooted collective
  bool operator==(const CommEvent&) const = default;
};

class CommTrace {
 public:
  void record(const CommEvent& event) { events_.push_back(event); }

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<CommEvent>& events() const noexcept { return events_; }

  /// Order-sensitive fingerprint: equal fingerprints <=> equal traces
  /// (up to hash collision).
  std::uint64_t fingerprint() const;

  bool operator==(const CommTrace& other) const {
    return events_ == other.events_;
  }

  /// One-line-per-event rendering for reports.
  std::string render() const;

 private:
  std::vector<CommEvent> events_;
};

}  // namespace fastfit::trace

#pragma once

// Shadow call stack: the portable stand-in for glibc backtrace().
//
// The paper identifies equivalent invocations by their call stacks ("the
// active functions are the same and called in the same order, but their
// function parameters may not necessarily be the same" — Sec III-B).
// Workloads annotate function entry with TraceScope; the stack identity is
// a running hash of frame names, so two invocations share a StackId iff
// their active-function sequences match exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fastfit::trace {

/// Stable identity of a call stack (hash of the frame-name sequence).
using StackId = std::uint64_t;

/// The StackId of the empty stack ("main" only).
StackId empty_stack_id() noexcept;

class ShadowStack {
 public:
  /// Pushes a frame. Prefer TraceScope for exception safety.
  void enter(std::string_view function);

  /// Pops the innermost frame. Throws InternalError on underflow.
  void leave();

  /// Identity of the current stack; O(1).
  StackId id() const noexcept;

  /// Nesting depth below main; the paper's StackDep feature.
  std::size_t depth() const noexcept { return frames_.size(); }

  /// The active-function names, outermost first (backtrace-style view).
  std::vector<std::string> frames() const;

  /// Innermost frame name, or "main" when at the bottom.
  std::string_view innermost() const noexcept;

 private:
  struct Frame {
    std::string name;
    StackId id;  // hash of the stack up to and including this frame
  };
  std::vector<Frame> frames_;
};

/// RAII frame marker:
///
///   void compute_rhs(AppContext& ctx) {
///     trace::TraceScope scope(ctx.stack, "compute_rhs");
///     ...
///   }
class TraceScope {
 public:
  TraceScope(ShadowStack& stack, std::string_view function) : stack_(&stack) {
    stack_->enter(function);
  }
  ~TraceScope() { stack_->leave(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ShadowStack* stack_;
};

}  // namespace fastfit::trace

#pragma once

// Process-equivalence classification for semantic-driven pruning.
//
// Paper Sec III-A: among ranks with the same communication pattern, only
// those with identical call graphs *and* communication traces are treated
// as equivalent; one representative per class suffices for injection.

#include <cstdint>
#include <vector>

#include "trace/rank_context.hpp"

namespace fastfit::trace {

/// A group of ranks whose profiled behaviour is indistinguishable.
struct EquivalenceClass {
  std::vector<int> ranks;        ///< members, ascending
  int representative() const { return ranks.front(); }
};

/// Partitions ranks into equivalence classes by (call-graph fingerprint,
/// comm-trace fingerprint). Classes are ordered by their lowest rank.
std::vector<EquivalenceClass> equivalence_classes(
    const ContextRegistry& contexts);

}  // namespace fastfit::trace

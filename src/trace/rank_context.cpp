#include "trace/rank_context.hpp"

namespace fastfit::trace {

const char* to_string(ExecPhase phase) noexcept {
  switch (phase) {
    case ExecPhase::Init: return "init";
    case ExecPhase::Input: return "input";
    case ExecPhase::Compute: return "compute";
    case ExecPhase::End: return "end";
  }
  return "unknown";
}

}  // namespace fastfit::trace

#pragma once

// Application call graph, as Callgrind/gprof would produce it: weighted
// caller -> callee edges. FastFIT's semantic pruning treats two MPI
// processes as equivalent only if their call graphs (and communication
// traces) match — computed here as an exact fingerprint comparison.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace fastfit::trace {

class CallGraph {
 public:
  /// Records one invocation of `callee` from `caller`.
  void add_call(const std::string& caller, const std::string& callee);

  /// Number of distinct edges.
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Invocation count of an edge (0 if absent).
  std::uint64_t calls(const std::string& caller,
                      const std::string& callee) const;

  /// Order-independent fingerprint over (caller, callee, count) triples:
  /// equal fingerprints <=> equal graphs (up to hash collision).
  std::uint64_t fingerprint() const;

  bool operator==(const CallGraph& other) const {
    return edges_ == other.edges_;
  }

  /// DOT rendering for documentation/debugging.
  std::string to_dot() const;

 private:
  std::map<std::pair<std::string, std::string>, std::uint64_t> edges_;
};

}  // namespace fastfit::trace

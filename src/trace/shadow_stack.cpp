#include "trace/shadow_stack.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fastfit::trace {
namespace {

constexpr StackId kEmptyId = 0x9e3779b97f4a7c15ULL;

StackId extend(StackId parent, std::string_view function) {
  // Order-sensitive combination: hash the frame name, then mix with the
  // parent id so [f, g] and [g, f] get distinct identities.
  const std::uint64_t h = fnv1a(function);
  StackId id = parent;
  id ^= h + 0x9e3779b97f4a7c15ULL + (id << 6) + (id >> 2);
  return id;
}

}  // namespace

StackId empty_stack_id() noexcept { return kEmptyId; }

void ShadowStack::enter(std::string_view function) {
  const StackId parent = id();
  frames_.push_back(Frame{std::string(function), extend(parent, function)});
}

void ShadowStack::leave() {
  if (frames_.empty()) {
    throw InternalError("ShadowStack::leave: underflow");
  }
  frames_.pop_back();
}

StackId ShadowStack::id() const noexcept {
  return frames_.empty() ? kEmptyId : frames_.back().id;
}

std::vector<std::string> ShadowStack::frames() const {
  std::vector<std::string> out;
  out.reserve(frames_.size());
  for (const auto& frame : frames_) out.push_back(frame.name);
  return out;
}

std::string_view ShadowStack::innermost() const noexcept {
  return frames_.empty() ? std::string_view("main") : frames_.back().name;
}

}  // namespace fastfit::trace

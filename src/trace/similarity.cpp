#include "trace/similarity.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace fastfit::trace {

std::vector<EquivalenceClass> equivalence_classes(
    const ContextRegistry& contexts) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, EquivalenceClass> classes;
  for (int r = 0; r < contexts.size(); ++r) {
    const auto& ctx = contexts.of(r);
    classes[{ctx.graph().fingerprint(), ctx.comm_trace().fingerprint()}]
        .ranks.push_back(r);
  }
  std::vector<EquivalenceClass> out;
  out.reserve(classes.size());
  for (auto& [key, cls] : classes) out.push_back(std::move(cls));
  // Order classes by lowest member for deterministic reporting.
  std::sort(out.begin(), out.end(),
            [](const EquivalenceClass& a, const EquivalenceClass& b) {
              return a.ranks.front() < b.ranks.front();
            });
  return out;
}

}  // namespace fastfit::trace

#pragma once

// Streaming summary statistics (Welford) used throughout the evaluation:
// error-rate means/deviations (Fig 3's Gaussian parameters), per-feature
// moments for the Eq-1 correlation, and benchmark reporting.

#include <cstddef>
#include <vector>

namespace fastfit::stats {

/// Numerically stable running mean / variance / extrema accumulator.
class Summary {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double sample_stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel reduction of partial summaries).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary of a whole vector.
Summary summarize(const std::vector<double>& xs) noexcept;

}  // namespace fastfit::stats

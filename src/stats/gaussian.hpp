#pragma once

// Gaussian fit used in the paper's Section III-B: the error-rate
// distribution over same-call-stack invocations is shown to follow a
// Gaussian (LAMMPS example: mean 29.58, stddev 7.69), which justifies
// context-driven pruning. We fit by maximum likelihood (sample moments)
// and quantify fit quality with a chi-squared statistic over histogram
// bins, so benches can report "Gaussian-like" the way Fig 3 does.

#include <vector>

#include "stats/histogram.hpp"

namespace fastfit::stats {

/// A fitted normal distribution.
struct GaussianFit {
  double mean = 0.0;
  double stddev = 0.0;

  /// Probability density at x.
  double pdf(double x) const noexcept;
  /// Cumulative distribution at x.
  double cdf(double x) const noexcept;
};

/// Maximum-likelihood Gaussian fit (sample mean / stddev). Requires at
/// least two observations.
GaussianFit fit_gaussian(const std::vector<double>& xs);

/// Pearson chi-squared statistic of a histogram against a fitted Gaussian,
/// using expected counts from the Gaussian CDF over each bin. Bins with
/// expected count below `min_expected` are pooled with their neighbour.
/// Smaller is better; the bench reports the statistic and its degrees of
/// freedom so the shape claim is checkable.
struct ChiSquared {
  double statistic = 0.0;
  std::size_t degrees_of_freedom = 0;
};
ChiSquared chi_squared_gof(const Histogram& hist, const GaussianFit& fit,
                           double min_expected = 1.0);

}  // namespace fastfit::stats

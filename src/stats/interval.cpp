#include "stats/interval.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fastfit::stats {

Interval wilson_interval(std::size_t errors, std::size_t trials, double z) {
  if (trials == 0) throw InternalError("wilson_interval: zero trials");
  if (errors > trials) {
    throw InternalError("wilson_interval: errors exceed trials");
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(errors) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval out{std::max(0.0, center - margin),
               std::min(1.0, center + margin)};
  // Pin the exact boundaries (the algebra gives them exactly; floating
  // point may not).
  if (errors == 0) out.lo = 0.0;
  if (errors == trials) out.hi = 1.0;
  return out;
}

Interval bootstrap_mean_ci(const std::vector<double>& xs, double confidence,
                           std::size_t resamples, RngStream& rng) {
  if (xs.empty()) throw InternalError("bootstrap_mean_ci: empty sample");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw InternalError("bootstrap_mean_ci: confidence must be in (0,1)");
  }
  if (resamples < 2) {
    throw InternalError("bootstrap_mean_ci: need at least 2 resamples");
  }
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      total += xs[rng.index(xs.size())];
    }
    means.push_back(total / static_cast<double>(xs.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto pick = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(means.size() - 1) + 0.5);
    return means[std::min(idx, means.size() - 1)];
  };
  return Interval{pick(alpha), pick(1.0 - alpha)};
}

}  // namespace fastfit::stats

#pragma once

// Error-rate level quantization.
//
// The paper never reports a raw error rate for sensitivity decisions; it
// qualifies it into levels. Two schemes appear:
//   - evenly divided levels (Fig 13: 2 levels, 3 levels; Fig 4's tree uses
//     4 even levels: low / medium-low / medium-high / high);
//   - the skewed 3-level scheme of Figs 8 and 11 (low <15%, med 15-85%,
//     high >85% of communication instances causing error responses).
// Both are expressed here as threshold lists.

#include <cstddef>
#include <string>
#include <vector>

namespace fastfit::stats {

/// Maps an error rate in [0,1] onto a level index given ascending interior
/// thresholds. `thresholds` of {0.25, 0.5, 0.75} yields 4 levels.
std::size_t level_of(double error_rate, const std::vector<double>& thresholds);

/// Evenly spaced interior thresholds for `levels` levels (e.g. 3 -> {1/3, 2/3}).
std::vector<double> even_thresholds(std::size_t levels);

/// The skewed scheme of Figs 8 and 11: low < 15%, med 15-85%, high > 85%.
std::vector<double> skewed_low_med_high();

/// Human-readable names for a level count: {"low","high"}, {"low","med",
/// "high"}, or {"low","med-low","med-high","high"}; generic "L<i>" beyond.
std::vector<std::string> level_names(std::size_t levels);

}  // namespace fastfit::stats

#pragma once

// Fixed-width histogram, used to reproduce Fig 3 (error-rate distribution
// of 100 same-call-stack invocations, binned in 5%-wide buckets).

#include <cstddef>
#include <string>
#include <vector>

namespace fastfit::stats {

/// Equal-width histogram over [lo, hi). Values outside the range clamp to
/// the first/last bin so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }

  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  double bin_hi(std::size_t bin) const;

  /// Index of the most populated bin (ties resolve to the lowest index).
  std::size_t mode_bin() const noexcept;

  /// Plain-text rendering with proportional bars (bench output).
  std::string render(const std::string& value_label) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fastfit::stats

#include "stats/levels.hpp"

#include "support/error.hpp"

namespace fastfit::stats {

std::size_t level_of(double error_rate,
                     const std::vector<double>& thresholds) {
  if (thresholds.empty()) {
    throw InternalError("level_of: need at least one threshold");
  }
  std::size_t level = 0;
  for (double t : thresholds) {
    if (error_rate >= t) ++level;
  }
  return level;
}

std::vector<double> even_thresholds(std::size_t levels) {
  if (levels < 2) throw InternalError("even_thresholds: need >= 2 levels");
  std::vector<double> out;
  out.reserve(levels - 1);
  for (std::size_t i = 1; i < levels; ++i) {
    out.push_back(static_cast<double>(i) / static_cast<double>(levels));
  }
  return out;
}

std::vector<double> skewed_low_med_high() { return {0.15, 0.85}; }

std::vector<std::string> level_names(std::size_t levels) {
  switch (levels) {
    case 2: return {"low", "high"};
    case 3: return {"low", "med", "high"};
    case 4: return {"low", "med-low", "med-high", "high"};
    default: {
      std::vector<std::string> out;
      for (std::size_t i = 0; i < levels; ++i) {
        out.push_back("L" + std::to_string(i));
      }
      return out;
    }
  }
}

}  // namespace fastfit::stats

#pragma once

// The paper's Equation 1: a Pearson correlation rescaled onto [0, 1].
//
//   Correlation(X, Y) = ( pearson(X, Y) + 1 ) / 2
//
// Interpretation per the paper: ~1 means the application feature varies
// with the error rate (strong positive indicator), ~0 means they vary
// oppositely, and 0.5 means the feature carries no signal. Table IV
// reports this value between each application feature and the error-rate
// level for LAMMPS.

#include <vector>

namespace fastfit::stats {

/// Standard Pearson product-moment correlation in [-1, 1]. Returns 0 when
/// either series is constant (no linear signal to report). Requires equal,
/// non-zero lengths.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Equation 1 of the paper: Pearson rescaled to [0, 1] with 0.5 = "no
/// effect on application sensitivity".
double eq1_correlation(const std::vector<double>& xs,
                       const std::vector<double>& ys);

}  // namespace fastfit::stats

#include "stats/gaussian.hpp"

#include <cmath>
#include <numbers>

#include "stats/summary.hpp"
#include "support/error.hpp"

namespace fastfit::stats {

double GaussianFit::pdf(double x) const noexcept {
  if (stddev <= 0.0) return x == mean ? 1.0 : 0.0;
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) /
         (stddev * std::sqrt(2.0 * std::numbers::pi));
}

double GaussianFit::cdf(double x) const noexcept {
  if (stddev <= 0.0) return x < mean ? 0.0 : 1.0;
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::numbers::sqrt2));
}

GaussianFit fit_gaussian(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    throw InternalError("fit_gaussian: need at least two observations");
  }
  const Summary s = summarize(xs);
  return GaussianFit{s.mean(), s.sample_stddev()};
}

ChiSquared chi_squared_gof(const Histogram& hist, const GaussianFit& fit,
                           double min_expected) {
  const auto total = static_cast<double>(hist.total());
  ChiSquared out;
  double pooled_observed = 0.0;
  double pooled_expected = 0.0;
  std::size_t cells = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double p = fit.cdf(hist.bin_hi(b)) - fit.cdf(hist.bin_lo(b));
    pooled_observed += static_cast<double>(hist.count(b));
    pooled_expected += p * total;
    if (pooled_expected >= min_expected) {
      const double diff = pooled_observed - pooled_expected;
      out.statistic += diff * diff / pooled_expected;
      pooled_observed = pooled_expected = 0.0;
      ++cells;
    }
  }
  if (pooled_expected > 0.0) {
    const double diff = pooled_observed - pooled_expected;
    out.statistic += diff * diff / pooled_expected;
    ++cells;
  }
  // Two parameters estimated from the data (mean, stddev).
  out.degrees_of_freedom = cells > 3 ? cells - 3 : 0;
  return out;
}

}  // namespace fastfit::stats

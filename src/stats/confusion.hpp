#pragma once

// Confusion matrix and accuracy metrics for the ML evaluation
// (Figs 12 and 13: per-class prediction accuracy of error types and
// error-rate levels).

#include <cstddef>
#include <string>
#include <vector>

namespace fastfit::stats {

/// Square confusion matrix over `classes` labels. Row = actual class,
/// column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void add(std::size_t actual, std::size_t predicted);

  std::size_t classes() const noexcept { return n_; }
  std::size_t count(std::size_t actual, std::size_t predicted) const;
  std::size_t total() const noexcept { return total_; }

  /// Overall fraction of correct predictions; 0 when empty.
  double accuracy() const noexcept;

  /// Per-class recall: of the samples whose actual class is `c`, the
  /// fraction predicted as `c`. This is the "prediction accuracy" the
  /// paper reports per error type in Fig 12. Returns 0 for absent classes.
  double recall(std::size_t c) const;

  /// Per-class precision: of the samples predicted as `c`, the fraction
  /// actually `c`.
  double precision(std::size_t c) const;

  /// Number of samples whose actual class is `c`.
  std::size_t support(std::size_t c) const;

  /// Accuracy of always predicting the most common actual class; the
  /// baseline a useful model must beat.
  double majority_baseline() const noexcept;

  /// Plain-text table with per-class recall, given class names.
  std::string render(const std::vector<std::string>& names) const;

 private:
  std::size_t index(std::size_t actual, std::size_t predicted) const;

  std::size_t n_;
  std::vector<std::size_t> cells_;
  std::size_t total_ = 0;
};

}  // namespace fastfit::stats

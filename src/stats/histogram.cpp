#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/format.hpp"

namespace fastfit::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw InternalError("Histogram: zero bins");
  if (!(hi > lo)) throw InternalError("Histogram: hi must exceed lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  // Non-finite observations clamp like out-of-range ones (NaN to the
  // first bin) so nothing is silently dropped and no UB cast occurs.
  long long bin = 0;
  const double scaled = (x - lo_) / width_;
  if (std::isfinite(scaled)) {
    bin = scaled >= static_cast<double>(counts_.size())
              ? static_cast<long long>(counts_.size()) - 1
              : static_cast<long long>(scaled);
  } else if (scaled > 0) {
    bin = static_cast<long long>(counts_.size()) - 1;
  }
  bin = std::clamp<long long>(bin, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw InternalError("Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw InternalError("Histogram: bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

std::size_t Histogram::mode_bin() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(const std::string& value_label) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty() ? 1 : std::max<std::size_t>(
      1, *std::max_element(counts_.begin(), counts_.end()));
  out << value_label << " distribution (" << total_ << " observations)\n";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out << std::fixed << std::setprecision(1) << std::setw(6) << bin_lo(b)
        << " - " << std::setw(6) << bin_hi(b) << " | " << std::setw(5)
        << counts_[b] << ' '
        << ascii_bar(static_cast<double>(counts_[b]) /
                         static_cast<double>(peak),
                     40)
        << '\n';
  }
  return out.str();
}

}  // namespace fastfit::stats

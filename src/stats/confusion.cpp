#include "stats/confusion.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/format.hpp"

namespace fastfit::stats {

ConfusionMatrix::ConfusionMatrix(std::size_t classes) : n_(classes) {
  if (classes == 0) throw InternalError("ConfusionMatrix: zero classes");
  cells_.assign(classes * classes, 0);
}

std::size_t ConfusionMatrix::index(std::size_t actual,
                                   std::size_t predicted) const {
  if (actual >= n_ || predicted >= n_) {
    throw InternalError("ConfusionMatrix: class out of range");
  }
  return actual * n_ + predicted;
}

void ConfusionMatrix::add(std::size_t actual, std::size_t predicted) {
  ++cells_[index(actual, predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t actual,
                                   std::size_t predicted) const {
  return cells_[index(actual, predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += cells_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::size_t ConfusionMatrix::support(std::size_t c) const {
  std::size_t row = 0;
  for (std::size_t p = 0; p < n_; ++p) row += count(c, p);
  return row;
}

double ConfusionMatrix::recall(std::size_t c) const {
  const std::size_t row = support(c);
  if (row == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(std::size_t c) const {
  std::size_t col = 0;
  for (std::size_t a = 0; a < n_; ++a) col += count(a, c);
  if (col == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(col);
}

double ConfusionMatrix::majority_baseline() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t best = 0;
  for (std::size_t c = 0; c < n_; ++c) best = std::max(best, support(c));
  return static_cast<double>(best) / static_cast<double>(total_);
}

std::string ConfusionMatrix::render(
    const std::vector<std::string>& names) const {
  if (names.size() != n_) {
    throw InternalError("ConfusionMatrix::render: name count mismatch");
  }
  std::size_t width = 9;
  for (const auto& name : names) width = std::max(width, name.size() + 1);
  std::ostringstream out;
  out << pad("actual\\pred", width + 2);
  for (const auto& name : names) out << pad(name, width);
  out << pad("recall", width) << '\n';
  for (std::size_t a = 0; a < n_; ++a) {
    out << pad(names[a], width + 2);
    for (std::size_t p = 0; p < n_; ++p) {
      out << pad(std::to_string(count(a, p)), width);
    }
    out << pad(percent(recall(a)), width) << '\n';
  }
  out << "overall accuracy: " << percent(accuracy())
      << "  (majority baseline: " << percent(majority_baseline()) << ")\n";
  return out.str();
}

}  // namespace fastfit::stats

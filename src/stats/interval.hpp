#pragma once

// Confidence intervals for error-rate estimates.
//
// The paper asserts "100 random fault injection tests are sufficient to
// cover as many cases as it might appear" (Sec III-A). These intervals
// quantify that: the Wilson score interval for the binomial error-rate
// proportion (analytic, well-behaved at 0 and 1), and a percentile
// bootstrap for arbitrary statistics.

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace fastfit::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const noexcept { return hi - lo; }
  bool contains(double x) const noexcept { return x >= lo && x <= hi; }
};

/// Wilson score interval for a binomial proportion (errors / trials).
/// `z` is the normal quantile (1.96 ~ 95%). Requires trials > 0.
Interval wilson_interval(std::size_t errors, std::size_t trials,
                         double z = 1.96);

/// Percentile bootstrap CI of the sample mean: `resamples` resamples with
/// replacement, returning the [(1-confidence)/2, 1-(1-confidence)/2]
/// percentiles of the resampled means. Requires a non-empty sample.
Interval bootstrap_mean_ci(const std::vector<double>& xs, double confidence,
                           std::size_t resamples, RngStream& rng);

}  // namespace fastfit::stats

#include "stats/correlation.hpp"

#include <cmath>

#include "support/error.hpp"

namespace fastfit::stats {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw InternalError("pearson: series length mismatch");
  }
  if (xs.empty()) throw InternalError("pearson: empty series");
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double eq1_correlation(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  return 0.5 * (pearson(xs, ys) + 1.0);
}

}  // namespace fastfit::stats

#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace fastfit::stats {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }
double Summary::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Summary summarize(const std::vector<double>& xs) noexcept {
  Summary s;
  for (double x : xs) s.add(x);
  return s;
}

}  // namespace fastfit::stats

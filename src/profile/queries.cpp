#include "profile/queries.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "support/format.hpp"

namespace fastfit::profile {

namespace {

std::uint64_t n_invocations_impl(
    const std::vector<InvocationRecord>& invocations) noexcept {
  return invocations.size();
}

std::size_t n_distinct_stacks_impl(
    const std::vector<InvocationRecord>& invocations) {
  std::set<trace::StackId> stacks;
  for (const auto& inv : invocations) stacks.insert(inv.stack);
  return stacks.size();
}

double mean_stack_depth_impl(
    const std::vector<InvocationRecord>& invocations) noexcept {
  if (invocations.empty()) return 0.0;
  double total = 0.0;
  for (const auto& inv : invocations) total += inv.depth;
  return total / static_cast<double>(invocations.size());
}

std::vector<InvocationRecord> stack_representatives_impl(
    const std::vector<InvocationRecord>& invocations) {
  std::set<trace::StackId> seen;
  std::vector<InvocationRecord> out;
  for (const auto& inv : invocations) {
    if (seen.insert(inv.stack).second) out.push_back(inv);
  }
  return out;
}

}  // namespace

std::uint64_t n_invocations(const SiteProfile& site) noexcept {
  return n_invocations_impl(site.invocations);
}
std::uint64_t n_invocations(const P2pSiteProfile& site) noexcept {
  return n_invocations_impl(site.invocations);
}

std::size_t n_distinct_stacks(const SiteProfile& site) {
  return n_distinct_stacks_impl(site.invocations);
}
std::size_t n_distinct_stacks(const P2pSiteProfile& site) {
  return n_distinct_stacks_impl(site.invocations);
}

double mean_stack_depth(const SiteProfile& site) noexcept {
  return mean_stack_depth_impl(site.invocations);
}
double mean_stack_depth(const P2pSiteProfile& site) noexcept {
  return mean_stack_depth_impl(site.invocations);
}

std::vector<InvocationRecord> stack_representatives(const SiteProfile& site) {
  return stack_representatives_impl(site.invocations);
}
std::vector<InvocationRecord> stack_representatives(
    const P2pSiteProfile& site) {
  return stack_representatives_impl(site.invocations);
}

namespace {

struct Aggregate {
  mpi::CollectiveKind kind{};
  std::string file;
  int line = 0;
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};

std::map<std::uint32_t, Aggregate> aggregate_sites(const Profiler& profiler) {
  std::map<std::uint32_t, Aggregate> out;
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      auto& agg = out[site_id];
      agg.kind = site.kind;
      agg.file = site.file;
      agg.line = site.line;
      agg.calls += site.invocations.size();
      for (const auto& inv : site.invocations) agg.bytes += inv.bytes;
    }
  }
  return out;
}

}  // namespace

double collective_fraction(const Profiler& profiler,
                           mpi::CollectiveKind kind) {
  std::uint64_t total = 0;
  std::uint64_t matching = 0;
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      total += site.invocations.size();
      if (site.kind == kind) matching += site.invocations.size();
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(matching) / static_cast<double>(total);
}

double errhal_fraction(const Profiler& profiler, mpi::CollectiveKind kind) {
  std::uint64_t total = 0;
  std::uint64_t errhal = 0;
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      if (site.kind != kind) continue;
      for (const auto& inv : site.invocations) {
        ++total;
        if (inv.errhal) ++errhal;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(errhal) / static_cast<double>(total);
}

std::string mpip_report(const Profiler& profiler) {
  const auto sites = aggregate_sites(profiler);
  std::uint64_t total_calls = 0;
  for (const auto& [id, agg] : sites) total_calls += agg.calls;

  // Sort rows by call volume, mpiP-style.
  std::vector<std::pair<std::uint32_t, Aggregate>> rows(sites.begin(),
                                                        sites.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.calls > b.second.calls;
  });

  std::ostringstream out;
  out << "--- Communication profile (" << profiler.nranks() << " ranks, "
      << total_calls << " collective calls) ---\n";
  out << pad("collective", 26) << pad("site", 34) << pad("calls", 10)
      << pad("bytes", 12) << "share\n";
  for (const auto& [site_id, agg] : rows) {
    std::ostringstream site_name;
    site_name << agg.file << ':' << agg.line;
    // Only the basename keeps rows readable.
    std::string name = site_name.str();
    if (const auto slash = name.rfind('/'); slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    out << pad(mpi::to_string(agg.kind), 26) << pad(name, 34)
        << pad(std::to_string(agg.calls), 10)
        << pad(std::to_string(agg.bytes), 12)
        << percent(total_calls
                       ? static_cast<double>(agg.calls) /
                             static_cast<double>(total_calls)
                       : 0.0)
        << '\n';
  }
  return out.str();
}

}  // namespace fastfit::profile

#pragma once

// Profile data model: what FastFIT's profiling phase collects.
//
// The paper gathers three profiles (Sec IV-B): a communication profile
// (mpiP), a call-graph profile (Callgrind/gprof), and a call-stack profile
// (backtrace at each collective invocation). Here the call graph lives in
// trace::RankContext; the other two materialize as InvocationRecords
// grouped by (rank, call site).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minimpi/types.hpp"
#include "trace/rank_context.hpp"
#include "trace/shadow_stack.hpp"

namespace fastfit::profile {

/// One observed invocation of a collective call site on one rank.
struct InvocationRecord {
  std::uint64_t invocation = 0;   ///< per-(rank, site) ordinal
  trace::StackId stack = 0;       ///< shadow-stack identity at the call
  std::uint32_t depth = 0;        ///< stack depth (StackDep feature input)
  trace::ExecPhase phase{};       ///< execution phase at the call
  bool errhal = false;            ///< inside error-handling code?
  std::uint64_t bytes = 0;        ///< payload contributed by this rank
};

/// All observations of one call site on one rank.
struct SiteProfile {
  mpi::CollectiveKind kind{};
  std::string file;
  int line = 0;
  bool is_root_here = false;  ///< this rank was the root in ≥1 invocation
  std::vector<InvocationRecord> invocations;
};

/// All observations of one point-to-point call site on one rank (the
/// future-work extension beyond collectives).
struct P2pSiteProfile {
  mpi::P2pKind kind{};
  std::string file;
  int line = 0;
  std::vector<InvocationRecord> invocations;
};

/// Everything profiled on one rank: site map plus ownership of the trace
/// context consumed by similarity analysis.
struct RankProfile {
  std::map<std::uint32_t, SiteProfile> sites;      ///< keyed by site_id
  std::map<std::uint32_t, P2pSiteProfile> p2p_sites;
};

}  // namespace fastfit::profile

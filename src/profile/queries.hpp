#pragma once

// Derived profile metrics: the application features of the paper's ML
// model (nInv, nDiffStack, StackDep) and the mpiP-style communication
// report used to understand a workload's collective mix.

#include <string>
#include <vector>

#include "profile/profiler.hpp"
#include "profile/records.hpp"

namespace fastfit::profile {

/// Number of invocations of a site on this rank: the nInv feature.
std::uint64_t n_invocations(const SiteProfile& site) noexcept;
std::uint64_t n_invocations(const P2pSiteProfile& site) noexcept;

/// Number of distinct call stacks observed at a site: nDiffStack.
std::size_t n_distinct_stacks(const SiteProfile& site);
std::size_t n_distinct_stacks(const P2pSiteProfile& site);

/// Mean shadow-stack depth over invocations: the StackDep feature.
double mean_stack_depth(const SiteProfile& site) noexcept;
double mean_stack_depth(const P2pSiteProfile& site) noexcept;

/// The context-pruning representatives: the first invocation of each
/// distinct call stack, ordered by invocation number. Injecting into
/// these covers every application context the site runs in (Sec III-B).
std::vector<InvocationRecord> stack_representatives(const SiteProfile& site);
std::vector<InvocationRecord> stack_representatives(
    const P2pSiteProfile& site);

/// Fraction of all collective invocations (across ranks) with this kind;
/// e.g. the paper notes >84% of LAMMPS collectives are MPI_Allreduce.
double collective_fraction(const Profiler& profiler, mpi::CollectiveKind kind);

/// Fraction of invocations of `kind` flagged as error handling; the paper
/// reports 40.32% for LAMMPS' MPI_Allreduce.
double errhal_fraction(const Profiler& profiler, mpi::CollectiveKind kind);

/// mpiP-like plain-text communication report, aggregated over ranks:
/// one row per call site (kind, file:line, calls, bytes, % of calls).
std::string mpip_report(const Profiler& profiler);

}  // namespace fastfit::profile

#pragma once

// The profiling tool: a ToolHooks implementation that observes every
// collective call during a fault-free run and populates, per rank, the
// communication profile, the call-stack profile, and the comm trace
// (the call graph is populated by the workload's FunctionScopes in the
// same ContextRegistry).
//
// Thread-safety: each rank thread writes only its own RankProfile slot and
// its own RankContext, so recording is lock-free; results are read after
// World::run has joined.

#include <memory>
#include <vector>

#include "minimpi/hooks.hpp"
#include "profile/records.hpp"
#include "trace/rank_context.hpp"

namespace fastfit::profile {

class Profiler final : public mpi::ToolHooks {
 public:
  /// `contexts` is the registry the workload annotates; the profiler reads
  /// stack/phase/errhal state from it and appends comm-trace events to it.
  explicit Profiler(trace::ContextRegistry& contexts);

  void on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_exit(const mpi::CollectiveCall& call, mpi::Mpi& mpi) override;
  void on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) override;

  const RankProfile& rank(int r) const;
  int nranks() const noexcept { return static_cast<int>(profiles_.size()); }
  const trace::ContextRegistry& contexts() const noexcept { return *contexts_; }

 private:
  trace::ContextRegistry* contexts_;
  std::vector<std::unique_ptr<RankProfile>> profiles_;
};

/// Payload bytes rank `rank_in_comm` contributes to `call` (what mpiP
/// would attribute). Tolerates only fault-free calls.
std::uint64_t contribution_bytes(const mpi::CollectiveCall& call,
                                 int comm_size);

}  // namespace fastfit::profile

#include "profile/profiler.hpp"

#include <numeric>

#include "minimpi/datatype.hpp"
#include "minimpi/mpi.hpp"
#include "support/error.hpp"

namespace fastfit::profile {

Profiler::Profiler(trace::ContextRegistry& contexts) : contexts_(&contexts) {
  profiles_.resize(static_cast<std::size_t>(contexts.size()));
  for (auto& p : profiles_) p = std::make_unique<RankProfile>();
}

std::uint64_t contribution_bytes(const mpi::CollectiveCall& call,
                                 int comm_size) {
  using mpi::CollectiveKind;
  const auto esize = [&](mpi::Datatype d) {
    return static_cast<std::uint64_t>(mpi::datatype_size(d));
  };
  switch (call.kind) {
    case CollectiveKind::Barrier:
      return 0;
    case CollectiveKind::Bcast:
    case CollectiveKind::Reduce:
    case CollectiveKind::Allreduce:
    case CollectiveKind::Scan:
      return static_cast<std::uint64_t>(call.count) * esize(call.datatype);
    case CollectiveKind::ReduceScatterBlock:
      return static_cast<std::uint64_t>(call.count) *
             static_cast<std::uint64_t>(comm_size) * esize(call.datatype);
    case CollectiveKind::Scatter:
    case CollectiveKind::Gather:
    case CollectiveKind::Allgather:
      return static_cast<std::uint64_t>(call.count) * esize(call.datatype);
    case CollectiveKind::Alltoall:
      return static_cast<std::uint64_t>(call.count) *
             static_cast<std::uint64_t>(comm_size) * esize(call.datatype);
    case CollectiveKind::Scatterv: {
      if (call.sendcounts == nullptr) {
        return static_cast<std::uint64_t>(call.recvcount) *
               esize(call.recvdatatype);
      }
      std::uint64_t total = 0;
      for (auto c : *call.sendcounts) total += static_cast<std::uint64_t>(c);
      return total * esize(call.datatype);
    }
    case CollectiveKind::Gatherv:
    case CollectiveKind::Allgatherv:
      return static_cast<std::uint64_t>(call.count) * esize(call.datatype);
    case CollectiveKind::Alltoallv: {
      std::uint64_t total = 0;
      if (call.sendcounts != nullptr) {
        for (auto c : *call.sendcounts) total += static_cast<std::uint64_t>(c);
      }
      return total * esize(call.datatype);
    }
  }
  throw InternalError("contribution_bytes: unknown collective kind");
}

void Profiler::on_enter(mpi::CollectiveCall& call, mpi::Mpi& mpi) {
  const int rank = mpi.world_rank();
  auto& ctx = contexts_->of(rank);
  auto& site = (*profiles_[static_cast<std::size_t>(rank)]).sites[call.site_id];

  if (site.invocations.empty()) {
    site.kind = call.kind;
    site.file = call.site_file;
    site.line = call.site_line;
  }
  const bool is_root =
      mpi::is_rooted(call.kind) && call.rank == call.root;
  site.is_root_here = site.is_root_here || is_root;

  InvocationRecord record;
  record.invocation = call.invocation;
  record.stack = ctx.stack().id();
  record.depth = static_cast<std::uint32_t>(ctx.stack().depth());
  record.phase = ctx.phase();
  record.errhal = ctx.in_error_handler();
  record.bytes = contribution_bytes(call, mpi.size(call.comm));
  site.invocations.push_back(record);

  ctx.comm_trace().record(trace::CommEvent{call.kind, call.site_id,
                                           record.bytes, is_root});
}

void Profiler::on_exit(const mpi::CollectiveCall&, mpi::Mpi&) {}

void Profiler::on_p2p(mpi::P2pCall& call, mpi::Mpi& mpi) {
  const int rank = mpi.world_rank();
  auto& ctx = contexts_->of(rank);
  auto& site =
      (*profiles_[static_cast<std::size_t>(rank)]).p2p_sites[call.site_id];
  if (site.invocations.empty()) {
    site.kind = call.kind;
    site.file = call.site_file;
    site.line = call.site_line;
  }
  InvocationRecord record;
  record.invocation = call.invocation;
  record.stack = ctx.stack().id();
  record.depth = static_cast<std::uint32_t>(ctx.stack().depth());
  record.phase = ctx.phase();
  record.errhal = ctx.in_error_handler();
  record.bytes =
      call.count >= 0 && mpi::is_valid(call.datatype)
          ? static_cast<std::uint64_t>(call.count) *
                mpi::datatype_size(call.datatype)
          : 0;
  site.invocations.push_back(record);
}

const RankProfile& Profiler::rank(int r) const {
  return *profiles_.at(static_cast<std::size_t>(r));
}

}  // namespace fastfit::profile

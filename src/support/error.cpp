#include "support/error.hpp"

namespace fastfit {

const char* to_string(MpiErrc code) noexcept {
  switch (code) {
    case MpiErrc::InvalidComm: return "MPI_ERR_COMM";
    case MpiErrc::InvalidDatatype: return "MPI_ERR_TYPE";
    case MpiErrc::InvalidOp: return "MPI_ERR_OP";
    case MpiErrc::InvalidCount: return "MPI_ERR_COUNT";
    case MpiErrc::InvalidRoot: return "MPI_ERR_ROOT";
    case MpiErrc::InvalidBuffer: return "MPI_ERR_BUFFER";
    case MpiErrc::InvalidTag: return "MPI_ERR_TAG";
    case MpiErrc::InvalidRank: return "MPI_ERR_RANK";
    case MpiErrc::TypeMismatch: return "MPI_ERR_TYPE_MISMATCH";
    case MpiErrc::CountMismatch: return "MPI_ERR_COUNT_MISMATCH";
    case MpiErrc::Truncate: return "MPI_ERR_TRUNCATE";
    case MpiErrc::Internal: return "MPI_ERR_INTERN";
  }
  return "MPI_ERR_UNKNOWN";
}

}  // namespace fastfit

#include "support/rng.hpp"

#include <algorithm>
#include <cassert>

#include "support/error.hpp"

namespace fastfit {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

RngStream::RngStream(std::uint64_t master_seed, std::string_view name,
                     std::uint64_t index) {
  std::uint64_t state = master_seed ^ fnv1a(name);
  state ^= 0x6a09e667f3bcc909ULL * (index + 1);
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  std::seed_seq seq{static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
                    static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32)};
  engine_.seed(seq);
}

std::uint64_t RngStream::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw InternalError("RngStream::uniform_u64: lo > hi");
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

std::size_t RngStream::index(std::size_t n) {
  if (n == 0) throw InternalError("RngStream::index: empty range");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double RngStream::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool RngStream::bernoulli(double p) { return uniform() < p; }

double RngStream::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

std::vector<std::size_t> RngStream::sample_without_replacement(std::size_t n,
                                                               std::size_t k) {
  if (k > n) throw InternalError("sample_without_replacement: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be drawn.
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + index(n - i)]);
  }
  all.resize(k);
  return all;
}

}  // namespace fastfit

#pragma once

// Error hierarchy for the FastFIT reproduction.
//
// Every failure mode a fault-injection trial can provoke is modelled as an
// exception derived from FaultEvent, so a trial can run millions of times
// in-process without ever taking the host down: a "segfault" is a
// bounds-registry violation, a "hang" is a watchdog timeout, an "MPI abort"
// is a validation failure. The outcome classifier (inject/outcome.hpp) maps
// these onto the paper's Table I response taxonomy.

#include <stdexcept>
#include <string>

namespace fastfit {

/// Root of all library errors (configuration, usage, internal invariants).
class FastFitError : public std::runtime_error {
 public:
  explicit FastFitError(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user configuration (bad env var, out-of-range parameter, ...).
class ConfigError : public FastFitError {
 public:
  explicit ConfigError(const std::string& what) : FastFitError(what) {}
};

/// Broken internal invariant; indicates a bug in this library, not a fault.
class InternalError : public FastFitError {
 public:
  explicit InternalError(const std::string& what) : FastFitError(what) {}
};

// ---------------------------------------------------------------------------
// Fault events: the failure modes a corrupted collective can provoke.
// ---------------------------------------------------------------------------

/// Base class for every failure a rank can experience during a trial.
class FaultEvent : public FastFitError {
 public:
  explicit FaultEvent(const std::string& what) : FastFitError(what) {}
};

/// MPI error codes reported by MiniMPI validation, mirroring the classes a
/// production MPI implementation raises for corrupted call parameters.
enum class MpiErrc {
  InvalidComm,
  InvalidDatatype,
  InvalidOp,
  InvalidCount,
  InvalidRoot,
  InvalidBuffer,
  InvalidTag,
  InvalidRank,
  TypeMismatch,    ///< participating ranks disagree on datatype signature
  CountMismatch,   ///< participating ranks disagree on reduction length
  Truncate,        ///< receive buffer too small for the incoming message
  Internal,
};

/// Returns the MPI-style name for an error code (e.g. "MPI_ERR_COMM").
const char* to_string(MpiErrc code) noexcept;

/// The MPI environment detected an invalid argument and aborted the job
/// (paper Table I: MPI_ERR).
class MpiError : public FaultEvent {
 public:
  MpiError(MpiErrc code, const std::string& detail)
      : FaultEvent(std::string(to_string(code)) + ": " + detail),
        code_(code) {}

  MpiErrc code() const noexcept { return code_; }

 private:
  MpiErrc code_;
};

/// A memory access left every registered buffer region: the simulated
/// equivalent of a segmentation fault (paper Table I: SEG_FAULT).
class SimSegFault : public FaultEvent {
 public:
  SimSegFault(std::uintptr_t addr, std::size_t len, const std::string& detail)
      : FaultEvent("SIGSEGV(sim): " + detail), addr_(addr), len_(len) {}

  std::uintptr_t address() const noexcept { return addr_; }
  std::size_t length() const noexcept { return len_; }

 private:
  std::uintptr_t addr_;
  std::size_t len_;
};

/// The application's own error-handling code detected an inconsistency and
/// aborted (paper Table I: APP_DETECTED).
class AppError : public FaultEvent {
 public:
  explicit AppError(const std::string& what) : FaultEvent(what) {}
};

/// The watchdog fired: a collective rendezvous never completed, i.e. the
/// job would hang until killed (paper Table I: INF_LOOP).
class SimTimeout : public FaultEvent {
 public:
  explicit SimTimeout(const std::string& what) : FaultEvent(what) {}
};

/// This rank was torn down because *another* rank failed first. Always
/// subordinate to the initiating event during outcome aggregation.
class WorldAborted : public FaultEvent {
 public:
  explicit WorldAborted(const std::string& what) : FaultEvent(what) {}
};

/// A fail-stop fault killed this rank mid-run: the rank stops executing
/// immediately, as if its process died. Peers observe the death through
/// the progress table; with repair disabled the world aborts (outcome
/// RANK_DEAD), with repair enabled survivors get RankRevoked instead.
class RankKilled : public FaultEvent {
 public:
  RankKilled(int rank, const std::string& what)
      : FaultEvent(what), rank_(rank) {}

  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// ULFM-style revocation notice delivered to *surviving* ranks after a
/// fail-stop when repair mode is on: any operation on a pre-death
/// communicator raises this, and a workload's repair hook may catch it,
/// call Mpi::shrink_and_continue(), and resume on the shrunken world.
class RankRevoked : public FaultEvent {
 public:
  explicit RankRevoked(const std::string& what) : FaultEvent(what) {}
};

}  // namespace fastfit

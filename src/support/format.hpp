#pragma once

// Small text-formatting helpers shared by reports and benches.

#include <sstream>
#include <string>
#include <vector>

namespace fastfit {

/// Joins items with a separator using operator<<.
template <typename T>
std::string join(const std::vector<T>& items, const std::string& sep) {
  std::ostringstream out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out << sep;
    out << items[i];
  }
  return out.str();
}

/// Formats a fraction as a fixed-precision percentage, e.g. 0.9724 -> "97.24%".
std::string percent(double fraction, int decimals = 2);

/// Left-pads text to a column width (for plain-text tables).
std::string pad(const std::string& text, std::size_t width);

/// Renders a simple horizontal ASCII bar of proportional length.
std::string ascii_bar(double fraction, std::size_t max_width = 40);

}  // namespace fastfit

#pragma once

// Bit-manipulation primitives for the fault injector.
//
// The paper's fault model is a single bit flip in one input parameter (or
// one random bit of the data buffer) of a collective call. These helpers
// implement that flip over raw byte ranges and over trivially-copyable
// values, and are involutions: flipping the same bit twice restores the
// original value.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "support/error.hpp"

namespace fastfit {

/// Flips bit `bit` (0 = LSB of byte 0) in a byte range.
inline void flip_bit(std::span<std::byte> bytes, std::size_t bit) {
  const std::size_t byte_index = bit / 8;
  if (byte_index >= bytes.size()) {
    throw InternalError("flip_bit: bit index out of range");
  }
  bytes[byte_index] ^= static_cast<std::byte>(1u << (bit % 8));
}

/// Number of flippable bits in a byte range.
inline std::size_t bit_width_of(std::span<const std::byte> bytes) noexcept {
  return bytes.size() * 8;
}

/// Flips bit `bit` in a trivially-copyable value and returns the result.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T with_flipped_bit(T value, std::size_t bit) {
  static_assert(sizeof(T) > 0);
  std::byte raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  flip_bit(std::span<std::byte>(raw, sizeof(T)), bit);
  T out;
  std::memcpy(&out, raw, sizeof(T));
  return out;
}

/// Population count over a byte range; used by tests to assert that a flip
/// changed exactly one bit.
inline std::size_t popcount(std::span<const std::byte> bytes) noexcept {
  std::size_t total = 0;
  for (std::byte b : bytes) {
    total += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned char>(b)));
  }
  return total;
}

/// Hamming distance between two equal-length byte ranges.
inline std::size_t hamming_distance(std::span<const std::byte> a,
                                    std::span<const std::byte> b) {
  if (a.size() != b.size()) {
    throw InternalError("hamming_distance: size mismatch");
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned char>(
            static_cast<unsigned char>(a[i]) ^
            static_cast<unsigned char>(b[i]))));
  }
  return total;
}

}  // namespace fastfit

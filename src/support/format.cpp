#include "support/format.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace fastfit {

std::string percent(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return out.str();
}

std::string pad(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::string ascii_bar(double fraction, std::size_t max_width) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  const auto width = static_cast<std::size_t>(
      std::lround(clamped * static_cast<double>(max_width)));
  return std::string(width, '#');
}

}  // namespace fastfit

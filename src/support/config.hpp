#pragma once

// Campaign configuration, mirroring the paper's Table II.
//
// FastFIT's injection phase is driven by a small set of parameters the
// paper exposes as environment variables:
//
//   NUM_INJ   - number of injected faults (trials) per injection point
//   INV_ID    - id of the injected invocation
//   CALL_ID   - id of the injected MPI collective call site
//   RANK_ID   - id of the injected rank
//   PARAM_ID  - id of the injected parameter
//
// InjectionConfig reads them either from the process environment (like the
// original tool) or from an explicit key/value map (used by tests and by
// the campaign runner, which synthesizes one config per trial batch).

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>

namespace fastfit {

/// One configuration knob: the environment variable, its CLI long-flag
/// alias, the value placeholder, and a one-line description. The single
/// table (config_knobs) drives both from_environment() and the CLI's
/// --help, so the two views can never drift apart again.
struct ConfigKnob {
  const char* env;   ///< environment variable name
  const char* flag;  ///< CLI long flag without "--" ("" = env-only)
  const char* arg;   ///< value placeholder, e.g. "N", "FILE" ("" = switch)
  const char* help;  ///< one-line description
};

/// Every knob InjectionConfig understands, in display order.
std::span<const ConfigKnob> config_knobs();

/// One fault-injection configuration (paper Table II). Fields left
/// unset select "all" / "chosen by the campaign planner".
struct InjectionConfig {
  std::uint64_t num_inj = 100;            ///< trials per injection point
  std::optional<std::uint32_t> inv_id;    ///< target invocation (3 decimal digits in the paper)
  std::optional<std::uint32_t> call_id;   ///< target collective call site
  std::optional<std::uint32_t> rank_id;   ///< target rank
  std::optional<std::uint8_t> param_id;   ///< target parameter (1 digit)
  std::uint64_t seed = 0x5eedfa57f17ULL;  ///< campaign master seed
  /// Max concurrently executing trials (our extension, not in Table II).
  /// 0 = auto (hardware_concurrency / nranks), 1 = serial.
  std::uint64_t parallel_trials = 0;
  /// Durable trial journal path (FASTFIT_JOURNAL); empty = no journal.
  std::string journal;
  /// Internal-failure retries per trial before the point is quarantined
  /// (FASTFIT_MAX_TRIAL_RETRIES); 0 disables retries.
  std::uint64_t max_trial_retries = 2;
  /// Watchdog multiplier for the uncontended INF_LOOP re-confirmation run
  /// (FASTFIT_WATCHDOG_ESCALATION); must be >= 1.
  std::uint64_t watchdog_escalation = 4;
  /// Deterministic hang detection: a per-world monitor proves deadlocks
  /// from pending-operation signatures instead of waiting out the watchdog
  /// (FASTFIT_HANG_DETECTION); 1 = on (default), 0 = timeout-only.
  bool hang_detection = true;
  /// Campaign-wide budget of rank threads that may survive teardown into
  /// quarantine before the run fails (FASTFIT_MAX_LEAKED_THREADS).
  std::uint64_t max_leaked_threads = 8;
  /// Chrome trace-event JSON output path (FASTFIT_TRACE); empty = no
  /// trace. A non-empty path enables the telemetry recorder.
  std::string trace_out;
  /// Metrics snapshot output path (FASTFIT_METRICS); ".json" suffix
  /// selects JSON, anything else Prometheus text exposition. Empty = no
  /// metrics file. A non-empty path enables the telemetry recorder.
  std::string metrics_out;
  /// Live single-line progress report on stderr (FASTFIT_PROGRESS);
  /// enables the telemetry recorder.
  bool progress = false;
  /// Periodic metrics re-export interval in ms
  /// (FASTFIT_METRICS_INTERVAL_MS); 0 = only at campaign end.
  std::uint64_t metrics_interval_ms = 0;
  /// Deterministic shard selector "i/N" (FASTFIT_SHARD); empty = the
  /// whole study. Kept as raw text here — the partition semantics live
  /// in core/shard.hpp, which validates the format.
  std::string shard;
  /// Comma-separated pruning pass chain (FASTFIT_PASSES), e.g.
  /// "semantic,context" or "context,semantic,ml"; empty = the default
  /// chain. Validated by the pipeline's pass factory downstream.
  std::string passes;
  /// Comma-separated fault-model specs (FASTFIT_FAULT_MODELS), each
  /// "model[@trigger[=param]]", e.g.
  /// "single-bit-flip,rank-death,message-drop@prob=0.01". Empty = the
  /// default exact-point single bit flip. Validated by
  /// inject::parse_fault_models downstream.
  std::string fault_models;
  /// ULFM-style shrink-and-continue repair for fail-stop rank death
  /// (FASTFIT_REPAIR); 0 = off (default): a death poisons the world and
  /// classifies RANK_DEAD.
  bool repair = false;
  /// Trial execution backend (FASTFIT_ISOLATION): "thread" (default,
  /// in-process rank threads) or "process" (fork-server workers; real
  /// signals become classifiable as SEG_FAULT). Kept as validated text
  /// here; the mode enum lives in core/procpool.hpp.
  std::string isolation = "thread";
  /// MiniMPI world engine (FASTFIT_WORLD_ENGINE): "fibers" (default,
  /// resumable rank fibers multiplexed on the trial's thread) or
  /// "threads" (one OS thread per rank, the pre-fiber substrate).
  /// Reports, journals, and counters are byte-identical across engines;
  /// only the scheduling substrate changes. Kept as validated text here;
  /// the engine enum lives in minimpi/world.hpp.
  std::string world_engine = "fibers";
  /// Prefix-replay world snapshots (FASTFIT_SNAPSHOTS): "on", "off", or
  /// "auto" (default). Kept as validated text here; the mode enum lives
  /// in core/snapshot_cache.hpp.
  std::string snapshots = "auto";
  /// LRU budget in MiB for the snapshot recording plus derived cuts
  /// (FASTFIT_SNAPSHOT_CACHE_MB); must be >= 1.
  std::uint64_t snapshot_cache_mb = 256;
  /// Durable file for the prefix-replay recording
  /// (FASTFIT_SNAPSHOT_RECORDING). Resumed campaigns and sharded
  /// workers pointed at the same file pay the fault-free recording run
  /// once between them. Empty (default) = derive from the journal path,
  /// or keep the recording in memory only when there is no journal.
  std::string snapshot_recording;

  /// True when any telemetry sink is requested (trace, metrics, or the
  /// live progress line) and the recorder must therefore be enabled.
  bool telemetry_requested() const noexcept {
    return !trace_out.empty() || !metrics_out.empty() || progress;
  }

  /// Parses a config from a key/value map using the Table II names and
  /// the FASTFIT_* extensions — exactly the environment variables listed
  /// by config_knobs(). Unknown keys are rejected; malformed values
  /// raise ConfigError.
  static InjectionConfig from_map(
      const std::map<std::string, std::string>& kv);

  /// Parses a config from the process environment (the original tool's
  /// deployment mode): reads every variable named in config_knobs().
  /// Missing variables keep their defaults.
  static InjectionConfig from_environment();

  /// Renders the config back to Table II environment-variable form.
  std::map<std::string, std::string> to_map() const;
};

}  // namespace fastfit

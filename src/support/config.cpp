#include "support/config.hpp"

#include <cstdlib>
#include <limits>

#include "support/error.hpp"

namespace fastfit {
namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value,
                        std::uint64_t max_value) {
  if (value.empty()) throw ConfigError(key + ": empty value");
  std::uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw ConfigError(key + ": not a non-negative integer: '" + value + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw ConfigError(key + ": value overflows: '" + value + "'");
    }
    out = out * 10 + digit;
  }
  if (out > max_value) {
    throw ConfigError(key + ": value " + value + " exceeds limit " +
                      std::to_string(max_value));
  }
  return out;
}

// The single source of truth for knob names: from_environment() reads
// these variables, the CLI renders this table into --help. Adding a knob
// here makes it visible in both places at once.
constexpr ConfigKnob kKnobs[] = {
    {"NUM_INJ", "", "N", "trials per injection point (paper Table II)"},
    {"INV_ID", "", "ID", "target invocation id (paper Table II)"},
    {"CALL_ID", "", "ID", "target collective call-site id (paper Table II)"},
    {"RANK_ID", "", "ID", "target rank id (paper Table II)"},
    {"PARAM_ID", "", "ID", "target parameter id (paper Table II)"},
    {"FASTFIT_SEED", "seed", "S", "campaign master seed"},
    {"FASTFIT_PARALLEL_TRIALS", "parallel-trials", "P",
     "max concurrent trials (0 = auto, 1 = serial)"},
    {"FASTFIT_JOURNAL", "journal", "FILE",
     "durable trial journal (continue with --resume)"},
    {"FASTFIT_MAX_TRIAL_RETRIES", "max-trial-retries", "R",
     "internal-failure retries before a point is quarantined"},
    {"FASTFIT_WATCHDOG_ESCALATION", "watchdog-escalation", "M",
     "watchdog multiplier for uncontended INF_LOOP re-confirmation"},
    {"FASTFIT_HANG_DETECTION", "hang-detection", "0|1",
     "deterministic deadlock monitor (default on)"},
    {"FASTFIT_MAX_LEAKED_THREADS", "max-leaked-threads", "N",
     "quarantined-thread budget before the run fails"},
    {"FASTFIT_SHARD", "shard", "i/N",
     "run deterministic shard i of N (merge with 'fastfit merge')"},
    {"FASTFIT_PASSES", "passes", "LIST",
     "pruning chain, comma-separated (semantic,context[,ml])"},
    {"FASTFIT_FAULT_MODELS", "fault-models", "LIST",
     "fault models, comma-separated model[@trigger[=param]] specs"},
    {"FASTFIT_REPAIR", "repair", "0|1",
     "ULFM-style shrink-and-continue after rank death (default off)"},
    {"FASTFIT_ISOLATION", "isolation", "thread|process",
     "trial backend: in-process threads or fork-server workers"},
    {"FASTFIT_WORLD_ENGINE", "world-engine", "fibers|threads",
     "rank substrate: resumable fibers (default) or thread-per-rank"},
    {"FASTFIT_SNAPSHOTS", "snapshots", "on|off|auto",
     "prefix-replay world snapshots (default auto)"},
    {"FASTFIT_SNAPSHOT_CACHE_MB", "snapshot-cache-mb", "MB",
     "LRU budget for the snapshot recording and cuts"},
    {"FASTFIT_SNAPSHOT_RECORDING", "snapshot-recording", "FILE",
     "durable prefix-replay recording shared across resume and shards"},
    {"FASTFIT_TRACE", "trace-out", "FILE",
     "Chrome trace-event JSON of the trial lifecycle"},
    {"FASTFIT_METRICS", "metrics-out", "FILE",
     "metrics snapshot (.json = JSON, else Prometheus text)"},
    {"FASTFIT_PROGRESS", "progress", "",
     "live one-line progress report on stderr"},
    {"FASTFIT_METRICS_INTERVAL_MS", "metrics-interval-ms", "MS",
     "periodic metrics re-export (0 = only at campaign end)"},
};

}  // namespace

std::span<const ConfigKnob> config_knobs() { return kKnobs; }

InjectionConfig InjectionConfig::from_map(
    const std::map<std::string, std::string>& kv) {
  InjectionConfig cfg;
  for (const auto& [key, value] : kv) {
    if (key == "NUM_INJ") {
      cfg.num_inj = parse_u64(key, value,
                              std::numeric_limits<std::uint64_t>::max());
      if (cfg.num_inj == 0) throw ConfigError("NUM_INJ: must be positive");
    } else if (key == "INV_ID") {
      // The paper allots 3 decimal digits to INV_ID and CALL_ID.
      cfg.inv_id = static_cast<std::uint32_t>(parse_u64(key, value, 999));
    } else if (key == "CALL_ID") {
      cfg.call_id = static_cast<std::uint32_t>(parse_u64(key, value, 999));
    } else if (key == "RANK_ID") {
      cfg.rank_id = static_cast<std::uint32_t>(
          parse_u64(key, value, std::numeric_limits<std::uint32_t>::max()));
    } else if (key == "PARAM_ID") {
      cfg.param_id = static_cast<std::uint8_t>(parse_u64(key, value, 9));
    } else if (key == "FASTFIT_SEED") {
      cfg.seed = parse_u64(key, value,
                           std::numeric_limits<std::uint64_t>::max());
    } else if (key == "FASTFIT_PARALLEL_TRIALS") {
      // Generous ceiling: campaigns beyond a few thousand concurrent
      // Worlds are a configuration mistake, not a machine.
      cfg.parallel_trials = parse_u64(key, value, 4096);
    } else if (key == "FASTFIT_JOURNAL") {
      if (value.empty()) throw ConfigError("FASTFIT_JOURNAL: empty path");
      cfg.journal = value;
    } else if (key == "FASTFIT_MAX_TRIAL_RETRIES") {
      cfg.max_trial_retries = parse_u64(key, value, 100);
    } else if (key == "FASTFIT_WATCHDOG_ESCALATION") {
      cfg.watchdog_escalation = parse_u64(key, value, 64);
      if (cfg.watchdog_escalation == 0) {
        throw ConfigError("FASTFIT_WATCHDOG_ESCALATION: must be >= 1");
      }
    } else if (key == "FASTFIT_HANG_DETECTION") {
      cfg.hang_detection = parse_u64(key, value, 1) != 0;
    } else if (key == "FASTFIT_MAX_LEAKED_THREADS") {
      cfg.max_leaked_threads = parse_u64(key, value, 4096);
    } else if (key == "FASTFIT_TRACE") {
      if (value.empty()) throw ConfigError("FASTFIT_TRACE: empty path");
      cfg.trace_out = value;
    } else if (key == "FASTFIT_METRICS") {
      if (value.empty()) throw ConfigError("FASTFIT_METRICS: empty path");
      cfg.metrics_out = value;
    } else if (key == "FASTFIT_PROGRESS") {
      cfg.progress = parse_u64(key, value, 1) != 0;
    } else if (key == "FASTFIT_METRICS_INTERVAL_MS") {
      // One hour ceiling: longer intervals mean "at campaign end", which
      // is what 0 already requests.
      cfg.metrics_interval_ms = parse_u64(key, value, 3'600'000);
    } else if (key == "FASTFIT_SHARD") {
      if (value.empty()) throw ConfigError("FASTFIT_SHARD: empty value");
      cfg.shard = value;
    } else if (key == "FASTFIT_PASSES") {
      if (value.empty()) throw ConfigError("FASTFIT_PASSES: empty value");
      cfg.passes = value;
    } else if (key == "FASTFIT_FAULT_MODELS") {
      if (value.empty()) throw ConfigError("FASTFIT_FAULT_MODELS: empty value");
      cfg.fault_models = value;
    } else if (key == "FASTFIT_REPAIR") {
      cfg.repair = parse_u64(key, value, 1) != 0;
    } else if (key == "FASTFIT_ISOLATION") {
      if (value != "thread" && value != "process") {
        throw ConfigError(
            "FASTFIT_ISOLATION: must be one of thread|process, got '" +
            value + "'");
      }
      cfg.isolation = value;
    } else if (key == "FASTFIT_WORLD_ENGINE") {
      if (value != "fibers" && value != "threads") {
        throw ConfigError(
            "FASTFIT_WORLD_ENGINE: must be one of fibers|threads, got '" +
            value + "'");
      }
      cfg.world_engine = value;
    } else if (key == "FASTFIT_SNAPSHOTS") {
      if (value != "on" && value != "off" && value != "auto") {
        throw ConfigError(
            "FASTFIT_SNAPSHOTS: must be one of on|off|auto, got '" + value +
            "'");
      }
      cfg.snapshots = value;
    } else if (key == "FASTFIT_SNAPSHOT_CACHE_MB") {
      // 1 TiB ceiling: anything larger is a typo, not a budget.
      cfg.snapshot_cache_mb = parse_u64(key, value, 1'048'576);
      if (cfg.snapshot_cache_mb == 0) {
        throw ConfigError("FASTFIT_SNAPSHOT_CACHE_MB: must be >= 1");
      }
    } else if (key == "FASTFIT_SNAPSHOT_RECORDING") {
      if (value.empty()) {
        throw ConfigError("FASTFIT_SNAPSHOT_RECORDING: path must not be empty");
      }
      cfg.snapshot_recording = value;
    } else {
      throw ConfigError("unknown configuration key: " + key);
    }
  }
  return cfg;
}

InjectionConfig InjectionConfig::from_environment() {
  std::map<std::string, std::string> kv;
  for (const auto& knob : config_knobs()) {
    if (const char* value = std::getenv(knob.env)) kv.emplace(knob.env, value);
  }
  return from_map(kv);
}

std::map<std::string, std::string> InjectionConfig::to_map() const {
  std::map<std::string, std::string> kv;
  kv["NUM_INJ"] = std::to_string(num_inj);
  if (inv_id) kv["INV_ID"] = std::to_string(*inv_id);
  if (call_id) kv["CALL_ID"] = std::to_string(*call_id);
  if (rank_id) kv["RANK_ID"] = std::to_string(*rank_id);
  if (param_id) kv["PARAM_ID"] = std::to_string(*param_id);
  kv["FASTFIT_SEED"] = std::to_string(seed);
  if (parallel_trials != 0) {
    kv["FASTFIT_PARALLEL_TRIALS"] = std::to_string(parallel_trials);
  }
  if (!journal.empty()) kv["FASTFIT_JOURNAL"] = journal;
  if (max_trial_retries != 2) {
    kv["FASTFIT_MAX_TRIAL_RETRIES"] = std::to_string(max_trial_retries);
  }
  if (watchdog_escalation != 4) {
    kv["FASTFIT_WATCHDOG_ESCALATION"] = std::to_string(watchdog_escalation);
  }
  if (!hang_detection) kv["FASTFIT_HANG_DETECTION"] = "0";
  if (max_leaked_threads != 8) {
    kv["FASTFIT_MAX_LEAKED_THREADS"] = std::to_string(max_leaked_threads);
  }
  if (!trace_out.empty()) kv["FASTFIT_TRACE"] = trace_out;
  if (!metrics_out.empty()) kv["FASTFIT_METRICS"] = metrics_out;
  if (progress) kv["FASTFIT_PROGRESS"] = "1";
  if (metrics_interval_ms != 0) {
    kv["FASTFIT_METRICS_INTERVAL_MS"] = std::to_string(metrics_interval_ms);
  }
  if (!shard.empty()) kv["FASTFIT_SHARD"] = shard;
  if (!passes.empty()) kv["FASTFIT_PASSES"] = passes;
  if (!fault_models.empty()) kv["FASTFIT_FAULT_MODELS"] = fault_models;
  if (repair) kv["FASTFIT_REPAIR"] = "1";
  if (isolation != "thread") kv["FASTFIT_ISOLATION"] = isolation;
  if (world_engine != "fibers") kv["FASTFIT_WORLD_ENGINE"] = world_engine;
  if (snapshots != "auto") kv["FASTFIT_SNAPSHOTS"] = snapshots;
  if (!snapshot_recording.empty()) {
    kv["FASTFIT_SNAPSHOT_RECORDING"] = snapshot_recording;
  }
  if (snapshot_cache_mb != 256) {
    kv["FASTFIT_SNAPSHOT_CACHE_MB"] = std::to_string(snapshot_cache_mb);
  }
  return kv;
}

}  // namespace fastfit

#pragma once

// Deterministic, named random-number streams.
//
// Every stochastic choice in a fault-injection campaign (which bit to flip,
// which invocation to sample, how to split the training set) draws from an
// RngStream derived from (campaign seed, stream name, stream index). Two
// campaigns with the same seed therefore reproduce bit-for-bit, regardless
// of thread scheduling, because each logical actor owns its own stream.

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace fastfit {

/// 64-bit SplitMix step; used to derive stream seeds from a master seed.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable FNV-1a hash of a string; used to fold stream names into seeds.
std::uint64_t fnv1a(std::string_view text) noexcept;

/// A self-contained deterministic random stream.
///
/// Streams are cheap to construct and intended to be created per logical
/// actor (per rank, per trial, per tree) rather than shared across threads;
/// an RngStream is not thread-safe.
class RngStream {
 public:
  /// Derives a stream from a master seed, a human-readable name, and an
  /// index (e.g. trial number). Different (name, index) pairs yield
  /// statistically independent streams.
  RngStream(std::uint64_t master_seed, std::string_view name,
            std::uint64_t index = 0);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Standard-normal draw.
  double normal();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fastfit

#pragma once

// Exporters for the telemetry recorder: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) and metrics snapshots (Prometheus text
// exposition and JSON). See docs/observability.md for format notes.

#include <string>
#include <vector>

#include "telemetry/recorder.hpp"

namespace fastfit::telemetry {

/// Renders events as a Chrome trace-event JSON document
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
/// "X" complete events for spans, "i" instants, plus process_name /
/// thread_name / thread_sort_index metadata so each track renders as a
/// labelled Perfetto thread. Lanes map to stable synthetic tids (main=1,
/// executor=100+i, rank=1000+i, monitor=3000+i, ml=4000, journal=4500).
std::string to_chrome_trace(const std::vector<Event>& events,
                            const std::vector<ThreadInfo>& threads);

/// Renders a snapshot in Prometheus text exposition format 0.0.4
/// (# HELP / # TYPE, counter/gauge families, histograms with le buckets,
/// _sum and _count).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a JSON document (counters/gauges/histograms
/// arrays plus dropped_events).
std::string to_metrics_json(const MetricsSnapshot& snapshot);

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Writes `text` to `path` (truncating), fsyncs, and returns false (with
/// no throw) if any step fails.
bool write_text_file(const std::string& path, const std::string& text);

/// Synthetic Chrome-trace tid for a lane, matching to_chrome_trace.
int trace_tid(Track track, int index) noexcept;

}  // namespace fastfit::telemetry

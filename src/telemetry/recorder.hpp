#pragma once

// Campaign telemetry: a process-wide event recorder for spans, counters,
// gauges, and latency histograms.
//
// The recorder is the measurement substrate under every "where does
// campaign time go" question: the trial lifecycle (queue wait, world
// execution, classification, watchdog confirmations), journal fsync
// batches, ML-loop rounds, and the per-rank world internals all report
// here, and the exporters (telemetry/exporters.hpp) turn the result into
// a Perfetto-loadable Chrome trace plus a Prometheus/JSON metrics
// snapshot.
//
// Cost model:
//  * Disabled (the default): every entry point is a relaxed atomic load
//    and an early return. No clock reads, no locks, no allocations —
//    tests assert the zero-allocation guarantee directly.
//  * Enabled: spans append to a thread-local buffer (one uncontended
//    mutex per thread, locked only against a concurrent drain), counters
//    and gauges are relaxed atomics, histograms take a per-instrument
//    mutex. A process-wide cap bounds buffered events; overflow drops
//    events and counts the drops (never silently).
//
// The singleton is intentionally leaked so instrumentation in thread
// exits and atexit handlers can never race its destruction.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/histogram.hpp"

namespace fastfit::telemetry {

/// Trace track an event belongs to. Tracks map to Perfetto threads: one
/// per executor worker, one per simulated rank, one for the hang monitor
/// and the live progress meter, one for the ML loop, one for journal I/O.
enum class Track : std::uint8_t {
  Main = 0,  ///< the campaign driver thread
  Executor,  ///< TrialExecutor workers (index = worker ordinal)
  Rank,      ///< simulated MPI ranks (index = world rank)
  Monitor,   ///< hang monitor verdicts, watchdog fires, progress meter
  MlLoop,    ///< injection ⇄ learning feedback loop
  Journal,   ///< durable trial journal fsync batches
};
inline constexpr std::size_t kNumTracks = 6;

const char* to_string(Track track) noexcept;

/// One recorded event: a complete span (dur_us >= 0) or an instant
/// (dur_us < 0). `name` must be a string literal (stored by pointer).
struct Event {
  const char* name = "";
  std::int64_t start_us = 0;  ///< microseconds since recorder epoch
  std::int64_t dur_us = -1;   ///< span duration; < 0 marks an instant
  Track track = Track::Main;
  int index = -1;             ///< per-track lane (worker id, rank, ...)
  std::string args;           ///< "key=value; ..." detail tag (may be empty)
};

/// Monotonic counter (Prometheus counter semantics). Additions are
/// dropped while the recorder is disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Recorder;
  Counter(std::string name, std::string help, std::string labels)
      : name_(std::move(name)), help_(std::move(help)),
        labels_(std::move(labels)) {}
  std::string name_;
  std::string help_;
  std::string labels_;  ///< rendered inside {...}, e.g. outcome="SUCCESS"
  std::atomic<std::uint64_t> value_{0};
};

/// Settable gauge (Prometheus gauge semantics).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void add(std::int64_t delta) noexcept;
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Recorder;
  Gauge(std::string name, std::string help, std::string labels)
      : name_(std::move(name)), help_(std::move(help)),
        labels_(std::move(labels)) {}
  std::string name_;
  std::string help_;
  std::string labels_;
  std::atomic<std::int64_t> value_{0};
};

/// Latency histogram over log10(microseconds), reusing stats::Histogram:
/// 5 bins per decade from 1 us to 10^7 us (10 s), clamped at the edges.
/// Exported as a Prometheus histogram with second-valued buckets.
class LatencyHistogram {
 public:
  void observe_us(double us) noexcept;

  struct Snapshot {
    /// (upper bucket edge in seconds, cumulative count); the implicit
    /// +Inf bucket equals `count`.
    std::vector<std::pair<double, std::uint64_t>> buckets;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
  };
  Snapshot snapshot() const;

 private:
  friend class Recorder;
  LatencyHistogram(std::string name, std::string help);
  std::string name_;
  std::string help_;
  mutable std::mutex mutex_;
  stats::Histogram hist_;
  double sum_us_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Point-in-time view of the metrics registry, consumed by the exporters
/// and by the live progress meter.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name, help, labels;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name, help, labels;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name, help;
    LatencyHistogram::Snapshot data;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::uint64_t dropped_events = 0;

  /// Value of the first counter series matching (name, labels), or 0.
  std::uint64_t counter_value(std::string_view name,
                              std::string_view labels = {}) const;
  /// Sum over every series of a counter family.
  std::uint64_t counter_sum(std::string_view name) const;
  /// Value of a gauge, or 0 when absent.
  std::int64_t gauge_value(std::string_view name) const;
};

/// Identity of a trace lane: its track, per-track index, and the label
/// the exporter renders as the Perfetto thread name.
struct ThreadInfo {
  Track track = Track::Main;
  int index = -1;
  std::string label;
};

class Recorder {
 public:
  /// The process-wide recorder (leaked singleton, see file comment).
  static Recorder& instance();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (process start, steady clock).
  std::int64_t now_us() const noexcept;

  /// Appends an event to the calling thread's buffer. No-op when
  /// disabled or when the process-wide event cap is reached (counted in
  /// dropped_events()).
  void record(Event event);

  /// Records an instant event (a point marker on a track).
  void instant(const char* name, Track track, int index = -1,
               std::string args = {});

  /// Binds the calling thread to a trace lane: subsequent spans recorded
  /// without an explicit track land here, and the exporter names the
  /// lane `label`. Safe to call repeatedly (e.g. executor workers of
  /// consecutive pools reusing an index).
  static void bind_thread(Track track, int index, std::string label);

  /// The calling thread's current lane (Main/-1 when never bound).
  static ThreadInfo thread_info();

  /// Finds or creates a metric. References stay valid for the process
  /// lifetime (instruments live in deques); callers cache them in
  /// function-local statics. `labels` is the Prometheus label body,
  /// e.g. `outcome="SUCCESS"`.
  Counter& counter(std::string_view name, std::string_view help,
                   std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               std::string_view labels = {});
  LatencyHistogram& latency(std::string_view name, std::string_view help);

  /// Moves every buffered event out of every thread buffer (live and
  /// retired), in start-time order.
  std::vector<Event> drain_events();

  /// Labels for every lane that bound itself via bind_thread.
  std::vector<ThreadInfo> bound_threads() const;

  MetricsSnapshot metrics() const;

  std::uint64_t dropped_events() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Test/bench support: drops all buffered events and resets every
  /// registered metric to zero (registrations and cached references stay
  /// valid). Does not change the enabled flag.
  void reset();

  /// Process-wide cap on buffered events between drains. At ~64 bytes an
  /// event this bounds telemetry memory to tens of MB; overflow drops
  /// (and counts) instead of growing without bound.
  static constexpr std::size_t kMaxBufferedEvents = 1u << 20;

 private:
  Recorder();

  struct ThreadBuffer;
  struct BufferHandle;
  static BufferHandle& handle();
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::size_t> buffered_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;  ///< live threads
  std::vector<Event> retired_;  ///< events of exited threads
  std::vector<ThreadInfo> bound_;

  mutable std::mutex metrics_mutex_;
  std::deque<std::unique_ptr<Counter>> counters_;
  std::deque<std::unique_ptr<Gauge>> gauges_;
  std::deque<std::unique_ptr<LatencyHistogram>> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// RAII span: captures the start time at construction (when the recorder
/// is enabled) and records the completed event at destruction. A span
/// constructed while disabled stays inert even if the recorder is
/// enabled later — a half-measured span would be a lie.
class ScopedSpan {
 public:
  /// Span on the calling thread's bound lane.
  explicit ScopedSpan(const char* name);
  /// Span on an explicit lane (e.g. Track::MlLoop from the main thread).
  ScopedSpan(const char* name, Track track, int index);
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Appends a "key=value" pair to the span's detail tag.
  void arg(std::string_view key, std::string_view value);

  /// Ends the span now (idempotent; the destructor calls it too).
  void finish();

  bool active() const noexcept { return active_; }

 private:
  const char* name_;
  std::int64_t start_us_ = 0;
  Track track_ = Track::Main;
  int index_ = -1;
  std::string args_;
  bool active_ = false;
};

}  // namespace fastfit::telemetry

#include "telemetry/recorder.hpp"

#include <algorithm>
#include <cmath>

namespace fastfit::telemetry {

const char* to_string(Track track) noexcept {
  switch (track) {
    case Track::Main: return "main";
    case Track::Executor: return "executor";
    case Track::Rank: return "rank";
    case Track::Monitor: return "monitor";
    case Track::MlLoop: return "ml";
    case Track::Journal: return "journal";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Metrics instruments

void Counter::add(std::uint64_t n) noexcept {
  if (!Recorder::instance().enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) noexcept {
  if (!Recorder::instance().enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) noexcept {
  if (!Recorder::instance().enabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

namespace {
// log10(us) range: 1 us .. 10 s, 5 bins per decade.
constexpr double kHistLo = 0.0;
constexpr double kHistHi = 7.0;
constexpr std::size_t kHistBins = 35;
}  // namespace

LatencyHistogram::LatencyHistogram(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help)),
      hist_(kHistLo, kHistHi, kHistBins) {}

void LatencyHistogram::observe_us(double us) noexcept {
  if (!Recorder::instance().enabled()) return;
  const double clamped = us < 1.0 ? 1.0 : us;
  std::lock_guard lock(mutex_);
  hist_.add(std::log10(clamped));
  sum_us_ += us;
  ++count_;
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mutex_);
  snap.count = count_;
  snap.sum_seconds = sum_us_ / 1e6;
  snap.buckets.reserve(hist_.bins());
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist_.bins(); ++b) {
    cumulative += hist_.count(b);
    snap.buckets.emplace_back(std::pow(10.0, hist_.bin_hi(b)) / 1e6,
                              cumulative);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot queries

std::uint64_t MetricsSnapshot::counter_value(std::string_view name,
                                             std::string_view labels) const {
  for (const auto& c : counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  return 0;
}

std::uint64_t MetricsSnapshot::counter_sum(std::string_view name) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters) {
    if (c.name == name) sum += c.value;
  }
  return sum;
}

std::int64_t MetricsSnapshot::gauge_value(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Recorder

/// Per-thread event buffer. The owning thread appends under `mutex`
/// (uncontended except against a concurrent drain); the registry keeps a
/// shared_ptr so a drain can walk buffers of threads that are mid-exit.
struct Recorder::ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
};

/// Thread-local handle: registers the buffer on first use and retires it
/// (moving any remaining events into the recorder) at thread exit, so
/// short-lived rank threads do not accumulate dead buffers.
struct Recorder::BufferHandle {
  std::shared_ptr<ThreadBuffer> buffer;
  ThreadInfo info;

  ~BufferHandle() {
    if (!buffer) return;
    auto& rec = Recorder::instance();
    std::vector<Event> leftover;
    {
      std::lock_guard lock(buffer->mutex);
      leftover = std::move(buffer->events);
    }
    std::lock_guard lock(rec.registry_mutex_);
    for (auto& event : leftover) rec.retired_.push_back(std::move(event));
    auto& buffers = rec.buffers_;
    buffers.erase(std::remove(buffers.begin(), buffers.end(), buffer),
                  buffers.end());
  }
};

Recorder::BufferHandle& Recorder::handle() {
  thread_local BufferHandle h;
  return h;
}

Recorder::Recorder() : epoch_(std::chrono::steady_clock::now()) {}

Recorder& Recorder::instance() {
  // Leaked: instrumentation may fire from thread-exit paths and atexit
  // handlers after static destruction would have run.
  static Recorder* recorder = new Recorder();
  return *recorder;
}

std::int64_t Recorder::now_us() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Recorder::ThreadBuffer& Recorder::local_buffer() {
  if (!handle().buffer) {
    handle().buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(registry_mutex_);
    buffers_.push_back(handle().buffer);
  }
  return *handle().buffer;
}

void Recorder::record(Event event) {
  if (!enabled()) return;
  if (buffered_.fetch_add(1, std::memory_order_relaxed) >=
      kMaxBufferedEvents) {
    buffered_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& buffer = local_buffer();
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Recorder::instant(const char* name, Track track, int index,
                       std::string args) {
  if (!enabled()) return;
  Event event;
  event.name = name;
  event.start_us = now_us();
  event.dur_us = -1;
  event.track = track;
  event.index = index;
  event.args = std::move(args);
  record(std::move(event));
}

void Recorder::bind_thread(Track track, int index, std::string label) {
  handle().info = ThreadInfo{track, index, label};
  auto& rec = instance();
  std::lock_guard lock(rec.registry_mutex_);
  for (auto& known : rec.bound_) {
    if (known.track == track && known.index == index) {
      known.label = std::move(label);
      return;
    }
  }
  rec.bound_.push_back(ThreadInfo{track, index, std::move(label)});
}

ThreadInfo Recorder::thread_info() { return handle().info; }

Counter& Recorder::counter(std::string_view name, std::string_view help,
                           std::string_view labels) {
  std::string key = std::string(name) + '{' + std::string(labels) + '}';
  std::lock_guard lock(metrics_mutex_);
  if (auto it = counter_index_.find(key); it != counter_index_.end()) {
    return *counters_[it->second];
  }
  counters_.emplace_back(new Counter(std::string(name), std::string(help),
                                     std::string(labels)));
  counter_index_.emplace(std::move(key), counters_.size() - 1);
  return *counters_.back();
}

Gauge& Recorder::gauge(std::string_view name, std::string_view help,
                       std::string_view labels) {
  std::string key = std::string(name) + '{' + std::string(labels) + '}';
  std::lock_guard lock(metrics_mutex_);
  if (auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return *gauges_[it->second];
  }
  gauges_.emplace_back(new Gauge(std::string(name), std::string(help),
                                 std::string(labels)));
  gauge_index_.emplace(std::move(key), gauges_.size() - 1);
  return *gauges_.back();
}

LatencyHistogram& Recorder::latency(std::string_view name,
                                    std::string_view help) {
  std::string key(name);
  std::lock_guard lock(metrics_mutex_);
  if (auto it = histogram_index_.find(key); it != histogram_index_.end()) {
    return *histograms_[it->second];
  }
  histograms_.emplace_back(
      new LatencyHistogram(std::string(name), std::string(help)));
  histogram_index_.emplace(std::move(key), histograms_.size() - 1);
  return *histograms_.back();
}

std::vector<Event> Recorder::drain_events() {
  std::vector<Event> events;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(registry_mutex_);
    events = std::move(retired_);
    retired_.clear();
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    for (auto& event : buffer->events) events.push_back(std::move(event));
    buffer->events.clear();
  }
  buffered_.fetch_sub(std::min(events.size(),
                               buffered_.load(std::memory_order_relaxed)),
                      std::memory_order_relaxed);
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_us < b.start_us;
                   });
  return events;
}

std::vector<ThreadInfo> Recorder::bound_threads() const {
  std::lock_guard lock(registry_mutex_);
  return bound_;
}

MetricsSnapshot Recorder::metrics() const {
  MetricsSnapshot snap;
  std::lock_guard lock(metrics_mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    snap.counters.push_back({c->name_, c->help_, c->labels_, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauges.push_back({g->name_, g->help_, g->labels_, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    snap.histograms.push_back({h->name_, h->help_, h->snapshot()});
  }
  // Deterministic exposition order regardless of registration races.
  const auto by_series = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_series);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_series);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.dropped_events = dropped_events();
  return snap;
}

void Recorder::reset() {
  (void)drain_events();
  {
    std::lock_guard lock(registry_mutex_);
    retired_.clear();
  }
  buffered_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  std::lock_guard lock(metrics_mutex_);
  for (auto& c : counters_) c->value_.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g->value_.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) {
    std::lock_guard hist_lock(h->mutex_);
    h->hist_ = stats::Histogram(kHistLo, kHistHi, kHistBins);
    h->sum_us_ = 0.0;
    h->count_ = 0;
  }
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  auto& rec = Recorder::instance();
  if (!rec.enabled()) return;
  const auto info = Recorder::thread_info();
  track_ = info.track;
  index_ = info.index;
  start_us_ = rec.now_us();
  active_ = true;
}

ScopedSpan::ScopedSpan(const char* name, Track track, int index)
    : name_(name), track_(track), index_(index) {
  auto& rec = Recorder::instance();
  if (!rec.enabled()) return;
  start_us_ = rec.now_us();
  active_ = true;
}

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  if (!args_.empty()) args_ += "; ";
  args_.append(key);
  args_ += '=';
  args_.append(value);
}

void ScopedSpan::finish() {
  if (!active_) return;
  active_ = false;
  auto& rec = Recorder::instance();
  Event event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = rec.now_us() - start_us_;
  event.track = track_;
  event.index = index_;
  event.args = std::move(args_);
  rec.record(std::move(event));
}

}  // namespace fastfit::telemetry

#include "telemetry/exporters.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace fastfit::telemetry {

namespace {

// Prometheus requires a fixed-locale float rendering; %.9g round-trips
// every value we emit (bucket edges, sums in seconds).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_args_json(std::string& out, const std::string& args) {
  out += "{\"detail\":\"";
  out += json_escape(args);
  out += "\"}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int trace_tid(Track track, int index) noexcept {
  const int lane = index < 0 ? 0 : index;
  switch (track) {
    case Track::Main: return 1;
    case Track::Executor: return 100 + lane;
    case Track::Rank: return 1000 + lane;
    case Track::Monitor: return 3000 + lane;
    case Track::MlLoop: return 4000 + lane;
    case Track::Journal: return 4500 + lane;
  }
  return 1;
}

std::string to_chrome_trace(const std::vector<Event>& events,
                            const std::vector<ThreadInfo>& threads) {
  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  sep();
  out += R"({"name":"process_name","ph":"M","pid":1,"tid":1,)"
         R"("args":{"name":"fastfit campaign"}})";

  // One thread_name entry per lane: every explicitly bound thread, plus
  // any lane that only appears in events (e.g. rank lanes recorded from
  // short-lived threads that exited before binding was collected).
  std::vector<ThreadInfo> lanes = threads;
  const auto has_lane = [&](Track track, int index) {
    for (const auto& lane : lanes) {
      if (lane.track == track && lane.index == index) return true;
    }
    return false;
  };
  for (const auto& event : events) {
    if (!has_lane(event.track, event.index)) {
      std::string label = to_string(event.track);
      if (event.index >= 0) label += '-' + std::to_string(event.index);
      lanes.push_back(ThreadInfo{event.track, event.index, std::move(label)});
    }
  }
  if (!has_lane(Track::Main, -1)) {
    lanes.push_back(ThreadInfo{Track::Main, -1, "campaign-main"});
  }
  for (const auto& lane : lanes) {
    const int tid = trace_tid(lane.track, lane.index);
    char buf[160];
    sep();
    std::snprintf(buf, sizeof(buf),
                  R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                  R"("args":{"name":"%s"}})",
                  tid, json_escape(lane.label).c_str());
    out += buf;
    sep();
    std::snprintf(buf, sizeof(buf),
                  R"({"name":"thread_sort_index","ph":"M","pid":1,)"
                  R"("tid":%d,"args":{"sort_index":%d}})",
                  tid, tid);
    out += buf;
  }

  for (const auto& event : events) {
    const int tid = trace_tid(event.track, event.index);
    char buf[192];
    sep();
    if (event.dur_us >= 0) {
      std::snprintf(buf, sizeof(buf),
                    R"({"name":"%s","ph":"X","pid":1,"tid":%d,)"
                    R"("ts":%)" PRId64 R"(,"dur":%)" PRId64,
                    json_escape(event.name).c_str(), tid, event.start_us,
                    event.dur_us);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf),
                    R"({"name":"%s","ph":"i","s":"t","pid":1,"tid":%d,)"
                    R"("ts":%)" PRId64,
                    json_escape(event.name).c_str(), tid, event.start_us);
      out += buf;
    }
    if (!event.args.empty()) {
      out += ",\"args\":";
      append_args_json(out, event.args);
    }
    out += '}';
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  const auto series = [](const std::string& name, const std::string& labels) {
    return labels.empty() ? name : name + '{' + labels + '}';
  };

  std::string last_family;
  for (const auto& c : snapshot.counters) {
    if (c.name != last_family) {
      out += "# HELP " + c.name + ' ' + c.help + '\n';
      out += "# TYPE " + c.name + " counter\n";
      last_family = c.name;
    }
    out += series(c.name, c.labels) + ' ' + std::to_string(c.value) + '\n';
  }
  last_family.clear();
  for (const auto& g : snapshot.gauges) {
    if (g.name != last_family) {
      out += "# HELP " + g.name + ' ' + g.help + '\n';
      out += "# TYPE " + g.name + " gauge\n";
      last_family = g.name;
    }
    out += series(g.name, g.labels) + ' ' + std::to_string(g.value) + '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out += "# HELP " + h.name + ' ' + h.help + '\n';
    out += "# TYPE " + h.name + " histogram\n";
    for (const auto& [le, cumulative] : h.data.buckets) {
      out += h.name + "_bucket{le=\"" + format_double(le) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.data.count) +
           '\n';
    out += h.name + "_sum " + format_double(h.data.sum_seconds) + '\n';
    out += h.name + "_count " + std::to_string(h.data.count) + '\n';
  }
  out += "# HELP fastfit_telemetry_dropped_events_total "
         "Events dropped at the recorder buffer cap\n";
  out += "# TYPE fastfit_telemetry_dropped_events_total counter\n";
  out += "fastfit_telemetry_dropped_events_total " +
         std::to_string(snapshot.dropped_events) + '\n';
  return out;
}

std::string to_metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [\n";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += "    {\"name\":\"" + json_escape(c.name) + "\",\"labels\":\"" +
           json_escape(c.labels) + "\",\"value\":" + std::to_string(c.value) +
           '}';
    if (i + 1 < snapshot.counters.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"gauges\": [\n";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += "    {\"name\":\"" + json_escape(g.name) + "\",\"labels\":\"" +
           json_escape(g.labels) + "\",\"value\":" + std::to_string(g.value) +
           '}';
    if (i + 1 < snapshot.gauges.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"histograms\": [\n";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += "    {\"name\":\"" + json_escape(h.name) +
           "\",\"count\":" + std::to_string(h.data.count) +
           ",\"sum_seconds\":" + format_double(h.data.sum_seconds) +
           ",\"buckets\":[";
    for (std::size_t b = 0; b < h.data.buckets.size(); ++b) {
      const auto& [le, cumulative] = h.data.buckets[b];
      if (b) out += ',';
      out += "{\"le\":" + format_double(le) +
             ",\"count\":" + std::to_string(cumulative) + '}';
    }
    out += "]}";
    if (i + 1 < snapshot.histograms.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"dropped_events\": " +
         std::to_string(snapshot.dropped_events) + "\n}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && flushed && closed;
}

}  // namespace fastfit::telemetry

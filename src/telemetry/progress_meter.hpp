#pragma once

// Live campaign progress: a monitor thread that renders a single-line
// report (trials/sec, outcome mix, ETA, health deltas) from the metrics
// registry, and can optionally re-export the metrics snapshot at a
// periodic interval for scrape-style consumption.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/recorder.hpp"

namespace fastfit::telemetry {

class ProgressMeter {
 public:
  struct Options {
    /// Total trials the campaign plans to execute (for % and ETA); 0
    /// renders progress without an ETA.
    std::uint64_t expected_trials = 0;
    /// Refresh period of the live line.
    std::chrono::milliseconds interval{1000};
    /// Print the live line to stderr (carriage-return rewrite).
    bool live_line = true;
    /// When non-empty, rewrite this metrics file every
    /// `metrics_interval` (0 disables periodic export). Format follows
    /// the path extension: ".json" → JSON, anything else → Prometheus.
    std::string metrics_path;
    std::chrono::milliseconds metrics_interval{0};
  };

  /// Starts the monitor thread (binds it to Track::Monitor lane 1).
  explicit ProgressMeter(Options opts);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Stops the monitor thread; with live_line, erases the in-place line
  /// and prints a final summary line. Idempotent.
  void stop();

  /// Renders one progress line from a snapshot (exposed for tests).
  /// `elapsed_s` is campaign wall time, `expected` the planned trial
  /// count (0 = unknown).
  static std::string render_line(const MetricsSnapshot& snapshot,
                                 std::uint64_t expected, double elapsed_s);

 private:
  void run();
  void export_metrics();

  Options opts_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace fastfit::telemetry

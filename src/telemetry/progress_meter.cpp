#include "telemetry/progress_meter.hpp"

#include <cstdio>

#include "telemetry/exporters.hpp"

namespace fastfit::telemetry {

namespace {

/// Pulls the value out of a `outcome="X"` label body (empty if absent).
std::string outcome_of(const std::string& labels) {
  const std::string key = "outcome=\"";
  const auto at = labels.find(key);
  if (at == std::string::npos) return {};
  const auto begin = at + key.size();
  const auto end = labels.find('"', begin);
  if (end == std::string::npos) return {};
  return labels.substr(begin, end - begin);
}

}  // namespace

ProgressMeter::ProgressMeter(Options opts)
    : opts_(std::move(opts)), start_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] {
    Recorder::bind_thread(Track::Monitor, 1, "progress-meter");
    run();
  });
}

ProgressMeter::~ProgressMeter() { stop(); }

void ProgressMeter::stop() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  export_metrics();
  if (opts_.live_line) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string line = render_line(Recorder::instance().metrics(),
                                         opts_.expected_trials, elapsed);
    std::fprintf(stderr, "\r\033[K%s\n", line.c_str());
    std::fflush(stderr);
  }
}

void ProgressMeter::run() {
  auto next_metrics = start_ + opts_.metrics_interval;
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, opts_.interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    {
      ScopedSpan span("progress-tick", Track::Monitor, 1);
      const auto now = std::chrono::steady_clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - start_).count();
      if (opts_.live_line) {
        const std::string line = render_line(Recorder::instance().metrics(),
                                             opts_.expected_trials, elapsed);
        std::fprintf(stderr, "\r\033[K%s", line.c_str());
        std::fflush(stderr);
      }
      if (!opts_.metrics_path.empty() &&
          opts_.metrics_interval.count() > 0 && now >= next_metrics) {
        export_metrics();
        next_metrics = now + opts_.metrics_interval;
      }
    }
    lock.lock();
  }
}

void ProgressMeter::export_metrics() {
  if (opts_.metrics_path.empty()) return;
  const auto snapshot = Recorder::instance().metrics();
  const bool json = opts_.metrics_path.size() >= 5 &&
                    opts_.metrics_path.rfind(".json") ==
                        opts_.metrics_path.size() - 5;
  write_text_file(opts_.metrics_path,
                  json ? to_metrics_json(snapshot) : to_prometheus(snapshot));
}

std::string ProgressMeter::render_line(const MetricsSnapshot& snapshot,
                                       std::uint64_t expected,
                                       double elapsed_s) {
  const std::uint64_t done = snapshot.counter_sum("fastfit_trials_total");
  const double rate = elapsed_s > 0.0 ? double(done) / elapsed_s : 0.0;

  char head[160];
  if (expected > 0) {
    const double pct = expected ? 100.0 * double(done) / double(expected) : 0;
    const std::uint64_t left = done < expected ? expected - done : 0;
    const double eta = rate > 0.0 ? double(left) / rate : 0.0;
    std::snprintf(head, sizeof(head),
                  "[fastfit] %llu/%llu trials (%.1f%%) | %.1f trials/s | "
                  "ETA %.0fs",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(expected), pct, rate, eta);
  } else {
    std::snprintf(head, sizeof(head),
                  "[fastfit] %llu trials | %.1f trials/s",
                  static_cast<unsigned long long>(done), rate);
  }

  std::string line = head;
  std::string mix;
  for (const auto& c : snapshot.counters) {
    if (c.name != "fastfit_trials_total" || c.value == 0) continue;
    const std::string outcome = outcome_of(c.labels);
    if (outcome.empty()) continue;
    if (!mix.empty()) mix += ' ';
    mix += outcome + '=' + std::to_string(c.value);
  }
  if (!mix.empty()) line += " | " + mix;

  char health[160];
  std::snprintf(
      health, sizeof(health),
      " | retries=%llu quarantined=%llu watchdog=%llu leaked=%lld",
      static_cast<unsigned long long>(
          snapshot.counter_sum("fastfit_trial_retries_total")),
      static_cast<unsigned long long>(
          snapshot.counter_sum("fastfit_quarantined_points_total")),
      static_cast<unsigned long long>(
          snapshot.counter_sum("fastfit_watchdog_fires_total")),
      static_cast<long long>(snapshot.gauge_value("fastfit_leaked_threads")));
  line += health;
  if (snapshot.dropped_events > 0) {
    line += " dropped=" + std::to_string(snapshot.dropped_events);
  }
  return line;
}

}  // namespace fastfit::telemetry

// Sensitivity study: the full three-phase FastFIT pipeline on a bundled
// workload — profiling, structural pruning, the injection/learning loop,
// and a complete report (communication profile, pruning statistics,
// per-collective response distributions, error-rate levels, feature
// correlations).
//
// Usage:  sensitivity_study [IS|FT|MG|LU|miniMD] [nranks] [trials]

#include <cstdio>
#include <cstdlib>

#include "apps/registry.hpp"
#include "core/fastfit.hpp"
#include "core/report.hpp"
#include "profile/queries.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "miniMD";
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 16;
  const auto trials =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 12u;

  const auto workload = apps::make_workload(name);
  core::FastFitOptions options;
  options.campaign.nranks = nranks;
  options.campaign.trials_per_point = trials;
  options.use_ml = true;
  options.ml.accuracy_threshold = 0.65;

  std::printf("=== FastFIT sensitivity study: %s (%d ranks, %u trials per "
              "point) ===\n\n",
              name.c_str(), nranks, trials);

  core::FastFit study(*workload, options);
  const auto result = study.run();

  // --- communication profile (mpiP-like) --------------------------------
  std::printf("%s\n", profile::mpip_report(study.campaign().profiler()).c_str());

  // --- pruning statistics (Table III row) --------------------------------
  const auto& stats = result.stats;
  std::printf("pruning: %llu points -> %llu (semantic, %s) -> %llu "
              "(context, %s); ML predicted %s of the remainder; total "
              "reduction %s\n\n",
              static_cast<unsigned long long>(stats.total_points),
              static_cast<unsigned long long>(stats.after_semantic),
              percent(stats.semantic_reduction()).c_str(),
              static_cast<unsigned long long>(stats.after_context),
              percent(stats.context_reduction()).c_str(),
              percent(result.ml_reduction).c_str(),
              percent(result.total_reduction()).c_str());

  // --- response distributions per collective -----------------------------
  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      outcome_rows;
  for (auto kind : core::kinds_present(result.measured)) {
    outcome_rows.emplace_back(
        mpi::to_string(kind),
        core::outcome_distribution(result.measured, kind));
  }
  outcome_rows.emplace_back("ALL",
                            core::outcome_distribution(result.measured));
  std::printf("response by error type (measured points):\n%s\n",
              core::render_outcome_table(outcome_rows).c_str());

  // --- error-rate levels ---------------------------------------------------
  const auto thresholds = stats::skewed_low_med_high();
  std::vector<std::pair<std::string, std::vector<double>>> level_rows;
  for (auto kind : core::kinds_present(result.measured)) {
    level_rows.emplace_back(
        mpi::to_string(kind),
        core::level_distribution(result.measured, kind, thresholds));
  }
  std::printf("error-rate levels (low <15%%, med 15-85%%, high >85%%):\n%s\n",
              core::render_level_table(level_rows, {"low", "med", "high"})
                  .c_str());

  // --- feature correlations (Table IV style, buffer faults) --------------
  std::vector<core::PointResult> buffer_points;
  for (const auto& r : result.measured) {
    if (r.point.param == mpi::Param::SendBuf ||
        r.point.param == mpi::Param::RecvBuf) {
      buffer_points.push_back(r);
    }
  }
  if (buffer_points.size() >= 4) {
    std::printf("feature/error-rate correlations (Eq. 1; 0.5 = no effect):\n");
    for (const auto& [feature, value] :
         core::feature_correlations(buffer_points,
                                    stats::even_thresholds(4))) {
      std::printf("  %-14s %.2f\n", feature.c_str(), value);
    }
  }

  // --- most sensitive points ----------------------------------------------
  auto sorted = result.measured;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::PointResult& a, const core::PointResult& b) {
              return a.error_rate() > b.error_rate();
            });
  std::printf("\nmost sensitive injection points:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    const auto& r = sorted[i];
    std::printf("  %-22s %-10s at %-18s error rate %s (dominant: %s)\n",
                mpi::to_string(r.point.kind), to_string(r.point.param),
                r.point.site_location.c_str(),
                percent(r.error_rate()).c_str(),
                to_string(r.dominant()));
  }
  return 0;
}

// Quickstart: inject one bit flip into a collective and classify the
// application's response.
//
// This is the smallest end-to-end use of the library:
//   1. write an SPMD workload against the MiniMPI facade,
//   2. profile it once (FastFIT's phase 1),
//   3. pick an injection point and run faulted trials,
//   4. read the Table-I outcome.
//
// The injection campaign honours the paper's Table II environment
// variables: try
//   NUM_INJ=50 PARAM_ID=4 ./quickstart
// to run 50 trials against parameter 4 (the reduction op).

#include <cstdio>

#include "apps/common.hpp"
#include "apps/workload.hpp"
#include "core/study.hpp"
#include "support/config.hpp"

using namespace fastfit;

namespace {

/// A toy workload: every rank contributes to a running global sum and
/// checks a simple invariant (its own error handling).
class GlobalSum final : public apps::Workload {
 public:
  std::string name() const override { return "global-sum"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    auto& mpi = ctx.mpi;
    ctx.trace.set_phase(trace::ExecPhase::Compute);
    std::int64_t total = 0;
    for (int step = 0; step < 5; ++step) {
      trace::FunctionScope scope(ctx.trace, "accumulate");
      total += mpi.allreduce_value<std::int64_t>(mpi.rank() + 1, mpi::kSum);
      {
        // The workload's own sanity check -> APP_DETECTED when violated.
        trace::ErrorHandlingScope errhal(ctx.trace);
        apps::app_check(total >= 0, "global sum went negative");
      }
    }
    return static_cast<std::uint64_t>(total);
  }
};

}  // namespace

int main() {
  // Table II configuration from the environment (defaults otherwise).
  const auto config = InjectionConfig::from_environment();

  GlobalSum workload;
  core::CampaignOptions options;
  options.nranks = 8;
  options.trials_per_point = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config.num_inj, 1000));
  options.seed = config.seed;

  // The study pipeline owns engine construction; profile() is the golden
  // run + profiling run + pruning, after which the campaign engine is
  // ready for hand-driven measurement.
  core::StudyDriver driver(workload, {.campaign = options, .use_ml = false});
  driver.profile();
  auto& campaign = driver.campaign();

  const auto& points = campaign.enumeration().points;
  std::printf("profiling found %zu injection points after pruning "
              "(%llu before)\n",
              points.size(),
              static_cast<unsigned long long>(
                  campaign.stats().total_points));

  // Choose a point: the PARAM_ID-th parameter of the first site, or the
  // first point if unset.
  core::InjectionPoint chosen = points.front();
  if (config.param_id) {
    for (const auto& point : points) {
      if (static_cast<std::uint8_t>(point.param) == *config.param_id) {
        chosen = point;
        break;
      }
    }
  }
  if (config.rank_id) chosen.rank = static_cast<int>(*config.rank_id);
  if (config.inv_id) chosen.invocation = *config.inv_id;

  std::printf("injecting %u single-bit faults into %s of %s at %s "
              "(rank %d, invocation %llu)\n",
              options.trials_per_point, to_string(chosen.param),
              mpi::to_string(chosen.kind), chosen.site_location.c_str(),
              chosen.rank,
              static_cast<unsigned long long>(chosen.invocation));

  const auto result = campaign.measure(chosen);
  std::printf("\nresponse distribution (paper Table I taxonomy):\n");
  for (std::size_t o = 0; o < inject::kNumOutcomes; ++o) {
    std::printf("  %-13s %u/%u\n", inject::outcome_names()[o].c_str(),
                result.counts[o], result.trials);
  }
  std::printf("error rate: %.1f%%\n", result.error_rate() * 100.0);
  return 0;
}

// Custom workload: how a user brings their own application to FastFIT.
//
// The example implements a 1-D heat-diffusion stencil with halo exchange
// and an allreduce-based convergence test, annotates it (function scopes,
// phases, error handling), and runs a compact sensitivity study. This is
// the template to follow for any new code: the only requirements are
// (a) allocate MPI-visible buffers through the rank's MemoryRegistry,
// (b) annotate structure through the trace::RankContext, and
// (c) return a result digest from run_rank.

#include <cmath>
#include <cstdio>

#include "apps/common.hpp"
#include "apps/workload.hpp"
#include "core/fastfit.hpp"
#include "core/report.hpp"
#include "support/format.hpp"

using namespace fastfit;

namespace {

class HeatDiffusion final : public apps::Workload {
 public:
  std::string name() const override { return "heat-diffusion"; }

  std::uint64_t run_rank(apps::AppContext& ctx) const override {
    auto& mpi = ctx.mpi;
    auto& tr = ctx.trace;
    const int n = mpi.size();
    const int me = mpi.rank();
    constexpr int kCellsPerRank = 32;
    constexpr int kSteps = 12;

    // Init: agree on the diffusion coefficient.
    tr.set_phase(trace::ExecPhase::Init);
    double kappa = 0.0;
    {
      trace::FunctionScope scope(tr, "setup");
      kappa = mpi.bcast_value(me == 0 ? 0.4 : 0.0, 0);
      trace::ErrorHandlingScope errhal(tr);
      apps::app_check(kappa > 0.0 && kappa < 0.5,
                      "heat: unstable diffusion coefficient");
    }

    // Input: a hot spot in the middle of the domain.
    tr.set_phase(trace::ExecPhase::Input);
    std::vector<double> temp(kCellsPerRank + 2, 0.0);
    if (me == n / 2) temp[kCellsPerRank / 2] = 100.0;
    mpi::ScopedRegistration keep(mpi.registry(), temp.data(),
                                 temp.size() * sizeof(double));

    // Compute: explicit time stepping with halo exchange.
    tr.set_phase(trace::ExecPhase::Compute);
    double total_heat = 0.0;
    for (int step = 0; step < kSteps; ++step) {
      trace::FunctionScope scope(tr, "diffuse_step");
      mpi.check_deadline();
      {
        trace::FunctionScope halo(tr, "halo_exchange");
        if (me + 1 < n) mpi.send(&temp[kCellsPerRank], 1, mpi::kDouble, me + 1, 1);
        if (me > 0) {
          mpi.send(&temp[1], 1, mpi::kDouble, me - 1, 1);
          mpi.recv(&temp[0], 1, mpi::kDouble, me - 1, 1);
        } else {
          temp[0] = temp[1];
        }
        if (me + 1 < n) {
          mpi.recv(&temp[kCellsPerRank + 1], 1, mpi::kDouble, me + 1, 1);
        } else {
          temp[kCellsPerRank + 1] = temp[kCellsPerRank];
        }
      }
      // Update in place via a scratch copy: `temp`'s storage stays put
      // because it is registered with the MemoryRegistry.
      std::vector<double> prev(temp);
      for (int i = 1; i <= kCellsPerRank; ++i) {
        temp[i] = prev[i] + kappa * (prev[i - 1] - 2 * prev[i] + prev[i + 1]);
      }

      // Conservation check: total heat is invariant under diffusion.
      {
        trace::FunctionScope check(tr, "conservation_check");
        double local = 0.0;
        for (int i = 1; i <= kCellsPerRank; ++i) local += temp[i];
        total_heat = mpi.allreduce_value(local, mpi::kSum);
        trace::ErrorHandlingScope errhal(tr);
        apps::app_check_finite(total_heat, "heat: total heat");
        apps::app_check(std::abs(total_heat - 100.0) < 1e-6,
                        "heat: conservation violated");
      }
    }

    // End: digest of the final field.
    tr.set_phase(trace::ExecPhase::End);
    std::vector<double> observables(temp.begin() + 1,
                                    temp.end() - 1);
    observables.push_back(total_heat);
    return apps::digest_doubles(observables, 9);
  }
};

}  // namespace

int main() {
  HeatDiffusion workload;
  core::FastFitOptions options;
  options.campaign.nranks = 8;
  options.campaign.trials_per_point = 12;
  options.use_ml = false;  // small space: measure everything

  std::printf("=== FastFIT on a custom workload: %s ===\n\n",
              workload.name().c_str());
  core::FastFit study(workload, options);
  const auto result = study.run();

  std::printf("pruning: %llu -> %llu -> %llu points\n\n",
              static_cast<unsigned long long>(result.stats.total_points),
              static_cast<unsigned long long>(result.stats.after_semantic),
              static_cast<unsigned long long>(result.stats.after_context));

  std::vector<std::pair<std::string,
                        std::array<double, inject::kNumOutcomes>>>
      rows;
  for (auto param : core::params_present(result.measured)) {
    rows.emplace_back(
        to_string(param),
        core::outcome_distribution(result.measured, std::nullopt, param));
  }
  std::printf("response by injected parameter:\n%s\n",
              core::render_outcome_table(rows).c_str());
  std::printf("note how the conservation check turns silent data corruption "
              "into APP_DETECTED — that is the ErrHal effect the paper "
              "quantifies in Table IV.\n");
  return 0;
}

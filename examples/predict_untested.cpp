// ML-driven prediction: run the injection/learning feedback loop, stop at
// the accuracy threshold, and use the model for the untested points —
// printing what the paper's Figs 4-6 are about: the learned tree, the
// feature importances, and the predicted sensitivity of points that were
// never injected.
//
// Usage:  predict_untested [workload] [accuracy-threshold]

#include <cstdio>
#include <cstdlib>

#include "apps/registry.hpp"
#include "core/fastfit.hpp"
#include "stats/levels.hpp"
#include "support/format.hpp"

using namespace fastfit;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "miniMD";
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.65;

  const auto workload = apps::make_workload(name);
  core::StudyOptions study;
  study.campaign = core::CampaignOptions{
      .nranks = 16,
      .seed = 0x5eedULL,
      .trials_per_point = 10,
      .watchdog = std::nullopt,
  };
  // Drive the ML loop by hand below (to print the model) instead of
  // letting run() own it.
  study.use_ml = false;
  core::StudyDriver driver(*workload, std::move(study));
  driver.profile();
  auto& campaign = driver.campaign();

  core::MlLoopConfig config;
  config.mode = core::LabelMode::ErrorRateLevel;
  config.thresholds = stats::even_thresholds(4);
  config.accuracy_threshold = threshold;

  std::printf("=== ML-driven fault injection on %s (threshold %s) ===\n\n",
              name.c_str(), percent(threshold, 0).c_str());
  auto result =
      core::run_ml_loop(campaign, campaign.enumeration().points, config);

  std::printf("measured %zu points in %zu rounds; verification accuracy "
              "%s (%s)\n",
              result.measured.size(), result.rounds,
              percent(result.final_accuracy).c_str(),
              result.threshold_reached ? "threshold reached"
                                       : "ran out of points");
  std::printf("predicted %zu untested points (ML reduction %s)\n\n",
              result.predicted.size(),
              percent(result.ml_reduction()).c_str());

  if (result.model) {
    const auto names = stats::level_names(4);
    std::printf("one tree of the forest (cf. paper Fig 4):\n%s\n",
                result.model->render_tree(0, names).c_str());

    const auto importance = result.model->feature_importance();
    std::printf("feature importance:\n");
    for (std::size_t f = 0; f < ml::kNumFeatures; ++f) {
      std::printf("  %-12s %s\n",
                  to_string(static_cast<ml::Feature>(f)),
                  percent(importance[f]).c_str());
    }

    std::printf("\npredicted sensitivity of untested points (first 10):\n");
    for (std::size_t i = 0;
         i < std::min<std::size_t>(10, result.predicted.size()); ++i) {
      const auto& [point, label] = result.predicted[i];
      std::printf("  %-22s %-10s at %-18s -> %s\n",
                  mpi::to_string(point.kind), to_string(point.param),
                  point.site_location.c_str(), names[label].c_str());
    }
    std::printf("\na resilience designer would now protect the points "
                "predicted med-high/high without ever injecting them — the "
                "paper's \"decision making\" use case.\n");
  }
  return 0;
}

// Staged-pipeline parity: the runtime-selectable pruning chain must
// reproduce the pre-pipeline enumerate_points() byte for byte. The
// reference below is an inlined copy of the retired monolithic
// enumerate_impl (one loop nest doing semantic + context pruning in
// place), kept here as the oracle the composable passes are checked
// against on every registered workload.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "apps/registry.hpp"
#include "core/enumerate.hpp"
#include "core/pipeline.hpp"
#include "profile/queries.hpp"

namespace fastfit::core {
namespace {

using namespace std::chrono_literals;

// --- The pre-refactor oracle ------------------------------------------

std::string ref_short_location(const profile::SiteProfile& site) {
  std::string name = site.file;
  if (const auto slash = name.rfind('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return name + ":" + std::to_string(site.line);
}

Enumeration reference_enumerate(const profile::Profiler& profiler,
                                bool context_pruning) {
  Enumeration out;
  out.stats.nranks = profiler.nranks();
  for (int r = 0; r < profiler.nranks(); ++r) {
    for (const auto& [site_id, site] : profiler.rank(r).sites) {
      out.stats.total_points +=
          site.invocations.size() * mpi::injectable_params(site.kind).size();
    }
  }
  out.classes = trace::equivalence_classes(profiler.contexts());
  out.stats.equivalence_classes = out.classes.size();
  for (const auto& cls : out.classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).sites) {
      out.stats.after_semantic +=
          site.invocations.size() * mpi::injectable_params(site.kind).size();
    }
  }
  for (const auto& cls : out.classes) {
    const int rep = cls.representative();
    for (const auto& [site_id, site] : profiler.rank(rep).sites) {
      const auto representatives = context_pruning
                                       ? profile::stack_representatives(site)
                                       : site.invocations;
      const auto params = mpi::injectable_params(site.kind);
      const auto n_inv = profile::n_invocations(site);
      const auto depth = profile::mean_stack_depth(site);
      const auto n_stacks = profile::n_distinct_stacks(site);
      for (const auto& inv : representatives) {
        for (mpi::Param param : params) {
          InjectionPoint point;
          point.site_id = site_id;
          point.kind = site.kind;
          point.site_location = ref_short_location(site);
          point.rank = rep;
          point.invocation = inv.invocation;
          point.param = param;
          point.stack = inv.stack;
          point.phase = inv.phase;
          point.errhal = inv.errhal;
          point.n_inv = n_inv;
          point.stack_depth = depth;
          point.n_diff_stack = n_stacks;
          out.points.push_back(point);
        }
      }
    }
  }
  out.stats.after_context = out.points.size();
  return out;
}

// --- Comparison helpers -----------------------------------------------

std::string point_repr(const InjectionPoint& p) {
  std::ostringstream os;
  os << p.site_id << '|' << static_cast<int>(p.kind) << '|'
     << p.site_location << '|' << p.rank << '|' << p.invocation << '|'
     << static_cast<int>(p.param) << '|' << p.stack << '|'
     << static_cast<int>(p.phase) << '|' << p.errhal << '|' << p.n_inv << '|'
     << p.stack_depth << '|' << p.n_diff_stack;
  return os.str();
}

void expect_identical(const Enumeration& got, const Enumeration& want,
                      const std::string& label) {
  EXPECT_EQ(got.stats, want.stats) << label;
  ASSERT_EQ(got.classes.size(), want.classes.size()) << label;
  for (std::size_t i = 0; i < got.classes.size(); ++i) {
    EXPECT_EQ(got.classes[i].ranks, want.classes[i].ranks)
        << label << " class " << i;
  }
  ASSERT_EQ(got.points.size(), want.points.size()) << label;
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(point_repr(got.points[i]), point_repr(want.points[i]))
        << label << " point " << i;
  }
}

struct ProfiledRun {
  trace::ContextRegistry contexts;
  profile::Profiler profiler;
  explicit ProfiledRun(const std::string& name, int nranks = 8)
      : contexts(nranks), profiler(contexts) {
    const auto workload = apps::make_workload(name);
    mpi::WorldOptions opts;
    opts.nranks = nranks;
    opts.watchdog = 20000ms;
    const auto job = apps::run_job(*workload, opts, &profiler, contexts);
    EXPECT_TRUE(job.world.clean()) << name;
  }
};

// --- The parity pins ---------------------------------------------------

TEST(Pipeline, DefaultChainMatchesPreRefactorEnumerationOnAllWorkloads) {
  for (const auto& name : apps::workload_names()) {
    ProfiledRun run(name);
    const auto want = reference_enumerate(run.profiler, true);
    expect_identical(enumerate_points(run.profiler), want,
                     name + " (enumerate_points)");
    const std::string chain[] = {"semantic", "context"};
    expect_identical(enumerate_with_passes(run.profiler, chain), want,
                     name + " (explicit chain)");
  }
}

TEST(Pipeline, SemanticOnlyEqualsChainWithoutContextPass) {
  for (const auto& name : apps::workload_names()) {
    ProfiledRun run(name);
    const auto want = reference_enumerate(run.profiler, false);
    expect_identical(enumerate_points_semantic_only(run.profiler), want,
                     name + " (semantic only)");
    const std::string chain[] = {"semantic"};
    expect_identical(enumerate_with_passes(run.profiler, chain), want,
                     name + " (semantic chain)");
  }
}

TEST(Pipeline, PassesAreReorderable) {
  // context-then-semantic keeps the same surviving set (context pruning
  // is per (rank, site), independent of which ranks survive), though the
  // intermediate after_semantic accounting naturally differs.
  ProfiledRun run("LU");
  const auto forward =
      enumerate_with_passes(run.profiler,
                            std::vector<std::string>{"semantic", "context"});
  const auto reversed =
      enumerate_with_passes(run.profiler,
                            std::vector<std::string>{"context", "semantic"});
  std::multiset<std::string> a, b;
  for (const auto& p : forward.points) a.insert(point_repr(p));
  for (const auto& p : reversed.points) b.insert(point_repr(p));
  EXPECT_EQ(a, b);
  EXPECT_EQ(forward.stats.after_context, reversed.stats.after_context);
}

TEST(Pipeline, PassesAreRepeatable) {
  // Structural passes are idempotent: applying one twice changes nothing.
  ProfiledRun run("CG");
  const auto once = enumerate_points(run.profiler);
  const auto twice = enumerate_with_passes(
      run.profiler,
      std::vector<std::string>{"semantic", "semantic", "context", "context"});
  ASSERT_EQ(once.points.size(), twice.points.size());
  for (std::size_t i = 0; i < once.points.size(); ++i) {
    EXPECT_EQ(point_repr(once.points[i]), point_repr(twice.points[i]));
  }
}

TEST(Pipeline, UnknownPassIsRejected) {
  EXPECT_THROW(make_pruning_pass("wat"), ConfigError);
  ProfiledRun run("EP");
  EXPECT_THROW(enumerate_with_passes(run.profiler,
                                     std::vector<std::string>{"wat"}),
               ConfigError);
}

TEST(Pipeline, MeasuringPassIsRejectedAtEnumerationTime) {
  // "ml" resolves points by running trials; it may only run under a
  // study driver that supplies a measurer.
  ProfiledRun run("EP");
  EXPECT_THROW(
      enumerate_with_passes(run.profiler,
                            std::vector<std::string>{"semantic", "ml"}),
      ConfigError);
}

TEST(Pipeline, ParsePassList) {
  EXPECT_EQ(parse_pass_list("semantic,context,ml"),
            (std::vector<std::string>{"semantic", "context", "ml"}));
  EXPECT_EQ(parse_pass_list("context"),
            (std::vector<std::string>{"context"}));
  EXPECT_THROW(parse_pass_list(""), ConfigError);
  EXPECT_THROW(parse_pass_list("semantic,,context"), ConfigError);
  EXPECT_THROW(parse_pass_list("semantic,nope"), ConfigError);
}

}  // namespace
}  // namespace fastfit::core

// TrialExecutor pool semantics and the parallel == serial contract of
// Campaign::measure_many.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "core/trial_executor.hpp"

namespace fastfit::core {
namespace {

TEST(TrialExecutor, RunsEveryJob) {
  TrialExecutor executor(4);
  EXPECT_EQ(executor.workers(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    executor.submit([&done] { done.fetch_add(1); });
  }
  executor.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(TrialExecutor, SerialModeSpawnsNoThreadsAndRunsInline) {
  TrialExecutor executor(1);
  EXPECT_EQ(executor.workers(), 0u);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    executor.submit([&order, i] { order.push_back(i); });
    // Inline execution: the side effect is visible before wait().
    EXPECT_EQ(order.size(), static_cast<std::size_t>(i + 1));
  }
  executor.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TrialExecutor, ExceptionDoesNotWedgeThePool) {
  TrialExecutor executor(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    if (i == 5) {
      executor.submit([] { throw std::runtime_error("boom"); });
    } else {
      executor.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_THROW(executor.wait(), std::runtime_error);
  EXPECT_EQ(done.load(), 19);  // every healthy job still ran

  // The pool stays usable after a failed batch.
  executor.submit([&done] { done.fetch_add(1); });
  executor.wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(TrialExecutor, SerialModeCapturesExceptionsTheSameWay) {
  TrialExecutor executor(1);
  int done = 0;
  executor.submit([] { throw std::runtime_error("boom"); });
  executor.submit([&done] { ++done; });
  EXPECT_THROW(executor.wait(), std::runtime_error);
  EXPECT_EQ(done, 1);
  executor.submit([&done] { ++done; });
  executor.wait();
  EXPECT_EQ(done, 2);
}

TEST(TrialExecutor, ResolveParallelTrials) {
  EXPECT_EQ(resolve_parallel_trials(7, 4), 7u);   // explicit wins
  EXPECT_GE(resolve_parallel_trials(0, 4), 1u);   // auto is at least 1
  EXPECT_EQ(resolve_parallel_trials(0, 1 << 20), 1u);  // huge worlds: serial
}

class MeasureMany : public ::testing::Test {
 protected:
  static CampaignOptions options(std::size_t parallel) {
    CampaignOptions opts;
    opts.nranks = 4;
    opts.trials_per_point = 6;
    opts.seed = 1234;
    opts.max_parallel_trials = parallel;
    return opts;
  }
};

TEST_F(MeasureMany, ParallelEqualsSerialPointByPoint) {
  const auto workload = apps::make_workload("LU");
  Campaign serial(*workload, options(1));
  Campaign parallel(*workload, options(4));
  serial.profile();
  parallel.profile();
  EXPECT_EQ(parallel.parallel_trials(), 4u);

  auto points = serial.enumeration().points;
  if (points.size() > 6) points.resize(6);

  std::vector<PointResult> expected;
  for (const auto& point : points) expected.push_back(serial.measure(point));
  const auto got = parallel.measure_many(points);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].point.site_id, points[i].site_id);  // input order kept
    EXPECT_EQ(got[i].point.param, points[i].param);
    EXPECT_EQ(got[i].trials, expected[i].trials);
    EXPECT_EQ(got[i].counts, expected[i].counts) << "point " << i;
  }
  // >= rather than ==: timed-out trials are re-run once for confirmation,
  // and confirmation runs count as injected executions.
  EXPECT_GE(parallel.trials_run(), points.size() * 6);
}

TEST_F(MeasureMany, MaxParallelOneDegradesToSerialPath) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, options(1));
  campaign.profile();
  EXPECT_EQ(campaign.parallel_trials(), 1u);

  auto points = campaign.enumeration().points;
  if (points.size() > 3) points.resize(3);
  const auto batched = campaign.measure_many(points);
  ASSERT_EQ(batched.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto lone = campaign.measure(points[i]);
    EXPECT_EQ(batched[i].counts, lone.counts) << "point " << i;
  }
}

TEST_F(MeasureMany, EmptyBatchAndOptionMutator) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, options(0));
  campaign.profile();
  EXPECT_GE(campaign.parallel_trials(), 1u);
  campaign.set_max_parallel_trials(2);
  EXPECT_EQ(campaign.parallel_trials(), 2u);
  const auto none = campaign.measure_many(std::span<const InjectionPoint>{});
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(campaign.trials_run(), 0u);
}

}  // namespace
}  // namespace fastfit::core

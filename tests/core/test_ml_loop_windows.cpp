// Sliding-window verification semantics of the learning loop.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/ml_loop.hpp"

namespace fastfit::core {
namespace {

CampaignOptions small_options() {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 4;
  opts.seed = 31337;
  return opts;
}

TEST(MlLoopWindows, MinVerifySamplesDelaysEarlyStop) {
  // With a trivial threshold, the loop may still not stop before the
  // verification floor is met: more measured points than one round.
  const auto workload = apps::make_workload("miniMD");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.accuracy_threshold = 0.01;
  config.train_batch = 4;
  config.verify_batch = 3;
  config.min_verify_samples = 12;
  config.forest.n_trees = 8;
  const auto result =
      run_ml_loop(campaign, campaign.enumeration().points, config);
  ASSERT_TRUE(result.threshold_reached);
  EXPECT_GE(result.rounds, 4u);  // ceil(12 / 3) verification rounds
  EXPECT_GE(result.measured.size(), 4 * (4u + 3u));
}

TEST(MlLoopWindows, ZeroWindowFallsBackToLastBatch) {
  const auto workload = apps::make_workload("miniMD");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.accuracy_threshold = 0.01;
  config.train_batch = 4;
  config.verify_batch = 3;
  config.verify_window = 0;  // last batch only
  config.min_verify_samples = 1;
  config.forest.n_trees = 8;
  const auto result =
      run_ml_loop(campaign, campaign.enumeration().points, config);
  EXPECT_TRUE(result.threshold_reached);
  EXPECT_EQ(result.rounds, 1u);  // stops at the first verification batch
}

TEST(MlLoopWindows, AccuracyIsAFraction) {
  const auto workload = apps::make_workload("LU");
  Campaign campaign(*workload, small_options());
  campaign.profile();
  MlLoopConfig config;
  config.accuracy_threshold = 0.99;
  config.forest.n_trees = 8;
  const auto result =
      run_ml_loop(campaign, campaign.enumeration().points, config);
  EXPECT_GE(result.final_accuracy, 0.0);
  EXPECT_LE(result.final_accuracy, 1.0);
}

}  // namespace
}  // namespace fastfit::core

// Snapshot parity: the prefix-replay fast path must be invisible in the
// results. Every assertion here compares --snapshots on/auto against the
// from-scratch off path — per-point outcome counts, journal resume, the
// parallel executor — plus the golden-run memo and its invalidation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "core/recording_io.hpp"
#include "minimpi/snapshot.hpp"
#include "support/error.hpp"
#include "telemetry/recorder.hpp"

namespace tel = fastfit::telemetry;

namespace fastfit::core {
namespace {

CampaignOptions base_options(SnapshotMode mode) {
  CampaignOptions opts;
  opts.nranks = 8;
  opts.trials_per_point = 3;
  opts.seed = 4242;
  opts.max_parallel_trials = 1;
  opts.snapshots = mode;
  return opts;
}

// Measures the first `npoints` enumerated points and returns the
// results; `stats_out` receives the campaign's snapshot statistics.
std::vector<PointResult> run_study(const apps::Workload& workload,
                                   const CampaignOptions& opts,
                                   std::size_t npoints,
                                   SnapshotCache::Stats* stats_out = nullptr) {
  Campaign campaign(workload, opts);
  campaign.profile();
  const auto& points = campaign.enumeration().points;
  const auto n = std::min(npoints, points.size());
  const auto results = campaign.measure_many(
      std::span<const InjectionPoint>(points.data(), n), opts.trials_per_point);
  if (stats_out != nullptr) *stats_out = campaign.snapshot_stats();
  EXPECT_TRUE(campaign.health().clean());
  return results;
}

void expect_same_counts(const std::vector<PointResult>& a,
                        const std::vector<PointResult>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].counts, b[i].counts) << label << " point " << i;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " point " << i;
    EXPECT_EQ(a[i].exec.quarantined, b[i].exec.quarantined)
        << label << " point " << i;
  }
}

TEST(SnapshotParity, ReplayMatchesFromScratchForEveryWorkload) {
  for (const auto& name : apps::workload_names()) {
    const auto workload = apps::make_workload(name);
    const auto off =
        run_study(*workload, base_options(SnapshotMode::Off), 2);
    SnapshotCache::Stats stats;
    const auto on =
        run_study(*workload, base_options(SnapshotMode::On), 2, &stats);
    expect_same_counts(off, on, name);
    // The fast path must actually have engaged: one recording, one
    // snapshot per distinct cut, trials served as clones.
    EXPECT_EQ(stats.recording_builds, 1u) << name;
    EXPECT_GT(stats.clones, 0u) << name;
    EXPECT_EQ(stats.fallbacks, 0u) << name;
  }
}

TEST(SnapshotParity, AutoModeMatchesAndReusesTheRecording) {
  const auto workload = apps::make_workload("LU");
  const auto off = run_study(*workload, base_options(SnapshotMode::Off), 4);
  SnapshotCache::Stats stats;
  const auto replayed =
      run_study(*workload, base_options(SnapshotMode::Auto), 4, &stats);
  expect_same_counts(off, replayed, "LU auto");
  EXPECT_EQ(stats.recording_builds, 1u);  // shared across all 4 points
  // 3 trials per point share each point's derived cut (>= because guard
  // retries or watchdog confirmations may re-clone).
  EXPECT_GE(stats.hits, stats.snapshot_builds);
  EXPECT_GE(stats.clones, 4u * 3u);
}

TEST(SnapshotParity, ParallelExecutorMatchesSerialFromScratch) {
  const auto workload = apps::make_workload("CG");
  const auto serial_off =
      run_study(*workload, base_options(SnapshotMode::Off), 3);
  auto parallel = base_options(SnapshotMode::Auto);
  parallel.max_parallel_trials = 4;
  SnapshotCache::Stats stats;
  const auto pooled = run_study(*workload, parallel, 3, &stats);
  expect_same_counts(serial_off, pooled, "CG pool-4");
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(SnapshotParity, ResumeFromJournalStaysBitIdentical) {
  const auto workload = apps::make_workload("LU");
  const auto opts = base_options(SnapshotMode::Auto);
  const auto expected =
      run_study(*workload, base_options(SnapshotMode::Off), 4);

  const std::string path =
      ::testing::TempDir() + "fastfit_snapshot_parity_resume";
  std::remove(path.c_str());
  {
    Campaign partial(*workload, opts);
    partial.profile();
    partial.attach_journal(path, JournalMode::Create);
    const auto& points = partial.enumeration().points;
    ASSERT_GE(points.size(), 4u);
    partial.measure_many(
        std::span<const InjectionPoint>(points.data(), 2), 3);
    partial.detach_journal();
  }

  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  const auto& points = resumed.enumeration().points;
  const auto results = resumed.measure_many(
      std::span<const InjectionPoint>(points.data(), 4), 3);
  EXPECT_GT(resumed.health().replayed_trials, 0u);
  expect_same_counts(expected, results, "LU resume");
}

TEST(SnapshotParity, GoldenRunIsMemoizedAcrossCampaigns) {
  GoldenCache::instance().clear();
  const auto workload = apps::make_workload("EP");
  const auto opts = base_options(SnapshotMode::Off);

  Campaign first(*workload, opts);
  first.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 1u);
  const auto digest = first.golden_digest();

  // Same configuration: the second campaign's profile() serves the
  // golden run from the memo (still exactly one entry) and agrees on
  // the digest the whole classification hangs off.
  Campaign second(*workload, opts);
  second.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 1u);
  EXPECT_EQ(second.golden_digest(), digest);

  // A different seed is a different key — no false sharing.
  auto other = opts;
  other.seed = opts.seed + 1;
  Campaign third(*workload, other);
  third.profile();
  EXPECT_EQ(GoldenCache::instance().size(), 2u);
}

TEST(SnapshotParity, GoldenCacheInvalidationForcesRemeasure) {
  GoldenCache& cache = GoldenCache::instance();
  cache.clear();
  cache.put("k", {0xabcd, std::chrono::milliseconds(120)});
  const auto hit = cache.find("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->digest, 0xabcdu);
  EXPECT_EQ(hit->wall.count(), 120);
  // The watchdog-recalibration hook: invalidate, then the next
  // run_golden misses and re-measures.
  cache.invalidate("k");
  EXPECT_FALSE(cache.find("k").has_value());
  cache.invalidate("k");  // idempotent
  cache.clear();
}

TEST(SnapshotParity, CacheBudgetMustBePositive) {
  const auto workload = apps::make_workload("LU");
  auto opts = base_options(SnapshotMode::Auto);
  opts.snapshot_cache_mb = 0;
  EXPECT_THROW(Campaign c(*workload, opts), ConfigError);
}

// --- durable recordings (core/recording_io.hpp) ---

std::shared_ptr<mpi::WorldRecording> synthetic_recording() {
  auto rec = std::make_shared<mpi::WorldRecording>();
  rec->nranks = 2;
  rec->ops.resize(2);
  mpi::ChunkStore chunks;
  const double a[2] = {1.5, -2.5};
  const double b[2] = {3.5, 4.5};
  for (int r = 0; r < 2; ++r) {
    mpi::RecordedOp coll;
    coll.kind = mpi::RecordedOp::Kind::Collective;
    coll.coll = mpi::CollectiveKind::Allreduce;
    coll.site_id = 0x1234;
    coll.site_line = 42;
    coll.invocation = static_cast<std::uint64_t>(r);
    coll.comm = 1;
    coll.writes.push_back(chunks.intern(a, sizeof(a)));
    // The same bytes twice: dedup must survive the round trip.
    coll.writes.push_back(chunks.intern(a, sizeof(a)));
    rec->ops[static_cast<std::size_t>(r)].push_back(coll);

    mpi::RecordedOp send;
    send.kind = mpi::RecordedOp::Kind::Send;
    send.site_id = 0x99;
    send.self_comm = r;
    send.peer = 1 - r;
    send.peer_world = 1 - r;
    send.transport_tag = 0xABCDEF00ULL + static_cast<std::uint64_t>(r);
    send.writes.push_back(chunks.intern(b, sizeof(b)));
    rec->ops[static_cast<std::size_t>(r)].push_back(send);
    rec->total_ops += 2;
  }
  rec->payload_bytes = chunks.unique_bytes();
  return rec;
}

TEST(RecordingIo, SaveLoadRoundTripPreservesOpsAndDedup) {
  const auto path = ::testing::TempDir() + "fastfit_recording_roundtrip";
  std::remove(path.c_str());
  const auto rec = synthetic_recording();
  ASSERT_TRUE(save_recording(path, *rec, "id|2|7", 0xD1DE57u));

  std::string why;
  const auto loaded = load_recording(path, "id|2|7", 0xD1DE57u, &why);
  ASSERT_NE(loaded, nullptr) << why;
  EXPECT_EQ(loaded->nranks, rec->nranks);
  EXPECT_EQ(loaded->total_ops, rec->total_ops);
  EXPECT_TRUE(loaded->replayable);
  // Dedup restored: the duplicated chunk counts once, so payload_bytes
  // matches the original ChunkStore accounting.
  EXPECT_EQ(loaded->payload_bytes, rec->payload_bytes);
  ASSERT_EQ(loaded->ops.size(), rec->ops.size());
  for (std::size_t r = 0; r < rec->ops.size(); ++r) {
    ASSERT_EQ(loaded->ops[r].size(), rec->ops[r].size());
    for (std::size_t i = 0; i < rec->ops[r].size(); ++i) {
      const auto& want = rec->ops[r][i];
      const auto& got = loaded->ops[r][i];
      EXPECT_EQ(got.kind, want.kind);
      EXPECT_EQ(got.coll, want.coll);
      EXPECT_EQ(got.site_id, want.site_id);
      EXPECT_EQ(got.site_line, want.site_line);
      EXPECT_EQ(got.invocation, want.invocation);
      EXPECT_EQ(got.comm, want.comm);
      EXPECT_EQ(got.self_comm, want.self_comm);
      EXPECT_EQ(got.peer, want.peer);
      EXPECT_EQ(got.peer_world, want.peer_world);
      EXPECT_EQ(got.transport_tag, want.transport_tag);
      ASSERT_EQ(got.writes.size(), want.writes.size());
      for (std::size_t w = 0; w < want.writes.size(); ++w) {
        ASSERT_NE(got.writes[w], nullptr);
        EXPECT_EQ(*got.writes[w], *want.writes[w]);
      }
    }
  }
  // In-memory dedup, not just equal bytes: both interned copies of the
  // same payload must share one chunk after the load.
  EXPECT_EQ(loaded->ops[0][0].writes[0].get(),
            loaded->ops[0][0].writes[1].get());
}

TEST(RecordingIo, LoadRefusesMismatchesAndCorruption) {
  const auto path = ::testing::TempDir() + "fastfit_recording_refuse";
  std::remove(path.c_str());

  std::string why;
  EXPECT_EQ(load_recording(path, "id", 1, &why), nullptr);  // missing
  EXPECT_NE(why.find("no recording file"), std::string::npos);

  const auto rec = synthetic_recording();
  ASSERT_TRUE(save_recording(path, *rec, "id", 1));
  ASSERT_NE(load_recording(path, "id", 1, &why), nullptr) << why;

  EXPECT_EQ(load_recording(path, "other", 1, &why), nullptr);
  EXPECT_NE(why.find("identity mismatch"), std::string::npos);
  EXPECT_EQ(load_recording(path, "id", 2, &why), nullptr);
  EXPECT_NE(why.find("digest mismatch"), std::string::npos);

  // Truncation anywhere in the body must fail the load, not crash it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const auto truncated = path + ".trunc";
  for (const std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::remove(truncated.c_str());
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_EQ(load_recording(truncated, "id", 1, &why), nullptr)
        << "keep=" << keep;
  }
  // Trailing garbage is corruption too.
  std::remove(truncated.c_str());
  std::ofstream out(truncated, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out << "junk";
  out.close();
  EXPECT_EQ(load_recording(truncated, "id", 1, &why), nullptr);
  EXPECT_NE(why.find("trailing"), std::string::npos);

  // Not a recording at all.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "hello world";
  EXPECT_EQ(load_recording(path, "id", 1, &why), nullptr);
  EXPECT_NE(why.find("bad magic"), std::string::npos);
}

class RecordingReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& rec = tel::Recorder::instance();
    rec.enable();
    rec.reset();
  }
  void TearDown() override {
    auto& rec = tel::Recorder::instance();
    rec.reset();
    rec.disable();
  }
};

TEST_F(RecordingReuseTest, CampaignsSharingAPathRecordOnce) {
  const auto workload = apps::make_workload("LU");
  const auto path = ::testing::TempDir() + "fastfit_recording_shared";
  std::remove(path.c_str());
  auto opts = base_options(SnapshotMode::On);
  opts.recording_path = path;

  const auto expected =
      run_study(*workload, base_options(SnapshotMode::Off), 3);

  // First campaign: no file yet, so it records fresh and persists.
  const auto first = run_study(*workload, opts, 3);
  expect_same_counts(expected, first, "LU recording-save");
  auto snap = tel::Recorder::instance().metrics();
  EXPECT_EQ(snap.counter_value("fastfit_snapshot_recordings_total"), 1u);
  EXPECT_EQ(snap.counter_value("fastfit_snapshot_recording_loads_total"), 0u);

  // Second campaign (a resume, or a sibling shard worker): the recording
  // loads from disk; the fault-free world never re-runs.
  const auto second = run_study(*workload, opts, 3);
  expect_same_counts(expected, second, "LU recording-load");
  snap = tel::Recorder::instance().metrics();
  EXPECT_EQ(snap.counter_value("fastfit_snapshot_recordings_total"), 1u);
  EXPECT_EQ(snap.counter_value("fastfit_snapshot_recording_loads_total"), 1u);
}

TEST_F(RecordingReuseTest, JournalDerivesTheRecordingPath) {
  const auto workload = apps::make_workload("EP");
  const auto path = ::testing::TempDir() + "fastfit_recording_journal";
  std::remove(path.c_str());
  const auto derived = path + ".recording";
  std::remove(derived.c_str());

  auto opts = base_options(SnapshotMode::On);
  Campaign campaign(*workload, opts);
  campaign.profile();
  campaign.attach_journal(path, JournalMode::Create);
  const auto& points = campaign.enumeration().points;
  ASSERT_GE(points.size(), 1u);
  campaign.measure_many(std::span<const InjectionPoint>(points.data(), 1), 2);
  campaign.detach_journal();

  // The recording now lives next to the journal, stamped with the
  // campaign identity — a later --resume reloads it.
  std::ifstream derived_file(derived, std::ios::binary);
  EXPECT_TRUE(derived_file.is_open());

  const auto before =
      tel::Recorder::instance().metrics().counter_value(
          "fastfit_snapshot_recording_loads_total");
  // The resume asks for one more trial than the journal holds: the two
  // completed trials replay from the journal, the third runs live — and
  // its snapshot comes from the reloaded recording, not a fresh run.
  Campaign resumed(*workload, opts);
  resumed.profile();
  resumed.attach_journal(path, JournalMode::Resume);
  resumed.measure_many(std::span<const InjectionPoint>(points.data(), 1), 3);
  resumed.detach_journal();
  EXPECT_EQ(tel::Recorder::instance().metrics().counter_value(
                "fastfit_snapshot_recording_loads_total"),
            before + 1);
}

}  // namespace
}  // namespace fastfit::core
